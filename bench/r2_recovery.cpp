// R2 (robustness) — the durable recovery layer, measured.
//
// Three exhibits:
//
//   1. Amnesia vs durability.  The crash schedules that stall Stenning's
//      receiver and make repfree's receiver violate safety (r1_soak's
//      second table) are re-run with stable stores attached: both become
//      non-events.  The delta between the columns is exactly what the
//      checkpoint/WAL layer buys.
//
//   2. The recovery conformance matrix.  Every protocol in the suite runs
//      against all four storage-fault kinds (torn-write, lose-tail,
//      corrupt-record, stale-snapshot) x a crash of either process, on its
//      design channel.  The sweep must come back clean: prefix-safety holds
//      through every recovery and every transfer still completes.
//
//   3. Recovery cost.  Metrics from an instrumented durable run — how many
//      records a recovery replays and how long until the first post-restart
//      write — attached to the JSON report.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "obs/metrics.hpp"
#include "stp/recovery.hpp"
#include "stp/soak.hpp"
#include "store/stable_store.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

stp::SystemSpec crash_spec(std::function<proto::ProtocolPair()> protocols) {
  stp::SystemSpec spec;
  spec.protocols = std::move(protocols);
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  spec.engine.stall_window = 6000;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("r2_recovery", argc, argv);
  bench.param("n", 8);
  bench.param("storage_faults", 4);

  std::cout << analysis::heading(
      "R2 (robustness): durable recovery — stores, rehydration, conformance");

  bool shape = true;
  const seq::Sequence x = iota_sequence(8);

  // --- 1. amnesia vs durability ------------------------------------------
  struct Entry {
    std::string name;
    std::function<proto::ProtocolPair()> make;
    fault::FaultPlan plan;
  };
  const std::vector<Entry> exhibits = {
      {"stenning", [] { return proto::make_stenning(12); },
       fault::plan_from_text("crash-receiver @writes 2\n")},
      {"repfree-del", [] { return proto::make_repfree_del(12); },
       fault::plan_from_text("dup @step 1 dir SR count 8 match *\n"
                             "crash-receiver @writes 2\n")},
  };
  analysis::Table amnesia({"protocol", "crash schedule", "amnesiac verdict",
                           "durable verdict", "records replayed"});
  for (const Entry& e : exhibits) {
    auto spec = crash_spec(e.make);
    if (e.name == "repfree-del") {
      // The violating schedule needs the deterministic round-robin
      // interleaving (same as the r1 exhibit and the regression test).
      spec.scheduler = [](std::uint64_t) {
        return std::make_unique<channel::RoundRobinScheduler>();
      };
    }
    const auto cold = stp::run_one(stp::with_chaos(spec, e.plan), x, 11);
    store::MemStore sstore, rstore;
    spec.engine.sender_store = &sstore;
    spec.engine.receiver_store = &rstore;
    const auto warm = stp::run_one(stp::with_chaos(spec, e.plan), x, 11);
    amnesia.add_row({e.name, fault::to_text(e.plan), sim::to_cstr(cold.verdict),
                     sim::to_cstr(warm.verdict),
                     std::to_string(warm.stats.records_replayed)});
    bench.record_trial(cold.stats.steps, cold.stats.sent[0] + cold.stats.sent[1],
                       cold.verdict == sim::RunVerdict::kCompleted);
    bench.record_trial(warm.stats.steps, warm.stats.sent[0] + warm.stats.sent[1],
                       warm.verdict == sim::RunVerdict::kCompleted);
    // Durability turns both failure modes into completions; without it the
    // same schedules stall (stenning) or violate safety post-crash.
    shape = shape && warm.verdict == sim::RunVerdict::kCompleted &&
            cold.verdict != sim::RunVerdict::kCompleted;
  }
  std::cout << "\n" << amnesia.to_ascii();

  // --- 2. the conformance matrix -----------------------------------------
  const auto cases = stp::default_recovery_cases();
  const stp::RecoveryReport report = stp::recovery_sweep(cases, 2026);
  analysis::Table matrix({"protocol", "trials", "completed", "recoveries",
                          "records replayed"});
  // Re-aggregate per protocol (8 trials each: 4 fault kinds x 2 procs).
  for (const auto& c : cases) {
    std::uint64_t trials = 0, completed = 0, recoveries = 0, replayed = 0;
    for (const auto& t : report.trials) {
      if (t.protocol != c.name) continue;
      ++trials;
      if (t.detail.empty()) ++completed;
      recoveries += t.recoveries;
      replayed += t.records_replayed;
    }
    matrix.add_row({c.name, std::to_string(trials), std::to_string(completed),
                    std::to_string(recoveries), std::to_string(replayed)});
  }
  std::cout << "\n" << matrix.to_ascii();
  for (const auto& t : report.trials) {
    bench.record_trial(t.steps, 0, t.detail.empty());
    if (!t.detail.empty()) std::cout << "FAILED: " << t.detail << "\n";
  }
  shape = shape && report.clean();

  // --- 3. recovery cost metrics ------------------------------------------
  {
    auto spec = crash_spec([] { return proto::make_stenning(12); });
    store::MemStore sstore, rstore;
    spec.engine.sender_store = &sstore;
    spec.engine.receiver_store = &rstore;
    obs::MetricsRegistry reg;
    obs::MetricsProbe probe(&reg);
    spec.engine.probe = &probe;
    const auto plan = fault::plan_from_text(
        "crash-receiver @writes 2\n"
        "crash-sender @writes 4\n"
        "crash-receiver @writes 6\n");
    const auto r = stp::run_one(stp::with_chaos(spec, plan), x, 7);
    shape = shape && r.verdict == sim::RunVerdict::kCompleted &&
            reg.counter_value("recoveries") == 3;
    std::cout << "\ncrash-storm run: " << sim::to_cstr(r.verdict) << " with "
              << reg.counter_value("recoveries") << " recoveries, "
              << reg.counter_value("records_replayed")
              << " records replayed, p50 recovery latency "
              << reg.histograms().at("recovery.latency").quantile(0.5)
              << " steps\n";
    bench.metrics_json(reg.to_json());
    bench.record_trial(r.stats.steps, r.stats.sent[0] + r.stats.sent[1],
                       r.verdict == sim::RunVerdict::kCompleted);
  }

  std::cout << "\nexpected: the amnesia failure modes vanish once stable "
               "stores are attached; the full protocol x storage-fault x "
               "crash matrix recovers clean; a crash-storm run completes "
               "with every restart rehydrated.\n"
            << "measured: " << (shape ? "CONFIRMED" : "NOT CONFIRMED")
            << "\n";
  return bench.finish(shape);
}
