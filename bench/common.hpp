// Shared helpers for the bench binaries: canonical system specs, the
// overfull (alpha(m)+1) encoding table the impossibility experiments need,
// the --json/--quiet CLI contract every bench main speaks, and small
// formatting conveniences.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <streambuf>
#include <string>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "obs/report.hpp"
#include "proto/encoded.hpp"
#include "proto/suite.hpp"
#include "seq/alpha.hpp"
#include "seq/repetition_free.hpp"
#include "stp/runner.hpp"
#include "stp/soak.hpp"
#include "util/expect.hpp"

namespace stpx::bench {

// --- bench CLI: every bench main accepts --json <path> and --quiet --------

struct BenchCli {
  std::string json_path;  // empty = no report file
  bool quiet = false;     // suppress the human-readable tables
};

inline BenchCli parse_bench_cli(int argc, char** argv) {
  BenchCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": --json needs a path\n";
        std::exit(2);
      }
      cli.json_path = argv[++i];
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--json <path>] [--quiet]\n"
                   "  --json <path>  write a machine-readable BENCH report\n"
                   "  --quiet        suppress the human-readable output\n";
      std::exit(0);
    } else {
      std::cerr << argv[0] << ": unknown flag " << arg
                << " (try --help)\n";
      std::exit(2);
    }
  }
  return cli;
}

/// One bench invocation: parses the CLI, silences std::cout under --quiet,
/// accumulates sweep/soak results, and emits the BENCH_<name>.json report
/// from finish().  Intended shape of a main():
///
///   int main(int argc, char** argv) {
///     BenchRun bench("f1_dup_overhead", argc, argv);
///     ...
///     bench.record(sweep_result);              // as results arrive
///     ...
///     return bench.finish(shape_confirmed);
///   }
class BenchRun {
 public:
  BenchRun(std::string name, int argc, char** argv)
      : name_(std::move(name)), cli_(parse_bench_cli(argc, argv)) {
    if (cli_.quiet) saved_ = std::cout.rdbuf(&null_buf_);
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  ~BenchRun() {
    if (saved_ != nullptr) std::cout.rdbuf(saved_);
  }

  const BenchCli& cli() const { return cli_; }

  /// Record a bench parameter for the report (stringly-typed key/value).
  void param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, value);
  }
  void param(const std::string& key, std::int64_t value) {
    params_.emplace_back(key, std::to_string(value));
  }

  /// Fold trial aggregates into the report.
  void record(const stp::SweepResult& r) { merged_.merge(r); }
  void record(const stp::SoakReport& r) {
    stp::SweepResult as_sweep;
    as_sweep.trials = r.trials;
    as_sweep.safety_failures = r.safety_violations;
    as_sweep.recovery_failures = r.recovery_violations;
    as_sweep.stabilization_failures = r.stabilization_violations;
    as_sweep.stalled = r.stalled;
    as_sweep.exhausted = r.exhausted;
    as_sweep.incomplete = r.stalled + r.exhausted;
    as_sweep.total_steps = r.total_steps;
    as_sweep.total_msgs_sent = r.total_msgs_sent;
    as_sweep.write_latencies = r.write_latencies;
    as_sweep.trial_steps = r.trial_steps;
    merged_.merge(as_sweep);
  }
  /// Manual fold for benches that do not run stp sweeps.
  void record_trial(std::uint64_t steps, std::uint64_t msgs, bool completed) {
    ++merged_.trials;
    merged_.total_steps += steps;
    merged_.total_msgs_sent += msgs;
    merged_.trial_steps.push_back(steps);
    if (!completed) {
      ++merged_.incomplete;
      ++merged_.exhausted;
    }
  }

  /// Attach a metrics snapshot (MetricsRegistry::to_json()) to the report.
  void metrics_json(std::string json) { metrics_json_ = std::move(json); }

  /// Write the JSON report if requested; returns the process exit code.
  int finish(bool ok) {
    if (!cli_.json_path.empty()) {
      obs::SweepReport rep = stp::report_of(name_, merged_);
      rep.params = params_;
      rep.ok = ok;
      rep.metrics_json = metrics_json_;
      rep.write_json_file(cli_.json_path);
      if (!cli_.quiet) {
        std::cout << "\nreport: " << cli_.json_path << "\n";
      }
    }
    return ok ? 0 : 1;
  }

 private:
  /// Discards everything written to it (backs std::cout under --quiet).
  struct NullBuf final : std::streambuf {
    int overflow(int c) override { return c == EOF ? 0 : c; }
    std::streamsize xsputn(const char*, std::streamsize n) override {
      return n;
    }
  };

  std::string name_;
  BenchCli cli_;
  stp::SweepResult merged_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::string metrics_json_;
  NullBuf null_buf_;
  std::streambuf* saved_ = nullptr;
};

inline stp::SystemSpec repfree_dup_spec(int m, double delivery_weight = 2.0) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_dup(m); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [delivery_weight](std::uint64_t seed) {
    channel::FairRandomConfig cfg;
    cfg.seed = seed;
    cfg.delivery_weight = delivery_weight;
    return std::make_unique<channel::FairRandomScheduler>(cfg);
  };
  spec.engine.max_steps = 500000;
  return spec;
}

inline stp::SystemSpec repfree_del_spec(int m, double loss) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_del(m); };
  spec.channel = [loss](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(loss, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 500000;
  return spec;
}

/// The canonical valid encoding for the full repetition-free family.
inline proto::EncodingTable canonical_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

/// The canonical encoding plus the extra input <0 0>.  By the pigeonhole no
/// valid word exists for it; we give it the word of the longest existing
/// entry starting with symbol 0, producing exactly the collision Theorem 1
/// predicts.  Requires m >= 1.
inline proto::EncodingTable overfull_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  std::size_t donor = SIZE_MAX;
  std::size_t donor_len = 0;
  for (std::size_t i = 0; i < enc->inputs.size(); ++i) {
    if (!enc->inputs[i].empty() && enc->inputs[i][0] == 0 &&
        enc->inputs[i].size() >= donor_len) {
      donor = i;
      donor_len = enc->inputs[i].size();
    }
  }
  STPX_EXPECT(donor != SIZE_MAX, "no donor entry starting with 0");
  enc->inputs.push_back(seq::Sequence{0, 0});
  enc->words.push_back(enc->words[donor]);
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

/// System spec around an encoding table.  knowledge=false -> greedy
/// receiver; del_mode -> deletion channel + retransmission.
inline stp::SystemSpec encoded_spec(proto::EncodingTable table,
                                    bool knowledge, bool del_mode) {
  stp::SystemSpec spec;
  spec.protocols = [table, knowledge, del_mode] {
    proto::ProtocolPair pair;
    pair.sender = std::make_unique<proto::EncodedSender>(table, del_mode);
    if (knowledge) {
      pair.receiver =
          std::make_unique<proto::KnowledgeReceiver>(table, del_mode);
    } else {
      pair.receiver =
          std::make_unique<proto::GreedyReceiver>(table, del_mode);
    }
    return pair;
  };
  if (del_mode) {
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::DelChannel>(0.0, seed);
    };
  } else {
    spec.channel = [](std::uint64_t) {
      return std::make_unique<channel::DupChannel>();
    };
  }
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 200000;
  return spec;
}

/// 0,1,...,n-1 — the canonical long repetition-free input.
inline seq::Sequence iota_sequence(int n) {
  seq::Sequence x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = i;
  return x;
}

inline std::vector<std::uint64_t> seed_range(std::uint64_t first,
                                             std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = first + i;
  return seeds;
}

}  // namespace stpx::bench
