// Shared helpers for the bench binaries: canonical system specs, the
// overfull (alpha(m)+1) encoding table the impossibility experiments need,
// and small formatting conveniences.
#pragma once

#include <memory>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/encoded.hpp"
#include "proto/suite.hpp"
#include "seq/alpha.hpp"
#include "seq/repetition_free.hpp"
#include "stp/runner.hpp"
#include "util/expect.hpp"

namespace stpx::bench {

inline stp::SystemSpec repfree_dup_spec(int m, double delivery_weight = 2.0) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_dup(m); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [delivery_weight](std::uint64_t seed) {
    channel::FairRandomConfig cfg;
    cfg.seed = seed;
    cfg.delivery_weight = delivery_weight;
    return std::make_unique<channel::FairRandomScheduler>(cfg);
  };
  spec.engine.max_steps = 500000;
  return spec;
}

inline stp::SystemSpec repfree_del_spec(int m, double loss) {
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_del(m); };
  spec.channel = [loss](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(loss, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 500000;
  return spec;
}

/// The canonical valid encoding for the full repetition-free family.
inline proto::EncodingTable canonical_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

/// The canonical encoding plus the extra input <0 0>.  By the pigeonhole no
/// valid word exists for it; we give it the word of the longest existing
/// entry starting with symbol 0, producing exactly the collision Theorem 1
/// predicts.  Requires m >= 1.
inline proto::EncodingTable overfull_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  std::size_t donor = SIZE_MAX;
  std::size_t donor_len = 0;
  for (std::size_t i = 0; i < enc->inputs.size(); ++i) {
    if (!enc->inputs[i].empty() && enc->inputs[i][0] == 0 &&
        enc->inputs[i].size() >= donor_len) {
      donor = i;
      donor_len = enc->inputs[i].size();
    }
  }
  STPX_EXPECT(donor != SIZE_MAX, "no donor entry starting with 0");
  enc->inputs.push_back(seq::Sequence{0, 0});
  enc->words.push_back(enc->words[donor]);
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

/// System spec around an encoding table.  knowledge=false -> greedy
/// receiver; del_mode -> deletion channel + retransmission.
inline stp::SystemSpec encoded_spec(proto::EncodingTable table,
                                    bool knowledge, bool del_mode) {
  stp::SystemSpec spec;
  spec.protocols = [table, knowledge, del_mode] {
    proto::ProtocolPair pair;
    pair.sender = std::make_unique<proto::EncodedSender>(table, del_mode);
    if (knowledge) {
      pair.receiver =
          std::make_unique<proto::KnowledgeReceiver>(table, del_mode);
    } else {
      pair.receiver =
          std::make_unique<proto::GreedyReceiver>(table, del_mode);
    }
    return pair;
  };
  if (del_mode) {
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::DelChannel>(0.0, seed);
    };
  } else {
    spec.channel = [](std::uint64_t) {
      return std::make_unique<channel::DupChannel>();
    };
  }
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 200000;
  return spec;
}

/// 0,1,...,n-1 — the canonical long repetition-free input.
inline seq::Sequence iota_sequence(int n) {
  seq::Sequence x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = i;
  return x;
}

inline std::vector<std::uint64_t> seed_range(std::uint64_t first,
                                             std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = first + i;
  return seeds;
}

}  // namespace stpx::bench
