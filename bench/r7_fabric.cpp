// R7 (service fabric) — crash re-homing must preserve exact-copy
// delivery, and the restore path must be fast and attestable offline.
//
// Three phases:
//
//   1. In-process acceptance: 256 sessions sharded over 3 backend cells,
//      one backend kill -9'd (mux killed mid-flight) by a scripted
//      fault plan.  Every client session must complete, the merged
//      per-backend trace must re-derive per-session prefix safety across
//      the re-home, and the trace verdict must MATCH the live one.
//
//   2. Restore-latency distribution: seeded crash trials; each re-home's
//      fence -> rehydrate -> serving latency is collected and reported
//      as p50/p90/max.
//
//   3. Process harness: the same topology over real processes — this
//      binary fork/execs itself as 3 backend processes (--backend mode),
//      each handshaking with the parent's router over a UDP rendezvous
//      and journaling its sessions to a FileStore and its FlightRecorder
//      trace to JSONL (flushed every ~25 ms).  The parent SIGKILLs one
//      backend mid-run, waits for the heartbeat strike ladder to declare
//      it dead, re-execs the survivor with BOTH log directories
//      (--absorb-logs), swaps the router link, and re-homes the dead
//      sessions.  Acceptance is the same: all sessions complete and the
//      traces merged across processes (rebased by each recorder's
//      CLOCK_MONOTONIC epoch) attest every session.  Where the sandbox
//      forbids sockets or fork, this phase degrades to "skipped" without
//      failing the bench — phases 1-2 already cover the logic in-process.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/table.hpp"
#include "analysis/trace_pipeline.hpp"
#include "common.hpp"
#include "fabric/fabric.hpp"
#include "net/flight_recorder.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "net/udp.hpp"
#include "store/session_log.hpp"
#include "store/stable_store.hpp"
#include "stp/fabric_soak.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define R7_HAVE_PROCESS 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using namespace stpx;
using namespace stpx::bench;
using namespace std::chrono_literals;

constexpr int kDomain = 8;
constexpr std::size_t kBackends = 3;

// Sanitizer instrumentation slows the heavily-threaded soak by well over
// an order of magnitude on a small runner, and can starve any one thread
// for tens of milliseconds at a stretch.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// The 256-session acceptance width is an uninstrumented-build claim;
// instrumented builds run the same crash/re-home shape at reduced width
// (reported via the acceptance_sessions param so the JSON says which
// claim was measured).
constexpr std::size_t kAcceptanceSessions = kSanitized ? 48 : 256;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

net::StpServer::ReceiverFactory stenning_factory() {
  return [](std::uint32_t, std::uint64_t tag)
             -> std::unique_ptr<sim::IReceiver> {
    if (tag != 0 && tag != store::proto_tag_of("stenning-receiver")) {
      return nullptr;
    }
    return proto::make_stenning(kDomain).receiver;
  };
}

/// Round-robin shard, identical in parent and children.
std::uint32_t owner_of(std::uint32_t sid, std::size_t backends) {
  return (sid - 1) % static_cast<std::uint32_t>(backends) + 1;
}

fabric::HealthConfig aggressive_health() {
  fabric::HealthConfig h;
  // Instrumented builds widen the ladder: a sanitizer scheduler can
  // starve a healthy backend past the fast ladder, and a false verdict
  // on ALL backends wedges the fleet (death is sticky; no survivor
  // means no re-home).
  h.probe_interval = kSanitized ? 5ms : 1ms;
  h.probe_timeout = kSanitized ? 100ms : 5ms;
  h.max_strikes = 3;
  h.backoff = 2.0;
  h.max_timeout = kSanitized ? 1s : 50ms;
  return h;
}

net::MuxConfig throttled_mux() {
  net::MuxConfig m;
  m.workers = 2;
  m.steps_per_sweep = 1;
  m.max_inflight = 2;
  m.sweep_interval = 1ms;
  m.keepalive_sweeps = 8;
  return m;
}

std::uint64_t percentile(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

// ==========================================================================
// Child mode: one backend process (--backend ...).
// ==========================================================================

#if defined(R7_HAVE_PROCESS)

volatile std::sig_atomic_t g_term = 0;
void on_term(int) { g_term = 1; }

struct ChildArgs {
  std::uint32_t id = 0;
  std::size_t backends = kBackends;
  std::size_t sessions = 0;
  std::size_t seq_len = 0;
  std::uint16_t port = 0;
  std::string logs;
  std::string absorb_logs;  // empty = first generation
  std::uint32_t absorb_id = 0;
  std::string trace;
  std::string meta;
  std::uint64_t max_run_ms = 60'000;
};

std::optional<ChildArgs> parse_child_args(int argc, char** argv) {
  ChildArgs a;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string k = argv[i];
    const std::string v = argv[i + 1];
    if (k == "--backend-id") a.id = static_cast<std::uint32_t>(std::stoul(v));
    else if (k == "--backends") a.backends = std::stoul(v);
    else if (k == "--sessions") a.sessions = std::stoul(v);
    else if (k == "--seq-len") a.seq_len = std::stoul(v);
    else if (k == "--router-port") a.port = static_cast<std::uint16_t>(std::stoul(v));
    else if (k == "--logs") a.logs = v;
    else if (k == "--absorb-logs") a.absorb_logs = v;
    else if (k == "--absorb-id") a.absorb_id = static_cast<std::uint32_t>(std::stoul(v));
    else if (k == "--trace") a.trace = v;
    else if (k == "--meta") a.meta = v;
    else if (k == "--max-run-ms") a.max_run_ms = std::stoull(v);
    else return std::nullopt;
  }
  if (a.id == 0 || a.port == 0 || a.logs.empty() || a.trace.empty() ||
      a.meta.empty()) {
    return std::nullopt;
  }
  return a;
}

void flush_trace(net::FlightRecorder& rec, std::ofstream& out) {
  for (const auto& ev : rec.drain()) out << net::to_jsonl(ev) << '\n';
  out.flush();
}

int run_backend(const ChildArgs& a) {
  std::signal(SIGTERM, on_term);

  std::filesystem::create_directories(a.logs);
  store::FileStore own(a.logs);
  net::FlightRecorderConfig rc;
  rc.backend_id = a.id;
  net::FlightRecorder rec(rc);
  std::ofstream trace(a.trace, std::ios::trunc);
  std::ofstream meta(a.meta, std::ios::trunc);
  if (!trace || !meta) return 3;
  // The recorder epoch is the merge key: CLOCK_MONOTONIC is machine-wide,
  // so the parent rebases every process's events onto one axis.
  meta << "epoch_us " << rec.epoch_offset_us() << "\n";
  meta.flush();

  auto dialed = net::make_udp_connected(a.port);
  if (!dialed) return 4;
  // Hello: any losable frame; accept_peer() consumes it to learn our addr.
  {
    net::Frame hello;
    hello.kind = net::FrameKind::kData;
    hello.dir = sim::Dir::kReceiverToSender;
    hello.session = net::kFabricSession;
    hello.msg = 0;
    (*dialed)->send(net::encode(hello));
  }

  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.steps_per_sweep = 1;
  cfg.max_inflight = 4;
  cfg.sweep_interval = 500us;
  cfg.probe = &rec;
  cfg.session_stores = {&own};
  cfg.backend_id = a.id;
  net::StpServer server(dialed->get(), cfg);

  // Which sessions must live here: this backend's round-robin share, plus
  // the dead backend's share when absorbing.
  std::set<std::uint32_t> expected;
  for (std::uint32_t sid = 1; sid <= a.sessions; ++sid) {
    const auto o = owner_of(sid, a.backends);
    if (o == a.id || (!a.absorb_logs.empty() && o == a.absorb_id)) {
      expected.insert(sid);
    }
  }
  const auto expected_for = [&a](std::uint32_t sid) {
    return seq_for(sid, a.seq_len);
  };

  if (a.absorb_logs.empty()) {
    own.reset();  // first generation: the log starts empty
  } else {
    store::FileStore dead(a.absorb_logs);
    const auto rep =
        server.rehydrate(stenning_factory(), expected_for, {&dead});
    meta << "restore_us";
    for (const auto us : rep.restore_latency_us) meta << ' ' << us;
    meta << "\nrehydrated " << rep.sessions << "\n";
    meta.flush();
  }
  std::set<std::uint32_t> hosted;
  for (const auto& r : server.mux().reports()) hosted.insert(r.id);
  for (const std::uint32_t sid : expected) {
    if (hosted.count(sid) != 0) continue;
    server.add_session(sid, proto::make_stenning(kDomain).receiver,
                       seq_for(sid, a.seq_len));
  }

  server.mux().start();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(a.max_run_ms);
  while (g_term == 0 && std::chrono::steady_clock::now() < deadline) {
    flush_trace(rec, trace);
    std::this_thread::sleep_for(25ms);
  }
  server.mux().stop();
  flush_trace(rec, trace);
  meta << "completed " << server.mux().stats().sessions_completed << "\n";
  meta.flush();
  return 0;
}

// ==========================================================================
// Parent side of the process harness.
// ==========================================================================

struct ProcResult {
  bool ran = false;     // false: environment lacks UDP/fork — skipped
  bool ok = false;
  std::string why;
  std::size_t sessions = 0;
  std::size_t completed = 0;
  std::int64_t trace_completed = 0;
  bool attested = false;
  std::uint64_t detect_us = 0;   // SIGKILL -> death verdict
  std::uint64_t restore_us = 0;  // death verdict -> survivor re-linked
  std::vector<std::uint64_t> session_restore_us;
};

pid_t spawn_backend(const std::string& exe,
                    const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe.c_str()));
  argv.push_back(const_cast<char*>("--backend"));
  for (const auto& s : args) argv.push_back(const_cast<char*>(s.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(exe.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

std::vector<std::string> backend_args(const std::filesystem::path& dir,
                                      std::uint32_t id, std::size_t sessions,
                                      std::size_t seq_len, std::uint16_t port,
                                      std::uint32_t gen,
                                      std::uint32_t absorb_id = 0) {
  std::vector<std::string> a = {
      "--backend-id",  std::to_string(id),
      "--backends",    std::to_string(kBackends),
      "--sessions",    std::to_string(sessions),
      "--seq-len",     std::to_string(seq_len),
      "--router-port", std::to_string(port),
      "--logs",        (dir / ("logs_b" + std::to_string(id))).string(),
      "--trace",
      (dir / ("trace_b" + std::to_string(id) + "_g" + std::to_string(gen) +
              ".jsonl"))
          .string(),
      "--meta",
      (dir / ("meta_b" + std::to_string(id) + "_g" + std::to_string(gen) +
              ".txt"))
          .string(),
  };
  if (absorb_id != 0) {
    a.push_back("--absorb-logs");
    a.push_back((dir / ("logs_b" + std::to_string(absorb_id))).string());
    a.push_back("--absorb-id");
    a.push_back(std::to_string(absorb_id));
  }
  return a;
}

/// Parse one meta file: "epoch_us N", "restore_us a b c...", "completed N".
struct ChildMeta {
  std::uint64_t epoch_us = 0;
  std::vector<std::uint64_t> restore_us;
};

std::optional<ChildMeta> read_meta(const std::filesystem::path& p) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  ChildMeta m;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "epoch_us") ls >> m.epoch_us;
    if (key == "restore_us") {
      std::uint64_t us = 0;
      while (ls >> us) m.restore_us.push_back(us);
    }
  }
  return m;
}

std::vector<net::TraceEvent> read_trace(const std::filesystem::path& p) {
  std::vector<net::TraceEvent> evs;
  std::ifstream in(p);
  std::string line;
  while (std::getline(in, line)) {
    if (auto ev = net::parse_jsonl(line)) evs.push_back(*ev);
  }
  return evs;
}

void reap(std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    if (pid <= 0) continue;
    ::kill(pid, SIGTERM);
  }
  for (const pid_t pid : pids) {
    if (pid <= 0) continue;
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  pids.clear();
}

ProcResult run_process_harness(const std::string& exe, std::size_t sessions,
                               std::size_t seq_len) {
  ProcResult res;
  res.sessions = sessions;
  if (!net::udp_supported()) {
    res.why = "UDP not compiled in";
    return res;
  }

  char tmpl[] = "/tmp/r7_fabric_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    res.why = "mkdtemp failed";
    return res;
  }
  const std::filesystem::path dir(tmpl);
  std::vector<pid_t> pids(kBackends + 1, -1);  // [id]; [0] unused
  std::vector<std::unique_ptr<net::UdpTransport>> links(kBackends + 1);
  const auto cleanup = [&] {
    reap(pids);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  };

  // Spawn + handshake each backend over its own rendezvous socket.
  for (std::uint32_t id = 1; id <= kBackends; ++id) {
    auto rv = net::make_udp_rendezvous();
    if (!rv) {
      res.why = "environment forbids UDP sockets";
      cleanup();
      return res;
    }
    pids[id] = spawn_backend(
        exe, backend_args(dir, id, sessions, seq_len, (*rv)->port(), 1));
    if (pids[id] < 0) {
      res.why = "fork failed";
      cleanup();
      return res;
    }
    links[id] = (*rv)->accept_peer(5s);
    if (!links[id]) {
      res.why = "backend " + std::to_string(id) + " never dialed in";
      cleanup();
      return res;
    }
  }
  res.ran = true;

  // Router + membership + client, all in this process.
  fabric::MembershipTable membership;
  auto client_link = net::make_loopback({});
  fabric::RouterConfig rcfg;
  // Cross-process ack RTT is real scheduling latency (worse still under
  // sanitizers), so the heartbeat gets a far laxer ladder than the
  // in-process cells: ~1.4s of silence to a death verdict, never a false
  // strike on a merely slow peer.
  rcfg.health.probe_interval = std::chrono::milliseconds(20);
  rcfg.health.probe_timeout = std::chrono::milliseconds(200);
  rcfg.health.max_strikes = 3;
  rcfg.health.max_timeout = std::chrono::milliseconds(1000);
  fabric::FabricRouter router(client_link.b.get(), &membership, rcfg);
  for (std::uint32_t id = 1; id <= kBackends; ++id) {
    membership.add_backend(id);
    router.add_backend(id, links[id].get());
  }
  net::MuxConfig ccfg = throttled_mux();
  ccfg.sweep_interval = 2ms;
  ccfg.max_inflight = 1;
  net::StpClient client(client_link.a.get(), ccfg);
  for (std::uint32_t sid = 1; sid <= sessions; ++sid) {
    membership.assign(sid, owner_of(sid, kBackends));
    client.add_session(sid, proto::make_stenning(kDomain, true).sender,
                       seq_for(sid, seq_len));
  }
  router.start();
  client.mux().start();

  // The crash: SIGKILL backend 1 mid-run.  No flush, no goodbye — its
  // trace tail and any unsynced log batch die with it.
  std::this_thread::sleep_for(60ms);
  const std::uint32_t victim = 1;
  ::kill(pids[victim], SIGKILL);
  {
    int status = 0;
    ::waitpid(pids[victim], &status, 0);
    pids[victim] = -1;
  }
  const auto t_kill = std::chrono::steady_clock::now();

  // Heartbeat silence climbs the strike ladder to a death verdict.
  std::optional<std::uint32_t> dead;
  const auto death_deadline = t_kill + 10s;
  while (!dead && std::chrono::steady_clock::now() < death_deadline) {
    dead = router.next_dead();
    if (!dead) std::this_thread::sleep_for(1ms);
  }
  const auto t_death = std::chrono::steady_clock::now();
  if (!dead || *dead != victim) {
    res.why = "death verdict never arrived";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  res.detect_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t_death - t_kill)
          .count());

  // Re-home: gracefully retire the survivor's first generation (its log
  // flushes), re-exec it with BOTH log directories, swap the link.  The
  // health FSM is paused for the survivor across the window so the
  // maintenance restart cannot be mistaken for a second crash.
  const auto survivor_opt = membership.pick_survivor(victim);
  if (!survivor_opt) {
    res.why = "no survivor";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  const std::uint32_t survivor = *survivor_opt;
  router.set_probes_paused(survivor, true);
  ::kill(pids[survivor], SIGTERM);
  {
    int status = 0;
    ::waitpid(pids[survivor], &status, 0);
    pids[survivor] = -1;
  }
  auto rv2 = net::make_udp_rendezvous();
  if (!rv2) {
    res.why = "re-exec rendezvous failed";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  pids[survivor] = spawn_backend(
      exe, backend_args(dir, survivor, sessions, seq_len, (*rv2)->port(), 2,
                        victim));
  auto relinked = (*rv2)->accept_peer(10s);
  if (!relinked) {
    res.why = "survivor never dialed back in";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  // Keep the old transport alive until set_link returns — it blocks past
  // the pump's in-flight pass, after which the corpse is safe to free.
  auto old_link = std::move(links[survivor]);
  links[survivor] = std::move(relinked);
  router.set_link(survivor, links[survivor].get());
  old_link.reset();
  router.set_probes_paused(survivor, false);
  membership.rehome(victim, survivor);
  res.restore_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t_death)
          .count());

  // Drain: every client session must complete against the healed fleet.
  const bool drained = client.mux().drain(60s);
  client.mux().stop();
  router.stop();
  res.completed = client.mux().stats().sessions_completed;

  // Retire the children gracefully (final trace flush + meta), then merge
  // the per-process traces by recorder epoch and attest offline.
  reap(pids);
  std::vector<fabric::TracePart> parts;
  const auto add_part = [&](std::uint32_t id, std::uint32_t gen) {
    const auto meta = read_meta(
        dir / ("meta_b" + std::to_string(id) + "_g" + std::to_string(gen) +
               ".txt"));
    if (!meta) return;
    parts.push_back(
        {meta->epoch_us,
         read_trace(dir / ("trace_b" + std::to_string(id) + "_g" +
                           std::to_string(gen) + ".jsonl"))});
    if (gen == 2) res.session_restore_us = meta->restore_us;
  };
  for (std::uint32_t id = 1; id <= kBackends; ++id) add_part(id, 1);
  add_part(survivor, 2);

  analysis::TraceContext ctx;
  for (std::uint32_t sid = 1; sid <= sessions; ++sid) {
    ctx.expected_items[sid] = seq_len;
  }
  analysis::TracePipeline pipe;
  pipe.add(analysis::make_prefix_attestor())
      .add(analysis::make_rehydration_analyzer());
  const auto report = pipe.run(fabric::merge_backend_traces(parts), ctx);
  res.attested = report.ok;
  res.trace_completed = report.value("prefix.completed");

  res.ok = drained && res.completed == sessions && res.attested &&
           res.trace_completed == static_cast<std::int64_t>(res.completed);
  if (!res.ok && res.why.empty()) {
    res.why = !drained ? "drain timeout"
                       : (!res.attested ? "merged trace failed attestation"
                                        : "live/trace verdicts disagree");
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return res;
}

#endif  // R7_HAVE_PROCESS

}  // namespace

int main(int argc, char** argv) {
#if defined(R7_HAVE_PROCESS)
  if (argc > 1 && std::strcmp(argv[1], "--backend") == 0) {
    const auto child = parse_child_args(argc, argv);
    if (!child) {
      std::cerr << "r7_fabric --backend: bad arguments\n";
      return 2;
    }
    return run_backend(*child);
  }
#endif

  BenchRun bench("r7_fabric", argc, argv);
  bench.param("backends", static_cast<std::int64_t>(kBackends));
  std::cout << analysis::heading(
      "R7 (service fabric): crash re-homing, restore latency, process "
      "harness");

  bool shape = true;

  // --- Phase 1: in-process acceptance (256 sessions, one crash) ----------
  stp::FabricSoakConfig acc;
  acc.backends = kBackends;
  acc.sessions = kAcceptanceSessions;
  acc.seq_len = 8;
  acc.health = aggressive_health();
  acc.mux = throttled_mux();
  // Generous: the throttled mux needs seconds when idle, but a loaded CI
  // core (sanitizer jobs, parallel ctest) can stretch it far further.
  acc.drain_timeout = std::chrono::milliseconds(180'000);
  acc.plan.actions.push_back(
      {stp::FabricFaultKind::kBackendCrash, 1, 15ms, {}});
  const auto accepted = stp::run_fabric_soak(acc);
  for (std::size_t i = 0; i < acc.sessions; ++i) {
    bench.record_trial(acc.seq_len, acc.seq_len * 2, accepted.ok);
  }
  shape = shape && accepted.ok;
  bench.param("acceptance_sessions", static_cast<std::int64_t>(acc.sessions));

  analysis::Table t1({"sessions", "completed", "rehomes", "trace completed",
                      "trace ok", "verdict"});
  t1.add_row({std::to_string(acc.sessions),
              std::to_string(accepted.completed),
              std::to_string(accepted.rehomes),
              std::to_string(accepted.trace.value("prefix.completed")),
              accepted.trace.ok ? "yes" : "NO",
              accepted.ok ? "ok" : accepted.failure});
  std::cout << "\nin-process acceptance (kill backend 1 @15ms):\n"
            << t1.to_ascii();

  // --- Phase 2: restore-latency distribution over seeded crash trials ----
  std::vector<std::uint64_t> restore;
  std::size_t crash_trials = 0;
  for (std::uint64_t seed = 1; crash_trials < 6 && seed <= 64; ++seed) {
    stp::FabricSoakConfig cfg = acc;
    cfg.sessions = 24;
    cfg.seq_len = 10;
    cfg.plan = stp::sample_fabric_plan(seed, kBackends);
    const bool has_crash = std::any_of(
        cfg.plan.actions.begin(), cfg.plan.actions.end(),
        [](const stp::FabricFaultAction& a) {
          return a.kind == stp::FabricFaultKind::kBackendCrash;
        });
    if (!has_crash) continue;
    ++crash_trials;
    const auto r = stp::run_fabric_soak(cfg);
    shape = shape && r.ok;
    restore.insert(restore.end(), r.restore_latency_us.begin(),
                   r.restore_latency_us.end());
    if (!r.ok) {
      std::cout << "\nseed " << seed << " plan [" << stp::to_string(cfg.plan)
                << "] FAILED: " << r.failure << "\n";
    }
  }
  const auto p50 = percentile(restore, 0.50);
  const auto p90 = percentile(restore, 0.90);
  const auto pmax = restore.empty()
                        ? 0
                        : *std::max_element(restore.begin(), restore.end());
  bench.param("restore_p50_us", static_cast<std::int64_t>(p50));
  bench.param("restore_p90_us", static_cast<std::int64_t>(p90));
  bench.param("restore_max_us", static_cast<std::int64_t>(pmax));
  analysis::Table t2({"crash trials", "rehomes", "p50 us", "p90 us",
                      "max us"});
  t2.add_row({std::to_string(crash_trials), std::to_string(restore.size()),
              std::to_string(p50), std::to_string(p90),
              std::to_string(pmax)});
  std::cout << "\nrestore latency (fence -> rehydrated -> serving):\n"
            << t2.to_ascii();

  // --- Phase 3: the process harness ---------------------------------------
#if defined(R7_HAVE_PROCESS)
  const auto proc = run_process_harness(argv[0], 24, 10);
  if (!proc.ran) {
    std::cout << "\nprocess harness: skipped (" << proc.why
              << ") — in-process phases cover the logic\n";
    bench.param("process_harness", "skipped");
  } else {
    shape = shape && proc.ok;
    bench.param("process_harness", proc.ok ? "ok" : proc.why);
    bench.param("proc_detect_us", static_cast<std::int64_t>(proc.detect_us));
    bench.param("proc_restore_us",
                static_cast<std::int64_t>(proc.restore_us));
    bench.param("proc_session_restore_p50_us",
                static_cast<std::int64_t>(
                    percentile(proc.session_restore_us, 0.50)));
    analysis::Table t3({"sessions", "completed", "trace completed",
                        "attested", "detect ms", "restore ms", "verdict"});
    t3.add_row({std::to_string(proc.sessions),
                std::to_string(proc.completed),
                std::to_string(proc.trace_completed),
                proc.attested ? "yes" : "NO",
                fmt1(static_cast<double>(proc.detect_us) / 1000.0),
                fmt1(static_cast<double>(proc.restore_us) / 1000.0),
                proc.ok ? "ok" : proc.why});
    std::cout << "\nprocess harness (3 backends fork/exec'd, SIGKILL b1, "
                 "survivor re-exec'd with both logs):\n"
              << t3.to_ascii();
  }
#else
  std::cout << "\nprocess harness: unavailable on this platform\n";
  bench.param("process_harness", "unavailable");
#endif

  std::cout << "\nshape " << (shape ? "confirmed" : "VIOLATED")
            << ": every session survives the crash with an exact copy, "
               "re-homed by heartbeat verdict, attested offline from the "
               "merged per-backend trace\n";
  return bench.finish(shape);
}
