// R7 (service fabric) — crash re-homing must preserve exact-copy
// delivery, the restore path must be fast and attestable offline, and
// (resilience v2) a dead backend must be able to COME BACK: rejoin under
// a new generation, pass probation, and reclaim its sessions.
//
// Four phases:
//
//   1. In-process acceptance: 256 sessions sharded over 3 backend cells,
//      one backend kill -9'd (mux killed mid-flight) by a scripted
//      fault plan, then rejoined after the strike ladder condemns it —
//      the full crash -> rejoin -> reclaim cycle across three
//      generations of ownership.  Every client session must complete,
//      the merged per-backend trace must re-derive per-session prefix
//      safety across the re-home AND the reclaim, and the trace verdict
//      must MATCH the live one.
//
//   2. Restore-latency distribution: seeded crash trials; each re-home's
//      fence -> rehydrate -> serving latency is collected and reported
//      as p50/p90/max.  A second, resilience sweep runs
//      sample_resilience_plan seeds (crash -> rejoin spines under
//      partition windows) and reports reclaim latency the same way; a
//      failing seed is shrunk to a 1-minimal plan and written — with the
//      merged trace — as replayable CI artifacts
//      (FABRIC_failure_plan.txt / FABRIC_failure_trace.jsonl).
//
//   3. Process harness: the same topology over real processes — this
//      binary fork/execs itself as 3 backend processes (--backend mode),
//      each handshaking with the parent's router over a UDP rendezvous
//      (the loss-hardened retry dialer) and journaling its sessions to a
//      FileStore and its FlightRecorder trace to JSONL (flushed every
//      ~25 ms).  The parent SIGKILLs one backend mid-run, waits for the
//      heartbeat strike ladder to declare it dead, re-execs the survivor
//      with BOTH log directories (--absorb-logs), swaps the router link,
//      and re-homes the dead sessions.  Then the cycle closes over real
//      UDP: the victim re-execs with --join, announces kJoin on the
//      reserved fabric session under HandshakeRetry pacing, starts
//      serving only after the router's kJoinAck, and reclaims its share
//      from the survivor's flushed logs while the survivor re-execs
//      restricted to its own share (--restrict) — the release half of
//      the handoff.  Acceptance is the same: all sessions complete and
//      the traces merged across SIX process generations (rebased by each
//      recorder's CLOCK_MONOTONIC epoch) attest every session.  Where
//      the sandbox forbids sockets or fork, this phase degrades to
//      "skipped" without failing the bench — phases 1-2 already cover
//      the logic in-process.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/table.hpp"
#include "analysis/trace_pipeline.hpp"
#include "common.hpp"
#include "fabric/fabric.hpp"
#include "net/flight_recorder.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "net/udp.hpp"
#include "store/session_log.hpp"
#include "store/stable_store.hpp"
#include "stp/fabric_soak.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define R7_HAVE_PROCESS 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using namespace stpx;
using namespace stpx::bench;
using namespace std::chrono_literals;

constexpr int kDomain = 8;
constexpr std::size_t kBackends = 3;

// Sanitizer instrumentation slows the heavily-threaded soak by well over
// an order of magnitude on a small runner, and can starve any one thread
// for tens of milliseconds at a stretch.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// The 256-session acceptance width is an uninstrumented-build claim;
// instrumented builds run the same crash/re-home shape at reduced width
// (reported via the acceptance_sessions param so the JSON says which
// claim was measured).
constexpr std::size_t kAcceptanceSessions = kSanitized ? 48 : 256;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

net::StpServer::ReceiverFactory stenning_factory() {
  return [](std::uint32_t, std::uint64_t tag)
             -> std::unique_ptr<sim::IReceiver> {
    if (tag != 0 && tag != store::proto_tag_of("stenning-receiver")) {
      return nullptr;
    }
    return proto::make_stenning(kDomain).receiver;
  };
}

/// Round-robin shard, identical in parent and children.
std::uint32_t owner_of(std::uint32_t sid, std::size_t backends) {
  return (sid - 1) % static_cast<std::uint32_t>(backends) + 1;
}

fabric::HealthConfig aggressive_health() {
  fabric::HealthConfig h;
  // Instrumented builds widen the ladder: a sanitizer scheduler can
  // starve a healthy backend past the fast ladder, and a false verdict
  // on ALL backends wedges the fleet (death is sticky; no survivor
  // means no re-home).
  h.probe_interval = kSanitized ? 5ms : 1ms;
  h.probe_timeout = kSanitized ? 100ms : 5ms;
  h.max_strikes = 3;
  h.backoff = 2.0;
  h.max_timeout = kSanitized ? 1s : 50ms;
  return h;
}

net::MuxConfig throttled_mux() {
  net::MuxConfig m;
  m.workers = 2;
  m.steps_per_sweep = 1;
  m.max_inflight = 2;
  m.sweep_interval = 1ms;
  m.keepalive_sweeps = 8;
  return m;
}

std::uint64_t percentile(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

/// A failing soak seed is a real finding: shrink the plan to 1-minimal
/// and write the replayable CI artifacts next to the bench JSON — the
/// plan text replays via fault::fabric_plan_from_text, the merged trace
/// re-derives the verdict offline through the prefix attestor.
void write_failure_artifacts(const stp::FabricSoakConfig& cfg,
                             std::uint64_t seed,
                             const stp::FabricSoakResult& r) {
  const auto min = stp::minimize_fabric_plan(cfg, cfg.plan);
  std::ofstream plan_out("FABRIC_failure_plan.txt", std::ios::trunc);
  plan_out << "# r7_fabric seed " << seed << ": " << r.failure << "\n"
           << fault::to_text(min.plan) << "\n";
  std::ofstream trace_out("FABRIC_failure_trace.jsonl", std::ios::trunc);
  for (const auto& ev : r.merged_trace) {
    trace_out << net::to_jsonl(ev) << '\n';
  }
  std::cout << "wrote FABRIC_failure_plan.txt (1-minimal after "
            << min.probe_runs
            << " probe runs) + FABRIC_failure_trace.jsonl\n";
}

// ==========================================================================
// Child mode: one backend process (--backend ...).
// ==========================================================================

#if defined(R7_HAVE_PROCESS)

volatile std::sig_atomic_t g_term = 0;
void on_term(int) { g_term = 1; }

struct ChildArgs {
  std::uint32_t id = 0;
  std::size_t backends = kBackends;
  std::size_t sessions = 0;
  std::size_t seq_len = 0;
  std::uint16_t port = 0;
  std::uint32_t gen = 1;
  std::string logs;
  std::string absorb_logs;  // empty = no foreign logs folded in
  std::uint32_t absorb_id = 0;
  /// Announce kJoin on the fabric session and wait for the router's
  /// kJoinAck before serving anything (the rejoin handshake).
  bool join = false;
  /// Host EXACTLY this backend's round-robin share: decline any
  /// manifested session outside it (absorb_id does not widen the share),
  /// and keep the existing log instead of resetting it.  This is both
  /// halves of the reclaim handoff — the survivor's release (own logs
  /// mention the released sessions; decline them) and the rejoiner's
  /// reclaim (the survivor's logs mention ITS sessions; decline those).
  bool restrict_share = false;
  std::string trace;
  std::string meta;
  std::uint64_t max_run_ms = 60'000;
};

std::optional<ChildArgs> parse_child_args(int argc, char** argv) {
  ChildArgs a;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string k = argv[i];
    const std::string v = argv[i + 1];
    if (k == "--backend-id") a.id = static_cast<std::uint32_t>(std::stoul(v));
    else if (k == "--backends") a.backends = std::stoul(v);
    else if (k == "--sessions") a.sessions = std::stoul(v);
    else if (k == "--seq-len") a.seq_len = std::stoul(v);
    else if (k == "--router-port") a.port = static_cast<std::uint16_t>(std::stoul(v));
    else if (k == "--gen") a.gen = static_cast<std::uint32_t>(std::stoul(v));
    else if (k == "--logs") a.logs = v;
    else if (k == "--absorb-logs") a.absorb_logs = v;
    else if (k == "--absorb-id") a.absorb_id = static_cast<std::uint32_t>(std::stoul(v));
    else if (k == "--join") a.join = v == "1";
    else if (k == "--restrict") a.restrict_share = v == "1";
    else if (k == "--trace") a.trace = v;
    else if (k == "--meta") a.meta = v;
    else if (k == "--max-run-ms") a.max_run_ms = std::stoull(v);
    else return std::nullopt;
  }
  if (a.id == 0 || a.port == 0 || a.logs.empty() || a.trace.empty() ||
      a.meta.empty()) {
    return std::nullopt;
  }
  return a;
}

void flush_trace(net::FlightRecorder& rec, std::ofstream& out) {
  for (const auto& ev : rec.drain()) out << net::to_jsonl(ev) << '\n';
  out.flush();
}

int run_backend(const ChildArgs& a) {
  std::signal(SIGTERM, on_term);

  std::filesystem::create_directories(a.logs);
  store::FileStore own(a.logs);
  net::FlightRecorderConfig rc;
  rc.backend_id = a.id;
  net::FlightRecorder rec(rc);
  std::ofstream trace(a.trace, std::ios::trunc);
  std::ofstream meta(a.meta, std::ios::trunc);
  if (!trace || !meta) return 3;
  // The recorder epoch is the merge key: CLOCK_MONOTONIC is machine-wide,
  // so the parent rebases every process's events onto one axis.
  meta << "epoch_us " << rec.epoch_offset_us() << "\n";
  meta.flush();

  // Loss-hardened rendezvous: hellos resend under jittered backoff until
  // the parent's confirm arrives, so one dropped datagram costs a backoff
  // step instead of deadlocking the harness.
  net::RetryConfig dial_retry;
  dial_retry.jitter_seed = a.id * 0x9E37ull + a.gen;
  auto dialed = net::make_udp_connected_retry(a.port, dial_retry);
  if (!dialed) return 4;

  if (a.join) {
    // Rejoin handshake, mirroring fabric::BackendCell::rejoin(): announce
    // kJoin (msg = generation) and wait for the router's kJoinAck before
    // serving anything.  The ack is authoritative — it is sent only while
    // probation is open — and probes arriving during the wait are
    // deliberately not answered (feeding the strike ladder healthy acks
    // would stall the condemnation the handshake needs).
    net::Frame join;
    join.kind = net::FrameKind::kJoin;
    join.dir = sim::Dir::kSenderToReceiver;
    join.session = net::kFabricSession;
    join.msg = static_cast<std::int64_t>(a.gen);
    net::RetryConfig jr;
    jr.max_attempts = 40;
    jr.base_delay = 10ms;
    jr.backoff = 1.5;
    jr.max_delay = 200ms;
    jr.jitter_seed = a.id;
    net::HandshakeRetry fsm(jr);
    bool acked = false;
    while (!acked && !fsm.exhausted(std::chrono::steady_clock::now())) {
      if (fsm.should_send(std::chrono::steady_clock::now())) {
        (*dialed)->send(net::encode(join));
      }
      if (const auto bytes = (*dialed)->poll()) {
        const auto f = net::decode(*bytes);
        acked = f && f->session == net::kFabricSession &&
                f->kind == net::FrameKind::kJoinAck;
      } else {
        std::this_thread::sleep_for(500us);
      }
    }
    if (!acked) return 5;
    meta << "join_acked " << fsm.attempts() << "\n";
    meta.flush();
  }

  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.steps_per_sweep = 1;
  cfg.max_inflight = 4;
  cfg.sweep_interval = 500us;
  cfg.probe = &rec;
  cfg.session_stores = {&own};
  cfg.backend_id = a.id;
  net::StpServer server(dialed->get(), cfg);

  // Which sessions must live here: this backend's round-robin share,
  // widened by the dead backend's share when absorbing — unless
  // --restrict pins it to exactly the own share (the reclaim handoff:
  // foreign logs are scanned for state, foreign sessions declined).
  std::set<std::uint32_t> expected;
  for (std::uint32_t sid = 1; sid <= a.sessions; ++sid) {
    const auto o = owner_of(sid, a.backends);
    if (o == a.id ||
        (!a.restrict_share && !a.absorb_logs.empty() && o == a.absorb_id)) {
      expected.insert(sid);
    }
  }
  const auto expected_for = [&a](std::uint32_t sid) {
    return seq_for(sid, a.seq_len);
  };

  const bool first_gen = a.absorb_logs.empty() && !a.restrict_share;
  if (first_gen) {
    own.reset();  // first generation: the log starts empty
  } else {
    // Later generations rehydrate from the own log plus any foreign
    // handoff log, newest manifest per session winning across both.  The
    // factory declines sessions outside the share — the survivor's
    // release of what it absorbed, the rejoiner's reclaim of only its
    // own — so a manifested session outside the share never restarts
    // here and can never release an ack behind someone else's durable
    // position.
    std::optional<store::FileStore> foreign;
    std::vector<store::IStableStore*> sources;
    if (!a.absorb_logs.empty()) {
      foreign.emplace(a.absorb_logs);
      sources.push_back(&*foreign);
    }
    const auto base = stenning_factory();
    const auto gated = [&](std::uint32_t sid, std::uint64_t tag)
        -> std::unique_ptr<sim::IReceiver> {
      if (expected.count(sid) == 0) return nullptr;
      return base(sid, tag);
    };
    const auto rep = server.rehydrate(gated, expected_for, sources);
    meta << "restore_us";
    for (const auto us : rep.restore_latency_us) meta << ' ' << us;
    meta << "\nrehydrated " << rep.sessions << "\n";
    meta.flush();
  }
  std::set<std::uint32_t> hosted;
  for (const auto& r : server.mux().reports()) hosted.insert(r.id);
  for (const std::uint32_t sid : expected) {
    if (hosted.count(sid) != 0) continue;
    server.add_session(sid, proto::make_stenning(kDomain).receiver,
                       seq_for(sid, a.seq_len));
  }

  server.mux().start();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(a.max_run_ms);
  while (g_term == 0 && std::chrono::steady_clock::now() < deadline) {
    flush_trace(rec, trace);
    std::this_thread::sleep_for(25ms);
  }
  server.mux().stop();
  flush_trace(rec, trace);
  meta << "completed " << server.mux().stats().sessions_completed << "\n";
  meta.flush();
  return 0;
}

// ==========================================================================
// Parent side of the process harness.
// ==========================================================================

struct ProcResult {
  bool ran = false;     // false: environment lacks UDP/fork — skipped
  bool ok = false;
  std::string why;
  std::size_t sessions = 0;
  std::size_t completed = 0;
  std::int64_t trace_completed = 0;
  bool attested = false;
  std::uint64_t detect_us = 0;   // SIGKILL -> death verdict
  std::uint64_t restore_us = 0;  // death verdict -> survivor re-linked
  std::uint64_t rejoin_us = 0;   // victim re-linked -> probation passed
  std::size_t reclaimed = 0;     // sessions reassigned back to the rejoiner
  std::vector<std::uint64_t> session_restore_us;
  std::vector<std::uint64_t> session_reclaim_us;
};

pid_t spawn_backend(const std::string& exe,
                    const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe.c_str()));
  argv.push_back(const_cast<char*>("--backend"));
  for (const auto& s : args) argv.push_back(const_cast<char*>(s.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(exe.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

std::vector<std::string> backend_args(const std::filesystem::path& dir,
                                      std::uint32_t id, std::size_t sessions,
                                      std::size_t seq_len, std::uint16_t port,
                                      std::uint32_t gen,
                                      std::uint32_t absorb_id = 0,
                                      bool join = false,
                                      bool restrict_share = false) {
  std::vector<std::string> a = {
      "--backend-id",  std::to_string(id),
      "--backends",    std::to_string(kBackends),
      "--sessions",    std::to_string(sessions),
      "--seq-len",     std::to_string(seq_len),
      "--router-port", std::to_string(port),
      "--gen",         std::to_string(gen),
      "--logs",        (dir / ("logs_b" + std::to_string(id))).string(),
      "--trace",
      (dir / ("trace_b" + std::to_string(id) + "_g" + std::to_string(gen) +
              ".jsonl"))
          .string(),
      "--meta",
      (dir / ("meta_b" + std::to_string(id) + "_g" + std::to_string(gen) +
              ".txt"))
          .string(),
  };
  if (absorb_id != 0) {
    a.push_back("--absorb-logs");
    a.push_back((dir / ("logs_b" + std::to_string(absorb_id))).string());
    a.push_back("--absorb-id");
    a.push_back(std::to_string(absorb_id));
  }
  if (join) {
    a.push_back("--join");
    a.push_back("1");
  }
  if (restrict_share) {
    a.push_back("--restrict");
    a.push_back("1");
  }
  return a;
}

/// Parse one meta file: "epoch_us N", "restore_us a b c...", "completed N".
struct ChildMeta {
  std::uint64_t epoch_us = 0;
  std::vector<std::uint64_t> restore_us;
};

std::optional<ChildMeta> read_meta(const std::filesystem::path& p) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  ChildMeta m;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "epoch_us") ls >> m.epoch_us;
    if (key == "restore_us") {
      std::uint64_t us = 0;
      while (ls >> us) m.restore_us.push_back(us);
    }
  }
  return m;
}

std::vector<net::TraceEvent> read_trace(const std::filesystem::path& p) {
  std::vector<net::TraceEvent> evs;
  std::ifstream in(p);
  std::string line;
  while (std::getline(in, line)) {
    if (auto ev = net::parse_jsonl(line)) evs.push_back(*ev);
  }
  return evs;
}

void reap(std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    if (pid <= 0) continue;
    ::kill(pid, SIGTERM);
  }
  for (const pid_t pid : pids) {
    if (pid <= 0) continue;
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  pids.clear();
}

ProcResult run_process_harness(const std::string& exe, std::size_t sessions,
                               std::size_t seq_len) {
  ProcResult res;
  res.sessions = sessions;
  if (!net::udp_supported()) {
    res.why = "UDP not compiled in";
    return res;
  }

  char tmpl[] = "/tmp/r7_fabric_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    res.why = "mkdtemp failed";
    return res;
  }
  const std::filesystem::path dir(tmpl);
  std::vector<pid_t> pids(kBackends + 1, -1);  // [id]; [0] unused
  std::vector<std::unique_ptr<net::UdpTransport>> links(kBackends + 1);
  const auto cleanup = [&] {
    reap(pids);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  };

  // Spawn + handshake each backend over its own rendezvous socket.
  for (std::uint32_t id = 1; id <= kBackends; ++id) {
    auto rv = net::make_udp_rendezvous();
    if (!rv) {
      res.why = "environment forbids UDP sockets";
      cleanup();
      return res;
    }
    pids[id] = spawn_backend(
        exe, backend_args(dir, id, sessions, seq_len, (*rv)->port(), 1));
    if (pids[id] < 0) {
      res.why = "fork failed";
      cleanup();
      return res;
    }
    links[id] = (*rv)->accept_peer(5s);
    if (!links[id]) {
      res.why = "backend " + std::to_string(id) + " never dialed in";
      cleanup();
      return res;
    }
  }
  res.ran = true;

  // Router + membership + client, all in this process.
  fabric::MembershipTable membership;
  auto client_link = net::make_loopback({});
  fabric::RouterConfig rcfg;
  // Cross-process ack RTT is real scheduling latency (worse still under
  // sanitizers), so the heartbeat gets a far laxer ladder than the
  // in-process cells: ~1.4s of silence to a death verdict, never a false
  // strike on a merely slow peer.
  rcfg.health.probe_interval = std::chrono::milliseconds(20);
  rcfg.health.probe_timeout = std::chrono::milliseconds(200);
  rcfg.health.max_strikes = 3;
  rcfg.health.max_timeout = std::chrono::milliseconds(1000);
  fabric::FabricRouter router(client_link.b.get(), &membership, rcfg);
  for (std::uint32_t id = 1; id <= kBackends; ++id) {
    membership.add_backend(id);
    router.add_backend(id, links[id].get());
  }
  net::MuxConfig ccfg = throttled_mux();
  ccfg.sweep_interval = 2ms;
  ccfg.max_inflight = 1;
  net::StpClient client(client_link.a.get(), ccfg);
  for (std::uint32_t sid = 1; sid <= sessions; ++sid) {
    membership.assign(sid, owner_of(sid, kBackends));
    client.add_session(sid, proto::make_stenning(kDomain, true).sender,
                       seq_for(sid, seq_len));
  }
  router.start();
  client.mux().start();

  // The crash: SIGKILL backend 1 mid-run.  No flush, no goodbye — its
  // trace tail and any unsynced log batch die with it.
  std::this_thread::sleep_for(60ms);
  const std::uint32_t victim = 1;
  ::kill(pids[victim], SIGKILL);
  {
    int status = 0;
    ::waitpid(pids[victim], &status, 0);
    pids[victim] = -1;
  }
  const auto t_kill = std::chrono::steady_clock::now();

  // Heartbeat silence climbs the strike ladder to a death verdict.
  std::optional<std::uint32_t> dead;
  const auto death_deadline = t_kill + 10s;
  while (!dead && std::chrono::steady_clock::now() < death_deadline) {
    dead = router.next_dead();
    if (!dead) std::this_thread::sleep_for(1ms);
  }
  const auto t_death = std::chrono::steady_clock::now();
  if (!dead || *dead != victim) {
    res.why = "death verdict never arrived";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  res.detect_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t_death - t_kill)
          .count());

  // Re-home: gracefully retire the survivor's first generation (its log
  // flushes), re-exec it with BOTH log directories, swap the link.  The
  // health FSM is paused for the survivor across the window so the
  // maintenance restart cannot be mistaken for a second crash.
  const auto survivor_opt = membership.pick_survivor(victim);
  if (!survivor_opt) {
    res.why = "no survivor";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  const std::uint32_t survivor = *survivor_opt;
  router.set_probes_paused(survivor, true);
  ::kill(pids[survivor], SIGTERM);
  {
    int status = 0;
    ::waitpid(pids[survivor], &status, 0);
    pids[survivor] = -1;
  }
  auto rv2 = net::make_udp_rendezvous();
  if (!rv2) {
    res.why = "re-exec rendezvous failed";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  pids[survivor] = spawn_backend(
      exe, backend_args(dir, survivor, sessions, seq_len, (*rv2)->port(), 2,
                        victim));
  auto relinked = (*rv2)->accept_peer(10s);
  if (!relinked) {
    res.why = "survivor never dialed back in";
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  }
  // Keep the old transport alive until set_link returns — it blocks past
  // the pump's in-flight pass, after which the corpse is safe to free.
  auto old_link = std::move(links[survivor]);
  links[survivor] = std::move(relinked);
  router.set_link(survivor, links[survivor].get());
  old_link.reset();
  router.set_probes_paused(survivor, false);
  membership.rehome(victim, survivor);
  res.restore_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t_death)
          .count());

  const auto fail = [&](const std::string& why) {
    res.why = why;
    client.mux().stop();
    router.stop();
    cleanup();
    return res;
  };

  // Let the healed fleet make real progress on the absorbed share before
  // closing the cycle — the reclaim below must hand back state the dead
  // generation never journaled.
  std::this_thread::sleep_for(80ms);

  // Release half of the handoff: gracefully retire the survivor's second
  // generation (its final flush covers the absorbed sessions' latest
  // durable positions) and re-exec it RESTRICTED to its own share, so the
  // sessions it is releasing are declined on rehydrate.  Probes stay
  // paused across the window so maintenance reads as maintenance.
  router.set_probes_paused(survivor, true);
  ::kill(pids[survivor], SIGTERM);
  {
    int status = 0;
    ::waitpid(pids[survivor], &status, 0);
    pids[survivor] = -1;
  }
  auto rv3 = net::make_udp_rendezvous();
  if (!rv3) return fail("release rendezvous failed");
  pids[survivor] = spawn_backend(
      exe, backend_args(dir, survivor, sessions, seq_len, (*rv3)->port(), 3,
                        0, /*join=*/false, /*restrict_share=*/true));
  auto released = (*rv3)->accept_peer(10s);
  if (!released) return fail("survivor never dialed back for release");
  auto old_release = std::move(links[survivor]);
  links[survivor] = std::move(released);
  router.set_link(survivor, links[survivor].get());
  old_release.reset();
  router.set_probes_paused(survivor, false);

  // Reclaim half: the victim re-execs under a new generation, announces
  // kJoin over the fresh socket under HandshakeRetry pacing, and serves
  // only after the router's kJoinAck opens probation.  Its rehydrate
  // folds the survivor's flushed log over its own stale one — newest
  // manifest wins — restricted to its original share.
  auto rv4 = net::make_udp_rendezvous();
  if (!rv4) return fail("rejoin rendezvous failed");
  pids[victim] = spawn_backend(
      exe, backend_args(dir, victim, sessions, seq_len, (*rv4)->port(), 3,
                        survivor, /*join=*/true, /*restrict_share=*/true));
  auto rejoined_link = (*rv4)->accept_peer(10s);
  if (!rejoined_link) return fail("victim never dialed back to rejoin");
  auto old_victim = std::move(links[victim]);
  links[victim] = std::move(rejoined_link);
  router.set_link(victim, links[victim].get());
  old_victim.reset();
  const auto t_rejoin = std::chrono::steady_clock::now();

  // kJoin -> probation -> joined verdict (exactly one expected: the
  // survivor's restarts ran under paused probes and were never condemned).
  std::optional<std::uint32_t> joined;
  const auto join_deadline = t_rejoin + 30s;
  while (!joined && std::chrono::steady_clock::now() < join_deadline) {
    joined = router.next_joined();
    if (!joined) std::this_thread::sleep_for(1ms);
  }
  if (!joined || *joined != victim) {
    return fail("rejoin probation never passed");
  }
  res.rejoin_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t_rejoin)
          .count());

  // Reclaim-reassign: revive bumps the victim's incarnation (anything
  // still stamped with the fenced generation turns stale) and the
  // reassignment restamps its original share fresh, bumping the epoch so
  // stale leases fence.
  membership.revive(victim);
  for (std::uint32_t sid = 1; sid <= sessions; ++sid) {
    if (owner_of(sid, kBackends) == victim) {
      membership.assign(sid, victim);
      ++res.reclaimed;
    }
  }

  // Drain: every client session must complete against the healed fleet.
  const bool drained = client.mux().drain(60s);
  client.mux().stop();
  router.stop();
  res.completed = client.mux().stats().sessions_completed;

  // Retire the children gracefully (final trace flush + meta), then merge
  // the per-process traces by recorder epoch and attest offline.
  reap(pids);
  std::vector<fabric::TracePart> parts;
  const auto add_part = [&](std::uint32_t id, std::uint32_t gen) {
    const auto meta = read_meta(
        dir / ("meta_b" + std::to_string(id) + "_g" + std::to_string(gen) +
               ".txt"));
    if (!meta) return;
    parts.push_back(
        {meta->epoch_us,
         read_trace(dir / ("trace_b" + std::to_string(id) + "_g" +
                           std::to_string(gen) + ".jsonl"))});
    if (gen == 2) res.session_restore_us = meta->restore_us;
    if (gen == 3 && id == victim) res.session_reclaim_us = meta->restore_us;
  };
  for (std::uint32_t id = 1; id <= kBackends; ++id) add_part(id, 1);
  add_part(survivor, 2);
  add_part(survivor, 3);
  add_part(victim, 3);

  analysis::TraceContext ctx;
  for (std::uint32_t sid = 1; sid <= sessions; ++sid) {
    ctx.expected_items[sid] = seq_len;
  }
  analysis::TracePipeline pipe;
  pipe.add(analysis::make_prefix_attestor())
      .add(analysis::make_rehydration_analyzer());
  const auto report = pipe.run(fabric::merge_backend_traces(parts), ctx);
  res.attested = report.ok;
  res.trace_completed = report.value("prefix.completed");

  res.ok = drained && res.completed == sessions && res.attested &&
           res.trace_completed == static_cast<std::int64_t>(res.completed);
  if (!res.ok && res.why.empty()) {
    res.why = !drained ? "drain timeout"
                       : (!res.attested ? "merged trace failed attestation"
                                        : "live/trace verdicts disagree");
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return res;
}

#endif  // R7_HAVE_PROCESS

}  // namespace

int main(int argc, char** argv) {
#if defined(R7_HAVE_PROCESS)
  if (argc > 1 && std::strcmp(argv[1], "--backend") == 0) {
    const auto child = parse_child_args(argc, argv);
    if (!child) {
      std::cerr << "r7_fabric --backend: bad arguments\n";
      return 2;
    }
    return run_backend(*child);
  }
#endif

  BenchRun bench("r7_fabric", argc, argv);
  bench.param("backends", static_cast<std::int64_t>(kBackends));
  std::cout << analysis::heading(
      "R7 (service fabric): crash re-homing, rejoin/reclaim, restore "
      "latency, process harness");

  bool shape = true;

  // --- Phase 1: in-process acceptance (crash -> rejoin -> reclaim) -------
  // The rejoin fires well after the strike ladder's condemnation point
  // (crash@15ms + the full silence ladder), so the cycle runs crash ->
  // fence -> re-home -> rejoin -> probation -> reclaim across three
  // generations of ownership.
  constexpr auto kRejoinAt = kSanitized ? 1800ms : 120ms;
  stp::FabricSoakConfig acc;
  acc.backends = kBackends;
  acc.sessions = kAcceptanceSessions;
  acc.seq_len = 8;
  acc.health = aggressive_health();
  acc.mux = throttled_mux();
  // Generous: the throttled mux needs seconds when idle, but a loaded CI
  // core (sanitizer jobs, parallel ctest) can stretch it far further.
  acc.drain_timeout = std::chrono::milliseconds(180'000);
  acc.plan.actions.push_back(
      {stp::FabricFaultKind::kBackendCrash, 1, 15ms, {}, {}, {}});
  acc.plan.actions.push_back(
      {stp::FabricFaultKind::kRejoin, 1, kRejoinAt, {}, {}, {}});
  const auto accepted = stp::run_fabric_soak(acc);
  for (std::size_t i = 0; i < acc.sessions; ++i) {
    bench.record_trial(acc.seq_len, acc.seq_len * 2, accepted.ok);
  }
  // Uninstrumented builds must demonstrate the full cycle; a sanitizer
  // scheduler may legitimately stretch condemnation past the scripted
  // rejoin point, in which case the rejoin no-ops and the run is judged
  // as a plain crash/re-home soak.
  shape = shape && accepted.ok &&
          (kSanitized || (accepted.rejoins == 1 && accepted.reclaims == 1));
  bench.param("acceptance_sessions", static_cast<std::int64_t>(acc.sessions));
  bench.param("acceptance_rejoins",
              static_cast<std::int64_t>(accepted.rejoins));
  bench.param("acceptance_reclaims",
              static_cast<std::int64_t>(accepted.reclaims));

  analysis::Table t1({"sessions", "completed", "rehomes", "rejoins",
                      "reclaims", "trace completed", "trace ok", "verdict"});
  t1.add_row({std::to_string(acc.sessions),
              std::to_string(accepted.completed),
              std::to_string(accepted.rehomes),
              std::to_string(accepted.rejoins),
              std::to_string(accepted.reclaims),
              std::to_string(accepted.trace.value("prefix.completed")),
              accepted.trace.ok ? "yes" : "NO",
              accepted.ok ? "ok" : accepted.failure});
  std::cout << "\nin-process acceptance (kill backend 1 @15ms, rejoin it @"
            << kRejoinAt.count() << "ms):\n"
            << t1.to_ascii();

  // --- Phase 2: restore-latency distribution over seeded crash trials ----
  std::vector<std::uint64_t> restore;
  std::size_t crash_trials = 0;
  for (std::uint64_t seed = 1; crash_trials < 6 && seed <= 64; ++seed) {
    stp::FabricSoakConfig cfg = acc;
    cfg.sessions = 24;
    cfg.seq_len = 10;
    cfg.plan = stp::sample_fabric_plan(seed, kBackends);
    const bool has_crash = std::any_of(
        cfg.plan.actions.begin(), cfg.plan.actions.end(),
        [](const stp::FabricFaultAction& a) {
          return a.kind == stp::FabricFaultKind::kBackendCrash;
        });
    if (!has_crash) continue;
    ++crash_trials;
    const auto r = stp::run_fabric_soak(cfg);
    shape = shape && r.ok;
    restore.insert(restore.end(), r.restore_latency_us.begin(),
                   r.restore_latency_us.end());
    if (!r.ok) {
      std::cout << "\nseed " << seed << " plan [" << stp::to_string(cfg.plan)
                << "] FAILED: " << r.failure << "\n";
      write_failure_artifacts(cfg, seed, r);
    }
  }
  const auto p50 = percentile(restore, 0.50);
  const auto p90 = percentile(restore, 0.90);
  const auto pmax = restore.empty()
                        ? 0
                        : *std::max_element(restore.begin(), restore.end());
  bench.param("restore_p50_us", static_cast<std::int64_t>(p50));
  bench.param("restore_p90_us", static_cast<std::int64_t>(p90));
  bench.param("restore_max_us", static_cast<std::int64_t>(pmax));
  analysis::Table t2({"crash trials", "rehomes", "p50 us", "p90 us",
                      "max us"});
  t2.add_row({std::to_string(crash_trials), std::to_string(restore.size()),
              std::to_string(p50), std::to_string(p90),
              std::to_string(pmax)});
  std::cout << "\nrestore latency (fence -> rehydrated -> serving):\n"
            << t2.to_ascii();

  // --- Phase 2b: resilience sweep (crash -> rejoin spines under
  // partition windows), reclaim-latency distribution -----------------------
  std::vector<std::uint64_t> reclaim_lat;
  std::size_t resil_trials = 0;
  std::size_t resil_reclaims = 0;
  const std::size_t want_resil = kSanitized ? 2 : 5;
  for (std::uint64_t seed = 101; resil_trials < want_resil; ++seed) {
    stp::FabricSoakConfig cfg = acc;
    cfg.sessions = 24;
    cfg.seq_len = 10;
    cfg.plan = stp::sample_resilience_plan(seed, kBackends);
    ++resil_trials;
    const auto r = stp::run_fabric_soak(cfg);
    shape = shape && r.ok;
    resil_reclaims += r.reclaims;
    reclaim_lat.insert(reclaim_lat.end(), r.reclaim_latency_us.begin(),
                       r.reclaim_latency_us.end());
    if (!r.ok) {
      std::cout << "\nresilience seed " << seed << " plan ["
                << stp::to_string(cfg.plan) << "] FAILED: " << r.failure
                << "\n";
      write_failure_artifacts(cfg, seed, r);
    }
  }
  const auto rp50 = percentile(reclaim_lat, 0.50);
  const auto rp90 = percentile(reclaim_lat, 0.90);
  const auto rpmax =
      reclaim_lat.empty()
          ? 0
          : *std::max_element(reclaim_lat.begin(), reclaim_lat.end());
  bench.param("resilience_trials", static_cast<std::int64_t>(resil_trials));
  bench.param("resilience_reclaims",
              static_cast<std::int64_t>(resil_reclaims));
  bench.param("reclaim_p50_us", static_cast<std::int64_t>(rp50));
  bench.param("reclaim_p90_us", static_cast<std::int64_t>(rp90));
  bench.param("reclaim_max_us", static_cast<std::int64_t>(rpmax));
  analysis::Table t2b({"resilience trials", "reclaims", "p50 us", "p90 us",
                       "max us"});
  t2b.add_row({std::to_string(resil_trials), std::to_string(resil_reclaims),
               std::to_string(rp50), std::to_string(rp90),
               std::to_string(rpmax)});
  std::cout << "\nreclaim latency (rejoin acked -> reclaimed -> serving; a "
               "rejoin scheduled before condemnation legitimately no-ops):\n"
            << t2b.to_ascii();

  // --- Phase 3: the process harness ---------------------------------------
#if defined(R7_HAVE_PROCESS)
  const auto proc = run_process_harness(argv[0], 24, 10);
  if (!proc.ran) {
    std::cout << "\nprocess harness: skipped (" << proc.why
              << ") — in-process phases cover the logic\n";
    bench.param("process_harness", "skipped");
  } else {
    shape = shape && proc.ok;
    bench.param("process_harness", proc.ok ? "ok" : proc.why);
    bench.param("proc_detect_us", static_cast<std::int64_t>(proc.detect_us));
    bench.param("proc_restore_us",
                static_cast<std::int64_t>(proc.restore_us));
    bench.param("proc_rejoin_us",
                static_cast<std::int64_t>(proc.rejoin_us));
    bench.param("proc_reclaimed_sessions",
                static_cast<std::int64_t>(proc.reclaimed));
    bench.param("proc_session_restore_p50_us",
                static_cast<std::int64_t>(
                    percentile(proc.session_restore_us, 0.50)));
    bench.param("proc_session_reclaim_p50_us",
                static_cast<std::int64_t>(
                    percentile(proc.session_reclaim_us, 0.50)));
    analysis::Table t3({"sessions", "completed", "trace completed",
                        "attested", "detect ms", "restore ms", "rejoin ms",
                        "reclaimed", "verdict"});
    t3.add_row({std::to_string(proc.sessions),
                std::to_string(proc.completed),
                std::to_string(proc.trace_completed),
                proc.attested ? "yes" : "NO",
                fmt1(static_cast<double>(proc.detect_us) / 1000.0),
                fmt1(static_cast<double>(proc.restore_us) / 1000.0),
                fmt1(static_cast<double>(proc.rejoin_us) / 1000.0),
                std::to_string(proc.reclaimed),
                proc.ok ? "ok" : proc.why});
    std::cout << "\nprocess harness (3 backends fork/exec'd, SIGKILL b1, "
                 "survivor re-exec'd with both logs, victim rejoined under "
                 "a new generation and its share reclaimed):\n"
              << t3.to_ascii();
  }
#else
  std::cout << "\nprocess harness: unavailable on this platform\n";
  bench.param("process_harness", "unavailable");
#endif

  std::cout << "\nshape " << (shape ? "confirmed" : "VIOLATED")
            << ": every session survives crash, re-home, rejoin, and "
               "reclaim with an exact copy, attested offline from the "
               "merged cross-generation trace\n";
  return bench.finish(shape);
}
