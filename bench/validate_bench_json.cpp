// Validator for BENCH_<name>.json reports (the bench_smoke ctest fixture).
//
// Reads each file argument, checks it parses as structurally valid JSON,
// and checks the report schema's required keys are present.  Exit 0 iff
// every file passes — cheap enough to gate every CI run on.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/sinks.hpp"

namespace {

bool validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  if (!stpx::obs::json_valid(text)) {
    std::cerr << path << ": not valid JSON\n";
    return false;
  }
  for (const char* key : {"\"name\"", "\"params\"", "\"trials\"", "\"ok\"",
                          "\"verdicts\"", "\"avg_steps\"",
                          "\"msgs_per_trial\"", "\"write_latency\"",
                          "\"trial_steps\""}) {
    if (text.find(key) == std::string::npos) {
      std::cerr << path << ": missing required key " << key << "\n";
      return false;
    }
  }
  std::cout << path << ": ok\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: validate_bench_json <report.json>...\n";
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = validate(argv[i]) && ok;
  return ok ? 0 : 1;
}
