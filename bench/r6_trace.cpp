// R6 (observability) — the flight recorder must not perturb what it
// observes, and its trace must independently attest the run.
//
// The workload is r4's: n concurrent Stenning sessions over a lossy,
// reordering loopback link.  For each n in {1, 64, 1024} the point runs
// twice — recorder off, then recorder on (one FlightRecorder per mux,
// drained every few milliseconds by a consumer thread, exactly the
// deployment shape) — and reports items/s for both plus the relative
// overhead.  The acceptance gate is overhead <= 5% at the largest point
// (re-measured once before failing: the workload is sweep-interval-bound,
// so a miss is scheduler noise, but a reproduced miss is a regression).
//
// Each instrumented point then feeds its drained server trace to the
// standard analysis pipeline: the prefix-safety attestor must re-derive
// "every session completed, every output a prefix-ordered exact copy"
// from the trace alone, and the goodput/ack-RTT columns come from the
// same pass.
//
// A second sweep holds n=64 and varies the ring capacity {256, 4096,
// 65536} with NO concurrent drain, demonstrating bounded-memory drop
// accounting: drained events == recorded events, drops explicit, never
// backpressure.
#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>

#include "analysis/table.hpp"
#include "analysis/trace_pipeline.hpp"
#include "common.hpp"
#include "fault/plan.hpp"
#include "net/flight_recorder.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

constexpr int kDomain = 8;
constexpr std::size_t kSeqLen = 8;
constexpr std::uint64_t kPlanHorizon = 500000;
constexpr double kOverheadLimitPct = 5.0;

// Sanitizer instrumentation shadow-checks every ring write, inflating the
// recorder's cost relative to the uninstrumented baseline — the overhead
// ceiling is a production claim, so under ASan/TSan it is reported but not
// enforced (the attestation and drop-accounting gates still are).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

net::LoopbackConfig lossy_wire() {
  net::LoopbackConfig wire;
  wire.plan = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                   sim::Dir::kSenderToReceiver, 9, 1,
                                   kPlanHorizon);
  const auto rs =
      fault::periodic_plan(fault::FaultKind::kDropBurst,
                           sim::Dir::kReceiverToSender, 11, 1, kPlanHorizon);
  wire.plan.actions.insert(wire.plan.actions.end(), rs.actions.begin(),
                           rs.actions.end());
  wire.reorder_window = 4;
  wire.seed = 0xBE0C4;
  wire.max_queue = 16384;
  return wire;
}

net::MuxConfig mux_cfg() {
  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.steps_per_sweep = 2;
  cfg.max_inflight = 8;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = std::chrono::microseconds(300);
  return cfg;
}

struct PointResult {
  std::size_t sessions = 0;
  std::size_t completed = 0;
  double wall_ms = 0.0;
  double items_per_sec = 0.0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t drained = 0;
  bool attested = false;          // prefix.ok from the server trace
  std::int64_t ack_p50_us = 0;    // from the client trace
  std::int64_t retx_permille = 0;
  analysis::TraceReport server_report;
};

/// Drain `rec` into `sink` every couple of milliseconds until stopped,
/// then once more for the tail.  Single consumer per recorder.
void drain_loop(std::stop_token stop, net::FlightRecorder* rec,
                std::vector<net::TraceEvent>* sink) {
  while (!stop.stop_requested()) {
    auto batch = rec->drain();
    sink->insert(sink->end(), batch.begin(), batch.end());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto tail = rec->drain();
  sink->insert(sink->end(), tail.begin(), tail.end());
}

PointResult run_point(std::size_t n, bool recorder_on,
                      std::size_t ring_capacity, bool concurrent_drain,
                      BenchRun* bench, bool attach_metrics) {
  auto wire = net::make_loopback(lossy_wire());
  net::MuxConfig cfg = mux_cfg();

  net::FlightRecorderConfig rc;
  rc.ring_capacity = ring_capacity;
  net::FlightRecorder client_rec(rc);
  net::FlightRecorder server_rec(rc);
  net::MuxConfig client_cfg = cfg;
  net::MuxConfig server_cfg = cfg;
  if (recorder_on) {
    client_cfg.probe = &client_rec;
    server_cfg.probe = &server_rec;
  }

  net::StpClient client(wire.a.get(), client_cfg);
  net::StpServer server(wire.b.get(), server_cfg);
  analysis::TraceContext ctx;
  for (std::uint32_t id = 0; id < n; ++id) {
    auto pair = proto::make_stenning(kDomain);
    const auto x = seq_for(id, kSeqLen);
    client.add_session(id, std::move(pair.sender), x);
    server.add_session(id, std::move(pair.receiver), x);
    ctx.expected_items[id] = kSeqLen;
  }

  std::vector<net::TraceEvent> client_events;
  std::vector<net::TraceEvent> server_events;
  const auto t0 = std::chrono::steady_clock::now();
  bool drained_in_time = false;
  {
    std::vector<std::jthread> drains;
    if (recorder_on && concurrent_drain) {
      drains.emplace_back(drain_loop, &client_rec, &client_events);
      drains.emplace_back(drain_loop, &server_rec, &server_events);
    }
    drained_in_time =
        net::run_service_pair(client, server, std::chrono::seconds(120));
  }
  const auto t1 = std::chrono::steady_clock::now();

  PointResult res;
  res.sessions = n;
  res.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  for (const auto& r : server.mux().reports()) {
    const bool ok = drained_in_time &&
                    r.state == net::SessionState::kCompleted &&
                    r.items == kSeqLen;
    if (ok) ++res.completed;
    if (bench != nullptr) {
      bench->record_trial(r.frames_out, r.frames_in + r.frames_out, ok);
    }
  }
  const double secs = res.wall_ms / 1000.0;
  if (secs > 0.0) {
    res.items_per_sec =
        static_cast<double>(server.mux().stats().items_done) / secs;
  }

  if (!recorder_on) return res;

  // Tail drain (also the only drain in the ring-capacity sweep).
  auto ctail = client_rec.drain();
  client_events.insert(client_events.end(), ctail.begin(), ctail.end());
  auto stail = server_rec.drain();
  server_events.insert(server_events.end(), stail.begin(), stail.end());
  // Concatenated periodic drains can interleave slightly across shards at
  // the batch boundaries; a stable sort by timestamp restores one global
  // order without disturbing per-shard ties.
  const auto by_ts = [](const net::TraceEvent& a, const net::TraceEvent& b) {
    return a.ts_us < b.ts_us;
  };
  std::stable_sort(client_events.begin(), client_events.end(), by_ts);
  std::stable_sort(server_events.begin(), server_events.end(), by_ts);

  const auto cstats = client_rec.stats();
  const auto sstats = server_rec.stats();
  res.recorded = cstats.recorded + sstats.recorded;
  res.dropped = cstats.dropped + sstats.dropped;
  res.drained = client_events.size() + server_events.size();

  ctx.fault_windows =
      net::to_trace_spans(wire.fault_windows(), server_rec.epoch());
  res.server_report =
      analysis::make_standard_pipeline().run(server_events, ctx);
  res.attested = res.server_report.value("prefix.ok") == 1;
  res.retx_permille = res.server_report.value("goodput.retx_permille");
  const auto client_report =
      analysis::make_standard_pipeline().run(client_events, {});
  res.ack_p50_us = client_report.value("ack_rtt.p50_us");

  if (attach_metrics && bench != nullptr) {
    obs::MetricsRegistry reg;
    server.mux().publish_metrics(reg);
    server_rec.publish_metrics(reg);
    analysis::publish_trace_report(res.server_report, reg);
    bench->metrics_json(reg.to_json());
  }
  return res;
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("r6_trace", argc, argv);
  const std::vector<std::size_t> points = {1, 64, 1024};
  constexpr std::size_t kDefaultRing = 1 << 14;
  bench.param("seq_len", static_cast<std::int64_t>(kSeqLen));
  bench.param("max_sessions", static_cast<std::int64_t>(points.back()));
  bench.param("ring_capacity", static_cast<std::int64_t>(kDefaultRing));
  bench.param("overhead_limit_pct", "5.0");
  bench.param("overhead_gate_enforced", kSanitized ? "no (sanitized build)"
                                                   : "yes");

  std::cout << analysis::heading(
      "R6 (observability): flight-recorder overhead and trace attestation");

  bool shape = true;
  double worst_overhead_pct = 0.0;

  analysis::Table table({"sessions", "recorder", "completed", "wall ms",
                         "items/s", "overhead %", "recorded", "dropped",
                         "attested", "ack p50 us", "retx o/oo"});
  for (const std::size_t n : points) {
    const bool largest = n == points.back();
    auto off = run_point(n, /*recorder_on=*/false, kDefaultRing,
                         /*concurrent_drain=*/false, &bench,
                         /*attach_metrics=*/false);
    auto on = run_point(n, /*recorder_on=*/true, kDefaultRing,
                        /*concurrent_drain=*/true, &bench,
                        /*attach_metrics=*/largest);
    double overhead_pct =
        off.items_per_sec > 0.0
            ? (off.items_per_sec - on.items_per_sec) / off.items_per_sec *
                  100.0
            : 0.0;
    if (largest && !kSanitized && overhead_pct > kOverheadLimitPct) {
      // One re-measure: the gate is against a reproduced slowdown, not a
      // single noisy scheduling quantum.
      off = run_point(n, false, kDefaultRing, false, nullptr, false);
      on = run_point(n, true, kDefaultRing, true, nullptr, false);
      overhead_pct = off.items_per_sec > 0.0
                         ? (off.items_per_sec - on.items_per_sec) /
                               off.items_per_sec * 100.0
                         : 0.0;
    }
    shape = shape && off.completed == n && on.completed == n && on.attested;
    if (largest) {
      worst_overhead_pct = overhead_pct;
      shape = shape && (kSanitized || overhead_pct <= kOverheadLimitPct);
    }
    table.add_row({std::to_string(n), "off", std::to_string(off.completed),
                   fmt1(off.wall_ms), fmt1(off.items_per_sec), "-", "-", "-",
                   "-", "-", "-"});
    table.add_row({std::to_string(n), "on", std::to_string(on.completed),
                   fmt1(on.wall_ms), fmt1(on.items_per_sec),
                   fmt1(overhead_pct), std::to_string(on.recorded),
                   std::to_string(on.dropped), on.attested ? "yes" : "NO",
                   std::to_string(on.ack_p50_us),
                   std::to_string(on.retx_permille)});
  }
  std::cout << "\n" << table.to_ascii();

  // Ring-capacity sweep: bounded memory, explicit drop accounting.
  analysis::Table rings({"ring", "completed", "recorded", "dropped",
                         "drained", "accounted"});
  for (const std::size_t cap : {std::size_t{256}, std::size_t{4096},
                                std::size_t{65536}}) {
    const auto res = run_point(64, /*recorder_on=*/true, cap,
                               /*concurrent_drain=*/false, nullptr, false);
    // Drop-newest never overwrites: everything recorded is still in the
    // rings at the end, so one tail drain must account exactly.
    const bool accounted = res.drained == res.recorded;
    shape = shape && res.completed == 64 && accounted;
    rings.add_row({std::to_string(cap), std::to_string(res.completed),
                   std::to_string(res.recorded), std::to_string(res.dropped),
                   std::to_string(res.drained), accounted ? "yes" : "NO"});
  }
  std::cout << "\nring-capacity sweep (n=64, tail drain only):\n"
            << rings.to_ascii();

  std::cout << "\nshape " << (shape ? "confirmed" : "VIOLATED")
            << ": every session completed at every point, the drained "
               "trace attests prefix safety, recorder overhead "
            << fmt1(worst_overhead_pct) << "% "
            << (kSanitized ? "(reported only: sanitized build)" : "<= 5%")
            << " at n=" << points.back() << ", drops exactly accounted\n";
  return bench.finish(shape);
}
