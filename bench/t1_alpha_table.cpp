// T1 — the alpha(m) table (§1, §3).
//
// alpha(m) = m! * sum_{k<=m} 1/k! is the paper's tight bound on |𝒳|.  Three
// independent computations must agree: the closed form, the recurrence
// alpha(m) = 1 + m*alpha(m-1), and exhaustive enumeration of
// repetition-free sequences (feasible for m <= 8).  Past m = 20 the value
// leaves 64 bits; the big-integer column keeps it exact.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "seq/alpha.hpp"
#include "seq/repetition_free.hpp"

int main(int argc, char** argv) {
  using namespace stpx;

  bench::BenchRun bench("t1_alpha_table", argc, argv);
  bench.param("max_m", 24);
  bench.param("enumeration_max_m", 8);

  std::cout << analysis::heading(
      "T1: alpha(m) — closed form vs recurrence vs enumeration");

  analysis::Table table(
      {"m", "closed form (u64)", "recurrence (u64)", "enumeration",
       "exact (big-int)", "agree"});
  bool all_agree = true;
  for (int m = 0; m <= 24; ++m) {
    const auto closed = seq::alpha_u64(m);
    const auto recur = seq::alpha_recurrence_u64(m);
    const BigUint exact = seq::alpha_big(m);

    std::string closed_s = closed ? std::to_string(*closed) : "overflow";
    std::string recur_s = recur ? std::to_string(*recur) : "overflow";
    std::string enum_s = "-";
    bool agree = closed == recur;
    if (closed) {
      agree = agree && BigUint(*closed) == exact;
    }
    if (m <= 8) {
      const auto count = seq::all_repetition_free(m).size();
      enum_s = std::to_string(count);
      agree = agree && closed && count == *closed;
    }
    all_agree = all_agree && agree;
    bench.record_trial(0, 0, agree);
    table.add_row({std::to_string(m), closed_s, recur_s, enum_s,
                   exact.to_decimal(), agree ? "yes" : "NO"});
  }
  std::cout << table.to_ascii();
  std::cout << "\nverdict: "
            << (all_agree ? "all three computations agree (paper's count "
                            "of repetition-free sequences confirmed)"
                          : "MISMATCH — investigate")
            << "\n";
  return bench.finish(all_agree);
}
