// T2 — achievability for 𝒳-STP(dup) (end of §3).
//
// The paper's protocol solves 𝒳-STP(dup) for the full repetition-free
// family (|𝒳| = alpha(m)) over a channel that reorders and duplicates.
// We sweep EVERY member of the family for m = 1..5 under several
// adversarially-seeded fair schedules (the deliverable set never shrinks,
// so stale messages are redelivered constantly) and verify 100% safety and
// liveness, reporting cost statistics.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "knowledge/explorer.hpp"
#include "seq/family.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("t2_dup_achievability", argc, argv);
  bench.param("max_m", 5);
  bench.param("seeds", 3);
  bench.param("channel", "dup");

  std::cout << analysis::heading(
      "T2: repfree protocol solves X-STP(dup) at |X| = alpha(m)");

  analysis::Table table({"m", "|X| = alpha(m)", "trials", "safety fails",
                         "liveness fails", "avg steps", "msgs/trial"});
  bool all_ok = true;
  for (int m = 1; m <= 5; ++m) {
    const seq::Family family = seq::canonical_repetition_free(m);
    const auto seeds = seed_range(100, 3);
    const auto result =
        stp::sweep_family(repfree_dup_spec(m), family, seeds);
    bench.record(result);
    all_ok = all_ok && result.all_ok();
    table.add_row({std::to_string(m), std::to_string(family.size()),
                   std::to_string(result.trials),
                   std::to_string(result.safety_failures),
                   std::to_string(result.incomplete),
                   fixed(result.avg_steps(), 1),
                   fixed(result.msgs_per_trial(), 1)});
  }
  std::cout << table.to_ascii();

  // Beyond sampling: small-model certainty.  Enumerate EVERY schedule up to
  // depth 8 for m = 2 and confirm no reachable state violates safety.
  const auto verdict = knowledge::exhaustive_safety(
      repfree_dup_spec(2), seq::canonical_repetition_free(2),
      {.max_depth = 8, .max_points = 1000000});
  std::cout << "\nexhaustive check (m=2, all schedules to depth 8): "
            << verdict.points_checked << " reachable states, "
            << (verdict.violation_found ? "VIOLATION FOUND" : "all safe")
            << "\n";
  all_ok = all_ok && !verdict.violation_found;

  std::cout << "\npaper: every X in the alpha(m)-sized family is delivered "
               "safely despite reordering+duplication.\n"
            << "measured: " << (all_ok ? "CONFIRMED (0 failures)" : "FAILED")
            << "\n";
  return bench.finish(all_ok);
}
