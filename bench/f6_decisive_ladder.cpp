// F6 — the decisive-tuple ladder (Lemma 2's induction, exhibited).
//
// Lemma 2: if |𝒳| > alpha(m), then for every l = 0..m there is a
// dup-decisive tuple with alpha(m-l)+1 mutually R-indistinguishable points
// over distinct inputs, with l messages already "burned" (sent at least
// once, hence replayable forever).  At l = m the tuple has 2 points, the
// whole alphabet is burned, and Lemma 1 forces a contradiction.
//
// We run the encoded protocol on the overfull family (|𝒳| = alpha(m)+1),
// enumerate its reachable points, and ask the decisive-tuple finder for
// each rung of the ladder.  The m = 2 ladder is fully materialized:
//   l = 0: alpha(2)+1 = 6 initial points, M = {}
//   l = 1: alpha(1)+1 = 3 points with one message burned
//   l = 2: alpha(0)+1 = 2 points with both messages burned
// — the exact objects the proof constructs.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "knowledge/explorer.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("f6_decisive_ladder", argc, argv);
  bench.param("m", 2);
  bench.param("max_depth", 10);

  std::cout << analysis::heading(
      "F6: Lemma 2's ladder of dup-decisive tuples at |X| = alpha(m)+1");

  const int m = 2;
  const auto table = overfull_table(m);
  const seq::Family family{seq::Domain{m}, table->inputs};
  std::cout << "m = " << m << ", alpha(m) = " << *seq::alpha_u64(m)
            << ", |X| = " << family.size() << "\n";

  const auto spec = encoded_spec(table, /*knowledge=*/true, /*del=*/false);
  const auto ex = knowledge::explore(spec, family,
                                     {.max_depth = 10,
                                      .max_points = 2000000});
  std::cout << "explored " << ex.points.size() << " reachable points, "
            << ex.by_r_history.size() << " ~_R classes"
            << (ex.truncated ? " (horizon-truncated)" : "") << "\n\n";

  analysis::Table ladder({"l (burned msgs)", "required points alpha(m-l)+1",
                          "tuple found", "|points|", "M"});
  bool ok = true;
  for (int l = 0; l <= m; ++l) {
    const std::size_t required =
        static_cast<std::size_t>(*seq::alpha_u64(m - l)) + 1;
    const auto tuple = knowledge::find_dup_decisive(
        ex, required, static_cast<std::size_t>(l));
    ok = ok && tuple.has_value();
    bench.record_trial(static_cast<std::uint64_t>(ex.points.size()), 0,
                       tuple.has_value());
    std::string msgs = "{";
    if (tuple) {
      for (std::size_t i = 0; i < tuple->messages.size(); ++i) {
        if (i) msgs += ", ";
        msgs += std::to_string(tuple->messages[i]);
      }
    }
    msgs += "}";
    ladder.add_row({std::to_string(l), std::to_string(required),
                    tuple ? "yes" : "NO",
                    tuple ? std::to_string(tuple->point_indices.size()) : "-",
                    tuple ? msgs : "-"});
  }
  std::cout << ladder.to_ascii();

  // Show the terminal rung in full: the two-point, full-alphabet tuple is
  // the contradiction's doorstep.
  const auto top = knowledge::find_dup_decisive(ex, 2,
                                                static_cast<std::size_t>(m));
  if (top) {
    std::cout << "\nterminal tuple (l = m): R cannot distinguish\n";
    for (std::size_t idx : top->point_indices) {
      const auto& p = ex.points[idx];
      std::cout << "  run of " << seq::to_string(
                       ex.family.members[p.input_index])
                << " @ depth " << p.depth << ", Y = "
                << seq::to_string(p.output) << "\n";
    }
    std::cout << "with the ENTIRE alphabet M = M^S already sent in both "
                 "runs;\nby Lemma 1 some message outside M^S would have to "
                 "arrive for R to ever\ntell them apart — impossible, which "
                 "is Theorem 1.\n";
  }

  std::cout << "\nmeasured: "
            << (ok ? "CONFIRMED — every rung of the induction is reachable"
                   : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok);
}
