// T6 — weak boundedness is not boundedness (§5).
//
// The §5 hybrid (ABP fast path + whole-sequence recovery on timeout) is
// weakly bounded: along fault-free runs each t_i follows its predecessor
// within a constant.  But after a single fault its recovery replays the
// whole input, so the time to the next t_i grows with |X| — it satisfies
// [LMF88]'s weak boundedness while failing the paper's Definition 2.  The
// bounded repfree protocol recovers from the same fault in O(1).
//
// Protocol per row: one fault (all in-flight messages deleted) injected
// after 2 items are delivered; we report steps from the fault to the next
// write and to completion, as |X| doubles.
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "stp/fault.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

stp::SystemSpec hybrid_spec(int m, int timeout) {
  stp::SystemSpec spec;
  spec.protocols = [m, timeout] { return proto::make_hybrid(m, timeout); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::FifoChannel>();
  };
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  spec.engine.max_steps = 2000000;
  return spec;
}

seq::Sequence repeating_sequence(int n, int m) {
  seq::Sequence x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = i % m;
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("t6_boundedness", argc, argv);
  bench.param("sizes", "8..128");
  bench.param("fault_after_writes", 2);

  std::cout << analysis::heading(
      "T6: weakly bounded vs bounded — single-fault recovery (§5)");

  analysis::Table table({"|X|", "hybrid: next write", "hybrid: finish",
                         "repfree-del: next write", "repfree-del: finish"});
  std::vector<double> xs, hybrid_next, repfree_next;
  bool ok = true;
  for (int n : {8, 16, 32, 64, 128}) {
    const auto hyb = stp::measure_fault_recovery(
        hybrid_spec(3, 12), repeating_sequence(n, 3),
        {.fault_after_writes = 2}, 1);
    const auto rep = stp::measure_fault_recovery(
        repfree_del_spec(n, 0.0), iota_sequence(n),
        {.fault_after_writes = 2}, 1);
    ok = ok && hyb.fault_injected && hyb.completed && rep.fault_injected &&
         rep.completed;
    bench.record_trial(hyb.steps_to_completion, 0, hyb.completed);
    bench.record_trial(rep.steps_to_completion, 0, rep.completed);
    xs.push_back(n);
    hybrid_next.push_back(static_cast<double>(hyb.recovery_steps));
    repfree_next.push_back(static_cast<double>(rep.recovery_steps));
    table.add_row({std::to_string(n), std::to_string(hyb.recovery_steps),
                   std::to_string(hyb.steps_to_completion),
                   std::to_string(rep.recovery_steps),
                   std::to_string(rep.steps_to_completion)});
  }
  std::cout << table.to_ascii();

  // The §5 quantity is the time from the fault to the NEXT t_i — i.e. the
  // next output write.  The hybrid must replay the whole sequence before
  // the receiver can write anything new, so this gap alone grows with |X|;
  // the "finish" columns grow for both protocols trivially (more items
  // remain) and are shown only for context.
  const double hybrid_slope = analysis::linear_slope(xs, hybrid_next);
  const double repfree_slope = analysis::linear_slope(xs, repfree_next);
  std::cout << "\nnext-write-after-fault slope vs |X|: hybrid "
            << fixed(hybrid_slope, 2) << " steps/item (grows), repfree "
            << fixed(repfree_slope, 3) << " steps/item (flat)\n";

  const bool shape = hybrid_slope > 1.0 && repfree_slope < 0.5 &&
                     hybrid_next.back() > hybrid_next.front() * 4;
  std::cout << "\npaper: the §5 protocol is weakly bounded yet never fully "
               "recovers from one fault; a bounded protocol does.\n"
            << "measured: "
            << (ok && shape ? "CONFIRMED — hybrid recovery scales with |X|, "
                              "bounded recovery is constant"
                            : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok && shape);
}
