// E1 (extension) — probabilistic STP (§6 future work).
//
// Theorems 1/2: zero-error transmission of |𝒳| > alpha(m) sequences is
// impossible.  §6 asks what a small error probability buys.  The tagged
// protocol carries ALL d^L sequences of length L over domain d — a family
// exponentially larger than alpha(m) for its alphabet m = d*2^k — with
// failure probability bounded by C(L,2)/2^k.  We sweep tag width k and
// measure the transfer failure rate over random inputs, against the union
// bound, and tabulate how far beyond alpha(m) the carried family is.
//
// Expected shape: measured failure under the union bound everywhere,
// decaying exponentially in k, while |𝒳|/alpha-per-symbol stays
// astronomically past the zero-error capacity.  The deterministic
// round-robin tag ablation is also measured: same alphabet, but a
// worst-case input fails with certainty — randomness, not alphabet size,
// is what §6's trade buys.
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "prob/random_tag.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

struct RateResult {
  double rate = 0.0;
  analysis::Interval ci;  // 95% Wilson
};

RateResult failure_rate(int d, int k, std::size_t length,
                        prob::TagPolicy policy, int trials, Rng& input_rng) {
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    seq::Sequence x(length);
    for (auto& v : x) {
      v = static_cast<seq::DataItem>(input_rng.below(
          static_cast<std::uint64_t>(d)));
    }
    stp::SystemSpec spec;
    spec.protocols = [d, k, policy, t] {
      return prob::make_tagged_dup(d, k, policy,
                                   static_cast<std::uint64_t>(t) + 1);
    };
    spec.channel = [](std::uint64_t) {
      return std::make_unique<channel::DupChannel>();
    };
    spec.scheduler = [](std::uint64_t seed) {
      return std::make_unique<channel::FairRandomScheduler>(seed);
    };
    spec.engine.max_steps = 80000;
    const auto r = stp::run_one(spec, x, static_cast<std::uint64_t>(t) + 501);
    if (!r.safety_ok || !r.completed) ++failures;
  }
  RateResult out;
  out.rate = static_cast<double>(failures) / trials;
  out.ci = analysis::wilson_interval(static_cast<std::size_t>(failures),
                                     static_cast<std::size_t>(trials));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("e1_probabilistic", argc, argv);
  bench.param("d", 2);
  bench.param("length", 16);
  bench.param("tag_bits", "2..12");
  bench.param("trials_per_k", 80);

  std::cout << analysis::heading(
      "E1 (extension): probabilistic STP — error rate vs tag width (§6)");

  const int d = 2;
  const std::size_t L = 16;
  const int kTrials = 80;
  Rng input_rng(2026);

  std::cout << "domain d = " << d << ", input length L = " << L
            << ", |X| = d^L = " << (1u << L)
            << " (every sequence, repetitions included)\n\n";

  analysis::Table table({"tag bits k", "alphabet m = d*2^k",
                         "union bound C(L,2)/2^k", "measured failure",
                         "95% Wilson CI", "within bound"});
  bool ok = true;
  double prev_rate = 2.0;
  for (int k : {2, 4, 6, 8, 10, 12}) {
    const double bound = prob::collision_upper_bound(L, k);
    const auto r =
        failure_rate(d, k, L, prob::TagPolicy::kRandom, kTrials, input_rng);
    // The Wilson interval's lower end must sit below the union bound — the
    // statistically honest version of "within bound".
    const bool within = r.ci.lo <= std::min(1.0, bound);
    ok = ok && within;
    bench.record_trial(0, 0, within);
    table.add_row({std::to_string(k), std::to_string(d * (1 << k)),
                   fixed(std::min(1.0, bound), 3), fixed(r.rate, 3),
                   "[" + fixed(r.ci.lo, 3) + ", " + fixed(r.ci.hi, 3) + "]",
                   within ? "yes" : "NO"});
    if (k >= 6) {
      // Exponential decay: each +2 bits should not increase the rate.
      ok = ok && r.rate <= prev_rate + 0.05;
      prev_rate = r.rate;
    }
  }
  std::cout << table.to_ascii();

  // Deterministic-tag ablation on the worst-case input.
  seq::Sequence worst(L, seq::DataItem{0});
  stp::SystemSpec rr;
  rr.protocols = [d] {
    return prob::make_tagged_dup(d, 2, prob::TagPolicy::kRoundRobin, 1);
  };
  rr.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  rr.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  rr.engine.max_steps = 80000;
  const auto worst_run = stp::run_one(rr, worst, 9);
  const bool rr_fails = !worst_run.safety_ok || !worst_run.completed;
  ok = ok && rr_fails;
  std::cout << "\nround-robin-tag ablation on all-zeros input (k=2): "
            << (rr_fails ? "fails deterministically, as predicted"
                         : "unexpectedly survived")
            << "\n";

  std::cout << "\npaper (§6): allowing a small failure probability should "
               "circumvent the alpha(m) cap; zero error cannot.\n"
            << "measured: "
            << (ok ? "CONFIRMED — error ~ C(L,2)/2^k, exponentially cheap; "
                     "deterministic tags have worst-case certainty of "
                     "failure"
                   : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok);
}
