// T3 — impossibility for 𝒳-STP(dup) beyond alpha(m) (Theorem 1).
//
// Two executable forms of the theorem, for m = 1..3 with |𝒳| = alpha(m)+1:
//
//  (a) Combinatorial: the greedy trie embedding — which succeeds for every
//      family of size alpha(m) that fits — provably cannot produce a valid
//      prefix-monotone repetition-free encoding; the checker exhibits the
//      forced collision.
//
//  (b) Operational: hand the colliding table to the encoded protocol and
//      let the attack synthesizer construct the adversarial schedule.  The
//      greedy (committal) receiver is driven into a safety violation; the
//      knowledge (non-committal) receiver is starved — a decisive-stall
//      pair of runs it cannot tell apart.  Either way the protocol fails,
//      exactly as the theorem demands.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "stp/attack.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("t3_dup_impossibility", argc, argv);
  bench.param("max_m", 3);
  bench.param("family", "alpha(m)+1");

  std::cout << analysis::heading(
      "T3: X-STP(dup) unsolvable at |X| = alpha(m) + 1 (Theorem 1)");

  std::cout << "(a) combinatorial pigeonhole:\n";
  analysis::Table pigeon({"m", "alpha(m)", "|X|", "valid encoding exists",
                          "forced collision"});
  bool combinatorial_ok = true;
  for (int m = 1; m <= 4; ++m) {
    const seq::Family beyond = seq::beyond_alpha(m);
    const auto enc = seq::try_build_encoding(beyond, m);
    const bool impossible = !enc.has_value();
    combinatorial_ok = combinatorial_ok && impossible;
    // Show the collision the pigeonhole forces on the canonical+1 table.
    const auto table = overfull_table(m);
    const auto violation = seq::find_violation(*table);
    pigeon.add_row({std::to_string(m),
                    std::to_string(*seq::alpha_u64(m)),
                    std::to_string(beyond.size()),
                    impossible ? "no" : "YES (bug)",
                    violation ? violation->describe(*table) : "-"});
  }
  std::cout << pigeon.to_ascii();

  std::cout << "\n(b) synthesized attacks against the encoded protocol:\n";
  analysis::Table attacks({"m", "receiver", "verdict", "witness pair",
                           "rounds"});
  const stp::AttackBudget budget{.skeleton_steps = 100000,
                                 .mirror_rounds = 2000,
                                 .stall_rounds = 32};
  bool operational_ok = true;
  for (int m = 1; m <= 3; ++m) {
    const auto table = overfull_table(m);
    const seq::Family family{seq::Domain{m}, table->inputs};
    for (const bool knowledge : {false, true}) {
      const auto r = stp::find_attack(
          encoded_spec(table, knowledge, /*del=*/false), family, budget);
      bench.record_trial(static_cast<std::uint64_t>(r.rounds), 0, r.found());
      operational_ok = operational_ok && r.found();
      std::string pair = seq::to_string(r.x_a);
      if (r.kind == stp::AttackResult::Kind::kSafetyViolation ||
          r.kind == stp::AttackResult::Kind::kDecisiveStall) {
        pair += " / " + seq::to_string(r.x_b);
      }
      attacks.add_row({std::to_string(m),
                       knowledge ? "knowledge" : "greedy",
                       stp::to_cstr(r.kind), pair,
                       std::to_string(r.rounds)});
    }
  }
  std::cout << attacks.to_ascii();

  // (c) bounded model checking of the mirrored pair space: for m = 2 the
  // colliding pair is exhaustively exploitable (greedy) / provably safe but
  // starvable (knowledge) within the horizon.
  {
    const auto table = overfull_table(2);
    const auto greedy_mc = stp::exhaustive_mirror_search(
        encoded_spec(table, false, false), {0, 1}, {0, 0}, 12, 300000);
    const auto knowing_mc = stp::exhaustive_mirror_search(
        encoded_spec(table, true, false), {0, 1}, {0, 0}, 10, 500000);
    std::cout << "\n(c) exhaustive mirrored-pair model checking (m=2, pair "
                 "<0 1>/<0 0>):\n"
              << "    greedy receiver: "
              << (greedy_mc.violation_found
                      ? "violation reachable (" +
                            std::to_string(greedy_mc.states_explored) +
                            " states)"
                      : "NO VIOLATION (unexpected)")
              << "\n    knowledge receiver: "
              << (!knowing_mc.violation_found
                      ? "no reachable safety violation — starvation is its "
                        "only failure mode"
                      : "VIOLATION (unexpected)")
              << "\n";
    operational_ok = operational_ok && greedy_mc.violation_found &&
                     !knowing_mc.violation_found;
  }

  const bool ok = combinatorial_ok && operational_ok;
  std::cout << "\npaper: no protocol (even non-uniform) solves X-STP(dup) "
               "with |X| > alpha(m).\n"
            << "measured: "
            << (ok ? "CONFIRMED — every encoding collides and every attack "
                     "found a witness"
                   : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok);
}
