// T5 — impossibility for bounded 𝒳-STP(del) beyond alpha(m) (Theorem 2).
//
// Part 1 tabulates the proof's copy-count schedule: delta_m = c and
// delta_l = delta_{l+1} * (1 + c*(m-l)*alpha(m-l)), where c = sum_{i<=beta}
// f(i) bounds the steps of one "efficient extension".  The explosive growth
// of delta_0 shows why the deletion case needs so much more bookkeeping
// than the duplication case — the adversary must bank copies before
// spending them — while remaining finite, which is all the proof needs.
//
// Part 2 runs the same operational attack as T3 on a *deletion* channel
// against the retransmitting (bounded-style) encoded protocol: the witness
// pairs appear all the same, confirming that retransmission does not buy
// capacity, only boundedness.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "stp/attack.hpp"
#include "util/biguint.hpp"
#include "util/strings.hpp"

namespace {

/// delta_l for l = 0..m, exactly.
std::vector<stpx::BigUint> delta_schedule(int m, std::uint64_t c) {
  std::vector<stpx::BigUint> delta(static_cast<std::size_t>(m) + 1);
  delta[static_cast<std::size_t>(m)] = stpx::BigUint(c);
  for (int l = m - 1; l >= 0; --l) {
    stpx::BigUint factor(c);
    factor *= static_cast<std::uint64_t>(m - l);
    factor *= *stpx::seq::alpha_u64(m - l);
    factor += 1;
    delta[static_cast<std::size_t>(l)] =
        delta[static_cast<std::size_t>(l + 1)] * factor;
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("t5_del_impossibility", argc, argv);
  bench.param("max_m", 3);
  bench.param("channel", "del");

  std::cout << analysis::heading(
      "T5: no bounded solution to X-STP(del) at |X| = alpha(m)+1 "
      "(Theorem 2)");

  // c = sum_{i<=beta} f(i).  T4 measured a constant per-item bound; we take
  // f(i) = 16 and beta = m+1 (the canonical+1 family is identified by its
  // (m+1)-prefix: the extra <0 0> differs from every repetition-free member
  // within 2 symbols, and members differ within m).
  std::cout << "(a) the proof's copy-count schedule delta_l "
               "(f(i) = 16, beta = m+1, c = 16*(m+1)):\n";
  analysis::Table deltas({"m", "c", "delta_m", "delta_1", "delta_0"});
  for (int m = 1; m <= 4; ++m) {
    const std::uint64_t c = 16 * (static_cast<std::uint64_t>(m) + 1);
    const auto delta = delta_schedule(m, c);
    deltas.add_row({std::to_string(m), std::to_string(c),
                    delta[static_cast<std::size_t>(m)].to_decimal(),
                    delta[1].to_decimal(), delta[0].to_decimal()});
  }
  std::cout << deltas.to_ascii();

  std::cout << "\n(b) synthesized attacks on the deletion channel "
               "(retransmitting protocol):\n";
  analysis::Table attacks({"m", "receiver", "verdict", "witness pair",
                           "rounds"});
  const stp::AttackBudget budget{.skeleton_steps = 100000,
                                 .mirror_rounds = 3000,
                                 .stall_rounds = 32};
  bool all_found = true;
  for (int m = 1; m <= 3; ++m) {
    const auto table = overfull_table(m);
    const seq::Family family{seq::Domain{m}, table->inputs};
    for (const bool knowledge : {false, true}) {
      const auto r = stp::find_attack(
          encoded_spec(table, knowledge, /*del=*/true), family, budget);
      bench.record_trial(static_cast<std::uint64_t>(r.rounds), 0, r.found());
      all_found = all_found && r.found();
      std::string pair = seq::to_string(r.x_a);
      if (r.kind == stp::AttackResult::Kind::kSafetyViolation ||
          r.kind == stp::AttackResult::Kind::kDecisiveStall) {
        pair += " / " + seq::to_string(r.x_b);
      }
      attacks.add_row({std::to_string(m),
                       knowledge ? "knowledge" : "greedy",
                       stp::to_cstr(r.kind), pair,
                       std::to_string(r.rounds)});
    }
  }
  std::cout << attacks.to_ascii();

  std::cout << "\npaper: boundedness + finite alphabet caps |X| at alpha(m) "
               "even when the channel only deletes.\n"
            << "measured: "
            << (all_found ? "CONFIRMED — every configuration produced a "
                            "safety or liveness witness"
                          : "NOT CONFIRMED")
            << "\n";
  return bench.finish(all_found);
}
