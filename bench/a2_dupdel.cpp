// A2 (ablation) — the duplicate+delete channel: why retransmission is about
// liveness, not capacity.
//
// On a pure dup channel, send-once is optimal (F1): the channel replays.
// Once the channel can ALSO suppress transmissions (dup+del), the single
// copy may never go live, and the send-once protocol loses liveness with
// probability that grows with |X|; the retransmitting variant is immune.
// Capacity is unchanged — the same alpha(m) family, the same receiver —
// illustrating the paper's split between what the bound governs (|𝒳|) and
// what retransmission buys (recovery).
#include <iostream>

#include "analysis/histogram.hpp"
#include "analysis/table.hpp"
#include "channel/dupdel_channel.hpp"
#include "common.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

stp::SystemSpec dupdel_spec(int m, bool retransmit, double suppress) {
  stp::SystemSpec spec;
  spec.protocols = [m, retransmit] {
    return retransmit ? proto::make_repfree_del(m)
                      : proto::make_repfree_dup(m);
  };
  spec.channel = [suppress](std::uint64_t seed) {
    return std::make_unique<channel::DupDelChannel>(suppress, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("a2_dupdel", argc, argv);
  bench.param("suppress_rates", "0.1,0.3");
  bench.param("sizes", "2,4,8");
  bench.param("trials_per_cell", 40);

  std::cout << analysis::heading(
      "A2 (ablation): dup+del channel — send-once vs retransmit");

  const std::size_t kTrials = 40;
  analysis::Table table({"suppress p", "|X|", "send-once completion",
                         "retransmit completion"});
  analysis::BarSeries bars;
  bars.title = "send-once completion rate by |X| (p = 0.3)";
  bool shape = true;
  for (double p : {0.1, 0.3}) {
    for (int n : {2, 4, 8}) {
      const seq::Sequence x = iota_sequence(n);
      std::size_t once_ok = 0, retx_ok = 0;
      for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
        const auto once = stp::run_one(dupdel_spec(n, false, p), x, seed);
        const auto retx = stp::run_one(dupdel_spec(n, true, p), x, seed);
        bench.record_trial(retx.stats.steps,
                           retx.stats.sent[0] + retx.stats.sent[1],
                           retx.completed);
        shape = shape && once.safety_ok && retx.safety_ok;
        if (once.completed) ++once_ok;
        if (retx.completed) ++retx_ok;
      }
      const double once_rate =
          static_cast<double>(once_ok) / static_cast<double>(kTrials);
      const double retx_rate =
          static_cast<double>(retx_ok) / static_cast<double>(kTrials);
      shape = shape && retx_rate == 1.0;
      if (p == 0.3) {
        bars.bars.emplace_back("|X|=" + std::to_string(n), once_rate * 100);
        shape = shape && once_rate < 1.0;
      }
      table.add_row({fixed(p, 1), std::to_string(n), fixed(once_rate, 2),
                     fixed(retx_rate, 2)});
    }
  }
  std::cout << table.to_ascii();
  std::cout << "\n" << analysis::render_bars(bars);

  std::cout << "\nexpected: suppression starves send-once increasingly with "
               "|X|; retransmission is immune; safety untouched either "
               "way.\n"
            << "measured: " << (shape ? "CONFIRMED" : "NOT CONFIRMED")
            << "\n";
  return bench.finish(shape);
}
