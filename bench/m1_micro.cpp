// M1 — microbenchmarks of the substrate itself (google-benchmark).
//
// Not a paper result; these keep the simulator honest as an artifact: step
// rate of the kernel, channel op costs, protocol step costs, ranking, and
// the throughput of the two analysis engines (exploration, mirror attack).
#include <benchmark/benchmark.h>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "common.hpp"
#include "knowledge/explorer.hpp"
#include "proto/suite.hpp"
#include "seq/repetition_free.hpp"
#include "sim/engine.hpp"
#include "spec/temporal.hpp"
#include "stp/attack.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

void BM_EngineStepRoundRobin(benchmark::State& state) {
  const int m = 16;
  proto::ProtocolPair pair = proto::make_repfree_del(m);
  sim::EngineConfig cfg;
  cfg.max_steps = ~std::uint64_t{0};
  cfg.stop_when_complete = false;
  sim::Engine engine(std::move(pair.sender), std::move(pair.receiver),
                     std::make_unique<channel::DelChannel>(),
                     std::make_unique<channel::RoundRobinScheduler>(), cfg);
  engine.begin(iota_sequence(m));
  for (auto _ : state) {
    engine.step_once();
    if (engine.completed()) {
      state.PauseTiming();
      engine.begin(iota_sequence(m));
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineStepRoundRobin);

void BM_FullRunRepFreeDel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const seq::Sequence x = iota_sequence(m);
  const auto spec = repfree_del_spec(m, 0.2);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto r = stp::run_one(spec, x, seed++);
    benchmark::DoNotOptimize(r.stats.steps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_FullRunRepFreeDel)->Arg(8)->Arg(32)->Arg(128);

void BM_DupChannelSendDeliver(benchmark::State& state) {
  channel::DupChannel ch;
  sim::MsgId next = 0;
  for (auto _ : state) {
    ch.send(sim::Dir::kSenderToReceiver, next % 64);
    ch.deliver(sim::Dir::kSenderToReceiver, next % 64);
    ++next;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DupChannelSendDeliver);

void BM_DelChannelSendDeliver(benchmark::State& state) {
  channel::DelChannel ch;
  sim::MsgId next = 0;
  for (auto _ : state) {
    ch.send(sim::Dir::kSenderToReceiver, next % 64);
    ch.deliver(sim::Dir::kSenderToReceiver, next % 64);
    ++next;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DelChannelSendDeliver);

void BM_RankUnrankRoundTrip(benchmark::State& state) {
  const int m = 12;
  std::uint64_t rank = 0;
  const std::uint64_t total = *seq::alpha_u64(m);
  for (auto _ : state) {
    const seq::Sequence x = seq::unrank_repetition_free(rank % total, m);
    benchmark::DoNotOptimize(seq::rank_repetition_free(x, m));
    rank += 997;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RankUnrankRoundTrip);

void BM_KnowledgeExploration(benchmark::State& state) {
  const int m = 2;
  const auto spec = repfree_dup_spec(m);
  const auto family = seq::canonical_repetition_free(m);
  for (auto _ : state) {
    const auto ex = knowledge::explore(
        spec, family,
        {.max_depth = static_cast<std::uint64_t>(state.range(0)),
         .max_points = 1000000});
    benchmark::DoNotOptimize(ex.points.size());
    state.counters["points"] = static_cast<double>(ex.points.size());
  }
}
BENCHMARK(BM_KnowledgeExploration)->Arg(4)->Arg(6)->Arg(8);

void BM_TargetedLearnTimes(benchmark::State& state) {
  const int m = 2;
  auto spec = repfree_dup_spec(m);
  spec.engine.record_trace = true;
  spec.engine.record_histories = true;
  const seq::Sequence x{1, 0};
  const sim::RunResult run = stp::run_one(spec, x, 3);
  const auto family = seq::canonical_repetition_free(m);
  for (auto _ : state) {
    const auto times = knowledge::learn_times_targeted(
        spec, family, run, run.stats.steps * 3 + 50, 50000);
    benchmark::DoNotOptimize(times.size());
  }
}
BENCHMARK(BM_TargetedLearnTimes);

void BM_BlockProtocolRun(benchmark::State& state) {
  stp::SystemSpec spec;
  spec.protocols = [] { return proto::make_block(4, 4, 64); };
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::FifoChannel>(0.1, 0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 200000;
  seq::Sequence x(64);
  for (int i = 0; i < 64; ++i) x[static_cast<std::size_t>(i)] = i % 4;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto r = stp::run_one(spec, x, seed++);
    benchmark::DoNotOptimize(r.completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BlockProtocolRun);

void BM_TemporalSafetyCheck(benchmark::State& state) {
  auto spec = repfree_del_spec(8, 0.2);
  spec.engine.record_trace = true;
  const sim::RunResult run = stp::run_one(spec, iota_sequence(8), 5);
  const auto snaps = spec::snapshots_of(run);
  const auto formula = spec::prefix_safety();
  for (auto _ : state) {
    benchmark::DoNotOptimize(formula.check(snaps).holds);
  }
  state.counters["snapshots"] = static_cast<double>(snaps.size());
}
BENCHMARK(BM_TemporalSafetyCheck);

void BM_ExhaustiveDeadlockScan(benchmark::State& state) {
  const auto spec = repfree_dup_spec(2);
  const auto family = seq::canonical_repetition_free(2);
  for (auto _ : state) {
    const auto verdict = knowledge::exhaustive_deadlock(
        spec, family, {.max_depth = 5, .max_points = 50000});
    benchmark::DoNotOptimize(verdict.points_checked);
  }
}
BENCHMARK(BM_ExhaustiveDeadlockScan);

void BM_MirrorAttack(benchmark::State& state) {
  const int m = 2;
  const auto table = overfull_table(m);
  const auto spec = encoded_spec(table, /*knowledge=*/true, /*del=*/false);
  const seq::Family family{seq::Domain{m}, table->inputs};
  for (auto _ : state) {
    const auto r = stp::find_attack(spec, family,
                                    {.skeleton_steps = 50000,
                                     .mirror_rounds = 500,
                                     .stall_rounds = 16});
    benchmark::DoNotOptimize(r.kind);
  }
}
BENCHMARK(BM_MirrorAttack);

}  // namespace
