// R4 (robustness) — the wire service layer under load, measured.
//
// For each session count n in {1, 64, 1024}: n concurrent Stenning
// sessions over a lossy, reordering loopback link (periodic drop in both
// directions, scripted by fault::periodic_plan), every session expected to
// finish with its output an exact copy of its input.  Reported per point:
//
//   * sessions/sec and items/sec (wall-clock throughput of the mux pair),
//   * ack-RTT p50/p99 in microseconds (sender-side send-to-next-inbound
//     samples, aggregated across sessions),
//   * frame-level accounting (sent/received/dropped) to confirm the link
//     really was hostile.
//
// Report-schema note: record_trial() is fed one trial per session — steps
// carries the session's outbound frame count (the wire analogue of
// protocol steps) and msgs its total frame traffic — so `trial_steps`
// percentiles describe per-session wire effort.  The metrics snapshot
// attached to the JSON is the client+server publish_metrics() output of
// the largest point.
#include <chrono>
#include <iostream>
#include <memory>

#include "analysis/table.hpp"
#include "common.hpp"
#include "fault/plan.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

constexpr int kDomain = 8;
constexpr std::size_t kSeqLen = 8;
constexpr std::uint64_t kDropPeriodSr = 9;
constexpr std::uint64_t kDropPeriodRs = 11;
constexpr std::uint64_t kPlanHorizon = 500000;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

net::LoopbackConfig lossy_wire() {
  net::LoopbackConfig wire;
  wire.plan = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                   sim::Dir::kSenderToReceiver, kDropPeriodSr,
                                   1, kPlanHorizon);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender,
                                       kDropPeriodRs, 1, kPlanHorizon);
  wire.plan.actions.insert(wire.plan.actions.end(), rs.actions.begin(),
                           rs.actions.end());
  wire.reorder_window = 4;
  wire.seed = 0xBE0C4;
  wire.max_queue = 16384;
  return wire;
}

struct PointResult {
  std::size_t sessions = 0;
  std::size_t completed = 0;
  double wall_ms = 0.0;
  double sessions_per_sec = 0.0;
  double items_per_sec = 0.0;
  obs::Percentiles rtt;
  net::NetStats client_stats;
  net::NetStats server_stats;
  std::uint64_t wire_dropped = 0;
};

PointResult run_point(std::size_t n, BenchRun& bench, bool attach_metrics) {
  auto wire = net::make_loopback(lossy_wire());

  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.steps_per_sweep = 2;
  cfg.max_inflight = 8;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = std::chrono::microseconds(300);

  net::StpClient client(wire.a.get(), cfg);
  net::StpServer server(wire.b.get(), cfg);
  for (std::uint32_t id = 0; id < n; ++id) {
    auto pair = proto::make_stenning(kDomain);
    const auto x = seq_for(id, kSeqLen);
    client.add_session(id, std::move(pair.sender), x);
    server.add_session(id, std::move(pair.receiver), x);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const bool drained =
      net::run_service_pair(client, server, std::chrono::seconds(120));
  const auto t1 = std::chrono::steady_clock::now();

  PointResult res;
  res.sessions = n;
  res.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  res.client_stats = client.mux().stats();
  res.server_stats = server.mux().stats();
  res.wire_dropped = wire.stats(sim::Dir::kSenderToReceiver).dropped +
                     wire.stats(sim::Dir::kReceiverToSender).dropped;

  std::vector<std::uint64_t> rtt_samples;
  for (const auto& r : client.mux().reports()) {
    rtt_samples.insert(rtt_samples.end(), r.ack_rtt_us.begin(),
                       r.ack_rtt_us.end());
  }
  res.rtt = obs::percentiles_u64(std::move(rtt_samples));

  // One report trial per session: steps = outbound frames, msgs = total
  // frame traffic, completed = both ends terminal-completed.
  const auto server_reports = server.mux().reports();
  for (std::size_t i = 0; i < server_reports.size(); ++i) {
    const auto& r = server_reports[i];
    const bool ok = drained && r.state == net::SessionState::kCompleted &&
                    r.items == kSeqLen;
    if (ok) ++res.completed;
    bench.record_trial(r.frames_out, r.frames_in + r.frames_out, ok);
  }

  const double secs = res.wall_ms / 1000.0;
  if (secs > 0.0) {
    res.sessions_per_sec = static_cast<double>(res.completed) / secs;
    res.items_per_sec =
        static_cast<double>(res.server_stats.items_done) / secs;
  }

  if (attach_metrics) {
    obs::MetricsRegistry reg;
    client.mux().publish_metrics(reg);
    server.mux().publish_metrics(reg);
    bench.metrics_json(reg.to_json());
  }
  return res;
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("r4_mux", argc, argv);
  const std::vector<std::size_t> points = {1, 64, 1024};
  bench.param("seq_len", static_cast<std::int64_t>(kSeqLen));
  bench.param("drop_period_sr", static_cast<std::int64_t>(kDropPeriodSr));
  bench.param("drop_period_rs", static_cast<std::int64_t>(kDropPeriodRs));
  bench.param("reorder_window", 4);
  bench.param("max_sessions", static_cast<std::int64_t>(points.back()));

  std::cout << analysis::heading(
      "R4 (robustness): session mux throughput over a lossy reordering "
      "link");

  analysis::Table table({"sessions", "completed", "wall ms", "sessions/s",
                         "items/s", "rtt p50 us", "rtt p99 us", "frames out",
                         "frames in", "wire drops"});
  bool shape = true;
  for (const std::size_t n : points) {
    const auto res = run_point(n, bench, /*attach_metrics=*/n == points.back());
    shape = shape && res.completed == n;
    table.add_row({std::to_string(res.sessions), std::to_string(res.completed),
                   fmt1(res.wall_ms), fmt1(res.sessions_per_sec),
                   fmt1(res.items_per_sec), fmt1(res.rtt.p50),
                   fmt1(res.rtt.p99),
                   std::to_string(res.client_stats.frames_sent +
                                  res.server_stats.frames_sent),
                   std::to_string(res.client_stats.frames_received +
                                  res.server_stats.frames_received),
                   std::to_string(res.wire_dropped)});
  }
  std::cout << "\n" << table.to_ascii();
  std::cout << "\nshape " << (shape ? "confirmed" : "VIOLATED")
            << ": every session completed with an exact copy at every "
               "point\n";
  return bench.finish(shape);
}
