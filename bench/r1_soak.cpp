// R1 (robustness) — chaos soak across the protocol suite.
//
// Every protocol is soaked under the same sampled channel-level fault plans
// (drop / duplicate / blackout / freeze bursts) on the reorder+delete
// channel, with the engine watchdog converting livelock into a structured
// verdict.  Protocols run inside their design envelope (repfree-del,
// Stenning) must ride out every schedule; ABP assumes FIFO and mod-K
// Stenning assumes bounded reordering, so the soak finds failures for them.
// The first ABP failure is then delta-debugged to a 1-minimal schedule and
// replayed twice to show the whole pipeline is deterministic.
//
// A second table injects crash-restart faults: Stenning's sender survives
// amnesia (cumulative acks fast-forward it), while repfree — whose entire
// defence against replay lives in volatile state — stalls or violates, the
// robustness cost of the paper's minimal-state design.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "stp/soak.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

stp::SystemSpec del_chaos_spec(std::function<proto::ProtocolPair()> protocols) {
  stp::SystemSpec spec;
  spec.protocols = std::move(protocols);
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  spec.engine.stall_window = 6000;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("r1_soak", argc, argv);
  bench.param("n", 8);
  bench.param("channel", "del+chaos");
  bench.param("protocols", 6);

  std::cout << analysis::heading(
      "R1 (robustness): chaos soak, minimization, crash-restart");

  const seq::Sequence x = iota_sequence(8);
  const stp::SoakConfig cfg;  // channel-level faults, seeds {1..5}

  struct Entry {
    std::string name;
    std::function<proto::ProtocolPair()> make;
  };
  const std::vector<Entry> suite = {
      {"repfree-del", [] { return proto::make_repfree_del(12); }},
      {"stenning", [] { return proto::make_stenning(12); }},
      {"go-back-n(4)", [] { return proto::make_go_back_n(12, 4); }},
      {"sel-repeat(4)", [] { return proto::make_selective_repeat(12, 4); }},
      {"abp", [] { return proto::make_abp(12); }},
      {"modk-stenning(4)", [] { return proto::make_modk_stenning(12, 4); }},
  };

  bool shape = true;
  analysis::Table table({"protocol", "trials", "completed", "safety-viol",
                         "stalled", "exhausted", "clean"});
  stp::SoakReport abp_report;
  for (const Entry& e : suite) {
    const auto spec = del_chaos_spec(e.make);
    const auto rep = stp::soak_sweep(e.name, spec, {x}, cfg);
    bench.record(rep);
    table.add_row({e.name, std::to_string(rep.trials),
                   std::to_string(rep.completed),
                   std::to_string(rep.safety_violations),
                   std::to_string(rep.stalled), std::to_string(rep.exhausted),
                   rep.clean() ? "yes" : "NO"});
    if (e.name == "abp") abp_report = rep;
    if (e.name == "repfree-del" || e.name == "stenning") {
      shape = shape && rep.clean();  // in-envelope: rode out every schedule
    }
  }
  std::cout << table.to_ascii();

  // --- minimize the first ABP failure and replay it ----------------------
  shape = shape && !abp_report.clean();
  if (!abp_report.clean()) {
    const stp::SoakFailure& f = abp_report.failures.front();
    std::cout << "\nfirst abp failure: seed " << f.seed << ", "
              << f.plan.size() << "-action plan -> " << f.detail << "\n";
    const auto min = stp::minimize_plan(del_chaos_spec(suite[4].make), f);
    std::cout << "minimized to " << min.plan.size() << " action(s) in "
              << min.probe_runs << " probe runs, verdict "
              << sim::to_cstr(min.verdict) << ":\n"
              << (min.plan.empty() ? "  (empty plan: bare reordering already "
                                     "defeats ABP)\n"
                                   : fault::to_text(min.plan));
    stp::SoakFailure shrunk = f;
    shrunk.plan = min.plan;
    const auto spec = del_chaos_spec(suite[4].make);
    const auto r1 = stp::replay_failure(spec, shrunk);
    const auto r2 = stp::replay_failure(spec, shrunk);
    const bool deterministic = r1.verdict == min.verdict &&
                               r2.verdict == r1.verdict &&
                               r2.stats.steps == r1.stats.steps &&
                               r2.output == r1.output;
    shape = shape && min.verdict != sim::RunVerdict::kCompleted &&
            deterministic;
    std::cout << "replayed twice: " << sim::to_cstr(r1.verdict) << " at step "
              << r1.stats.steps << " both times -> deterministic: "
              << (deterministic ? "yes" : "NO") << "\n";
  }

  // --- crash-restart: amnesia as a fault mode ----------------------------
  analysis::Table crash({"protocol", "crash-sender @writes 2",
                         "crash-receiver @writes 2"});
  const auto sender_crash = fault::plan_from_text("crash-sender @writes 2\n");
  const auto receiver_crash =
      fault::plan_from_text("crash-receiver @writes 2\n");
  for (std::size_t i = 0; i < 2; ++i) {
    const Entry& e = suite[i];  // repfree-del and stenning
    const auto spec = del_chaos_spec(e.make);
    const auto rs =
        stp::run_one(stp::with_chaos(spec, sender_crash), x, 11);
    const auto rr =
        stp::run_one(stp::with_chaos(spec, receiver_crash), x, 11);
    crash.add_row({e.name, sim::to_cstr(rs.verdict),
                   sim::to_cstr(rr.verdict)});
    if (e.name == "stenning") {
      // The sender survives amnesia; the receiver stalls but stays safe.
      shape = shape && rs.verdict == sim::RunVerdict::kCompleted &&
              rr.verdict == sim::RunVerdict::kStalled;
    }
    if (e.name == "repfree-del") {
      // The receiver's replay defence lives in volatile state: a restart
      // with stale data copies in flight re-writes an item.  The bad write
      // comes after the crash, so the verdict blames the (absent) recovery
      // layer — see bench/r2_recovery for the durable counterpart.  (A
      // *sender* restart can go either way — stale acks sometimes
      // fast-forward it.)
      shape = shape && rr.verdict == sim::RunVerdict::kRecoveryViolation;
    }
  }
  std::cout << "\n" << crash.to_ascii();

  std::cout << "\nexpected: in-envelope protocols soak clean; ABP fails under "
               "reordering chaos and its failing plan shrinks to a minimal, "
               "deterministically replayable schedule; Stenning's sender "
               "survives amnesia while repfree's receiver violates safety "
               "(a post-crash, recovery-classified violation).\n"
            << "measured: " << (shape ? "CONFIRMED" : "NOT CONFIRMED")
            << "\n";
  return bench.finish(shape);
}
