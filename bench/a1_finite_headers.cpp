// A1 (ablation) — finite headers on reordering channels: the bound biting a
// classic design.
//
// mod-K Stenning uses a finite alphabet of K|D| data messages + K acks.  On
// FIFO links it is correct (K = 2 is morally the Alternating Bit Protocol);
// on a reordering+deleting channel, Theorem 2 says its allowable family is
// capped at alpha(K|D|) — far below "all sequences" — so stale wrapped tags
// must eventually corrupt or wedge transfers.  We measure the failure rate
// across seeds as K and |X| grow, plus an exhaustive small-model
// confirmation that the wraparound violation is reachable.
//
// Expected shape: FIFO column clean everywhere; reorder columns degrade —
// bigger K delays the wraparound but never eliminates it.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "knowledge/explorer.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

seq::Sequence alternating(int n) {
  seq::Sequence x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // A pattern whose wrapped positions disagree, so corruption is visible.
    x[static_cast<std::size_t>(i)] = (i % 3 == 0) ? 0 : 1;
  }
  return x;
}

double failure_rate(const stp::SystemSpec& spec, const seq::Sequence& x,
                    std::size_t trials) {
  std::size_t failures = 0;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const auto r = stp::run_one(spec, x, seed);
    if (!r.safety_ok || !r.completed) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("a1_finite_headers", argc, argv);
  bench.param("ks", "2,4,8");
  bench.param("sizes", "8,24");
  bench.param("trials_per_cell", 30);

  std::cout << analysis::heading(
      "A1 (ablation): mod-K Stenning — finite headers vs reordering");

  const std::size_t kTrials = 30;
  analysis::Table table({"K", "|X|", "FIFO fail rate", "reorder fail rate"});
  bool shape = true;
  for (int k : {2, 4, 8}) {
    for (int n : {8, 24}) {
      const seq::Sequence x = alternating(n);

      stp::SystemSpec fifo;
      fifo.protocols = [k] { return proto::make_modk_stenning(2, k); };
      fifo.channel = [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.2, 0.2, seed);
      };
      fifo.scheduler = [](std::uint64_t seed) {
        return std::make_unique<channel::FairRandomScheduler>(seed);
      };
      fifo.engine.max_steps = 300000;

      stp::SystemSpec reorder = fifo;
      reorder.channel = [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.0, seed);
      };

      const double fifo_rate = failure_rate(fifo, x, kTrials);
      const double reorder_rate = failure_rate(reorder, x, kTrials);
      bench.record_trial(0, 0, fifo_rate == 0.0);
      shape = shape && fifo_rate == 0.0;
      if (k == 2 && n == 24) shape = shape && reorder_rate > 0.0;
      table.add_row({std::to_string(k), std::to_string(n),
                     fixed(fifo_rate, 2), fixed(reorder_rate, 2)});
    }
  }
  std::cout << table.to_ascii();

  // Exhaustive confirmation for the smallest case: the violation is not a
  // statistical fluke but a reachable state.
  stp::SystemSpec spec;
  spec.protocols = [] { return proto::make_modk_stenning(2, 2); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DelChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  const auto verdict = knowledge::exhaustive_safety(
      spec, seq::Family{seq::Domain{2}, {seq::Sequence{0, 1, 1}}},
      {.max_depth = 14, .max_points = 3000000});
  std::cout << "\nexhaustive (K=2, X=<0 1 1>, depth 14): "
            << verdict.points_checked << " states, violation "
            << (verdict.violation_found ? "REACHABLE (output " +
                                              seq::to_string(
                                                  verdict.violating_output) +
                                              ")"
                                        : "not found")
            << "\n";
  shape = shape && verdict.violation_found;

  std::cout << "\npaper: a fixed finite alphabet cannot carry an unbounded "
               "family over reordering channels, however the headers are "
               "spent.\n"
            << "measured: " << (shape ? "CONFIRMED" : "NOT CONFIRMED")
            << "\n";
  return bench.finish(shape);
}
