// R5 (robustness) — crash-restart rehydration of the durable mux, measured.
//
// For each session count n in {1000, 10000}: n concurrent Stenning
// sessions over a lossy, reordering loopback link, against a server whose
// shards checkpoint every session into two stable stores by group commit.
// Once every session has landed at least one item (so every session is
// manifested), the server is kill()ed mid-traffic — crash-shaped, no final
// flush — and a second generation is constructed on the same transport
// endpoint and stores.  rehydrate() re-admits every manifested session;
// the run then drains to completion across the restart.  Reported per
// point:
//
//   * per-session restore latency p50/p99 in microseconds plus the whole
//     rehydrate() wall time (scan + fold + restore for all n sessions),
//   * items/sec before the kill vs after the restart — the cost of
//     superseded checkpoints is bounded retransmission, visible as the
//     gap between the two rates,
//   * rehydrated / cold-readded / completed counts and the generation-1
//     checkpoint accounting (group-commit flushes, records, bytes).
//
// Report-schema note: record_trial() is fed one trial per generation-2
// session — steps carries the session's outbound frame count and msgs its
// total frame traffic, so `trial_steps` percentiles describe the
// post-restart wire effort per session.  The metrics snapshot attached to
// the JSON is the client+gen2 publish_metrics() output of the largest
// point.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/table.hpp"
#include "common.hpp"
#include "fault/plan.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "proto/suite.hpp"
#include "store/stable_store.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

constexpr int kDomain = 8;
constexpr std::size_t kSeqLen = 6;
constexpr std::uint64_t kDropPeriodSr = 9;
constexpr std::uint64_t kDropPeriodRs = 11;
constexpr std::uint64_t kPlanHorizon = 2000000;

seq::Sequence seq_for(std::uint32_t id, std::size_t len) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

net::LoopbackConfig lossy_wire() {
  net::LoopbackConfig wire;
  wire.plan = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                   sim::Dir::kSenderToReceiver, kDropPeriodSr,
                                   1, kPlanHorizon);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender,
                                       kDropPeriodRs, 1, kPlanHorizon);
  wire.plan.actions.insert(wire.plan.actions.end(), rs.actions.begin(),
                           rs.actions.end());
  wire.reorder_window = 4;
  wire.seed = 0xD0B5;
  wire.max_queue = 65536;
  return wire;
}

/// Per-session prefix attestation across a restart: on_rehydrate seeds the
/// expected next index from the restored durable position, so a superseded
/// checkpoint re-earns items but never skips or repeats one within a
/// server generation.
class ProgressProbe final : public net::INetProbe {
 public:
  explicit ProgressProbe(std::size_t max_sessions) : next_(max_sessions) {
    for (auto& a : next_) a.store(0, std::memory_order_relaxed);
  }

  void on_item(std::uint32_t session, std::size_t index) override {
    ++items_;
    const std::size_t want =
        next_[session].fetch_add(1, std::memory_order_relaxed);
    if (index != want) out_of_order_ = true;
  }
  void on_rehydrate(std::uint32_t session, std::size_t position,
                    net::SessionState) override {
    ++rehydrated_;
    next_[session].store(position, std::memory_order_relaxed);
  }

  std::size_t min_progress(std::size_t n) const {
    std::size_t lo = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      lo = std::min(lo, next_[i].load(std::memory_order_relaxed));
    }
    return lo;
  }
  std::uint64_t items() const { return items_; }
  std::uint64_t rehydrated() const { return rehydrated_; }
  bool out_of_order() const { return out_of_order_; }

 private:
  std::vector<std::atomic<std::size_t>> next_;
  std::atomic<std::uint64_t> items_{0}, rehydrated_{0};
  std::atomic<bool> out_of_order_{false};
};

net::StpServer::ReceiverFactory stenning_receiver_factory() {
  return [](std::uint32_t,
            std::uint64_t tag) -> std::unique_ptr<sim::IReceiver> {
    if (tag != store::proto_tag_of("stenning-receiver")) return nullptr;
    return proto::make_stenning(kDomain).receiver;
  };
}

struct PointResult {
  std::size_t sessions = 0;
  std::size_t rehydrated = 0;
  std::size_t cold_adds = 0;
  std::size_t completed = 0;
  obs::Percentiles restore;     // per-session restore latency, us
  double rehydrate_wall_ms = 0.0;
  double items_per_sec_before = 0.0;
  double items_per_sec_after = 0.0;
  std::uint64_t ckpt_flushes = 0;
  std::uint64_t ckpt_records = 0;
  std::uint64_t ckpt_bytes = 0;
  std::uint64_t wire_dropped = 0;
  bool ok = false;
};

PointResult run_point(std::size_t n, BenchRun& bench, bool attach_metrics) {
  auto wire = net::make_loopback(lossy_wire());
  store::MemStore st0, st1;
  st0.reset();
  st1.reset();
  ProgressProbe probe1(n), probe2(n);

  net::MuxConfig cfg;
  cfg.workers = 4;
  cfg.steps_per_sweep = 2;
  cfg.max_inflight = 8;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = std::chrono::microseconds(400);

  net::StpClient client(wire.a.get(), cfg);
  net::MuxConfig scfg = cfg;
  scfg.probe = &probe1;
  scfg.session_stores = {&st0, &st1};
  net::StpServer server(wire.b.get(), scfg);
  for (std::uint32_t id = 0; id < n; ++id) {
    // Dup-ack go-back on: a durably-rewound receiver must pull the sender
    // back instead of wedging the stop-and-wait pair.
    auto pair = proto::make_stenning(kDomain, /*sender_ack_rewind=*/true);
    const auto x = seq_for(id, kSeqLen);
    client.add_session(id, std::move(pair.sender), x);
    server.add_session(id, std::move(pair.receiver), x);
  }

  PointResult res;
  res.sessions = n;

  // Phase A: run until every session has made progress (and is therefore
  // manifested), then kill generation 1 crash-shaped.
  const auto t0 = std::chrono::steady_clock::now();
  client.mux().start();
  server.mux().start();
  const auto window_deadline = t0 + std::chrono::seconds(180);
  bool window = false;
  while (std::chrono::steady_clock::now() < window_deadline) {
    if (probe1.min_progress(n) >= 1) {
      window = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.mux().kill();
  const auto t_kill = std::chrono::steady_clock::now();
  const double phase_a_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t_kill - t0)
          .count();
  const auto gen1 = server.mux().stats();
  res.ckpt_flushes = gen1.checkpoint_flushes;
  res.ckpt_records = gen1.checkpoint_records;
  res.ckpt_bytes = gen1.checkpoint_bytes;

  // Restart: generation 2 on the same endpoint and stores, rehydration
  // timed end to end (log scan + newest-per-session fold + restores).
  net::MuxConfig s2cfg = cfg;
  s2cfg.probe = &probe2;
  s2cfg.session_stores = {&st0, &st1};
  net::StpServer gen2(wire.b.get(), s2cfg);
  const auto t_r0 = std::chrono::steady_clock::now();
  const auto rep = gen2.rehydrate(
      stenning_receiver_factory(),
      [](std::uint32_t id) { return seq_for(id, kSeqLen); });
  res.rehydrate_wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - t_r0)
          .count();
  res.rehydrated = rep.sessions;
  res.restore = obs::percentiles_u64(
      std::vector<std::uint64_t>(rep.restore_latency_us));

  // Storage-amnesia fallback: a session killed before its second cadence
  // flush may have had no surviving record; the operator re-adds it cold
  // and the wire heals by full retransmission.
  std::vector<bool> present(n, false);
  for (const auto& r : gen2.mux().reports()) present[r.id] = true;
  for (std::uint32_t id = 0; id < n; ++id) {
    if (present[id]) continue;
    gen2.add_session(id, proto::make_stenning(kDomain).receiver,
                     seq_for(id, kSeqLen));
    ++res.cold_adds;
  }

  // Phase B: drain both ends across the restart.
  const auto t_b0 = std::chrono::steady_clock::now();
  gen2.mux().start();
  const bool drained = client.mux().drain(std::chrono::seconds(300)) &&
                       gen2.mux().drain(std::chrono::seconds(300));
  gen2.mux().stop();
  client.mux().stop();
  const double phase_b_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - t_b0)
          .count();

  const auto gen2_stats = gen2.mux().stats();
  if (phase_a_ms > 0.0) {
    res.items_per_sec_before =
        static_cast<double>(gen1.items_done) / (phase_a_ms / 1000.0);
  }
  if (phase_b_ms > 0.0) {
    res.items_per_sec_after =
        static_cast<double>(gen2_stats.items_done) / (phase_b_ms / 1000.0);
  }
  res.wire_dropped = wire.stats(sim::Dir::kSenderToReceiver).dropped +
                     wire.stats(sim::Dir::kReceiverToSender).dropped;

  // One report trial per generation-2 session: steps = outbound frames,
  // msgs = total frame traffic, completed = terminal with a full copy.
  for (const auto& r : gen2.mux().reports()) {
    const bool ok = drained && r.state == net::SessionState::kCompleted &&
                    r.items == kSeqLen;
    if (ok) ++res.completed;
    bench.record_trial(r.frames_out, r.frames_in + r.frames_out, ok);
  }

  res.ok = window && drained && res.completed == n && rep.violations == 0 &&
           rep.declined == 0 && !probe2.out_of_order() &&
           probe2.rehydrated() == rep.sessions &&
           res.rehydrated + res.cold_adds == n;

  if (attach_metrics) {
    obs::MetricsRegistry reg;
    client.mux().publish_metrics(reg);
    gen2.mux().publish_metrics(reg);
    bench.metrics_json(reg.to_json());
  }
  return res;
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("r5_durable_mux", argc, argv);
  const std::vector<std::size_t> points = {1000, 10000};
  bench.param("seq_len", static_cast<std::int64_t>(kSeqLen));
  bench.param("drop_period_sr", static_cast<std::int64_t>(kDropPeriodSr));
  bench.param("drop_period_rs", static_cast<std::int64_t>(kDropPeriodRs));
  bench.param("reorder_window", 4);
  bench.param("session_stores", 2);
  bench.param("max_sessions", static_cast<std::int64_t>(points.back()));

  std::cout << analysis::heading(
      "R5 (robustness): kill + restart rehydration of the durable session "
      "mux");

  analysis::Table table({"sessions", "rehydrated", "cold", "restore p50 us",
                         "restore p99 us", "rehydrate ms", "items/s before",
                         "items/s after", "completed", "ckpt flushes",
                         "wire drops"});
  bool shape = true;
  for (const std::size_t n : points) {
    const auto res = run_point(n, bench, /*attach_metrics=*/n == points.back());
    shape = shape && res.ok;
    table.add_row({std::to_string(res.sessions),
                   std::to_string(res.rehydrated),
                   std::to_string(res.cold_adds), fmt1(res.restore.p50),
                   fmt1(res.restore.p99), fmt1(res.rehydrate_wall_ms),
                   fmt1(res.items_per_sec_before),
                   fmt1(res.items_per_sec_after),
                   std::to_string(res.completed),
                   std::to_string(res.ckpt_flushes),
                   std::to_string(res.wire_dropped)});
  }
  std::cout << "\n" << table.to_ascii();
  std::cout << "\nshape " << (shape ? "confirmed" : "VIOLATED")
            << ": every manifested session rehydrated and every session "
               "completed in order across the restart at every point\n";
  return bench.finish(shape);
}
