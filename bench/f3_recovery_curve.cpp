// F3 — the recovery curve behind T6 (§5), in figure form.
//
// Recovery time of the weakly-bounded hybrid after a single fault, as a
// function of BOTH the input length and the fault position.  The paper's
// argument predicts: recovery depends on |X| (the whole sequence is
// replayed) and barely on where the fault hits; a bounded protocol's curve
// is flat in both directions.  Series are emitted in CSV for plotting.
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "stp/fault.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

stp::SystemSpec hybrid_spec(int m, int timeout) {
  stp::SystemSpec spec;
  spec.protocols = [m, timeout] { return proto::make_hybrid(m, timeout); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::FifoChannel>();
  };
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  spec.engine.max_steps = 4000000;
  return spec;
}

seq::Sequence repeating_sequence(int n, int m) {
  seq::Sequence x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = i % m;
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("f3_recovery_curve", argc, argv);
  bench.param("sizes", "16..128");
  bench.param("fault_positions", "2,n/2,n-2");

  std::cout << analysis::heading(
      "F3: single-fault recovery curve — fault position x input length");

  analysis::Table table({"|X|", "fault@", "hybrid recovery", "hybrid finish",
                         "repfree recovery", "repfree finish"});
  analysis::Table csv({"len", "fault_at", "hybrid_finish",
                       "repfree_recovery"});
  std::vector<double> lens, hybrid_by_len;  // next-write gap vs length
  bool ok = true;
  for (int n : {16, 32, 64, 128}) {
    for (std::size_t at : {std::size_t{2}, static_cast<std::size_t>(n) / 2,
                           static_cast<std::size_t>(n) - 2}) {
      const auto hyb = stp::measure_fault_recovery(
          hybrid_spec(3, 12), repeating_sequence(n, 3),
          {.fault_after_writes = at}, 1);
      const auto rep = stp::measure_fault_recovery(
          repfree_del_spec(n, 0.0), iota_sequence(n),
          {.fault_after_writes = at}, 1);
      ok = ok && hyb.completed && rep.completed;
      bench.record_trial(hyb.steps_to_completion, 0, hyb.completed);
      bench.record_trial(rep.steps_to_completion, 0, rep.completed);
      if (at == 2) {
        lens.push_back(n);
        hybrid_by_len.push_back(static_cast<double>(hyb.recovery_steps));
      }
      table.add_row({std::to_string(n), std::to_string(at),
                     std::to_string(hyb.recovery_steps),
                     std::to_string(hyb.steps_to_completion),
                     std::to_string(rep.recovery_steps),
                     std::to_string(rep.steps_to_completion)});
      csv.add_row({std::to_string(n), std::to_string(at),
                   std::to_string(hyb.steps_to_completion),
                   std::to_string(rep.recovery_steps)});
    }
  }
  std::cout << table.to_ascii();

  const double slope = analysis::linear_slope(lens, hybrid_by_len);
  std::cout << "\nhybrid next-write-after-fault slope vs |X| (fault at 2): "
            << fixed(slope, 2) << " steps/item\n";
  std::cout << "\ncsv (for plotting):\n" << csv.to_csv();

  const bool shape = slope > 1.0;
  std::cout << "\npaper: recovery of the weakly-bounded protocol is a "
               "function of |X|, not of the index being learnt.\n"
            << "measured: " << (ok && shape ? "CONFIRMED" : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok && shape);
}
