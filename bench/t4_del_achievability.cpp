// T4 — achievability for 𝒳-STP(del) (end of §4).
//
// The retransmitting variant of the repfree protocol is a *bounded*
// solution for |𝒳| = alpha(m) over a channel that reorders and deletes.
// Part 1 sweeps the full canonical family under several deletion rates;
// part 2 measures the boundedness certificate itself: the per-index
// learning gaps (steps between consecutive writes) are flat — a constant
// f(i) = O(1) independent of i and of |X|, matching Definition 2.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "knowledge/explorer.hpp"
#include "stp/boundedness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("t4_del_achievability", argc, argv);
  bench.param("max_m", 4);
  bench.param("channel", "del");
  bench.param("loss_rates", "0.0,0.3");

  std::cout << analysis::heading(
      "T4: bounded repfree protocol solves X-STP(del) at |X| = alpha(m)");

  analysis::Table table({"m", "loss", "|X|", "trials", "safety fails",
                         "liveness fails", "avg steps"});
  bool all_ok = true;
  for (int m = 1; m <= 4; ++m) {
    for (double loss : {0.0, 0.3}) {
      const seq::Family family = seq::canonical_repetition_free(m);
      const auto result = stp::sweep_family(repfree_del_spec(m, loss),
                                            family, seed_range(200, 3));
      bench.record(result);
      all_ok = all_ok && result.all_ok();
      table.add_row({std::to_string(m), fixed(loss, 1),
                     std::to_string(family.size()),
                     std::to_string(result.trials),
                     std::to_string(result.safety_failures),
                     std::to_string(result.incomplete),
                     fixed(result.avg_steps(), 1)});
    }
  }
  std::cout << table.to_ascii();

  std::cout << "\nboundedness certificate — max learning gap per index i\n"
               "(steps between writing item i-1 and item i; 20 trials):\n";
  analysis::Table gaps({"|X|", "max gap (any i)", "mean gap",
                        "gap grows with i?"});
  bool flat = true;
  for (int n : {4, 8, 16, 32}) {
    const auto profile = stp::measure_gaps(repfree_del_spec(n, 0.2),
                                           iota_sequence(n),
                                           seed_range(300, 20));
    // Compare the late-index gaps with the early ones.
    const std::size_t half = profile.max_gap.size() / 2;
    std::uint64_t early = 0, late = 0;
    for (std::size_t i = 0; i < profile.max_gap.size(); ++i) {
      (i < half ? early : late) =
          std::max(i < half ? early : late, profile.max_gap[i]);
    }
    const bool grows = late > early * 4 + 32;
    flat = flat && !grows && profile.failed_runs == 0;
    gaps.add_row({std::to_string(n), std::to_string(profile.overall_max),
                  fixed(profile.overall_mean, 1), grows ? "YES" : "no"});
  }
  std::cout << gaps.to_ascii();

  // Small-model certainty on the deletion channel too.
  const auto verdict = knowledge::exhaustive_safety(
      repfree_del_spec(2, 0.0), seq::canonical_repetition_free(2),
      {.max_depth = 8, .max_points = 1000000});
  std::cout << "\nexhaustive check (m=2, all schedules to depth 8): "
            << verdict.points_checked << " reachable states, "
            << (verdict.violation_found ? "VIOLATION FOUND" : "all safe")
            << "\n";

  const bool ok = all_ok && flat && !verdict.violation_found;
  std::cout << "\npaper: a bounded solution exists at |X| = alpha(m) for "
               "reorder+delete channels.\n"
            << "measured: "
            << (ok ? "CONFIRMED — 0 failures, learning gaps flat in i and "
                     "|X| (constant f)"
                   : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok);
}
