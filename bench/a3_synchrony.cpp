// A3 (ablation) — what the alpha(m) wall is made of: asynchrony and
// reordering, not loss.
//
// The paper's §1 contrasts its channels with the early synchronous models
// ([AUY79], [AUWY82]) where a lost transmission is detected immediately.
// On such a link, stop-and-wait with |M^S| = |D| and ZERO receiver->sender
// messages carries EVERY sequence over D — repetitions, any length — even
// at 40% loss.  The same alphabet on the paper's reordering channels caps
// the family at alpha(|D|).  Side by side:
//
//   channel assumptions        alphabet   supported family
//   sync + detectable loss     d          all of D*            (this bench)
//   async reorder + dup        d          alpha(d)  [T2/T3]
//   async reorder + del        d          alpha(d), bounded    [T4/T5]
#include <iostream>

#include "analysis/table.hpp"
#include "channel/sync_channel.hpp"
#include "common.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("a3_synchrony", argc, argv);
  bench.param("d", 2);
  bench.param("channel", "sync_loss");
  bench.param("loss_rates", "0.0,0.3,0.4");

  std::cout << analysis::heading(
      "A3 (ablation): synchronous detectable loss vs the paper's channels");

  bool ok = true;

  // Part 1: the sync protocol carries every word of length <= 4 over a
  // 2-symbol domain — 31 sequences, far beyond alpha(2) = 5 — plus long
  // repetition-heavy inputs under heavy loss.
  analysis::Table table({"family", "|X| (family size)", "alpha(d) cap",
                         "loss", "trials", "failures"});
  {
    const int d = 2;
    const seq::Family family = seq::all_words_up_to(d, 4);
    for (double loss : {0.0, 0.4}) {
      stp::SystemSpec spec;
      spec.protocols = [d] { return proto::make_sync_stop_wait(d); };
      spec.channel = [loss](std::uint64_t seed) {
        return std::make_unique<channel::SyncLossChannel>(loss, seed);
      };
      spec.scheduler = [](std::uint64_t seed) {
        return std::make_unique<channel::FairRandomScheduler>(seed);
      };
      spec.engine.max_steps = 200000;
      const auto result = stp::sweep_family(spec, family, seed_range(700, 3));
      bench.record(result);
      ok = ok && result.all_ok();
      table.add_row({"all words over D, len<=4",
                     std::to_string(family.size()),
                     std::to_string(*seq::alpha_u64(d)), fixed(loss, 1),
                     std::to_string(result.trials),
                     std::to_string(result.safety_failures +
                                    result.incomplete)});
    }
  }
  // A long repetition-heavy stress input.
  {
    const int d = 3;
    seq::Sequence x;
    for (int i = 0; i < 100; ++i) x.push_back(i % 2);  // 0101... over d=3
    stp::SystemSpec spec;
    spec.protocols = [d] { return proto::make_sync_stop_wait(d); };
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::SyncLossChannel>(0.3, seed);
    };
    spec.scheduler = [](std::uint64_t seed) {
      return std::make_unique<channel::FairRandomScheduler>(seed);
    };
    spec.engine.max_steps = 400000;
    const auto result = stp::sweep_input(spec, x, seed_range(710, 5));
    bench.record(result);
    ok = ok && result.all_ok();
    table.add_row({"0101... x100 over d=3", "1 (length 100)",
                   std::to_string(*seq::alpha_u64(d)), "0.3",
                   std::to_string(result.trials),
                   std::to_string(result.safety_failures +
                                  result.incomplete)});
  }
  std::cout << table.to_ascii();

  // Part 2: the same alphabet on the paper's channel cannot even be GIVEN
  // the bigger family — the encoding pigeonhole refuses.
  const auto enc =
      seq::try_build_encoding(seq::all_words_up_to(2, 4), 2);
  std::cout << "\nthe same 31-sequence family on a reordering channel with "
               "|M^S| = 2:\n  prefix-monotone encoding exists? "
            << (enc.has_value() ? "YES (bug!)" : "no — alpha(2) = 5 is the cap")
            << "\n";
  ok = ok && !enc.has_value();

  std::cout << "\npaper (§1): synchronous detectable-loss channels make STP "
               "easy; the bounds here are about reordering asynchrony.\n"
            << "measured: "
            << (ok ? "CONFIRMED — 0 failures for all of D* on the sync "
                     "link; the alpha cap is a property of the channel, "
                     "not the alphabet"
                   : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok);
}
