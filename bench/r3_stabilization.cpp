// R3 (robustness) — the self-stabilization layer, measured.
//
// Three exhibits:
//
//   1. Hardened vs un-hardened under the same lie.  One corrupted payload
//      aimed at Stenning's receiver makes the transfer diverge (a wrong
//      item is written and never repaired past the convergence window); the
//      identical schedule against the hardened protocol is a non-event —
//      the checksum sheds the mangled id and retransmission replaces it.
//
//   2. The stabilization conformance matrix.  Every protocol in the suite
//      runs against all three corruption kinds (corrupt-payload,
//      forge-message, scramble-state) x both target processes, on its
//      design channel, and each cell's verdict must match its documented
//      pin (docs/STABILIZATION.md).  The hardened row is pinned kCompleted
//      everywhere; the un-hardened divergences are pinned as expected.
//
//   3. Stabilization cost.  Metrics from an instrumented corrupted run —
//      scrambles applied/rejected and the steps from last corruption to
//      re-convergence — attached to the JSON report.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "obs/metrics.hpp"
#include "stp/stabilization.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("r3_stabilization", argc, argv);
  bench.param("n", 6);
  bench.param("corruption_kinds", 3);

  std::cout << analysis::heading(
      "R3 (robustness): self-stabilization — corruption, convergence, "
      "conformance");

  bool shape = true;

  // --- 1. hardened vs un-hardened under the same lie -----------------------
  {
    const seq::Sequence x{0, 1, 2, 3, 4, 5};
    // A forged in-alphabet id toward the receiver: repfree-dup believes it
    // (content IS the protocol's only header) and writes it out of order.
    const fault::FaultPlan plan = stp::stabilization_plan(
        fault::FaultKind::kForgeMessage, sim::Proc::kReceiver);
    auto spec_of = [](std::function<proto::ProtocolPair()> make) {
      stp::SystemSpec spec;
      spec.protocols = std::move(make);
      spec.channel = [](std::uint64_t) {
        return std::make_unique<channel::DupChannel>();
      };
      spec.scheduler = [](std::uint64_t seed) {
        return std::make_unique<channel::FairRandomScheduler>(seed);
      };
      spec.engine.max_steps = 60000;
      spec.engine.stall_window = 6000;
      spec.engine.convergence_window = 2;
      return spec;
    };
    analysis::Table duel({"protocol", "schedule", "verdict", "converged",
                          "output"});
    const auto naive = stp::run_one(
        stp::with_chaos(spec_of([] { return proto::make_repfree_dup(6); }),
                        plan),
        x, 2026);
    const auto tough = stp::run_one(
        stp::with_chaos(spec_of([] { return proto::make_hardened(6); }), plan),
        x, 2026);
    duel.add_row({"repfree-dup", fault::to_text(plan),
                  sim::to_cstr(naive.verdict), naive.converged ? "yes" : "no",
                  seq::to_string(naive.output)});
    duel.add_row({"hardened", fault::to_text(plan),
                  sim::to_cstr(tough.verdict), tough.converged ? "yes" : "no",
                  seq::to_string(tough.output)});
    std::cout << "\n" << duel.to_ascii();
    bench.record_trial(naive.stats.steps,
                       naive.stats.sent[0] + naive.stats.sent[1],
                       naive.verdict == sim::RunVerdict::kCompleted);
    bench.record_trial(tough.stats.steps,
                       tough.stats.sent[0] + tough.stats.sent[1],
                       tough.verdict == sim::RunVerdict::kCompleted);
    // The exhibit's shape: the same single lie is fatal to the trusting
    // protocol and invisible to the hardened one.
    shape = shape && naive.verdict != sim::RunVerdict::kCompleted &&
            tough.verdict == sim::RunVerdict::kCompleted;
  }

  // --- 2. the conformance matrix -------------------------------------------
  const auto cases = stp::default_stabilization_cases();
  const stp::StabilizationReport report = stp::stabilization_sweep(cases, 2026);
  analysis::Table matrix({"protocol", "trials", "as pinned", "completed",
                          "corruptions", "scrambles ok/rej"});
  for (const auto& c : cases) {
    std::uint64_t trials = 0, pinned = 0, completed = 0, corruptions = 0;
    std::uint64_t sok = 0, srej = 0;
    for (const auto& t : report.trials) {
      if (t.protocol != c.name) continue;
      ++trials;
      if (t.detail.empty()) ++pinned;
      if (t.verdict == sim::RunVerdict::kCompleted) ++completed;
      corruptions += t.corruptions;
      sok += t.scrambles_applied;
      srej += t.scrambles_rejected;
    }
    matrix.add_row({c.name, std::to_string(trials), std::to_string(pinned),
                    std::to_string(completed), std::to_string(corruptions),
                    std::to_string(sok) + "/" + std::to_string(srej)});
  }
  std::cout << "\n" << matrix.to_ascii();
  // Fold the matrix as a sweep so the JSON verdict breakdown carries the
  // stabilization-violation count (record_trial only knows completed/not).
  stp::SweepResult fold;
  for (const auto& t : report.trials) {
    ++fold.trials;
    fold.total_steps += t.steps;
    fold.trial_steps.push_back(t.steps);
    switch (t.verdict) {
      case sim::RunVerdict::kStabilizationViolation:
        ++fold.stabilization_failures;
        break;
      case sim::RunVerdict::kSafetyViolation:
        ++fold.safety_failures;
        break;
      case sim::RunVerdict::kRecoveryViolation:
        ++fold.recovery_failures;
        break;
      case sim::RunVerdict::kStalled:
        ++fold.stalled;
        ++fold.incomplete;
        break;
      case sim::RunVerdict::kBudgetExhausted:
        ++fold.exhausted;
        ++fold.incomplete;
        break;
      case sim::RunVerdict::kCompleted:
        break;
    }
    if (!t.detail.empty()) std::cout << "OFF-PIN: " << t.detail << "\n";
  }
  bench.record(fold);
  shape = shape && report.clean();
  // The hardened protocol must complete every cell, not merely match a pin.
  for (const auto& t : report.trials) {
    if (t.protocol == "hardened")
      shape = shape && t.verdict == sim::RunVerdict::kCompleted;
  }

  // --- 3. stabilization cost metrics ---------------------------------------
  {
    stp::SystemSpec spec;
    spec.protocols = [] { return proto::make_hardened(6); };
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::DelChannel>(0.1, seed);
    };
    spec.scheduler = [](std::uint64_t seed) {
      return std::make_unique<channel::FairRandomScheduler>(seed);
    };
    spec.engine.max_steps = 60000;
    spec.engine.stall_window = 6000;
    spec.engine.convergence_window = 2;
    obs::MetricsRegistry reg;
    obs::MetricsProbe probe(&reg);
    spec.engine.probe = &probe;
    // A corruption storm: mangle both directions, forge into both, scramble
    // both processes.  The hardened protocol must still complete.
    fault::FaultPlan storm;
    for (fault::FaultKind kind : stp::kCorruptionKinds) {
      for (sim::Proc proc : {sim::Proc::kSender, sim::Proc::kReceiver}) {
        fault::FaultPlan one = stp::stabilization_plan(kind, proc);
        for (auto& a : one.actions) {
          storm.actions.push_back(a);
        }
      }
    }
    const seq::Sequence x{0, 1, 2, 3, 4, 5};
    const auto r = stp::run_one(stp::with_chaos(spec, storm), x, 7);
    shape = shape && r.verdict == sim::RunVerdict::kCompleted;
    std::cout << "\ncorruption-storm run (hardened): "
              << sim::to_cstr(r.verdict) << " with " << r.stats.corruptions
              << " corruptions, scrambles " << r.stats.scrambles_applied
              << " applied / " << r.stats.scrambles_rejected << " rejected, "
              << reg.counter_value("stabilization.converged")
              << " convergence events\n";
    bench.metrics_json(reg.to_json());
    bench.record_trial(r.stats.steps, r.stats.sent[0] + r.stats.sent[1],
                       r.verdict == sim::RunVerdict::kCompleted);
  }

  std::cout << "\nexpected: one forged message defeats the trusting "
               "baseline but not the hardened protocol; the full protocol x "
               "corruption x process matrix lands exactly on its pins with "
               "the hardened row all-green; a corruption storm against the "
               "hardened protocol still completes.\n"
            << "measured: " << (shape ? "CONFIRMED" : "NOT CONFIRMED")
            << "\n";
  return bench.finish(shape);
}
