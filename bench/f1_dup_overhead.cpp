// F1 — message overhead on the duplication channel (§3 cost model).
//
// On a dup channel the environment itself replays every message forever,
// so the paper's protocol sends each message exactly ONCE ("S could gain
// nothing by sending more than one copy").  The flooding ablation — same
// receiver, but a sender that retransmits every step — measures what that
// observation is worth, across schedules from delivery-starved to
// delivery-rich.  Messages/item stays at 2.0 (one data + one ack) for the
// paper's protocol regardless of adversity; the flooder's overhead explodes
// as schedules starve it.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("f1_dup_overhead", argc, argv);
  bench.param("m", 8);
  bench.param("seeds", 10);
  bench.param("delivery_weights", "0.5,1.0,2.0,4.0");

  std::cout << analysis::heading(
      "F1: messages per delivered item on the dup channel "
      "(send-once vs flooding ablation)");

  const int m = 8;
  const seq::Sequence x = iota_sequence(m);
  const auto seeds = seed_range(400, 10);

  analysis::Table table({"delivery weight", "send-once msgs/item",
                         "flood msgs/item", "send-once steps",
                         "flood steps"});
  bool shape = true;
  for (double weight : {0.5, 1.0, 2.0, 4.0}) {
    stp::SystemSpec once = repfree_dup_spec(m, weight);

    stp::SystemSpec flood = once;
    flood.protocols = [m] { return proto::make_repfree_flood(m); };

    const auto r_once = stp::sweep_input(once, x, seeds);
    const auto r_flood = stp::sweep_input(flood, x, seeds);
    bench.record(r_once);
    bench.record(r_flood);
    if (!r_once.all_ok() || !r_flood.all_ok()) shape = false;

    const double per_item_once =
        r_once.msgs_per_trial() / static_cast<double>(m);
    const double per_item_flood =
        r_flood.msgs_per_trial() / static_cast<double>(m);
    shape = shape && per_item_once <= 2.01 &&
            per_item_flood > per_item_once;
    table.add_row({fixed(weight, 1), fixed(per_item_once, 2),
                   fixed(per_item_flood, 2), fixed(r_once.avg_steps(), 0),
                   fixed(r_flood.avg_steps(), 0)});
  }
  std::cout << table.to_ascii();
  std::cout << "\npaper: on a dup channel one copy per message is optimal — "
               "the channel is the retransmitter.\n"
            << "measured: "
            << (shape ? "CONFIRMED — send-once pinned at 2 msgs/item (data + "
                        "ack); flooding strictly worse everywhere"
                      : "NOT CONFIRMED")
            << "\n";
  return bench.finish(shape);
}
