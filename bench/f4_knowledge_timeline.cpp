// F4 — the knowledge-acquisition timeline (§2.3–§2.4).
//
// The paper defines t_i — the first time R *knows* x_1..x_i — and argues it
// is the right notion of progress (a message can convey several items; a
// write can lag knowledge).  We reconstruct t_i operationally: explore the
// whole run tree of the repfree-dup system over the full canonical family,
// replay concrete runs under increasingly delivery-hostile schedules, and
// read off each t_i from the ~_R classes.  Expected shape: t_i shifts right
// as the schedule starves deliveries; knowledge is stable (t_i once reached
// never regresses, checked by construction); and writes never precede
// knowledge.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "knowledge/explorer.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

/// A schedule that withholds deliveries for `delay` extra process steps at
/// the start, then behaves benignly.
std::unique_ptr<sim::IScheduler> delayed_round_robin(int delay) {
  std::vector<sim::Action> prefix;
  for (int i = 0; i < delay; ++i) {
    prefix.push_back({sim::ActionKind::kSenderStep, -1});
    prefix.push_back({sim::ActionKind::kReceiverStep, -1});
  }
  return std::make_unique<channel::ScriptedScheduler>(prefix);
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("f4_knowledge_timeline", argc, argv);
  bench.param("m", 2);
  bench.param("delays", "0,2,4,6");

  std::cout << analysis::heading(
      "F4: knowledge timeline t_i under increasing delivery starvation");

  const int m = 2;
  const seq::Sequence x{1, 0};
  const seq::Family family = seq::canonical_repetition_free(m);

  analysis::Table table({"schedule", "run steps", "t_1", "t_2",
                         "write(x_1)", "write(x_2)", "knowledge<=write"});
  bool ok = true;
  for (int delay : {0, 2, 4, 6}) {
    stp::SystemSpec spec;
    spec.protocols = [m] { return proto::make_repfree_dup(m); };
    spec.channel = [](std::uint64_t) {
      return std::make_unique<channel::DupChannel>();
    };
    spec.scheduler = [delay](std::uint64_t) {
      return delayed_round_robin(delay);
    };
    spec.engine.max_steps = 100000;
    spec.engine.record_trace = true;
    spec.engine.record_histories = true;

    const sim::RunResult run = stp::run_one(spec, x, 0);
    bench.record_trial(run.stats.steps,
                       run.stats.sent[0] + run.stats.sent[1], run.completed);
    if (!run.completed) {
      ok = false;
      continue;
    }
    // Targeted K_R evaluation: for each prefix of R's view, search which
    // inputs can still produce it (tractable at any run depth, unlike full
    // run-tree exploration).
    const auto times = knowledge::learn_times_targeted(
        spec, family, run, /*max_steps=*/run.stats.steps * 3 + 50,
        /*max_states=*/50000);

    auto fmt = [](const std::optional<std::uint64_t>& t) {
      return t ? std::to_string(*t) : std::string(">horizon");
    };
    // Knowledge must not lag the write of the same item (writes imply
    // knowledge; the converse can lag).
    bool sane = true;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] && run.stats.write_step.size() > i) {
        sane = sane && *times[i] <= run.stats.write_step[i] + 1;
      }
    }
    ok = ok && sane && times[0] && times[1];
    table.add_row({"delay " + std::to_string(delay),
                   std::to_string(run.stats.steps), fmt(times[0]),
                   fmt(times[1]), std::to_string(run.stats.write_step[0]),
                   std::to_string(run.stats.write_step[1]),
                   sane ? "yes" : "NO"});
  }
  std::cout << table.to_ascii();

  // Part 2 — the paper's own example for why t_i must be defined via
  // knowledge: "S can send R a single message which informs R the values of
  // several data items, and there is no way R can write them at the same
  // step."  The block protocol delivers three items in one message; the
  // measured t_i are all equal while the write steps fan out behind them.
  std::cout << "\nblock protocol (3 items per message) — knowledge vs "
               "writes:\n";
  {
    const int d = 2, b = 3, max_len = 3;
    stp::SystemSpec spec;
    spec.protocols = [=] { return proto::make_block(d, b, max_len); };
    spec.channel = [](std::uint64_t) {
      return std::make_unique<channel::FifoChannel>();
    };
    spec.scheduler = [](std::uint64_t) {
      return std::make_unique<channel::RoundRobinScheduler>();
    };
    spec.engine.max_steps = 100000;
    spec.engine.record_trace = true;
    spec.engine.record_histories = true;

    const seq::Sequence x{1, 0, 1};
    const sim::RunResult run = stp::run_one(spec, x, 0);
    bench.record_trial(run.stats.steps,
                       run.stats.sent[0] + run.stats.sent[1], run.completed);
    if (!run.completed) ok = false;

    const seq::Family family = seq::all_words_up_to(d, max_len);
    const auto times = knowledge::learn_times_targeted(
        spec, family, run, run.stats.steps * 3 + 50, 100000);

    analysis::Table block_table({"i", "t_i (knows)", "write step",
                                 "knowledge leads by"});
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (!times[i]) {
        ok = false;
        continue;
      }
      const std::uint64_t w = run.stats.write_step[i];
      block_table.add_row({std::to_string(i + 1), std::to_string(*times[i]),
                           std::to_string(w),
                           std::to_string(w - *times[i]) + " steps"});
      ok = ok && *times[i] <= w;
    }
    std::cout << block_table.to_ascii();
    // The whole block arrives at once, so all t_i coincide and the later
    // writes strictly lag their knowledge.
    if (times[0] && times[2]) {
      ok = ok && *times[0] == *times[2] &&
           run.stats.write_step[2] > *times[2];
    }
  }

  std::cout << "\npaper: t_i (knowledge) — not receipt or write time — is "
               "the right progress measure; knowledge precedes writes.\n"
            << "measured: " << (ok ? "CONFIRMED" : "NOT CONFIRMED") << "\n";
  return bench.finish(ok);
}
