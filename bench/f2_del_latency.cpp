// F2 — delivery cost vs deletion rate (§4 cost model + baselines).
//
// The same 20-item input is pushed through the bounded repfree protocol and
// three unbounded-header baselines (Stenning, Go-Back-N, Selective Repeat)
// over a reorder+delete channel with loss rates 0..0.5.  Expected shape:
// everyone degrades smoothly with loss; pipelined windows beat stop-and-
// wait; the finite-alphabet protocol is competitive with stop-and-wait
// baselines (it IS stop-and-wait, just with items as their own acks) — the
// alpha(m) restriction costs capacity, not speed.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stpx;
  using namespace stpx::bench;

  BenchRun bench("f2_del_latency", argc, argv);
  bench.param("n", 20);
  bench.param("seeds", 10);
  bench.param("loss_rates", "0.0..0.5");

  std::cout << analysis::heading(
      "F2: steps per item vs deletion rate (reorder+delete channel)");

  const int n = 20;
  const seq::Sequence x = iota_sequence(n);
  const auto seeds = seed_range(500, 10);

  struct Contender {
    std::string name;
    std::function<proto::ProtocolPair()> make;
  };
  const std::vector<Contender> contenders{
      {"repfree-del (paper)", [n] { return proto::make_repfree_del(n); }},
      {"stenning", [n] { return proto::make_stenning(n); }},
      {"go-back-n W=4", [n] { return proto::make_go_back_n(n, 4); }},
      {"selective-repeat W=4",
       [n] { return proto::make_selective_repeat(n, 4); }},
  };

  std::vector<std::string> headers{"loss"};
  for (const auto& c : contenders) headers.push_back(c.name);
  analysis::Table table(headers);

  bool all_ok = true;
  std::vector<double> repfree_cost;
  double window_cost_at_zero = 0.0;
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::vector<std::string> row{fixed(loss, 1)};
    for (const auto& c : contenders) {
      stp::SystemSpec spec = repfree_del_spec(n, loss);
      spec.protocols = c.make;
      const auto r = stp::sweep_input(spec, x, seeds);
      bench.record(r);
      all_ok = all_ok && r.all_ok();
      const double steps_per_item = r.avg_steps() / n;
      if (c.name.rfind("repfree", 0) == 0) {
        repfree_cost.push_back(steps_per_item);
      }
      if (loss == 0.0 && c.name.rfind("selective", 0) == 0) {
        window_cost_at_zero = steps_per_item;
      }
      row.push_back(fixed(steps_per_item, 1));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_ascii();

  // Shape claims this model actually makes: (1) retransmitting protocols
  // stay live and safe at every deletion rate; (2) pipelined windows beat
  // stop-and-wait on the loss-free channel.  (Absolute step counts are a
  // property of the scheduler model: deliveries pick uniformly among
  // distinct deliverable ids, so deletion also *cleans stale noise* and the
  // cost curve is nearly flat rather than rising — see EXPERIMENTS.md.)
  const bool pipelining_wins =
      !repfree_cost.empty() && window_cost_at_zero < repfree_cost.front();
  std::cout << "\nexpected shape: retransmission keeps everyone live at "
               "every loss rate; pipelined windows beat stop-and-wait.\n"
            << "measured: "
            << (all_ok && pipelining_wins
                    ? "CONFIRMED — 0 failures across the sweep; windows "
                      "ahead of stop-and-wait"
                    : "NOT CONFIRMED")
            << "\n";
  return bench.finish(all_ok && pipelining_wins);
}
