// F5 — the epistemic staircase (§2.3's machinery, one rung further).
//
// Along one concrete run of the paper's protocol we evaluate, at every
// step, three levels of the knowledge hierarchy:
//
//   |Y|          what the receiver has written,
//   K_R          how many leading items the receiver KNOWS,
//   K_S(|Y|>=i)  how many writes the sender knows happened,
//   K_S K_R      how many items the sender knows the receiver knows.
//
// Expected staircase: a delivery raises K_R; the acknowledgement's delivery
// raises K_S K_R — knowledge climbs one rung per message, and (famously) no
// finite exchange over an unreliable channel reaches common knowledge; the
// protocol never needs it, which is exactly why it works.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "knowledge/explorer.hpp"
#include "sim/trace.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;
using namespace stpx::bench;

}  // namespace

int main(int argc, char** argv) {
  BenchRun bench("f5_epistemic_chain", argc, argv);
  bench.param("m", 2);

  std::cout << analysis::heading(
      "F5: the epistemic staircase — K_R, K_S, and K_S K_R along a run");

  const int m = 2;
  stp::SystemSpec spec = repfree_dup_spec(m);
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  spec.engine.record_trace = true;
  spec.engine.record_histories = true;

  const seq::Sequence x{1, 0};
  const sim::RunResult run = stp::run_one(spec, x, 0);
  bench.record_trial(run.stats.steps,
                     run.stats.sent[0] + run.stats.sent[1], run.completed);
  if (!run.completed) {
    std::cout << "run did not complete — cannot evaluate\n";
    return bench.finish(false);
  }

  const auto ex = knowledge::explore(
      spec, seq::canonical_repetition_free(m),
      {.max_depth = run.stats.steps + 1, .max_points = 3000000});

  // Index this input's points by their (sender, receiver) history keys.
  std::size_t input_idx = SIZE_MAX;
  for (std::size_t i = 0; i < ex.family.members.size(); ++i) {
    if (ex.family.members[i] == x) input_idx = i;
  }
  std::map<std::string, std::size_t> by_keys;
  for (std::size_t i = 0; i < ex.points.size(); ++i) {
    if (ex.points[i].input_index != input_idx) continue;
    by_keys[ex.points[i].s_key + '#' + ex.points[i].r_key] = i;
  }

  analysis::Table table({"step", "action", "|Y|", "K_R prefix",
                         "K_S(|Y|>=n)", "K_S K_R prefix",
                         "chain depth(x_1)"});
  sim::LocalHistory s_hist, r_hist;
  bool ok = true;
  std::size_t prev_ksr = 0;

  auto emit_row = [&](std::uint64_t step, const std::string& action) {
    const auto it =
        by_keys.find(sim::history_key(s_hist) + '#' + sim::history_key(r_hist));
    if (it == by_keys.end()) {
      ok = false;
      return;
    }
    const auto& p = ex.points[it->second];
    const std::size_t kr = knowledge::receiver_known_prefix(ex, p);
    const std::size_t ks = knowledge::sender_known_written(ex, p);
    std::size_t ksr = 0;
    while (ksr < x.size() &&
           knowledge::sender_knows_receiver_knows(ex, p, ksr)) {
      ++ksr;
    }
    // The alternating chain K_R, K_S K_R, K_R K_S K_R, ... about item x_1 —
    // each rung needs one more delivered message.
    const std::size_t chain =
        knowledge::knowledge_chain_depth(ex, p, 0, 4);
    // Hierarchy sanity: K_S K_R <= K_R (knowing-that-someone-knows implies
    // they know), monotone over the run, and the chain starts at K_R.
    ok = ok && ksr <= kr && ksr >= prev_ksr && p.output.size() <= kr &&
         ((chain >= 1) == (kr >= 1));
    prev_ksr = ksr;
    table.add_row({std::to_string(step), action,
                   std::to_string(p.output.size()), std::to_string(kr),
                   std::to_string(ks), std::to_string(ksr),
                   std::to_string(chain)});
  };

  emit_row(0, "(initial)");
  for (const sim::TraceEvent& ev : run.trace) {
    switch (ev.action.kind) {
      case sim::ActionKind::kSenderStep: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kStep;
        le.sent = ev.did_send ? ev.sent : -1;
        s_hist.push_back(le);
        break;
      }
      case sim::ActionKind::kReceiverStep: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kStep;
        le.sent = ev.did_send ? ev.sent : -1;
        le.writes = ev.writes;
        r_hist.push_back(le);
        break;
      }
      case sim::ActionKind::kDeliverToReceiver: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kRecv;
        le.received = ev.action.msg;
        r_hist.push_back(le);
        break;
      }
      case sim::ActionKind::kDeliverToSender: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kRecv;
        le.received = ev.action.msg;
        s_hist.push_back(le);
        break;
      }
    }
    emit_row(ev.step + 1, to_string(ev.action));
  }
  std::cout << table.to_ascii();

  std::cout << "\nreading the staircase: deliveries to R raise K_R; the ack "
               "reaching S raises K_S K_R one step later —\nknowledge climbs "
               "exactly one modality per message, and the protocol never "
               "needs more.\n"
            << "measured: "
            << (ok ? "CONFIRMED — hierarchy consistent (K_S K_R <= K_R, "
                     "monotone, writes <= knowledge)"
                   : "NOT CONFIRMED")
            << "\n";
  return bench.finish(ok);
}
