#!/usr/bin/env bash
# One-command verification: the tier-1 build + test gate, then the same
# suite under ASan+UBSan (STPX_SANITIZE=ON) and the wire-layer, durable-mux,
# and trace suites under TSan (STPX_SANITIZE_THREAD=ON), each in a separate
# build tree.
#
#   scripts/check.sh             # tier-1 + sanitizer passes
#   scripts/check.sh --fast      # tier-1 only
#
# Every ctest invocation runs with a per-test timeout so a livelocked
# schedule fails the stage instead of hanging it.  The bench-smoke stages
# also leave BENCH_smoke.json, BENCH_r4_mux.json, BENCH_r5_durable_mux.json,
# and BENCH_r6_trace.json reports at the repo root (CI uploads them as
# artifacts).
#
# Exits nonzero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
TEST_TIMEOUT=300  # seconds per test
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"

echo "== bench smoke: a bench binary emits a valid JSON report =="
ctest --test-dir build -L bench_smoke --output-on-failure --timeout "${TEST_TIMEOUT}"
./build/bench/t1_alpha_table --quiet --json BENCH_smoke.json
./build/bench/validate_bench_json BENCH_smoke.json

echo "== recovery smoke: the durable-recovery conformance suite =="
ctest --test-dir build -L recovery_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"

echo "== stabilization smoke: the self-stabilization conformance suite =="
ctest --test-dir build -L stabilization_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"

echo "== net smoke: the wire-layer conformance suite + mux bench report =="
ctest --test-dir build -L net_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
./build/bench/r4_mux --quiet --json BENCH_r4_mux.json
./build/bench/validate_bench_json BENCH_r4_mux.json

echo "== durable-mux smoke: crash-restart rehydration suite + bench report =="
ctest --test-dir build -L durable_mux_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
./build/bench/r5_durable_mux --quiet --json BENCH_r5_durable_mux.json
./build/bench/validate_bench_json BENCH_r5_durable_mux.json

echo "== trace smoke: flight recorder + trace-analysis suite + overhead-gated bench report =="
ctest --test-dir build -L trace_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
./build/bench/r6_trace --quiet --json BENCH_r6_trace.json
./build/bench/validate_bench_json BENCH_r6_trace.json

if [[ "${FAST}" == "1" ]]; then
  echo "== check.sh: tier-1 PASS (sanitizer stages skipped via --fast) =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan configure + build + ctest (build/asan/) =="
cmake -B build/asan -S . -DSTPX_SANITIZE=ON >/dev/null
cmake --build build/asan -j "${JOBS}"
ctest --test-dir build/asan --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"

echo "== sanitizers: TSan configure + build + net/durable-mux/trace smoke (build/tsan/) =="
cmake -B build/tsan -S . -DSTPX_SANITIZE_THREAD=ON >/dev/null
cmake --build build/tsan -j "${JOBS}" --target test_net test_durable_mux test_trace r4_mux r5_durable_mux r6_trace validate_bench_json
ctest --test-dir build/tsan -L "net_smoke|durable_mux_smoke|trace_smoke" --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"

echo "== check.sh: ALL PASS =="
