#!/usr/bin/env bash
# One-command verification: the tier-1 build + test gate, then the same
# suite under ASan+UBSan (STPX_SANITIZE=ON) and the wire-layer, durable-mux,
# trace, and fabric suites under TSan (STPX_SANITIZE_THREAD=ON), each in a
# separate build tree.
#
#   scripts/check.sh                  # every stage
#   scripts/check.sh --fast           # everything except the sanitizer stages
#   scripts/check.sh --stage fabric   # one stage (tier-1 build implied)
#   scripts/check.sh --list           # stage names
#
# Every ctest invocation runs with a per-test timeout so a livelocked
# schedule fails the stage instead of hanging it.  The bench-smoke stages
# also leave BENCH_smoke.json, BENCH_r4_mux.json, BENCH_r5_durable_mux.json,
# BENCH_r6_trace.json, and BENCH_r7_fabric.json reports at the repo root
# (CI uploads them as artifacts).
#
# Exits nonzero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
TEST_TIMEOUT=300  # seconds per test

STAGES=(tier1 bench recovery stabilization net durable-mux trace fabric asan tsan)

ensure_build() {
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}"
}

stage_tier1() {
  echo "== tier-1: configure + build + ctest (build/) =="
  ensure_build
  ctest --test-dir build --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
}

stage_bench() {
  echo "== bench smoke: a bench binary emits a valid JSON report =="
  ctest --test-dir build -L bench_smoke --output-on-failure --timeout "${TEST_TIMEOUT}"
  ./build/bench/t1_alpha_table --quiet --json BENCH_smoke.json
  ./build/bench/validate_bench_json BENCH_smoke.json
}

stage_recovery() {
  echo "== recovery smoke: the durable-recovery conformance suite =="
  ctest --test-dir build -L recovery_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
}

stage_stabilization() {
  echo "== stabilization smoke: the self-stabilization conformance suite =="
  ctest --test-dir build -L stabilization_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
}

stage_net() {
  echo "== net smoke: the wire-layer conformance suite + mux bench report =="
  ctest --test-dir build -L net_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
  ./build/bench/r4_mux --quiet --json BENCH_r4_mux.json
  ./build/bench/validate_bench_json BENCH_r4_mux.json
}

stage_durable_mux() {
  echo "== durable-mux smoke: crash-restart rehydration suite + bench report =="
  ctest --test-dir build -L durable_mux_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
  ./build/bench/r5_durable_mux --quiet --json BENCH_r5_durable_mux.json
  ./build/bench/validate_bench_json BENCH_r5_durable_mux.json
}

stage_trace() {
  echo "== trace smoke: flight recorder + trace-analysis suite + overhead-gated bench report =="
  ctest --test-dir build -L trace_smoke --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
  ./build/bench/r6_trace --quiet --json BENCH_r6_trace.json
  ./build/bench/validate_bench_json BENCH_r6_trace.json
}

stage_fabric() {
  echo "== fabric smoke: multi-backend failover + rejoin/reclaim suites + crash re-homing bench report =="
  ctest --test-dir build -L "fabric_smoke|rejoin_smoke" --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
  ./build/bench/r7_fabric --quiet --json BENCH_r7_fabric.json
  ./build/bench/validate_bench_json BENCH_r7_fabric.json
}

stage_asan() {
  echo "== sanitizers: ASan+UBSan configure + build + ctest (build/asan/) =="
  cmake -B build/asan -S . -DSTPX_SANITIZE=ON >/dev/null
  cmake --build build/asan -j "${JOBS}"
  ctest --test-dir build/asan --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
}

stage_tsan() {
  echo "== sanitizers: TSan configure + build + net/durable-mux/trace/fabric/rejoin smoke (build/tsan/) =="
  cmake -B build/tsan -S . -DSTPX_SANITIZE_THREAD=ON >/dev/null
  cmake --build build/tsan -j "${JOBS}" --target test_net test_durable_mux test_trace test_fabric \
        test_rejoin r4_mux r5_durable_mux r6_trace r7_fabric validate_bench_json
  ctest --test-dir build/tsan -L "net_smoke|durable_mux_smoke|trace_smoke|fabric_smoke|rejoin_smoke" \
        --output-on-failure -j "${JOBS}" --timeout "${TEST_TIMEOUT}"
}

run_stage() {
  case "$1" in
    tier1)         stage_tier1 ;;
    bench)         stage_bench ;;
    recovery)      stage_recovery ;;
    stabilization) stage_stabilization ;;
    net)           stage_net ;;
    durable-mux)   stage_durable_mux ;;
    trace)         stage_trace ;;
    fabric)        stage_fabric ;;
    asan)          stage_asan ;;
    tsan)          stage_tsan ;;
    *)
      echo "check.sh: unknown stage '$1' (try --list)" >&2
      exit 2
      ;;
  esac
}

case "${1:-}" in
  --list)
    printf '%s\n' "${STAGES[@]}"
    exit 0
    ;;
  --stage)
    [[ $# -ge 2 ]] || { echo "check.sh: --stage needs a name (try --list)" >&2; exit 2; }
    # A single stage still needs binaries; tier1 builds its own.
    [[ "$2" == "tier1" || "$2" == "asan" || "$2" == "tsan" ]] || ensure_build
    run_stage "$2"
    echo "== check.sh: stage $2 PASS =="
    exit 0
    ;;
  --fast)
    for s in "${STAGES[@]}"; do
      [[ "$s" == "asan" || "$s" == "tsan" ]] && continue
      run_stage "$s"
    done
    echo "== check.sh: tier-1 PASS (sanitizer stages skipped via --fast) =="
    exit 0
    ;;
  "")
    for s in "${STAGES[@]}"; do run_stage "$s"; done
    echo "== check.sh: ALL PASS =="
    ;;
  *)
    echo "check.sh: unknown flag '$1' (--fast | --stage <name> | --list)" >&2
    exit 2
    ;;
esac
