// Stabilization lab: lie to a protocol and watch what it believes.
//
//   $ ./stabilization_lab
//
// Four scenes:
//   1. The forged ack.  One injected in-alphabet id toward repfree-dup's
//      receiver — in a protocol whose content IS its only header — is
//      written out of order and the run ends as a stabilization violation:
//      the output never becomes a correct continuation of the input again.
//   2. The same lie, shed.  The identical schedule against the hardened
//      protocol: the forged id fails the checksum, is dropped on delivery,
//      and the transfer completes as if nothing happened.
//   3. The scrambled checkpoint.  A scramble-state fault mutates the
//      receiver's checkpoint mid-run.  The un-hardened receiver rehydrates
//      the garbage verbatim; the hardened receiver's sealed blob rejects
//      it, bumps its epoch, and the epoch-resync walks the sender back.
//   4. The corruption storm.  All three fault kinds against both hardened
//      processes in one run, with the convergence probe counting how fast
//      the protocol returns to a correct suffix.
//
// See docs/STABILIZATION.md for the fault model, the suffix-safety
// convergence criterion, and the full protocol x corruption matrix.
#include <iostream>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "obs/metrics.hpp"
#include "proto/suite.hpp"
#include "stp/stabilization.hpp"

using namespace stpx;

namespace {

stp::SystemSpec dup_spec(std::function<proto::ProtocolPair()> protocols) {
  stp::SystemSpec spec;
  spec.protocols = std::move(protocols);
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  spec.engine.stall_window = 6000;
  // Suffix-safety: after the last corruption the output must become a
  // correct continuation within two items (see docs/STABILIZATION.md).
  spec.engine.convergence_window = 2;
  return spec;
}

void report(const char* title, const sim::RunResult& r) {
  std::cout << title << "\n  verdict     = " << sim::to_cstr(r.verdict)
            << "\n  output Y    = " << seq::to_string(r.output)
            << "\n  corruptions = " << r.stats.corruptions
            << "  scrambles " << r.stats.scrambles_applied << " applied / "
            << r.stats.scrambles_rejected << " rejected"
            << "\n  converged   = " << (r.converged ? "yes" : "no") << "\n\n";
}

}  // namespace

int main() {
  const seq::Sequence x{0, 1, 2, 3, 4, 5};
  std::cout << "Stabilization lab: corruption, divergence, convergence\n"
            << "input X = " << seq::to_string(x) << "\n\n";

  // Scene 1: one forged message toward the trusting receiver.
  const auto forge = stp::stabilization_plan(fault::FaultKind::kForgeMessage,
                                             sim::Proc::kReceiver);
  std::cout << "fault plan:\n" << fault::to_text(forge) << "\n";
  report("scene 1: repfree-dup believes the forged id:",
         stp::run_one(
             stp::with_chaos(dup_spec([] { return proto::make_repfree_dup(6); }),
                             forge),
             x, 2026));

  // Scene 2: the same lie against checksummed headers.
  report("scene 2: the hardened protocol sheds it:",
         stp::run_one(
             stp::with_chaos(dup_spec([] { return proto::make_hardened(6); }),
                             forge),
             x, 2026));

  // Scene 3: scramble the receiver's checkpoint instead.
  const auto scramble = stp::stabilization_plan(
      fault::FaultKind::kScrambleState, sim::Proc::kReceiver);
  report("scene 3a: stenning rehydrates scrambled state verbatim:",
         stp::run_one(
             stp::with_chaos(dup_spec([] { return proto::make_stenning(6); }),
                             scramble),
             x, 2026));
  report("scene 3b: the hardened sealed checkpoint rejects it:",
         stp::run_one(
             stp::with_chaos(dup_spec([] { return proto::make_hardened(6); }),
                             scramble),
             x, 2026));

  // Scene 4: every corruption kind at once, with the convergence probe on.
  {
    stp::SystemSpec spec = dup_spec([] { return proto::make_hardened(6); });
    spec.channel = [](std::uint64_t seed) {
      return std::make_unique<channel::DelChannel>(0.1, seed);
    };
    obs::MetricsRegistry reg;
    obs::MetricsProbe probe(&reg);
    spec.engine.probe = &probe;
    fault::FaultPlan storm;
    for (fault::FaultKind kind : stp::kCorruptionKinds) {
      for (sim::Proc proc : {sim::Proc::kSender, sim::Proc::kReceiver}) {
        for (const auto& a : stp::stabilization_plan(kind, proc).actions) {
          storm.actions.push_back(a);
        }
      }
    }
    report("scene 4: the full corruption storm against hardened:",
           stp::run_one(stp::with_chaos(spec, storm), x, 7));
    std::cout << "  convergence events counted by the probe: "
              << reg.counter_value("stabilization.converged") << "\n";
  }
  return 0;
}
