// Durable mux lab: kill a server holding 60 live sessions mid-traffic,
// corrupt its session log, restart it, and watch every transfer finish.
//
//   $ ./durable_mux_lab
//
// One StpClient (60 Stenning senders, dup-ack go-back armed) runs against
// a durable StpServer (60 receivers checkpointing into two stable stores
// by group commit) over a lossy, reordering loopback wire.  Mid-transfer
// the server is kill()ed — crash-shaped: no final flush, held acks die
// with the process image — and two storage faults bite the session log
// (one corrupted record, a two-record tail loss).  A second server
// generation on the same endpoint and stores then rehydrate()s every
// manifested session from its newest surviving checkpoint, cold-readds
// any session whose only record was destroyed, and the pair drains to
// completion: damage is detected and healed by bounded retransmission,
// never silently absorbed.  The lab prints the rehydration report, a
// per-session verdict table spanning both generations, and the wire- and
// checkpoint-level accounting.
//
// See docs/RECOVERY.md (manifest format, group commit, rewind tolerance)
// and docs/NETWORK.md for the mux architecture.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/table.hpp"
#include "fault/plan.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "proto/suite.hpp"
#include "store/stable_store.hpp"

using namespace stpx;

namespace {

constexpr int kDomain = 10;
constexpr std::size_t kSessions = 60;
constexpr std::size_t kSeqLen = 6;

seq::Sequence seq_for(std::uint32_t id) {
  seq::Sequence x;
  for (std::size_t i = 0; i < kSeqLen; ++i) {
    x.push_back(static_cast<seq::DataItem>((id * 3 + i) % kDomain));
  }
  return x;
}

/// Tracks per-session progress so the lab knows when every session is
/// manifested (the kill window) and how many sessions gen-2 rehydrated.
class LabProbe final : public net::INetProbe {
 public:
  void on_item(std::uint32_t session, std::size_t) override {
    if (session < kSessions) ++progress_[session];
  }
  void on_rehydrate(std::uint32_t, std::size_t, net::SessionState) override {
    ++rehydrated_;
  }
  std::size_t min_progress() const {
    std::size_t lo = progress_[0].load();
    for (const auto& p : progress_) lo = std::min(lo, p.load());
    return lo;
  }
  std::uint64_t rehydrated() const { return rehydrated_; }

 private:
  std::array<std::atomic<std::size_t>, kSessions> progress_{};
  std::atomic<std::uint64_t> rehydrated_{0};
};

net::StpServer::ReceiverFactory stenning_receiver_factory() {
  return [](std::uint32_t,
            std::uint64_t tag) -> std::unique_ptr<sim::IReceiver> {
    if (tag != store::proto_tag_of("stenning-receiver")) return nullptr;
    return proto::make_stenning(kDomain).receiver;
  };
}

}  // namespace

int main() {
  // --- the wire: periodic loss both ways, reordered delivery --------------
  net::LoopbackConfig wire;
  wire.plan = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                   sim::Dir::kSenderToReceiver, 7, 1, 200000);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender, 9, 1,
                                       200000);
  wire.plan.actions.insert(wire.plan.actions.end(), rs.actions.begin(),
                           rs.actions.end());
  wire.reorder_window = 4;
  wire.seed = 0xD1AB;
  wire.max_queue = 8192;
  auto pair = net::make_loopback(wire);

  // --- generation 1: durable server, checkpoint every sweep ----------------
  store::MemStore st0, st1;
  st0.reset();
  st1.reset();
  LabProbe probe1, probe2;

  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = std::chrono::microseconds(300);

  net::StpClient client(pair.a.get(), cfg);
  net::MuxConfig scfg = cfg;
  scfg.probe = &probe1;
  scfg.session_stores = {&st0, &st1};
  auto server = std::make_unique<net::StpServer>(pair.b.get(), scfg);
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    auto protocols = proto::make_stenning(kDomain, /*sender_ack_rewind=*/true);
    const auto x = seq_for(id);
    client.add_session(id, std::move(protocols.sender), x);
    server->add_session(id, std::move(protocols.receiver), x);
  }

  std::cout << analysis::heading(
      "durable mux lab: kill + restart with a damaged session log");

  client.mux().start();
  server->mux().start();

  // --- the kill window: every session manifested, none finished ------------
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline &&
         probe1.min_progress() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server->mux().kill();
  const auto gen1 = server->mux().stats();
  std::cout << "\nkill: server down with " << gen1.items_done
            << " items landed across " << kSessions << " sessions ("
            << gen1.checkpoint_flushes << " group commits, "
            << gen1.checkpoint_records << " manifest records, "
            << gen1.checkpoint_bytes << " bytes)\n";

  // --- storage faults bite the session log while the server is down --------
  st0.fault_corrupt_record();
  st1.fault_lose_tail(2);
  std::cout << "storage faults: one record corrupted in store 0, "
               "two-record tail lost from store 1\n";

  // --- generation 2: same endpoint, same stores, rehydrate -----------------
  net::MuxConfig s2cfg = cfg;
  s2cfg.probe = &probe2;
  s2cfg.session_stores = {&st0, &st1};
  net::StpServer gen2(pair.b.get(), s2cfg);
  const auto rep = gen2.rehydrate(stenning_receiver_factory(),
                                  [](std::uint32_t id) { return seq_for(id); });
  std::cout << "rehydrate: " << rep.sessions << " sessions re-admitted ("
            << rep.records_scanned << " records scanned, "
            << rep.records_skipped << " damaged records skipped, "
            << rep.violations << " recovery violations)\n";

  // Storage-amnesia fallback: a session whose only record was destroyed is
  // no longer manifested; the operator re-adds it cold and the wire heals
  // by full retransmission from the front.
  std::vector<bool> present(kSessions, false);
  for (const auto& r : gen2.mux().reports()) present[r.id] = true;
  std::size_t cold = 0;
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    if (present[id]) continue;
    gen2.add_session(id, proto::make_stenning(kDomain).receiver, seq_for(id));
    ++cold;
  }
  if (cold > 0) {
    std::cout << "cold re-add: " << cold
              << " session(s) lost their only manifest record\n";
  }

  // --- drain both ends across the restart ----------------------------------
  const auto t0 = std::chrono::steady_clock::now();
  gen2.mux().start();
  const bool drained = client.mux().drain(std::chrono::seconds(60)) &&
                       gen2.mux().drain(std::chrono::seconds(60));
  gen2.mux().stop();
  client.mux().stop();
  const auto wall =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // --- per-session verdicts across both generations ------------------------
  analysis::Table verdicts({"session", "endpoint", "verdict", "items",
                            "rehydrated", "frames in", "frames out"});
  std::size_t completed = 0;
  for (const auto& r : gen2.mux().reports()) {
    if (r.state == net::SessionState::kCompleted) ++completed;
    verdicts.add_row({std::to_string(r.id), r.endpoint, net::to_cstr(r.state),
                      std::to_string(r.items), r.rehydrated ? "yes" : "no",
                      std::to_string(r.frames_in),
                      std::to_string(r.frames_out)});
  }
  std::cout << "\n" << verdicts.to_ascii();

  // --- wire + checkpoint accounting ----------------------------------------
  const auto sr = pair.stats(sim::Dir::kSenderToReceiver);
  const auto rs_stats = pair.stats(sim::Dir::kReceiverToSender);
  const auto ss = gen2.mux().stats();
  std::cout << "\ndrained        = " << (drained ? "yes" : "NO")
            << "\ncompleted      = " << completed << "/" << kSessions
            << "\nrehydrated     = " << probe2.rehydrated() << " ("
            << cold << " cold re-adds)"
            << "\npost-kill wall = " << wall << " ms"
            << "\nitems gen1/2   = " << gen1.items_done << " / "
            << ss.items_done
            << "\nwire drops     = " << sr.dropped + rs_stats.dropped
            << " (SR " << sr.dropped << ", RS " << rs_stats.dropped << ")\n";

  return drained && completed == kSessions && rep.violations == 0 ? 0 : 1;
}
