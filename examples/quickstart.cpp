// Quickstart: transmit a repetition-free sequence over a channel that
// reorders and duplicates messages, with the paper's alpha(m)-tight
// protocol, and watch every step.
//
//   $ ./quickstart
//
// The channel here is maximally annoying: once a message is sent, the
// scheduler can (and does) deliver stale copies of it forever.  The
// protocol stays correct because the receiver ignores any message it has
// seen before, and the paper proves you cannot support a single additional
// input sequence beyond the alpha(m) repetition-free ones.
#include <iostream>

#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/suite.hpp"
#include "seq/alpha.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace stpx;

  const int m = 5;                      // domain and message alphabet size
  const seq::Sequence input{3, 0, 4, 1, 2};  // repetition-free over {0..4}

  std::cout << "Sequence Transmission Problem quickstart\n"
            << "  domain size m        = " << m << "\n"
            << "  alpha(m) (max |X|)   = " << *seq::alpha_u64(m) << "\n"
            << "  input X              = " << seq::to_string(input) << "\n\n";

  proto::ProtocolPair pair = proto::make_repfree_dup(m);
  sim::EngineConfig cfg;
  cfg.max_steps = 10000;
  cfg.record_trace = true;

  sim::Engine engine(std::move(pair.sender), std::move(pair.receiver),
                     std::make_unique<channel::DupChannel>(),
                     std::make_unique<channel::FairRandomScheduler>(
                         std::uint64_t{2026}),
                     cfg);
  const sim::RunResult result = engine.run(input);

  std::cout << "run finished: steps=" << result.stats.steps
            << " sent(S->R)=" << result.stats.sent[0]
            << " delivered(S->R)=" << result.stats.delivered[0]
            << " (every extra delivery is a duplicate the protocol shrugged "
               "off)\n\n";

  std::cout << "first 30 trace events:\n";
  std::size_t shown = 0;
  for (const auto& ev : result.trace) {
    if (shown++ >= 30) break;
    std::cout << "  " << to_string(ev) << "\n";
  }

  std::cout << "\noutput Y = " << seq::to_string(result.output) << "\n"
            << "safety   = " << (result.safety_ok ? "OK" : "VIOLATED") << "\n"
            << "complete = " << (result.completed ? "yes" : "no") << "\n";
  return result.safety_ok && result.completed ? 0 : 1;
}
