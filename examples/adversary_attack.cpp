// Scenario: Theorem 1, live.
//
// Give the sender one more allowable sequence than alpha(m) permits and let
// the attack synthesizer construct the adversarial schedule the proof
// promises.  Two receiver disciplines show the two faces of the theorem:
//   * a GREEDY receiver (commits early) is steered into writing a wrong
//     item — a safety violation with a concrete, replayable trace;
//   * the KNOWLEDGE receiver (writes only what it knows) can never be
//     wrong, so instead it is starved forever — a liveness violation,
//     certified by a dup-decisive pair of runs the receiver cannot tell
//     apart.
#include <iostream>

#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/encoded.hpp"
#include "seq/alpha.hpp"
#include "stp/attack.hpp"
#include "util/expect.hpp"

namespace {

using namespace stpx;

proto::EncodingTable overfull_table(int m) {
  auto enc = seq::try_build_encoding(seq::canonical_repetition_free(m), m);
  STPX_EXPECT(enc.has_value(), "canonical encoding must exist");
  std::size_t donor = SIZE_MAX;
  for (std::size_t i = 0; i < enc->inputs.size(); ++i) {
    if (enc->inputs[i].size() == 2 && enc->inputs[i][0] == 0) {
      donor = i;
      break;
    }
  }
  enc->inputs.push_back(seq::Sequence{0, 0});
  enc->words.push_back(enc->words[donor]);
  return std::make_shared<const seq::Encoding>(std::move(*enc));
}

stp::SystemSpec spec_with(proto::EncodingTable table, bool knowledge) {
  stp::SystemSpec spec;
  spec.protocols = [table, knowledge] {
    proto::ProtocolPair pair;
    pair.sender = std::make_unique<proto::EncodedSender>(table, false);
    if (knowledge) {
      pair.receiver = std::make_unique<proto::KnowledgeReceiver>(table, false);
    } else {
      pair.receiver = std::make_unique<proto::GreedyReceiver>(table, false);
    }
    return pair;
  };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 100000;
  return spec;
}

void report(const char* title, const stp::AttackResult& r) {
  std::cout << "\n--- " << title << " ---\n"
            << "verdict : " << stp::to_cstr(r.kind) << "\n";
  if (!r.x_a.empty() || !r.x_b.empty()) {
    std::cout << "inputs  : X_a = " << seq::to_string(r.x_a);
    if (r.kind != stp::AttackResult::Kind::kLivenessStall) {
      std::cout << "   X_b = " << seq::to_string(r.x_b);
    }
    std::cout << "\n";
  }
  if (!r.y_a.empty() || !r.y_b.empty()) {
    std::cout << "outputs : Y_a = " << seq::to_string(r.y_a)
              << "   Y_b = " << seq::to_string(r.y_b) << "\n";
  }
  std::cout << "detail  : " << r.detail << "\n";
}

}  // namespace

int main() {
  const int m = 3;
  std::cout << "Theorem 1 demonstration, m = " << m
            << ", alpha(m) = " << *seq::alpha_u64(m) << "\n"
            << "allowable set size |X| = " << (*seq::alpha_u64(m) + 1)
            << "  (one too many)\n";

  auto table = overfull_table(m);
  std::cout << "\nthe colliding entries forced by the pigeonhole:\n";
  const auto violation = seq::find_violation(*table);
  STPX_EXPECT(violation.has_value(), "overfull table must be invalid");
  std::cout << "  " << violation->describe(*table) << "\n";

  const stp::AttackBudget budget{.skeleton_steps = 100000,
                                 .mirror_rounds = 2000,
                                 .stall_rounds = 32};

  const auto greedy =
      stp::find_attack(spec_with(table, /*knowledge=*/false),
                       seq::Family{seq::Domain{m}, table->inputs}, budget);
  report("greedy receiver (commits early)", greedy);

  const auto knowing =
      stp::find_attack(spec_with(table, /*knowledge=*/true),
                       seq::Family{seq::Domain{m}, table->inputs}, budget);
  report("knowledge receiver (never guesses)", knowing);

  const bool as_predicted =
      greedy.kind == stp::AttackResult::Kind::kSafetyViolation &&
      (knowing.kind == stp::AttackResult::Kind::kDecisiveStall ||
       knowing.kind == stp::AttackResult::Kind::kLivenessStall);
  std::cout << "\npaper's prediction "
            << (as_predicted ? "CONFIRMED" : "NOT CONFIRMED")
            << ": beyond alpha(m), every protocol loses either safety or "
               "liveness.\n";
  return as_predicted ? 0 : 1;
}
