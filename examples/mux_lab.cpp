// Mux lab: 100 concurrent STP sessions over a lossy, reordering in-process
// wire — the service layer (src/net/) end to end.
//
//   $ ./mux_lab
//
// One StpClient (100 Stenning senders) and one StpServer (100 matching
// receivers) run over a LoopbackTransport whose loss is scripted with the
// same fault-plan grammar the chaos layer uses: every 7th frame toward the
// server and every 9th frame back is dropped, and delivery reorders within
// a window of 4.  Each session must finish with its output tape an exact
// copy of its input (checked write by write); the lab prints a per-session
// verdict table plus the wire- and mux-level accounting.
//
// See docs/NETWORK.md for the frame format, transport contract, and mux
// architecture.
#include <chrono>
#include <iostream>

#include "analysis/table.hpp"
#include "fault/plan.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "proto/suite.hpp"

using namespace stpx;

namespace {

constexpr int kDomain = 10;
constexpr std::size_t kSessions = 100;
constexpr std::size_t kSeqLen = 6;

seq::Sequence seq_for(std::uint32_t id) {
  seq::Sequence x;
  for (std::size_t i = 0; i < kSeqLen; ++i) {
    x.push_back(static_cast<seq::DataItem>((id * 3 + i) % kDomain));
  }
  return x;
}

}  // namespace

int main() {
  // --- the wire: periodic loss both ways, reordered delivery --------------
  net::LoopbackConfig wire;
  wire.plan = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                   sim::Dir::kSenderToReceiver, 7, 1, 200000);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender, 9, 1,
                                       200000);
  wire.plan.actions.insert(wire.plan.actions.end(), rs.actions.begin(),
                           rs.actions.end());
  wire.reorder_window = 4;
  wire.seed = 0x1AB;
  wire.max_queue = 8192;
  auto pair = net::make_loopback(wire);

  // --- the service pair ---------------------------------------------------
  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = std::chrono::microseconds(300);

  net::StpClient client(pair.a.get(), cfg);
  net::StpServer server(pair.b.get(), cfg);
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    auto protocols = proto::make_stenning(kDomain);
    const auto x = seq_for(id);
    client.add_session(id, std::move(protocols.sender), x);
    server.add_session(id, std::move(protocols.receiver), x);
  }

  std::cout << analysis::heading(
      "mux lab: 100 sessions over a lossy, reordering wire");
  const auto t0 = std::chrono::steady_clock::now();
  const bool drained =
      net::run_service_pair(client, server, std::chrono::seconds(30));
  const auto wall =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // --- per-session verdicts (receiver side owns the tape) ------------------
  analysis::Table verdicts(
      {"session", "endpoint", "verdict", "items", "frames in", "frames out"});
  std::size_t completed = 0;
  for (const auto& r : server.mux().reports()) {
    if (r.state == net::SessionState::kCompleted) ++completed;
    verdicts.add_row({std::to_string(r.id), r.endpoint,
                      net::to_cstr(r.state), std::to_string(r.items),
                      std::to_string(r.frames_in),
                      std::to_string(r.frames_out)});
  }
  std::cout << "\n" << verdicts.to_ascii();

  // --- wire + mux accounting ----------------------------------------------
  const auto sr = pair.stats(sim::Dir::kSenderToReceiver);
  const auto rs_stats = pair.stats(sim::Dir::kReceiverToSender);
  const auto ss = server.mux().stats();
  std::vector<std::uint64_t> rtt;
  for (const auto& r : client.mux().reports()) {
    rtt.insert(rtt.end(), r.ack_rtt_us.begin(), r.ack_rtt_us.end());
  }
  const auto pct = obs::percentiles_u64(std::move(rtt));

  std::cout << "\ndrained      = " << (drained ? "yes" : "NO")
            << "\ncompleted    = " << completed << "/" << kSessions
            << "\nwall         = " << wall << " ms"
            << "\nitems done   = " << ss.items_done
            << "\nwire drops   = " << sr.dropped + rs_stats.dropped
            << " (SR " << sr.dropped << ", RS " << rs_stats.dropped << ")"
            << "\nack rtt p50  = " << pct.p50 << " us, p99 = " << pct.p99
            << " us\n";

  return drained && completed == kSessions ? 0 : 1;
}
