// Scenario: the knowledge machinery of §2, visualized on a tiny system.
//
// We enumerate every reachable point of the repetition-free protocol over
// the full canonical family for m = 2, group points into ~_R equivalence
// classes (complete-history indistinguishability), evaluate K_R(x_i), replay
// one concrete run to extract its t_i learning times, and exhibit a
// dup-decisive tuple (Definition 1) — the object at the heart of the
// impossibility proof.
#include <iostream>

#include "channel/dup_channel.hpp"
#include "channel/schedulers.hpp"
#include "knowledge/explorer.hpp"
#include "proto/suite.hpp"
#include "seq/repetition_free.hpp"

int main() {
  using namespace stpx;

  const int m = 2;
  stp::SystemSpec spec;
  spec.protocols = [m] { return proto::make_repfree_dup(m); };
  spec.channel = [](std::uint64_t) {
    return std::make_unique<channel::DupChannel>();
  };
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  spec.engine.max_steps = 100000;

  const seq::Family family = seq::canonical_repetition_free(m);
  std::cout << "system: repfree-dup protocol, m = " << m << ", family 𝒳 = {";
  for (std::size_t i = 0; i < family.size(); ++i) {
    std::cout << (i ? ", " : "") << seq::to_string(family.members[i]);
  }
  std::cout << "}\n\nexploring all runs to depth 8...\n";

  const auto ex = knowledge::explore(spec, family,
                                     {.max_depth = 8, .max_points = 500000});
  std::cout << "  reachable points: " << ex.points.size()
            << "   ~_R classes: " << ex.by_r_history.size()
            << (ex.truncated ? "   (horizon-truncated)" : "") << "\n";

  // --- knowledge at selected points -------------------------------------
  std::cout << "\nknowledge snapshots (point = run-of-input @ depth):\n";
  std::size_t shown = 0;
  for (const auto& p : ex.points) {
    if (p.output.empty() && p.depth > 0) continue;  // show interesting ones
    if (shown >= 8) break;
    const auto& x = ex.family.members[p.input_index];
    std::cout << "  run " << seq::to_string(x) << " @ " << p.depth
              << ": Y = " << seq::to_string(p.output)
              << ", R knows x_1..x_" << knowledge::receiver_known_prefix(ex, p)
              << ", ~_R class size "
              << ex.by_r_history.at(p.r_key).size() << "\n";
    ++shown;
  }

  // --- t_i along a concrete run ------------------------------------------
  stp::SystemSpec traced = spec;
  traced.engine.record_trace = true;
  traced.engine.record_histories = true;
  const seq::Sequence x{1, 0};
  const sim::RunResult run = stp::run_one(traced, x, 0);
  const auto big_ex = knowledge::explore(
      spec, family,
      {.max_depth = run.stats.steps + 1, .max_points = 2000000});
  const auto times = knowledge::learn_times(big_ex, run);
  std::cout << "\nlearning times along the run of " << seq::to_string(x)
            << " (" << run.stats.steps << " steps):\n";
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::cout << "  t_" << (i + 1) << " = ";
    if (times[i]) {
      std::cout << *times[i];
    } else {
      std::cout << "beyond exploration horizon";
    }
    std::cout << "  (item " << x[i] << ")\n";
  }

  // --- a dup-decisive tuple ----------------------------------------------
  const auto tuple = knowledge::find_dup_decisive(ex, 2, 1);
  std::cout << "\ndup-decisive tuple (Definition 1) with |M| >= 1:\n";
  if (tuple) {
    std::cout << "  M = {";
    for (std::size_t i = 0; i < tuple->messages.size(); ++i) {
      std::cout << (i ? ", " : "") << tuple->messages[i];
    }
    std::cout << "}, points:\n";
    for (std::size_t idx : tuple->point_indices) {
      const auto& p = ex.points[idx];
      std::cout << "    run " << seq::to_string(ex.family.members[p.input_index])
                << " @ depth " << p.depth << " (Y = "
                << seq::to_string(p.output) << ")\n";
    }
    std::cout << "  R cannot tell these runs apart although their inputs\n"
                 "  differ and message(s) M are already in flight — the\n"
                 "  exact configuration the induction of Lemma 2 builds.\n";
  } else {
    std::cout << "  none within horizon\n";
  }
  return 0;
}
