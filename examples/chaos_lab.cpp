// Chaos lab: script faults against a running protocol and watch it cope —
// or fail, and then shrink the failure to its essence.
//
//   $ ./chaos_lab
//
// Three scenes:
//   1. repfree-del rides out a scripted storm (drop bursts, a blackout, a
//      deliver-freeze) on the reorder+delete channel — bounded protocols
//      recover from any finite insult.
//   2. A crash-restart wipes the receiver's volatile state mid-run while
//      duplicate copies of an already-written item are still in flight; the
//      amnesiac receiver re-writes one and safety breaks.  The engine
//      verdict pinpoints the violation step.
//   3. The soak harness finds a failing sampled plan for ABP (a FIFO
//      protocol) on a reordering channel and delta-debugs it to a minimal
//      schedule that replays deterministically.
//
// See docs/FAULTS.md for the fault-plan text format used throughout.
#include <iostream>

#include "channel/del_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/suite.hpp"
#include "stp/soak.hpp"

using namespace stpx;

namespace {

stp::SystemSpec del_spec(std::function<proto::ProtocolPair()> protocols) {
  stp::SystemSpec spec;
  spec.protocols = std::move(protocols);
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = 60000;
  spec.engine.stall_window = 6000;
  return spec;
}

void report(const char* title, const sim::RunResult& r) {
  std::cout << title << "\n  verdict  = " << sim::to_cstr(r.verdict)
            << "\n  steps    = " << r.stats.steps
            << "\n  output Y = " << seq::to_string(r.output) << "\n";
  if (!r.safety_ok) {
    std::cout << "  first violation at step " << r.first_violation_step
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const seq::Sequence x{3, 0, 4, 1, 7, 2};
  std::cout << "Chaos lab: scripted faults, crash-restart, soak + shrink\n"
            << "input X = " << seq::to_string(x) << "\n\n";

  // Scene 1: a storm the bounded protocol shrugs off.
  const auto storm = fault::plan_from_text(
      "drop @step 40 dir SR count 0 match *\n"
      "drop @step 60 dir RS count 0 match *\n"
      "blackout @writes 2 dir SR len 300 match *\n"
      "freeze @writes 4 dir RS len 200\n"
      "dup @step 100 dir SR count 8 match *\n");
  std::cout << "scene 1: repfree-del vs a 5-action storm:\n" << storm.size()
            << " scripted actions\n";
  const auto spec1 = del_spec([] { return proto::make_repfree_del(12); });
  report("", stp::run_one(stp::with_chaos(spec1, storm), x, 7));

  // Scene 2: amnesia.  Duplicates of a written item + receiver crash.
  const auto amnesia = fault::plan_from_text(
      "dup @step 1 dir SR count 6 match *\n"
      "crash-receiver @writes 2\n");
  stp::SystemSpec spec2 = spec1;
  spec2.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  report("scene 2: repfree-del receiver crash-restart with stale copies:",
         stp::run_one(stp::with_chaos(spec2, amnesia), x, 1));

  // Scene 3: soak ABP, shrink the first failure, replay it.
  const auto spec3 = del_spec([] { return proto::make_abp(12); });
  const auto rep = stp::soak_sweep("abp", spec3, {x}, stp::SoakConfig{});
  std::cout << "scene 3: abp soak: " << rep.trials << " trials, "
            << rep.failures.size() << " failures\n";
  if (!rep.clean()) {
    const auto min = stp::minimize_plan(spec3, rep.failures.front());
    std::cout << "  minimized first failing plan to " << min.plan.size()
              << " action(s) (" << min.probe_runs << " probes):\n";
    if (min.plan.empty()) {
      std::cout << "    (empty: reordering alone defeats ABP)\n";
    } else {
      std::cout << fault::to_text(min.plan);
    }
    stp::SoakFailure shrunk = rep.failures.front();
    shrunk.plan = min.plan;
    const auto replay = stp::replay_failure(spec3, shrunk);
    std::cout << "  replayed: " << sim::to_cstr(replay.verdict) << " at step "
              << replay.stats.steps << "\n";
  }
  return 0;
}
