// Fabric lab: watch the service fabric lose a backend and heal.
//
//   $ ./fabric_lab
//
// 18 Stenning sessions are sharded round-robin across 3 backend cells
// behind one FabricRouter.  Each cell journals its sessions to its own
// store and stamps its FlightRecorder with its backend id.  Ten
// milliseconds into the run, backend 2 is killed outright — no FIN, no
// flush.  Nothing tells the router; the heartbeat does:
//
//   probe silence -> strikes (timeout doubling per strike) -> death
//   verdict -> supervisor fences the corpse, picks the least-loaded
//   survivor, pauses its health probes, rehydrates the dead cell's log
//   INTO the survivor (handoff sources are scanned, never written), and
//   rewrites the membership table.  The client's retransmissions land on
//   the new owner and every session still completes an exact copy.
//
// The lab then prints what the supervisor recorded (who died, who
// absorbed, how fast) and closes the loop offline: the per-backend
// traces — including the dead backend's — are rebased by recorder epoch,
// merged into one stream, and the prefix attestor re-derives the
// acceptance verdict across the crash boundary from the trace alone.
//
// See docs/FABRIC.md for the design; tests/test_fabric.cpp pins the
// semantics shown here.
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>

#include "analysis/table.hpp"
#include "analysis/trace_pipeline.hpp"
#include "fabric/fabric.hpp"
#include "net/flight_recorder.hpp"
#include "net/service.hpp"
#include "proto/suite.hpp"
#include "store/session_log.hpp"
#include "store/stable_store.hpp"

using namespace stpx;
using namespace std::chrono_literals;

namespace {

constexpr int kDomain = 8;
constexpr std::size_t kBackends = 3;
constexpr std::size_t kSessions = 18;
constexpr std::size_t kSeqLen = 12;

seq::Sequence seq_for(std::uint32_t id) {
  seq::Sequence x;
  for (std::size_t i = 0; i < kSeqLen; ++i) {
    x.push_back(static_cast<seq::DataItem>((id + i) % kDomain));
  }
  return x;
}

}  // namespace

int main() {
  // --- build: one store + one recorder per backend ------------------------
  std::vector<std::unique_ptr<store::MemStore>> stores;
  std::vector<std::unique_ptr<net::FlightRecorder>> recorders;
  for (std::size_t i = 0; i < kBackends; ++i) {
    stores.push_back(std::make_unique<store::MemStore>());
    stores.back()->reset();
    net::FlightRecorderConfig rc;
    rc.backend_id = static_cast<std::uint32_t>(i + 1);
    recorders.push_back(std::make_unique<net::FlightRecorder>(rc));
  }

  fabric::FabricConfig fc;
  fc.backends = kBackends;
  // Aggressive heartbeat so the demo heals in milliseconds, not seconds.
  fc.router.health.probe_interval = 1ms;
  fc.router.health.probe_timeout = 5ms;
  fc.router.health.max_strikes = 3;
  fc.router.health.max_timeout = 50ms;
  // Throttle the cells so the kill lands mid-traffic.
  fc.mux.workers = 2;
  fc.mux.steps_per_sweep = 1;
  fc.mux.max_inflight = 2;
  fc.mux.sweep_interval = 1ms;
  fc.make_receiver = [](std::uint32_t, std::uint64_t tag)
      -> std::unique_ptr<sim::IReceiver> {
    if (tag != 0 && tag != store::proto_tag_of("stenning-receiver")) {
      return nullptr;
    }
    return proto::make_stenning(kDomain).receiver;
  };
  fc.expected_for = [](std::uint32_t sid) { return seq_for(sid); };
  fc.stores_for = [&stores](std::uint32_t id) {
    return std::vector<store::IStableStore*>{stores[id - 1].get()};
  };
  fc.probe_for = [&recorders](std::uint32_t id) -> net::INetProbe* {
    return recorders[id - 1].get();
  };
  fabric::Fabric fab(fc);

  net::MuxConfig ccfg = fc.mux;
  ccfg.probe = nullptr;
  net::StpClient client(fab.client_endpoint(), ccfg);
  for (std::uint32_t sid = 1; sid <= kSessions; ++sid) {
    fab.add_session(sid);
    client.add_session(sid, proto::make_stenning(kDomain, true).sender,
                       seq_for(sid));
  }

  std::cout << analysis::heading("fabric lab: kill a backend, watch it heal");
  std::cout << "\n" << kSessions << " sessions over " << kBackends
            << " backends; backend 2 dies at +10ms with "
            << fab.membership().sessions_of(2).size()
            << " sessions on board\n";

  // --- fly ----------------------------------------------------------------
  fab.start();
  client.mux().start();
  std::this_thread::sleep_for(10ms);
  fab.kill_backend(2);

  // Death rides on heartbeat silence, not traffic — wait for the
  // supervisor's verdict, then let the client drain against the healed
  // fleet.
  while (fab.rehomes().empty()) std::this_thread::sleep_for(1ms);
  const bool drained = client.mux().drain(60s) && fab.drain(60s);
  client.mux().stop();
  fab.stop();

  // --- what the supervisor saw --------------------------------------------
  analysis::Table t({"dead", "survivor", "moved", "rehydrated", "cold-added",
                     "absorb us", "ok"});
  for (const fabric::RehomeRecord& r : fab.rehomes()) {
    t.add_row({std::to_string(r.dead), std::to_string(r.survivor),
               std::to_string(r.moved.size()),
               std::to_string(r.absorb.rehydrate.sessions),
               std::to_string(r.absorb.cold_added.size()),
               std::to_string(r.absorb.latency_us),
               r.ok ? "yes" : "NO"});
  }
  std::cout << "\nre-home ledger:\n" << t.to_ascii();
  std::cout << "\nmembership after healing:";
  for (const std::uint32_t b : fab.membership().backends()) {
    std::cout << "  b" << b << "=" << to_cstr(fab.membership().health(b))
              << " (" << fab.membership().sessions_of(b).size()
              << " sessions)";
  }
  std::cout << "\nclient: " << client.mux().stats().sessions_completed
            << "/" << kSessions << " sessions completed, drain "
            << (drained ? "clean" : "TIMED OUT") << "\n";

  // --- close the loop offline ---------------------------------------------
  // Merge all three recorders — the dead backend's events up to the kill
  // plus the survivor's across the re-home — and re-derive the verdict.
  std::vector<fabric::TracePart> parts;
  for (auto& rec : recorders) {
    parts.push_back({rec->epoch_offset_us(), rec->drain()});
  }
  analysis::TraceContext ctx;
  for (std::uint32_t sid = 1; sid <= kSessions; ++sid) {
    ctx.expected_items[sid] = kSeqLen;
  }
  analysis::TracePipeline pipe;
  pipe.add(analysis::make_prefix_attestor())
      .add(analysis::make_rehydration_analyzer());
  const auto report = pipe.run(fabric::merge_backend_traces(parts), ctx);
  std::cout << "\nmerged-trace attestation (offline, across the crash):\n"
            << "  prefix.sessions  = " << report.value("prefix.sessions")
            << "\n  prefix.completed = " << report.value("prefix.completed")
            << "\n  verdict          = " << (report.ok ? "ok" : "VIOLATED")
            << "\n";

  const bool ok = drained &&
                  client.mux().stats().sessions_completed == kSessions &&
                  report.ok;
  std::cout << "\n"
            << (ok ? "the fabric healed: exact copy everywhere, attested "
                     "live and offline"
                   : "something did not heal — see above")
            << "\n";
  return ok ? 0 : 1;
}
