// protocol_lab — a small CLI for poking at any protocol/channel pairing.
//
//   protocol_lab [--proto NAME] [--channel NAME] [--loss P] [--dup P]
//                [--len N] [--domain D] [--window W] [--tagbits K]
//                [--seed S] [--trials T] [--steps MAX] [--trace]
//
// protocols: repfree-dup repfree-del abp stenning modk-stenning go-back-n
//            selective-repeat hybrid tagged
// channels : dup del dupdel fifo
//
// Picks a suitable input sequence for the protocol (repetition-free for the
// repfree pair, arbitrary otherwise), runs `--trials` seeded trials, and
// reports verdicts and cost statistics; `--trace` dumps the first trial's
// event trace.  Mismatched pairings are allowed on purpose — watching the
// safety checker catch ABP under reordering is the point of the lab.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "analysis/explain.hpp"
#include "analysis/table.hpp"
#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/dupdel_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "prob/random_tag.hpp"
#include "proto/suite.hpp"
#include "stp/runner.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;

struct Options {
  std::string proto = "repfree-del";
  std::string channel = "del";
  double loss = 0.2;
  double dup = 0.0;
  int len = 12;
  int domain = 12;
  int window = 4;
  int tagbits = 8;
  std::uint64_t seed = 1;
  int trials = 5;
  std::uint64_t steps = 300000;
  bool trace = false;
};

[[noreturn]] void usage(const std::string& err = "") {
  if (!err.empty()) std::cerr << "error: " << err << "\n";
  std::cerr <<
      "usage: protocol_lab [--proto NAME] [--channel NAME] [--loss P]\n"
      "                    [--dup P] [--len N] [--domain D] [--window W]\n"
      "                    [--tagbits K] [--seed S] [--trials T]\n"
      "                    [--steps MAX] [--trace]\n"
      "protocols: repfree-dup repfree-del abp stenning modk-stenning\n"
      "           go-back-n selective-repeat hybrid tagged\n"
      "channels : dup del dupdel fifo\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing value for " + std::string(argv[i]));
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--proto") opt.proto = need_value(i);
    else if (arg == "--channel") opt.channel = need_value(i);
    else if (arg == "--loss") opt.loss = std::stod(need_value(i));
    else if (arg == "--dup") opt.dup = std::stod(need_value(i));
    else if (arg == "--len") opt.len = std::stoi(need_value(i));
    else if (arg == "--domain") opt.domain = std::stoi(need_value(i));
    else if (arg == "--window") opt.window = std::stoi(need_value(i));
    else if (arg == "--tagbits") opt.tagbits = std::stoi(need_value(i));
    else if (arg == "--seed") opt.seed = std::stoull(need_value(i));
    else if (arg == "--trials") opt.trials = std::stoi(need_value(i));
    else if (arg == "--steps") opt.steps = std::stoull(need_value(i));
    else if (arg == "--trace") opt.trace = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage("unknown option " + arg);
  }
  if (opt.len < 0 || opt.domain < 1 || opt.trials < 1) usage("bad numbers");
  return opt;
}

proto::ProtocolPair make_protocol(const Options& o, bool& wants_repfree) {
  wants_repfree = false;
  if (o.proto == "repfree-dup") {
    wants_repfree = true;
    return proto::make_repfree_dup(o.domain);
  }
  if (o.proto == "repfree-del") {
    wants_repfree = true;
    return proto::make_repfree_del(o.domain);
  }
  if (o.proto == "abp") return proto::make_abp(o.domain);
  if (o.proto == "stenning") return proto::make_stenning(o.domain);
  if (o.proto == "modk-stenning") {
    return proto::make_modk_stenning(o.domain, o.window);
  }
  if (o.proto == "go-back-n") {
    return proto::make_go_back_n(o.domain, o.window);
  }
  if (o.proto == "selective-repeat") {
    return proto::make_selective_repeat(o.domain, o.window);
  }
  if (o.proto == "hybrid") return proto::make_hybrid(o.domain, 32);
  if (o.proto == "tagged") {
    return prob::make_tagged_del(o.domain, o.tagbits,
                                 prob::TagPolicy::kRandom, o.seed);
  }
  usage("unknown protocol " + o.proto);
}

std::unique_ptr<sim::IChannel> make_channel(const Options& o,
                                            std::uint64_t seed) {
  if (o.channel == "dup") return std::make_unique<channel::DupChannel>();
  if (o.channel == "del") {
    return std::make_unique<channel::DelChannel>(o.loss, seed);
  }
  if (o.channel == "dupdel") {
    return std::make_unique<channel::DupDelChannel>(o.loss, seed);
  }
  if (o.channel == "fifo") {
    return std::make_unique<channel::FifoChannel>(o.loss, o.dup, seed);
  }
  usage("unknown channel " + o.channel);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  bool wants_repfree = false;
  {  // validate the names once, loudly
    auto probe = make_protocol(opt, wants_repfree);
    (void)probe;
  }
  if (wants_repfree && opt.len > opt.domain) {
    usage("repfree protocols need --len <= --domain");
  }

  // Input: iota for repetition-free protocols, repeating pattern otherwise.
  seq::Sequence x(static_cast<std::size_t>(opt.len));
  for (int i = 0; i < opt.len; ++i) {
    x[static_cast<std::size_t>(i)] =
        wants_repfree ? i : i % opt.domain;
  }

  std::cout << "protocol_lab: proto=" << opt.proto
            << " channel=" << opt.channel << " loss=" << opt.loss
            << " |X|=" << opt.len << " domain=" << opt.domain
            << " trials=" << opt.trials << "\n"
            << "input X = " << seq::to_string(x) << "\n\n";

  stp::SystemSpec spec;
  spec.protocols = [&opt] {
    bool dummy;
    return make_protocol(opt, dummy);
  };
  spec.channel = [&opt](std::uint64_t seed) { return make_channel(opt, seed); };
  spec.scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  spec.engine.max_steps = opt.steps;
  spec.engine.record_trace = true;  // cheap, and enables forensics

  analysis::Table table(
      {"trial", "seed", "verdict", "steps", "sent", "delivered", "output"});
  int failures = 0;
  bool narrated = false;
  for (int t = 0; t < opt.trials; ++t) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(t);
    const sim::RunResult r = stp::run_one(spec, x, seed);
    const char* verdict = !r.safety_ok  ? "SAFETY VIOLATION"
                          : r.completed ? "ok"
                                        : "incomplete";
    if (!r.safety_ok || !r.completed) ++failures;
    if (!r.safety_ok && !narrated) {
      // Forensics for the first violation: what went wrong and which stale
      // message caused it.
      if (const auto f = analysis::explain_violation(r)) {
        std::cout << "forensics (trial " << t << "): "
                  << analysis::narrate(*f, r) << "\n\n";
        narrated = true;
      }
    }
    table.add_row({std::to_string(t), std::to_string(seed), verdict,
                   std::to_string(r.stats.steps),
                   std::to_string(r.stats.sent[0] + r.stats.sent[1]),
                   std::to_string(r.stats.delivered[0] + r.stats.delivered[1]),
                   seq::to_string(r.output)});
    if (opt.trace && t == 0) {
      std::cout << "trace of trial 0:\n";
      for (const auto& ev : r.trace) std::cout << "  " << to_string(ev) << "\n";
      std::cout << "\n";
    }
  }
  std::cout << table.to_ascii();
  std::cout << "\n" << (opt.trials - failures) << "/" << opt.trials
            << " trials delivered the sequence correctly\n";
  return failures == 0 ? 0 : 1;
}
