// Scenario: transfer a "file" over a lossy, reordering channel, comparing
// the paper's finite-alphabet bounded protocol against classic
// unbounded-header engineering (Selective Repeat, Stenning).
//
// The interesting wrinkle is the paper's bound itself: the repetition-free
// protocol can only carry repetition-free sequences, so arbitrary file bytes
// must be made repetition-free first.  We use position tagging — item_i =
// i * 256 + byte_i — which blows the domain (and hence the message alphabet)
// up linearly with the file size.  That is not an implementation artifact:
// Theorem 2 says ANY bounded finite-alphabet protocol for all byte files of
// length n needs alpha(m) >= 256^n, i.e. the alphabet must grow.  The
// unbounded-header baselines smuggle the same growth into their sequence
// numbers instead.
#include <iostream>

#include "analysis/table.hpp"
#include "channel/del_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/suite.hpp"
#include "stp/runner.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace stpx;

/// Deterministic pseudo-file.
std::vector<int> make_file(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> data(bytes);
  for (auto& b : data) b = static_cast<int>(rng.below(256));
  return data;
}

/// Position-tag the bytes so the sequence is repetition-free.
seq::Sequence position_tagged(const std::vector<int>& file) {
  seq::Sequence x;
  x.reserve(file.size());
  for (std::size_t i = 0; i < file.size(); ++i) {
    x.push_back(static_cast<seq::DataItem>(i * 256 + file[i]));
  }
  return x;
}

/// Plain byte items (repetitions allowed) for the baselines.
seq::Sequence plain(const std::vector<int>& file) {
  return {file.begin(), file.end()};
}

struct Row {
  std::string protocol;
  std::string alphabet;
  stp::SweepResult result;
};

}  // namespace

int main() {
  const std::size_t kFileBytes = 64;
  const double kLoss = 0.25;
  const auto file = make_file(kFileBytes, 7);
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};

  const int tagged_domain = static_cast<int>(kFileBytes) * 256;

  auto scheduler = [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
  auto lossy_channel = [kLoss](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(kLoss, seed);
  };

  std::vector<Row> rows;

  {
    stp::SystemSpec spec;
    spec.protocols = [tagged_domain] {
      return proto::make_repfree_del(tagged_domain);
    };
    spec.channel = lossy_channel;
    spec.scheduler = scheduler;
    spec.engine.max_steps = 2000000;
    rows.push_back({"repfree-del (paper)",
                    "|M^S| = " + std::to_string(tagged_domain),
                    stp::sweep_input(spec, position_tagged(file), seeds)});
  }
  {
    stp::SystemSpec spec;
    spec.protocols = [] { return proto::make_selective_repeat(256, 8); };
    spec.channel = lossy_channel;
    spec.scheduler = scheduler;
    spec.engine.max_steps = 2000000;
    rows.push_back({"selective-repeat W=8", "unbounded headers",
                    stp::sweep_input(spec, plain(file), seeds)});
  }
  {
    stp::SystemSpec spec;
    spec.protocols = [] { return proto::make_stenning(256); };
    spec.channel = lossy_channel;
    spec.scheduler = scheduler;
    spec.engine.max_steps = 2000000;
    rows.push_back({"stenning", "unbounded headers",
                    stp::sweep_input(spec, plain(file), seeds)});
  }

  std::cout << "file transfer over reorder+delete channel, loss=" << kLoss
            << ", file=" << kFileBytes << " bytes, " << seeds.size()
            << " trials\n";
  analysis::Table table({"protocol", "alphabet", "ok", "avg steps",
                         "msgs/trial", "msgs/byte"});
  for (const Row& row : rows) {
    const auto& r = row.result;
    table.add_row(
        {row.protocol, row.alphabet, r.all_ok() ? "yes" : "NO",
         stpx::fixed(r.avg_steps(), 0), stpx::fixed(r.msgs_per_trial(), 0),
         stpx::fixed(r.msgs_per_trial() / static_cast<double>(kFileBytes),
                     1)});
  }
  std::cout << table.to_ascii();

  std::cout
      << "\nNote the trade: the paper's protocol pays with alphabet size\n"
         "(finite but file-length-dependent), the baselines pay with\n"
         "unbounded sequence-number headers.  Theorems 1 and 2 say there is\n"
         "no third option: a fixed finite alphabet caps the supported\n"
         "inputs at alpha(m).\n";
  for (const Row& row : rows) {
    if (!row.result.all_ok()) return 1;
  }
  return 0;
}
