// Recovery lab: watch a crash destroy a protocol, then attach stable
// storage and watch the same crash become a non-event.
//
//   $ ./recovery_lab
//
// Three scenes:
//   1. Amnesia.  repfree-del's receiver crashes while duplicate copies of
//      an already-written item are in flight.  Its replay defence lives in
//      volatile state, so the restarted receiver re-writes the item and
//      prefix-safety breaks — a recovery-violation verdict, because the bad
//      write happens after the crash.
//   2. Durability.  The identical schedule with MemStores attached: the
//      engine checkpoints at every commit point and rehydrates on restart,
//      so the replay defence survives and the transfer completes.
//   3. Storage is faulty too.  A FileStore on disk takes a corrupt-record
//      hit (bit flips in the newest checkpoint) right before a crash.  The
//      per-record checksum rejects the damaged record, recovery falls back
//      to the next intact one, and the run still completes — then the store
//      directory is listed so you can see the layer's on-disk shape.
//
// See docs/RECOVERY.md for the record format, commit-point discipline, and
// the full storage-fault taxonomy.
#include <filesystem>
#include <iostream>

#include "channel/del_channel.hpp"
#include "channel/schedulers.hpp"
#include "proto/suite.hpp"
#include "stp/runner.hpp"
#include "stp/soak.hpp"
#include "store/stable_store.hpp"

using namespace stpx;

namespace {

stp::SystemSpec lockstep_spec(std::function<proto::ProtocolPair()> protocols) {
  stp::SystemSpec spec;
  spec.protocols = std::move(protocols);
  spec.channel = [](std::uint64_t seed) {
    return std::make_unique<channel::DelChannel>(0.0, seed);
  };
  spec.scheduler = [](std::uint64_t) {
    return std::make_unique<channel::RoundRobinScheduler>();
  };
  spec.engine.max_steps = 60000;
  spec.engine.stall_window = 6000;
  return spec;
}

void report(const char* title, const sim::RunResult& r) {
  std::cout << title << "\n  verdict          = " << sim::to_cstr(r.verdict)
            << "\n  output Y         = " << seq::to_string(r.output)
            << "\n  crashes          = " << r.stats.crashes[0] + r.stats.crashes[1]
            << "\n  recoveries       = " << r.stats.recoveries
            << "\n  records replayed = " << r.stats.records_replayed << "\n";
  if (!r.safety_ok) {
    std::cout << "  first violation at step " << r.first_violation_step
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const seq::Sequence x{3, 0, 4, 1, 7, 2};
  std::cout << "Recovery lab: amnesia, rehydration, and faulty storage\n"
            << "input X = " << seq::to_string(x) << "\n\n";

  // The hostile schedule: flood the channel with duplicates of the first
  // item, then crash the receiver after its second write.
  const auto amnesia = fault::plan_from_text(
      "dup @step 1 dir SR count 6 match *\n"
      "crash-receiver @writes 2\n");

  // Scene 1: no stores.  The restarted receiver has forgotten which items
  // it already wrote; a stale duplicate lands and safety breaks.
  const auto spec = lockstep_spec([] { return proto::make_repfree_del(12); });
  report("scene 1: repfree-del receiver crash, no stable storage:",
         stp::run_one(stp::with_chaos(spec, amnesia), x, 1));

  // Scene 2: same schedule, MemStores attached.  The engine persists every
  // durable-state change and rehydrates the receiver on restart.
  {
    store::MemStore sender_store, receiver_store;
    stp::SystemSpec durable = spec;
    durable.engine.sender_store = &sender_store;
    durable.engine.receiver_store = &receiver_store;
    report("scene 2: the same crash with MemStores attached:",
           stp::run_one(stp::with_chaos(durable, amnesia), x, 1));
  }

  // Scene 3: the storage itself misbehaves.  A FileStore-backed receiver
  // takes a corrupt-record fault (newest checkpoint's bytes flip) and then
  // crashes; the checksum catches the damage and recovery uses the next
  // intact record instead.
  {
    const auto dir =
        std::filesystem::temp_directory_path() / "stpx_recovery_lab";
    std::filesystem::create_directories(dir);
    store::FileStore sender_store((dir / "sender").string());
    store::FileStore receiver_store((dir / "receiver").string());
    stp::SystemSpec durable = spec;
    durable.engine.sender_store = &sender_store;
    durable.engine.receiver_store = &receiver_store;
    const auto faulty = fault::plan_from_text(
        "dup @step 1 dir SR count 6 match *\n"
        "corrupt-record @writes 1 proc receiver\n"
        "crash-receiver @writes 2\n");
    report("scene 3: FileStore + corrupt-record, checksum to the rescue:",
           stp::run_one(stp::with_chaos(durable, faulty), x, 1));
    std::cout << "  on-disk layout under " << dir.string() << ":\n";
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::cout << "    " << std::filesystem::relative(entry.path(), dir)
                       .string()
                << "  (" << entry.file_size() << " bytes)\n";
    }
  }
  return 0;
}
