// Trace lab: fly a session mux with the flight recorder on, then take the
// trace apart — the wire observability stack (src/net/ + src/analysis/)
// end to end.
//
//   $ ./trace_lab [trace.jsonl [trace.chrome.json]]
//
// 40 concurrent Stenning sessions run over a lossy, reordering loopback
// wire that also goes dark for a scripted blackout window mid-run.  A
// FlightRecorder attached to the server mux captures every probe hook
// into bounded per-thread rings; a drainer thread merges them into one
// time-ordered stream while the run is still flying.  Afterwards the lab:
//
//   1. runs the standard TracePipeline — the prefix-safety attestor
//      re-derives the acceptance verdict from the trace alone, and the
//      goodput / stall / fault-correlation analyzers fill in the "what
//      did the wire actually do" picture;
//   2. archives the stream as JSONL and (optionally) as a Chrome trace
//      you can drop into Perfetto, with the blackout window overlaid as a
//      span across the per-session tracks.
//
// See docs/OBSERVABILITY.md ("Wire observability") for the event schema.
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "analysis/table.hpp"
#include "analysis/trace_pipeline.hpp"
#include "fault/plan.hpp"
#include "net/flight_recorder.hpp"
#include "net/loopback.hpp"
#include "net/service.hpp"
#include "net/trace_sinks.hpp"
#include "proto/suite.hpp"

using namespace stpx;
using namespace std::chrono_literals;

namespace {

constexpr int kDomain = 10;
constexpr std::size_t kSessions = 40;
constexpr std::size_t kSeqLen = 6;

seq::Sequence seq_for(std::uint32_t id) {
  seq::Sequence x;
  for (std::size_t i = 0; i < kSeqLen; ++i) {
    x.push_back(static_cast<seq::DataItem>((id * 3 + i) % kDomain));
  }
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonl_path = argc > 1 ? argv[1] : "";
  const std::string chrome_path = argc > 2 ? argv[2] : "";

  // --- the wire: periodic loss, reordering, one mid-run blackout ----------
  net::LoopbackConfig wire;
  wire.plan = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                   sim::Dir::kSenderToReceiver, 7, 1, 200000);
  const auto rs = fault::periodic_plan(fault::FaultKind::kDropBurst,
                                       sim::Dir::kReceiverToSender, 9, 1,
                                       200000);
  wire.plan.actions.insert(wire.plan.actions.end(), rs.actions.begin(),
                           rs.actions.end());
  {
    // The S->R link goes dark for 2000 poll ticks once it has carried 200
    // sends — long enough to shade a visible stripe of the trace.
    fault::FaultAction dark;
    dark.kind = fault::FaultKind::kBlackout;
    dark.dir = sim::Dir::kSenderToReceiver;
    dark.trigger.kind = fault::TriggerKind::kSends;
    dark.trigger.at = 200;
    dark.duration = 2000;
    wire.plan.actions.push_back(dark);
  }
  wire.reorder_window = 4;
  wire.seed = 0x7face;
  wire.max_queue = 8192;
  auto pair = net::make_loopback(wire);

  // --- the service pair, recorder on the server ---------------------------
  net::FlightRecorder recorder;
  net::MuxConfig cfg;
  cfg.workers = 2;
  cfg.steps_per_sweep = 2;
  cfg.max_inflight = 8;
  cfg.keepalive_sweeps = 4;
  cfg.sweep_interval = 300us;
  net::MuxConfig server_cfg = cfg;
  server_cfg.probe = &recorder;

  net::StpClient client(pair.a.get(), cfg);
  net::StpServer server(pair.b.get(), server_cfg);
  analysis::TraceContext ctx;
  for (std::uint32_t id = 0; id < kSessions; ++id) {
    auto protos = proto::make_stenning(kDomain);
    const auto x = seq_for(id);
    client.add_session(id, std::move(protos.sender), x);
    server.add_session(id, std::move(protos.receiver), x);
    ctx.expected_items[id] = kSeqLen;
  }

  std::cout << "flying " << kSessions
            << " sessions with the flight recorder on...\n";
  std::vector<net::TraceEvent> events;
  bool drained;
  {
    std::jthread drainer([&](std::stop_token stop) {
      while (!stop.stop_requested()) {
        auto batch = recorder.drain();
        events.insert(events.end(), batch.begin(), batch.end());
        std::this_thread::sleep_for(2ms);
      }
    });
    drained = net::run_service_pair(client, server, 60s);
  }
  auto tail = recorder.drain();
  events.insert(events.end(), tail.begin(), tail.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const net::TraceEvent& a, const net::TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  const auto rstats = recorder.stats();
  std::cout << "run " << (drained ? "drained" : "TIMED OUT") << "; captured "
            << events.size() << " events (" << rstats.recorded
            << " recorded, " << rstats.dropped << " dropped)\n";

  // --- take the trace apart -----------------------------------------------
  ctx.fault_windows =
      net::to_trace_spans(pair.fault_windows(), recorder.epoch());
  const auto report = analysis::make_standard_pipeline().run(events, ctx);

  analysis::Table table({"key", "value"});
  for (const auto& [k, v] : report.values) {
    table.add_row({k, std::to_string(v)});
  }
  std::cout << "\n" << table.to_ascii();
  for (const auto& [k, v] : report.notes) {
    std::cout << "note " << k << ": " << v << "\n";
  }
  std::cout << "\nattestation: the trace "
            << (report.value("prefix.ok") == 1 ? "CONFIRMS" : "VIOLATES")
            << " prefix safety and completeness for every session"
            << (report.ok ? "" : " (report verdict: NOT ok)") << "\n";
  std::cout << "fault overlay: " << ctx.fault_windows.size()
            << " wire window(s); "
            << report.value("faultcorr.sends_in_window")
            << " sends fell inside one\n";

  // --- archive ------------------------------------------------------------
  if (!jsonl_path.empty()) {
    std::ofstream out(jsonl_path);
    net::write_trace_jsonl(out, events);
    std::cout << "\nJSONL archive: " << jsonl_path << " (" << events.size()
              << " lines; re-analyzing it reproduces the report above "
                 "exactly)\n";
  }
  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path);
    net::write_wire_chrome_trace(out, events, ctx.fault_windows);
    std::cout << "Chrome trace: " << chrome_path
              << " (load in Perfetto / chrome://tracing)\n";
  }
  return report.ok && drained ? 0 : 1;
}
