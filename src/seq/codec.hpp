// Codecs between arbitrary data streams and the repetition-free sequences
// the paper's protocols carry.
//
// alpha(m) bounds WHICH sequences a finite alphabet can carry, not how much
// raw data: any byte stream embeds into a repetition-free sequence by
// position tagging (item_i = i * radix + byte_i), at the cost of a domain —
// and hence message alphabet — that grows linearly with the stream length.
// This is the honest trade the paper's theorems force, and the examples and
// benches use it to run real payloads through the bounded protocols.
#pragma once

#include <optional>
#include <vector>

#include "seq/types.hpp"

namespace stpx::seq {

/// Encode `data` (values in [0, radix)) as the repetition-free sequence
/// item_i = i * radix + data_i.  Domain size needed: data.size() * radix.
Sequence position_tag(const std::vector<int>& data, int radix);

/// Inverse of position_tag.  Returns nullopt if `x` is not a well-formed
/// tagged sequence for this radix (wrong positions or out-of-range values).
std::optional<std::vector<int>> position_untag(const Sequence& x, int radix);

/// Domain size position_tag requires for `length` items of this radix.
int position_tag_domain(std::size_t length, int radix);

/// Encode `data` by delta-chaining into a repetition-free sequence over a
/// domain of size radix * (radix + 1): item_i = prev_item's low digit and
/// the current value combined, guaranteeing adjacent distinctness and
/// global repetition-freedom via a rolling counter.  More compact than
/// position tagging when repeated *adjacent* values are the main problem
/// but still linear in the worst case; provided mainly as a second codec
/// for tests.  Returns nullopt if data is too long for the radix
/// (length > radix).
std::optional<Sequence> counter_tag(const std::vector<int>& data, int radix);

/// Inverse of counter_tag.
std::optional<std::vector<int>> counter_untag(const Sequence& x, int radix);

}  // namespace stpx::seq
