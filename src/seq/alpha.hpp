// The paper's central combinatorial quantity:
//
//     alpha(m) = m! * sum_{k=0}^{m} 1/k!
//
// i.e. the number of repetition-free sequences (including the empty one)
// over an alphabet of m symbols.  Theorems 1 and 2 show alpha(|M^S|) is a
// tight bound on |X| for X-STP(dup) and for bounded X-STP(del).
//
// Three independent computations are provided so the T1 table can
// cross-check them: the closed form, the recurrence alpha(m) = 1 + m *
// alpha(m-1), and (in repetition_free.hpp) exhaustive enumeration.
#pragma once

#include <cstdint>
#include <optional>

#include "util/biguint.hpp"

namespace stpx::seq {

/// alpha(m) via the closed form, in 64 bits.  Returns nullopt on overflow
/// (first overflows at m = 21).
std::optional<std::uint64_t> alpha_u64(int m);

/// alpha(m) via the recurrence alpha(m) = 1 + m * alpha(m-1), alpha(0) = 1,
/// in 64 bits.  Returns nullopt on overflow.
std::optional<std::uint64_t> alpha_recurrence_u64(int m);

/// alpha(m) exactly, for any m >= 0.
BigUint alpha_big(int m);

/// Number of repetition-free sequences of length exactly k over m symbols:
/// m! / (m-k)! = m * (m-1) * ... * (m-k+1).  Returns nullopt on overflow or
/// if k > m (in which case the count is zero and 0 is returned, not nullopt).
std::optional<std::uint64_t> falling_factorial_u64(int m, int k);

}  // namespace stpx::seq
