#include "seq/codec.hpp"

#include "util/expect.hpp"

namespace stpx::seq {

Sequence position_tag(const std::vector<int>& data, int radix) {
  STPX_EXPECT(radix >= 1, "position_tag: radix must be positive");
  Sequence x;
  x.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    STPX_EXPECT(data[i] >= 0 && data[i] < radix,
                "position_tag: value out of radix range");
    x.push_back(static_cast<DataItem>(i * static_cast<std::size_t>(radix) +
                                      static_cast<std::size_t>(data[i])));
  }
  return x;
}

std::optional<std::vector<int>> position_untag(const Sequence& x, int radix) {
  if (radix < 1) return std::nullopt;
  std::vector<int> data;
  data.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0) return std::nullopt;
    const auto pos = static_cast<std::size_t>(x[i]) /
                     static_cast<std::size_t>(radix);
    const int value = static_cast<int>(static_cast<std::size_t>(x[i]) %
                                       static_cast<std::size_t>(radix));
    if (pos != i) return std::nullopt;
    data.push_back(value);
  }
  return data;
}

int position_tag_domain(std::size_t length, int radix) {
  STPX_EXPECT(radix >= 1, "position_tag_domain: radix must be positive");
  return static_cast<int>(length) * radix;
}

std::optional<Sequence> counter_tag(const std::vector<int>& data, int radix) {
  if (radix < 1) return std::nullopt;
  if (data.size() > static_cast<std::size_t>(radix)) return std::nullopt;
  Sequence x;
  x.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] < 0 || data[i] >= radix) return std::nullopt;
    // counter digit i guarantees repetition-freedom (each item has a
    // distinct counter field); value rides in the low digit.
    x.push_back(static_cast<DataItem>(
        static_cast<int>(i) * radix + data[i]));
  }
  return x;
}

std::optional<std::vector<int>> counter_untag(const Sequence& x, int radix) {
  if (radix < 1) return std::nullopt;
  if (x.size() > static_cast<std::size_t>(radix)) return std::nullopt;
  std::vector<int> data;
  data.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0) return std::nullopt;
    const int counter = static_cast<int>(x[i]) / radix;
    const int value = static_cast<int>(x[i]) % radix;
    if (counter != static_cast<int>(i)) return std::nullopt;
    data.push_back(value);
  }
  return data;
}

}  // namespace stpx::seq
