// Core sequence vocabulary for the Sequence Transmission Problem.
//
// Data items are drawn from a finite domain D = {0, ..., size-1}.  An input
// sequence X is a finite word over D.  (The paper also treats infinite X;
// operationally we always work with finite prefixes, which is where every
// bound in the paper is exercised.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stpx::seq {

/// A data item: an index into the domain D.
using DataItem = std::int32_t;

/// A finite data sequence.
using Sequence = std::vector<DataItem>;

/// The finite domain D the input sequences range over.
struct Domain {
  int size = 0;

  bool contains(DataItem d) const { return d >= 0 && d < size; }
};

/// True iff `p` is a (not necessarily proper) prefix of `x`.
bool is_prefix(const Sequence& p, const Sequence& x);

/// True iff neither sequence is a prefix of the other.
bool prefix_incomparable(const Sequence& a, const Sequence& b);

/// True iff no data item occurs twice in `x`.
bool repetition_free(const Sequence& x);

/// True iff every item of `x` lies in `dom`.
bool in_domain(const Sequence& x, const Domain& dom);

/// Render like "<2 0 1>"; the empty sequence renders as "<>".
std::string to_string(const Sequence& x);

}  // namespace stpx::seq
