#include "seq/encoding.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "seq/alpha.hpp"
#include "util/expect.hpp"

namespace stpx::seq {

namespace {

bool word_is_prefix(const MsgWord& p, const MsgWord& w) {
  if (p.size() > w.size()) return false;
  return std::equal(p.begin(), p.end(), w.begin());
}

bool word_repetition_free(const MsgWord& w) {
  MsgWord sorted = w;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

std::string word_str(const MsgWord& w) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i > 0) os << ' ';
    os << w[i];
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string EncodingViolation::describe(const Encoding& enc) const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kRepetition:
      os << "word " << word_str(enc.words[first]) << " for input "
         << to_string(enc.inputs[first]) << " repeats a message";
      break;
    case Kind::kOutOfAlphabet:
      os << "word " << word_str(enc.words[first]) << " for input "
         << to_string(enc.inputs[first]) << " uses a symbol outside M^S";
      break;
    case Kind::kDuplicateWord:
      os << "inputs " << to_string(enc.inputs[first]) << " and "
         << to_string(enc.inputs[second]) << " share word "
         << word_str(enc.words[first]);
      break;
    case Kind::kPrefixConflict:
      os << "word " << word_str(enc.words[first]) << " (for "
         << to_string(enc.inputs[first]) << ") is a prefix of word "
         << word_str(enc.words[second]) << " (for "
         << to_string(enc.inputs[second]) << ") but the inputs are not "
         << "prefix-ordered";
      break;
  }
  return os.str();
}

std::optional<EncodingViolation> find_violation(const Encoding& enc) {
  STPX_EXPECT(enc.inputs.size() == enc.words.size(),
              "find_violation: inputs/words size mismatch");
  using Kind = EncodingViolation::Kind;
  for (std::size_t i = 0; i < enc.words.size(); ++i) {
    for (int sym : enc.words[i]) {
      if (sym < 0 || sym >= enc.alphabet_size) {
        return EncodingViolation{Kind::kOutOfAlphabet, i, 0};
      }
    }
    if (!word_repetition_free(enc.words[i])) {
      return EncodingViolation{Kind::kRepetition, i, 0};
    }
  }
  for (std::size_t i = 0; i < enc.words.size(); ++i) {
    for (std::size_t j = 0; j < enc.words.size(); ++j) {
      if (i == j) continue;
      if (enc.words[i] == enc.words[j]) {
        if (enc.inputs[i] != enc.inputs[j] && i < j) {
          return EncodingViolation{Kind::kDuplicateWord, i, j};
        }
        continue;
      }
      if (word_is_prefix(enc.words[i], enc.words[j]) &&
          !is_prefix(enc.inputs[i], enc.inputs[j])) {
        return EncodingViolation{Kind::kPrefixConflict, i, j};
      }
    }
  }
  return std::nullopt;
}

namespace {

/// Prefix trie over the family; `member_index` marks which node terminates
/// which family member (SIZE_MAX if none).
struct TrieNode {
  std::map<DataItem, std::unique_ptr<TrieNode>> children;
  std::size_t member_index = SIZE_MAX;
};

/// Assign message symbols along trie edges so that each root-to-node path is
/// repetition-free.  A node at depth d has only m-d unused symbols, so the
/// embedding fails iff some node has more children than symbols remain (or a
/// path exceeds depth m).
bool embed(const TrieNode& node, int m, std::vector<bool>& used_on_path,
           MsgWord& path, Encoding& out) {
  if (node.member_index != SIZE_MAX) {
    out.words[node.member_index] = path;
  }
  if (node.children.empty()) return true;
  // Collect unused symbols; children each need a distinct one.
  std::vector<int> avail;
  for (int s = 0; s < m; ++s) {
    if (!used_on_path[static_cast<std::size_t>(s)]) avail.push_back(s);
  }
  if (node.children.size() > avail.size()) return false;
  std::size_t next = 0;
  for (const auto& [item, child] : node.children) {
    (void)item;
    const int sym = avail[next++];
    used_on_path[static_cast<std::size_t>(sym)] = true;
    path.push_back(sym);
    const bool ok = embed(*child, m, used_on_path, path, out);
    path.pop_back();
    used_on_path[static_cast<std::size_t>(sym)] = false;
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::optional<Encoding> try_build_encoding(const Family& family, int m) {
  STPX_EXPECT(m >= 0, "try_build_encoding: negative m");
  STPX_EXPECT(mutually_distinct(family),
              "try_build_encoding: family members must be distinct");
  // Fast pigeonhole: more members than repetition-free words can exist.
  const BigUint limit = alpha_big(m);
  if (BigUint(family.size()) > limit) return std::nullopt;

  TrieNode root;
  for (std::size_t i = 0; i < family.members.size(); ++i) {
    TrieNode* node = &root;
    for (DataItem d : family.members[i]) {
      auto it = node->children.find(d);
      if (it == node->children.end()) {
        it = node->children.emplace(d, std::make_unique<TrieNode>()).first;
      }
      node = it->second.get();
    }
    node->member_index = i;
  }

  Encoding enc;
  enc.alphabet_size = m;
  enc.inputs = family.members;
  enc.words.resize(family.members.size());
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  MsgWord path;
  if (!embed(root, m, used, path, enc)) return std::nullopt;
  // The construction guarantees validity; check anyway — cheap insurance.
  STPX_EXPECT(!find_violation(enc).has_value(),
              "try_build_encoding: construction produced invalid encoding");
  return enc;
}

std::vector<std::size_t> largest_embeddable_subfamily(const Family& family,
                                                      int m) {
  STPX_EXPECT(m >= 0, "largest_embeddable_subfamily: negative m");
  STPX_EXPECT(mutually_distinct(family),
              "largest_embeddable_subfamily: family members must be distinct");
  // Greedy: keep a member iff the kept set still embeds.  Quadratic in the
  // family size times the embedding cost — fine at experiment scales, and
  // monotone (dropping a member never hurts later ones).
  std::vector<std::size_t> kept;
  Family trial{family.domain, {}};
  for (std::size_t i = 0; i < family.members.size(); ++i) {
    trial.members.push_back(family.members[i]);
    if (try_build_encoding(trial, m).has_value()) {
      kept.push_back(i);
    } else {
      trial.members.pop_back();
    }
  }
  return kept;
}

}  // namespace stpx::seq
