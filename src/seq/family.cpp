#include "seq/family.hpp"

#include <algorithm>
#include <set>

#include "seq/repetition_free.hpp"
#include "util/expect.hpp"

namespace stpx::seq {

bool mutually_distinct(const Family& fam) {
  std::set<Sequence> seen(fam.members.begin(), fam.members.end());
  return seen.size() == fam.members.size();
}

bool prefix_closed(const Family& fam) {
  std::set<Sequence> seen(fam.members.begin(), fam.members.end());
  for (const Sequence& x : fam.members) {
    Sequence prefix;
    for (DataItem d : x) {
      if (seen.find(prefix) == seen.end()) return false;
      prefix.push_back(d);
    }
  }
  return true;
}

Family canonical_repetition_free(int m) {
  return Family{Domain{m}, all_repetition_free(m)};
}

Family beyond_alpha(int m) {
  STPX_EXPECT(m >= 1, "beyond_alpha: requires m >= 1");
  Family fam = canonical_repetition_free(m);
  fam.members.push_back(Sequence{0, 0});
  return fam;
}

Family all_words_up_to(int m, int max_len) {
  STPX_EXPECT(m >= 1 && max_len >= 0, "all_words_up_to: bad arguments");
  Family fam{Domain{m}, {Sequence{}}};
  std::vector<Sequence> frontier{Sequence{}};
  for (int len = 1; len <= max_len; ++len) {
    std::vector<Sequence> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(m));
    for (const Sequence& w : frontier) {
      for (DataItem d = 0; d < m; ++d) {
        Sequence ext = w;
        ext.push_back(d);
        next.push_back(ext);
      }
    }
    fam.members.insert(fam.members.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return fam;
}

Family random_family(int m, std::size_t count, int max_len, Rng& rng) {
  STPX_EXPECT(m >= 1 && max_len >= 0, "random_family: bad arguments");
  // Space size: sum_{k<=max_len} m^k; refuse if obviously too small.
  long double space = 0;
  long double pw = 1;
  for (int k = 0; k <= max_len; ++k) {
    space += pw;
    pw *= m;
  }
  STPX_EXPECT(static_cast<long double>(count) <= space,
              "random_family: not enough distinct sequences in space");
  std::set<Sequence> seen;
  Family fam{Domain{m}, {}};
  while (fam.members.size() < count) {
    const int len = static_cast<int>(rng.range(0, max_len));
    Sequence x(static_cast<std::size_t>(len));
    for (auto& d : x) d = static_cast<DataItem>(rng.below(static_cast<std::uint64_t>(m)));
    if (seen.insert(x).second) fam.members.push_back(std::move(x));
  }
  return fam;
}

}  // namespace stpx::seq
