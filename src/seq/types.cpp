#include "seq/types.hpp"

#include <algorithm>
#include <sstream>

namespace stpx::seq {

bool is_prefix(const Sequence& p, const Sequence& x) {
  if (p.size() > x.size()) return false;
  return std::equal(p.begin(), p.end(), x.begin());
}

bool prefix_incomparable(const Sequence& a, const Sequence& b) {
  return !is_prefix(a, b) && !is_prefix(b, a);
}

bool repetition_free(const Sequence& x) {
  Sequence sorted = x;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

bool in_domain(const Sequence& x, const Domain& dom) {
  return std::all_of(x.begin(), x.end(),
                     [&dom](DataItem d) { return dom.contains(d); });
}

std::string to_string(const Sequence& x) {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i > 0) os << ' ';
    os << x[i];
  }
  os << '>';
  return os.str();
}

}  // namespace stpx::seq
