// Generators for allowable-sequence families (the paper's sets 𝒳).
//
// A family is just a vector of mutually distinct sequences over a domain.
// The theorems compare |𝒳| against alpha(m), so experiments need families of
// controlled size and structure: the canonical repetition-free family (the
// achievable case), that family plus one extra sequence (the impossible
// case), all words of bounded length, and random families for property
// tests.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/types.hpp"
#include "util/rng.hpp"

namespace stpx::seq {

/// A set 𝒳 of allowable input sequences over a common domain.
struct Family {
  Domain domain;
  std::vector<Sequence> members;

  std::size_t size() const { return members.size(); }
};

/// True iff all members are mutually distinct (as required of 𝒳 in the
/// impossibility arguments).
bool mutually_distinct(const Family& fam);

/// True iff the family is prefix-closed (every prefix of a member is a
/// member).
bool prefix_closed(const Family& fam);

/// The canonical achievable family: all repetition-free sequences over a
/// domain of size m.  |members| = alpha(m).
Family canonical_repetition_free(int m);

/// The canonical family plus one sequence with a repetition (the shortest
/// one, <0 0>), giving |𝒳| = alpha(m) + 1 — the threshold at which Theorems
/// 1 and 2 apply.  Requires m >= 1.
Family beyond_alpha(int m);

/// All words over {0..m-1} of length at most `max_len` (size = sum m^k).
Family all_words_up_to(int m, int max_len);

/// `count` distinct random sequences over {0..m-1} with lengths in
/// [0, max_len].  Throws if the space is too small to supply `count`
/// distinct sequences.
Family random_family(int m, std::size_t count, int max_len, Rng& rng);

}  // namespace stpx::seq
