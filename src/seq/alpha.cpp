#include "seq/alpha.hpp"

#include "util/expect.hpp"

namespace stpx::seq {

namespace {

/// a*b with overflow detection.
std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
  return out;
}

std::optional<std::uint64_t> checked_add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
  return out;
}

}  // namespace

std::optional<std::uint64_t> falling_factorial_u64(int m, int k) {
  STPX_EXPECT(m >= 0 && k >= 0, "falling_factorial_u64: negative argument");
  if (k > m) return 0;
  std::uint64_t acc = 1;
  for (int i = 0; i < k; ++i) {
    auto next = checked_mul(acc, static_cast<std::uint64_t>(m - i));
    if (!next) return std::nullopt;
    acc = *next;
  }
  return acc;
}

std::optional<std::uint64_t> alpha_u64(int m) {
  STPX_EXPECT(m >= 0, "alpha_u64: negative m");
  std::uint64_t acc = 0;
  for (int k = 0; k <= m; ++k) {
    auto term = falling_factorial_u64(m, k);
    if (!term) return std::nullopt;
    auto sum = checked_add(acc, *term);
    if (!sum) return std::nullopt;
    acc = *sum;
  }
  return acc;
}

std::optional<std::uint64_t> alpha_recurrence_u64(int m) {
  STPX_EXPECT(m >= 0, "alpha_recurrence_u64: negative m");
  std::uint64_t acc = 1;  // alpha(0) = 1: just the empty sequence.
  for (int i = 1; i <= m; ++i) {
    auto prod = checked_mul(acc, static_cast<std::uint64_t>(i));
    if (!prod) return std::nullopt;
    auto sum = checked_add(*prod, 1);
    if (!sum) return std::nullopt;
    acc = *sum;
  }
  return acc;
}

BigUint alpha_big(int m) {
  STPX_EXPECT(m >= 0, "alpha_big: negative m");
  BigUint acc(1);
  for (int i = 1; i <= m; ++i) {
    acc *= static_cast<std::uint64_t>(i);
    acc += 1;
  }
  return acc;
}

}  // namespace stpx::seq
