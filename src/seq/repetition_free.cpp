#include "seq/repetition_free.hpp"

#include <algorithm>

#include "seq/alpha.hpp"
#include "util/expect.hpp"

namespace stpx::seq {

namespace {

void generate_of_length(int m, int k, Sequence& prefix,
                        std::vector<bool>& used,
                        std::vector<Sequence>& out) {
  if (static_cast<int>(prefix.size()) == k) {
    out.push_back(prefix);
    return;
  }
  for (DataItem d = 0; d < m; ++d) {
    if (used[static_cast<std::size_t>(d)]) continue;
    used[static_cast<std::size_t>(d)] = true;
    prefix.push_back(d);
    generate_of_length(m, k, prefix, used, out);
    prefix.pop_back();
    used[static_cast<std::size_t>(d)] = false;
  }
}

}  // namespace

std::vector<Sequence> repetition_free_of_length(int m, int k) {
  STPX_EXPECT(m >= 0 && k >= 0, "repetition_free_of_length: negative args");
  std::vector<Sequence> out;
  if (k > m) return out;
  Sequence prefix;
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  generate_of_length(m, k, prefix, used, out);
  return out;
}

std::vector<Sequence> all_repetition_free(int m) {
  STPX_EXPECT(m >= 0, "all_repetition_free: negative m");
  std::vector<Sequence> out;
  for (int k = 0; k <= m; ++k) {
    auto level = repetition_free_of_length(m, k);
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

std::uint64_t rank_repetition_free(const Sequence& x, int m) {
  STPX_EXPECT(repetition_free(x), "rank_repetition_free: has repetitions");
  STPX_EXPECT(in_domain(x, Domain{m}), "rank_repetition_free: out of domain");
  const int k = static_cast<int>(x.size());
  // Sequences shorter than k all precede x in shortlex order.
  std::uint64_t rank = 0;
  for (int j = 0; j < k; ++j) {
    auto count = falling_factorial_u64(m, j);
    STPX_EXPECT(count.has_value(), "rank_repetition_free: overflow");
    rank += *count;
  }
  // Lexicographic rank within length k.
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  for (int i = 0; i < k; ++i) {
    // Symbols smaller than x[i] that are still unused each head a subtree of
    // ff(m - i - 1, k - i - 1) completions.
    std::uint64_t smaller_unused = 0;
    for (DataItem d = 0; d < x[static_cast<std::size_t>(i)]; ++d) {
      if (!used[static_cast<std::size_t>(d)]) ++smaller_unused;
    }
    auto subtree = falling_factorial_u64(m - i - 1, k - i - 1);
    STPX_EXPECT(subtree.has_value(), "rank_repetition_free: overflow");
    rank += smaller_unused * *subtree;
    used[static_cast<std::size_t>(x[static_cast<std::size_t>(i)])] = true;
  }
  return rank;
}

Sequence unrank_repetition_free(std::uint64_t rank, int m) {
  STPX_EXPECT(m >= 0, "unrank_repetition_free: negative m");
  // Find the length band the rank falls into.
  int k = 0;
  while (true) {
    STPX_EXPECT(k <= m, "unrank_repetition_free: rank out of range");
    auto count = falling_factorial_u64(m, k);
    STPX_EXPECT(count.has_value(), "unrank_repetition_free: overflow");
    if (rank < *count) break;
    rank -= *count;
    ++k;
  }
  Sequence x;
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  for (int i = 0; i < k; ++i) {
    auto subtree = falling_factorial_u64(m - i - 1, k - i - 1);
    STPX_EXPECT(subtree.has_value(), "unrank_repetition_free: overflow");
    std::uint64_t idx = rank / *subtree;  // index among unused symbols
    rank %= *subtree;
    for (DataItem d = 0; d < m; ++d) {
      if (used[static_cast<std::size_t>(d)]) continue;
      if (idx == 0) {
        x.push_back(d);
        used[static_cast<std::size_t>(d)] = true;
        break;
      }
      --idx;
    }
  }
  return x;
}

}  // namespace stpx::seq
