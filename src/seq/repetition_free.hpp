// Enumeration and ranking of repetition-free sequences.
//
// A repetition-free sequence over an m-symbol alphabet has length at most m;
// there are exactly alpha(m) of them (including the empty sequence).  The
// paper's achievable protocols transmit precisely these sequences, and its
// impossibility proofs hinge on their count, so we provide:
//   * exhaustive enumeration in shortlex order,
//   * a rank/unrank bijection [0, alpha(m)) <-> sequences,
// which together give the third, independent computation of alpha(m) used by
// the T1 cross-check.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "seq/types.hpp"

namespace stpx::seq {

/// All repetition-free sequences over {0..m-1} in shortlex order (by length,
/// then lexicographically).  Size is alpha(m); m must be small enough that
/// alpha(m) fits in memory (m <= 10 is ~10M sequences; keep m <= 8 in tests).
std::vector<Sequence> all_repetition_free(int m);

/// All repetition-free sequences of length exactly k over {0..m-1}, in
/// lexicographic order.
std::vector<Sequence> repetition_free_of_length(int m, int k);

/// Shortlex rank of a repetition-free sequence over {0..m-1}; inverse of
/// unrank_repetition_free.  Precondition: x is repetition-free and in domain.
std::uint64_t rank_repetition_free(const Sequence& x, int m);

/// The repetition-free sequence over {0..m-1} with the given shortlex rank.
/// Precondition: rank < alpha(m) (which must fit in u64, i.e. m <= 20).
Sequence unrank_repetition_free(std::uint64_t rank, int m);

}  // namespace stpx::seq
