// Prefix-monotone repetition-free encodings (end of §3 of the paper).
//
// The paper observes that any solution to 𝒳-STP(dup) must, in effect, map
// each input sequence X ∈ 𝒳 to a message word μ(X) over M^S such that
//   (E1) μ(X) is repetition-free (a repeated message buys nothing: the
//        channel can replay the first copy forever), and
//   (E2) μ(X₁) is a prefix of μ(X₂) only when X₁ is a prefix of X₂
//        (prefix-monotonicity; otherwise the receiver, having seen μ(X₁),
//        cannot distinguish "done with X₁" from "midway through X₂").
// Since only alpha(m) repetition-free words exist, |𝒳| ≤ alpha(m) follows by
// pigeonhole.  This module makes that argument executable:
//   * validity checking of a candidate encoding with a concrete witness of
//     the violated condition,
//   * a greedy trie-embedding constructor that builds a valid encoding
//     whenever one exists along the natural prefix structure,
//   * the pigeonhole: any candidate for |𝒳| > alpha(m) is provably invalid,
//     and we return the offending pair.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "seq/family.hpp"
#include "seq/types.hpp"

namespace stpx::seq {

/// A message word over the sender alphabet M^S = {0..m-1}.
using MsgWord = std::vector<int>;

/// A candidate encoding μ: parallel arrays, inputs[i] ↦ words[i].
struct Encoding {
  int alphabet_size = 0;  // m = |M^S|
  std::vector<Sequence> inputs;
  std::vector<MsgWord> words;
};

/// Why an encoding is invalid, with a concrete witness.
struct EncodingViolation {
  enum class Kind {
    kRepetition,       // words[first] repeats a message (violates E1)
    kOutOfAlphabet,    // words[first] uses a symbol outside {0..m-1}
    kDuplicateWord,    // words[first] == words[second], inputs differ
    kPrefixConflict,   // words[first] prefix of words[second] but
                       // inputs[first] not prefix of inputs[second]
  };
  Kind kind;
  std::size_t first = 0;
  std::size_t second = 0;  // meaningful for kDuplicateWord/kPrefixConflict

  std::string describe(const Encoding& enc) const;
};

/// Check E1/E2; nullopt means the encoding is valid.
std::optional<EncodingViolation> find_violation(const Encoding& enc);

/// Greedily build a valid encoding for the family by embedding its prefix
/// trie into the repetition-free word tree over m symbols (a node at depth d
/// has m-d unused symbols for its children).  Returns nullopt when the
/// embedding fails — in particular it always fails when |family| > alpha(m),
/// which is the executable form of the paper's pigeonhole.
std::optional<Encoding> try_build_encoding(const Family& family, int m);

/// When a family does not fit, which part of it can still be served?
/// Greedily selects a maximal embeddable subfamily (members kept in their
/// given priority order; each is retained iff the trie of the kept set
/// still embeds into the repetition-free word tree over m symbols).  The
/// result always admits a valid encoding; by Theorem 1 its size is at most
/// alpha(m).  Returns the indices of the kept members.
std::vector<std::size_t> largest_embeddable_subfamily(const Family& family,
                                                      int m);

}  // namespace stpx::seq
