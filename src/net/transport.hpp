// Transport abstraction: how frames move between two mux endpoints.
//
// An ITransport is one endpoint of a bidirectional, datagram-oriented,
// *unreliable* link: send() hands one encoded frame to the wire, poll()
// retrieves the next frame the peer's sends have made deliverable.  Both
// are non-blocking and thread-safe — the session mux calls send() from
// worker threads while its pump thread polls.
//
// The contract is deliberately the paper's channel model, not TCP's:
// frames may be lost, duplicated, and reordered; the only guarantee is
// that a delivered frame is byte-identical to some sent frame (corruption
// is the codec's problem — a frame that fails decode is counted and
// dropped by the mux).  Protocols above the mux already survive exactly
// this fault model, which is the whole point of pairing them.
//
// Implementations:
//   * make_loopback() — in-process, thread-safe queue pair whose loss /
//     duplication / reordering knobs are driven by the fault::FaultPlan
//     grammar (see net/loopback.hpp);
//   * make_udp_pair() — real non-blocking UDP sockets over 127.0.0.1
//     (see net/udp.hpp); gated so environments without sockets fall back
//     to loopback.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stpx::net {

/// A wall-clock interval during which a transport-level fault window
/// shaped the link (blackout: sends vanish; freeze: delivery pauses).
/// Transports that script faults surface these so trace tooling can
/// overlay them on recorded events (see net/flight_recorder.hpp).
struct WireWindow {
  std::string name;  // e.g. "blackout S->R"
  std::chrono::steady_clock::time_point begin;
  std::chrono::steady_clock::time_point end;
};

class ITransport {
 public:
  virtual ~ITransport() = default;

  /// Hand one datagram to the wire.  Non-blocking; false means the frame
  /// was shed (full queue, unavailable socket) — senders must treat a shed
  /// frame exactly like a lost one.
  virtual bool send(const std::vector<std::uint8_t>& bytes) = 0;

  /// Retrieve the next deliverable datagram, if any.  Non-blocking.
  virtual std::optional<std::vector<std::uint8_t>> poll() = 0;

  virtual std::string name() const = 0;
};

}  // namespace stpx::net
