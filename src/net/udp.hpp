// UdpTransport — real datagram sockets over 127.0.0.1.
//
// make_udp_pair() binds two non-blocking IPv4 UDP sockets on ephemeral
// loopback ports, connects each to the other, and wraps them as ITransport
// endpoints.  UDP natively provides the transport contract (datagrams may
// be lost, duplicated, reordered; delivered ones are intact modulo the
// codec's checksum), so the endpoints are thin syscall wrappers: send()
// that treats EWOULDBLOCK/ENOBUFS as a shed frame, recv() with
// MSG_DONTWAIT for poll().
//
// Transient-errno policy: on a connected UDP socket a dead or not-yet-born
// peer surfaces as ECONNREFUSED (the kernel relaying a previous ICMP
// port-unreachable) on send() *and* recv().  That is wire loss, not a
// transport failure — failover hits it constantly (a backend killed
// mid-run keeps its router-side link "connected") — so UdpTransport counts
// it per direction and reports the send as accepted (the frame died on the
// wire; protocols retransmit).  Hard errors (EBADF, ENOTCONN, ...) still
// shed.
//
// Cross-process wiring (the fabric's process harness): make_udp_rendezvous
// binds a socket and exposes its port; the peer process dials it with
// make_udp_connected and sends any datagram as a hello; accept_peer
// connects back to the hello's source address AND answers with a confirm
// datagram (a kProbeAck frame on the reserved fabric session — every mux
// drops stray control kinds, so a leaked confirm is harmless).  After the
// handshake both ends are ordinary connected UdpTransports.
// make_udp_connected_retry is the loss-hardened dialer: it resends the
// hello with jittered exponential backoff (net/retry.hpp) until any
// datagram arrives back, so a dropped hello or confirm costs one backoff
// step instead of deadlocking the fork/exec harness.
//
// Availability is environment-dependent: sandboxed CI runners may forbid
// socket creation.  Every factory probes at runtime and returns
// std::nullopt instead of failing, so callers (tests, benches) fall back
// to the loopback transport — the conformance surface both implementations
// share is what tests/test_net.cpp pins.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/retry.hpp"
#include "net/transport.hpp"

namespace stpx::net {

/// Per-endpoint datagram accounting (a consistent-enough atomic snapshot).
struct UdpStats {
  std::uint64_t datagrams_sent = 0;      // accepted by the kernel
  std::uint64_t datagrams_received = 0;  // delivered to poll()
  /// Sends swallowed as wire loss: ECONNREFUSED/EAGAIN/ENOBUFS and kin on
  /// a connected socket.  send() still returns true for these — the frame
  /// is gone, not refused, and retransmission heals it.
  std::uint64_t send_transient_drops = 0;
  std::uint64_t send_sheds = 0;  // hard send errors (send() returned false)
  /// recv() errors that are peer-death echoes (ECONNREFUSED), not data.
  std::uint64_t recv_transient_errors = 0;
};

/// An ITransport over one connected, non-blocking UDP socket.  The fd is
/// immutable after construction and kernel datagram syscalls are atomic
/// per message, so send()/poll() are thread-safe without a user-space
/// lock.
class UdpTransport final : public ITransport {
 public:
  explicit UdpTransport(int fd);
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;
  ~UdpTransport() override;

  bool send(const std::vector<std::uint8_t>& bytes) override;
  std::optional<std::vector<std::uint8_t>> poll() override;
  std::string name() const override { return "udp"; }

  UdpStats stats() const;
  /// The locally bound port (0 when unavailable).
  std::uint16_t local_port() const { return port_; }

 private:
  struct Counters;
  int fd_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Counters> n_;
};

struct UdpPair {
  std::unique_ptr<UdpTransport> a;
  std::unique_ptr<UdpTransport> b;
};

/// Build a connected UDP endpoint pair, or std::nullopt when the
/// environment cannot create/bind loopback sockets.
std::optional<UdpPair> make_udp_pair();

/// Bind-then-accept half of the cross-process handshake.  port() is what
/// the peer process dials; accept_peer() blocks (bounded by `timeout`)
/// until the first datagram arrives, connects to its source, and returns
/// the transport.  The hello datagram itself is consumed — send a frame
/// the receiver can afford to lose (protocols retransmit anyway).
class UdpRendezvous {
 public:
  UdpRendezvous(const UdpRendezvous&) = delete;
  UdpRendezvous& operator=(const UdpRendezvous&) = delete;
  ~UdpRendezvous();

  std::uint16_t port() const { return port_; }
  std::unique_ptr<UdpTransport> accept_peer(std::chrono::milliseconds timeout);

 private:
  friend std::optional<std::unique_ptr<UdpRendezvous>> make_udp_rendezvous();
  UdpRendezvous(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  std::uint16_t port_ = 0;
};

std::optional<std::unique_ptr<UdpRendezvous>> make_udp_rendezvous();

/// Dial half of the handshake: bind an ephemeral socket and connect it to
/// 127.0.0.1:`port`.  Send at least one datagram promptly so the
/// rendezvous side can learn this endpoint's address.
std::optional<std::unique_ptr<UdpTransport>> make_udp_connected(
    std::uint16_t port);

/// Dial with the retrying handshake: hello frames go out under
/// HandshakeRetry's jittered backoff until the rendezvous side's confirm
/// (or any other datagram) arrives.  The confirming datagram is consumed
/// — it is handshake plumbing, not traffic (UDP loss semantics anyway).
/// nullopt when sockets are unavailable OR the attempts are exhausted
/// unconfirmed (nobody answered `port`).
std::optional<std::unique_ptr<UdpTransport>> make_udp_connected_retry(
    std::uint16_t port, RetryConfig retry = {});

/// True when this build/platform has UDP support compiled in at all.
bool udp_supported();

}  // namespace stpx::net
