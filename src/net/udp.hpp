// UdpTransport — real datagram sockets over 127.0.0.1.
//
// make_udp_pair() binds two non-blocking IPv4 UDP sockets on ephemeral
// loopback ports, connects each to the other, and wraps them as ITransport
// endpoints.  UDP natively provides the transport contract (datagrams may
// be lost, duplicated, reordered; delivered ones are intact modulo the
// codec's checksum), so the endpoints are thin syscall wrappers: sendto()
// that treats EWOULDBLOCK/ENOBUFS as a shed frame, recv() with
// MSG_DONTWAIT for poll().
//
// Availability is environment-dependent: sandboxed CI runners may forbid
// socket creation.  make_udp_pair() probes at runtime and returns
// std::nullopt instead of failing, so callers (tests, benches) fall back
// to the loopback transport — the conformance surface both implementations
// share is what tests/test_net.cpp pins.
#pragma once

#include <memory>
#include <optional>

#include "net/transport.hpp"

namespace stpx::net {

struct UdpPair {
  std::unique_ptr<ITransport> a;
  std::unique_ptr<ITransport> b;
};

/// Build a connected UDP endpoint pair, or std::nullopt when the
/// environment cannot create/bind loopback sockets.
std::optional<UdpPair> make_udp_pair();

/// True when this build/platform has UDP support compiled in at all.
bool udp_supported();

}  // namespace stpx::net
