// LoopbackTransport — an in-process, thread-safe transport pair whose
// unreliability is scripted by the fault::FaultPlan grammar.
//
// make_loopback() returns two connected ITransport endpoints, `a` and `b`,
// backed by one shared core with a mutex-guarded frame queue per link.
// Plan actions aimed at `dir SR` shape the a->b link, `dir RS` the b->a
// link — the same convention the chaos layer uses for the simulated
// channel (the client/sender mux conventionally holds endpoint `a`).
//
// Plan-grammar mapping in the transport context (see docs/NETWORK.md):
//
//   trigger  @sends N  — fires when the link has seen N send() calls
//            @step N   — fires when the link has seen N poll() calls
//                        (the pump polls continuously, so poll ticks
//                        advance steadily like time); window durations
//                        (`len`) are measured in the same poll ticks
//            @writes   — no output tape here; such actions never fire
//
//   drop     burst: discard the next `count` sends (0 = flush everything
//            queued right now)
//   dup      burst: enqueue the next `count` sends twice (0 = duplicate
//            everything queued right now)
//   blackout window: sends vanish for `len` poll ticks
//   freeze   window: nothing is deliverable for `len` poll ticks (frames
//            are retained, not dropped)
//   cap      from the trigger on, sends that would exceed `count` queued
//            frames are shed
//
// Crash / storage / corruption kinds are process- and state-level faults
// with no transport meaning; the interpreter ignores them.  Transports are
// content-blind, so the `match` predicate is ignored too — frames are
// opaque byte blobs here (byte-level corruption is deliberately *not*
// simulated: the codec's corruption handling is exercised directly by the
// byte-mangling tests in tests/test_net.cpp).
//
// Reordering needs no plan action: `reorder_window` W > 1 makes poll()
// return a uniformly chosen frame among the W oldest queued (seeded Rng,
// guarded by the link mutex — util::Rng itself is not thread-safe).
#pragma once

#include <cstdint>
#include <memory>

#include "fault/plan.hpp"
#include "net/transport.hpp"
#include "sim/types.hpp"

namespace stpx::net {

struct LoopbackConfig {
  /// Scripted unreliability; an empty plan is a perfect FIFO link.
  fault::FaultPlan plan;
  /// Poll picks among the `reorder_window` oldest queued frames (<= 1 =
  /// strict FIFO).
  std::size_t reorder_window = 0;
  /// Seeds the per-link reorder Rng (links split the seed, so the two
  /// directions reorder independently but reproducibly).
  std::uint64_t seed = 0x10095EEDULL;
  /// Hard queue bound per link; sends past it are shed (0 = unbounded).
  std::size_t max_queue = 0;
};

/// Per-link observability counters (snapshot).
struct LoopbackStats {
  std::uint64_t attempted = 0;    // send() calls
  std::uint64_t queued = 0;       // sends that reached the queue
  std::uint64_t delivered = 0;    // successful polls
  std::uint64_t dropped = 0;      // discarded by drop bursts
  std::uint64_t duplicated = 0;   // extra copies from dup bursts
  std::uint64_t blacked_out = 0;  // swallowed by blackout windows
  std::uint64_t shed = 0;         // shed by caps or the max_queue bound
  std::uint64_t frozen_polls = 0;  // polls answered empty by a freeze
};

class LoopbackCore;

struct LoopbackPair {
  std::unique_ptr<ITransport> a;  // sends onto the S->R link
  std::unique_ptr<ITransport> b;  // sends onto the R->S link
  std::shared_ptr<LoopbackCore> core;

  /// Counters of one link (kSenderToReceiver = the a->b link).
  LoopbackStats stats(sim::Dir link) const;

  /// Wall-clock intervals during which a blackout or freeze window was
  /// active on either link, named "blackout S->R" etc.  Windows still open
  /// when called are reported as ending now.  Feed through
  /// to_trace_spans() to overlay them on a FlightRecorder stream.
  std::vector<WireWindow> fault_windows() const;
};

LoopbackPair make_loopback(LoopbackConfig cfg = {});

}  // namespace stpx::net
