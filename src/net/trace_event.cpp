#include "net/trace_event.hpp"

#include <array>
#include <cstdlib>
#include <sstream>

namespace stpx::net {

namespace {

// --- enum <-> string tables (must stay in sync with the to_cstr's) --------

template <typename E, std::size_t N>
std::optional<E> from_table(const std::array<const char*, N>& names,
                            const std::string& s) {
  for (std::size_t i = 0; i < N; ++i) {
    if (s == names[i]) return static_cast<E>(i);
  }
  return std::nullopt;
}

constexpr std::array<const char*, 9> kKindNames = {
    "frame-sent",       "frame-received", "frame-rejected",
    "frame-shed",       "item",           "session-state",
    "rehydrate",        "checkpoint-flush", "probe-answered"};
constexpr std::array<const char*, 4> kFrameKindNames = {"data", "fin",
                                                        "probe", "probe-ack"};
constexpr std::array<const char*, 6> kRejectNames = {
    "bad-size", "bad-magic", "bad-version", "bad-kind", "bad-dir",
    "bad-checksum"};
constexpr std::array<const char*, 5> kStateNames = {
    "active", "completed", "safety-violation", "evicted",
    "recovery-violation"};
constexpr std::array<const char*, 2> kDirNames = {"S->R", "R->S"};

// --- tiny flat-object field extraction ------------------------------------
// The emitted lines are flat objects with unescaped string values, so a
// key-scan is exact here (and parse failures just yield nullopt).

std::optional<std::string> raw_field(const std::string& line,
                                     const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end == i) return std::nullopt;
  return line.substr(i, end - i);
}

std::optional<std::int64_t> int_field(const std::string& line,
                                      const std::string& key) {
  const auto raw = raw_field(line, key);
  if (!raw) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::string to_jsonl(const TraceEvent& ev) {
  std::ostringstream os;
  os << "{\"ts\":" << ev.ts_us << ",\"seq\":" << ev.seq << ",\"ev\":\""
     << to_cstr(ev.kind) << '"';
  switch (ev.kind) {
    case TraceEventKind::kFrameSent:
    case TraceEventKind::kFrameReceived:
      os << ",\"session\":" << ev.session << ",\"kind\":\""
         << to_cstr(static_cast<FrameKind>(ev.detail)) << "\",\"dir\":\""
         << sim::to_cstr(ev.dir) << "\",\"msg\":" << ev.msg;
      break;
    case TraceEventKind::kFrameRejected:
      os << ",\"why\":\"" << to_cstr(static_cast<RejectReason>(ev.detail))
         << '"';
      break;
    case TraceEventKind::kFrameShed:
      os << ",\"session\":" << ev.session;
      break;
    case TraceEventKind::kItem:
      os << ",\"session\":" << ev.session << ",\"index\":" << ev.msg;
      break;
    case TraceEventKind::kSessionState:
      os << ",\"session\":" << ev.session << ",\"state\":\""
         << to_cstr(static_cast<SessionState>(ev.detail)) << '"';
      break;
    case TraceEventKind::kRehydrate:
      os << ",\"session\":" << ev.session << ",\"position\":" << ev.msg
         << ",\"state\":\"" << to_cstr(static_cast<SessionState>(ev.detail))
         << '"';
      break;
    case TraceEventKind::kCheckpointFlush:
      os << ",\"shard\":" << ev.session << ",\"records\":" << ev.msg
         << ",\"dur_us\":" << ev.aux;
      break;
    case TraceEventKind::kProbeAnswered:
      os << ",\"nonce\":" << ev.msg;
      break;
  }
  // Trailing so every pre-fabric (backend 0) line stays byte-identical.
  if (ev.backend != 0) os << ",\"backend\":" << ev.backend;
  os << '}';
  return os.str();
}

std::optional<TraceEvent> parse_jsonl(const std::string& line) {
  const auto ts = int_field(line, "ts");
  const auto seq = int_field(line, "seq");
  const auto ev_name = raw_field(line, "ev");
  if (!ts || !seq || !ev_name || *ts < 0 || *seq < 0) return std::nullopt;
  const auto kind = from_table<TraceEventKind>(kKindNames, *ev_name);
  if (!kind) return std::nullopt;

  TraceEvent ev;
  ev.ts_us = static_cast<std::uint64_t>(*ts);
  ev.seq = static_cast<std::uint64_t>(*seq);
  ev.kind = *kind;

  const auto session = [&]() -> std::optional<std::uint32_t> {
    const auto v = int_field(
        line, ev.kind == TraceEventKind::kCheckpointFlush ? "shard"
                                                          : "session");
    if (!v || *v < 0 || *v > UINT32_MAX) return std::nullopt;
    return static_cast<std::uint32_t>(*v);
  };

  switch (ev.kind) {
    case TraceEventKind::kFrameSent:
    case TraceEventKind::kFrameReceived: {
      const auto s = session();
      const auto fk = raw_field(line, "kind");
      const auto dir = raw_field(line, "dir");
      const auto msg = int_field(line, "msg");
      if (!s || !fk || !dir || !msg) return std::nullopt;
      const auto fkv = from_table<FrameKind>(kFrameKindNames, *fk);
      const auto dirv = from_table<sim::Dir>(kDirNames, *dir);
      if (!fkv || !dirv) return std::nullopt;
      ev.session = *s;
      ev.detail = static_cast<std::uint8_t>(*fkv);
      ev.dir = *dirv;
      ev.msg = *msg;
      break;
    }
    case TraceEventKind::kFrameRejected: {
      const auto why = raw_field(line, "why");
      if (!why) return std::nullopt;
      const auto rv = from_table<RejectReason>(kRejectNames, *why);
      if (!rv) return std::nullopt;
      ev.detail = static_cast<std::uint8_t>(*rv);
      break;
    }
    case TraceEventKind::kFrameShed: {
      const auto s = session();
      if (!s) return std::nullopt;
      ev.session = *s;
      break;
    }
    case TraceEventKind::kItem: {
      const auto s = session();
      const auto index = int_field(line, "index");
      if (!s || !index) return std::nullopt;
      ev.session = *s;
      ev.msg = *index;
      break;
    }
    case TraceEventKind::kSessionState: {
      const auto s = session();
      const auto state = raw_field(line, "state");
      if (!s || !state) return std::nullopt;
      const auto sv = from_table<SessionState>(kStateNames, *state);
      if (!sv) return std::nullopt;
      ev.session = *s;
      ev.detail = static_cast<std::uint8_t>(*sv);
      break;
    }
    case TraceEventKind::kRehydrate: {
      const auto s = session();
      const auto position = int_field(line, "position");
      const auto state = raw_field(line, "state");
      if (!s || !position || !state) return std::nullopt;
      const auto sv = from_table<SessionState>(kStateNames, *state);
      if (!sv) return std::nullopt;
      ev.session = *s;
      ev.msg = *position;
      ev.detail = static_cast<std::uint8_t>(*sv);
      break;
    }
    case TraceEventKind::kCheckpointFlush: {
      const auto s = session();
      const auto records = int_field(line, "records");
      const auto dur = int_field(line, "dur_us");
      if (!s || !records || !dur || *dur < 0) return std::nullopt;
      ev.session = *s;
      ev.msg = *records;
      ev.aux = static_cast<std::uint64_t>(*dur);
      break;
    }
    case TraceEventKind::kProbeAnswered: {
      const auto nonce = int_field(line, "nonce");
      if (!nonce) return std::nullopt;
      ev.msg = *nonce;
      break;
    }
  }
  const auto backend = int_field(line, "backend");
  if (backend) {
    if (*backend < 0 || *backend > UINT32_MAX) return std::nullopt;
    ev.backend = static_cast<std::uint32_t>(*backend);
  }
  return ev;
}

}  // namespace stpx::net
