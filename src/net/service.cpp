#include "net/service.hpp"

namespace stpx::net {

bool run_service_pair(StpClient& client, StpServer& server,
                      std::chrono::milliseconds timeout) {
  server.mux().start();
  client.mux().start();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  bool done = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (client.mux().all_terminal() && server.mux().all_terminal()) {
      done = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // This is the graceful path: arm the final checkpoint flush + log
  // compaction on both ends (drain() arms even when already terminal or
  // timed out), then stop the client first — it stops generating traffic,
  // and the server drains whatever the pump already routed.
  client.mux().drain(std::chrono::milliseconds(0));
  server.mux().drain(std::chrono::milliseconds(0));
  client.mux().stop();
  server.mux().stop();
  return done;
}

}  // namespace stpx::net
