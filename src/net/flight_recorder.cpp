#include "net/flight_recorder.hpp"

#include <algorithm>

namespace stpx::net {

namespace {

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(round_pow2(std::max<std::size_t>(cfg.ring_capacity, 8))),
      backend_id_(cfg.backend_id) {
  const std::size_t shards = std::max<std::size_t>(cfg.shards, 1);
  rings_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto r = std::make_unique<Ring>();
    r->buf.resize(capacity_);
    rings_.push_back(std::move(r));
  }
}

FlightRecorder::~FlightRecorder() = default;

std::uint64_t FlightRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

FlightRecorder::Ring& FlightRecorder::ring_for_thread() {
  // First event from a thread claims the next slot round-robin; the
  // binding is cached thread-locally per recorder instance, so the hot
  // path is one small linear scan of thread-owned memory.
  thread_local std::vector<std::pair<const FlightRecorder*, std::size_t>>
      bindings;
  for (const auto& [rec, slot] : bindings) {
    if (rec == this) return *rings_[slot];
  }
  const std::size_t slot =
      next_slot_.fetch_add(1, std::memory_order_relaxed) % rings_.size();
  bindings.emplace_back(this, slot);
  return *rings_[slot];
}

void FlightRecorder::record(TraceEvent ev) {
  Ring& r = ring_for_thread();
  ev.backend = backend_id_;
  std::lock_guard<std::mutex> hold(r.producer_mu);
  // Stamped under the producer mutex so a shared ring stays ts-ordered
  // even when two threads interleave (drain()'s merge relies on it).
  ev.ts_us = now_us();
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = r.tail.load(std::memory_order_acquire);
  if (head - tail >= capacity_) {
    // Full ring: drop the incoming event, never block the mux.  The gap
    // is accounted, and the seq counter still advances so a drained
    // stream shows exactly where the hole is.
    r.dropped.fetch_add(1, std::memory_order_relaxed);
    r.seq.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ev.seq = r.seq.fetch_add(1, std::memory_order_relaxed);
  r.buf[head & (capacity_ - 1)] = ev;
  r.head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::on_frame_sent(std::uint32_t session, const Frame& f) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kFrameSent;
  ev.session = session;
  ev.detail = static_cast<std::uint8_t>(f.kind);
  ev.dir = f.dir;
  ev.msg = f.msg;
  record(ev);
}

void FlightRecorder::on_frame_received(std::uint32_t session,
                                       const Frame& f) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kFrameReceived;
  ev.session = session;
  ev.detail = static_cast<std::uint8_t>(f.kind);
  ev.dir = f.dir;
  ev.msg = f.msg;
  record(ev);
}

void FlightRecorder::on_frame_rejected(RejectReason why) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kFrameRejected;
  ev.detail = static_cast<std::uint8_t>(why);
  record(ev);
}

void FlightRecorder::on_frame_shed(std::uint32_t session) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kFrameShed;
  ev.session = session;
  record(ev);
}

void FlightRecorder::on_item(std::uint32_t session, std::size_t index) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kItem;
  ev.session = session;
  ev.msg = static_cast<std::int64_t>(index);
  record(ev);
}

void FlightRecorder::on_session_state(std::uint32_t session,
                                      SessionState s) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kSessionState;
  ev.session = session;
  ev.detail = static_cast<std::uint8_t>(s);
  record(ev);
}

void FlightRecorder::on_rehydrate(std::uint32_t session, std::size_t position,
                                  SessionState s) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kRehydrate;
  ev.session = session;
  ev.msg = static_cast<std::int64_t>(position);
  ev.detail = static_cast<std::uint8_t>(s);
  record(ev);
}

void FlightRecorder::on_checkpoint_flush(std::size_t shard,
                                         std::size_t records,
                                         std::uint64_t bytes,
                                         std::uint64_t duration_us) {
  (void)bytes;  // aggregate byte accounting lives in NetStats
  TraceEvent ev;
  ev.kind = TraceEventKind::kCheckpointFlush;
  ev.session = static_cast<std::uint32_t>(shard);
  ev.msg = static_cast<std::int64_t>(records);
  ev.aux = duration_us;
  record(ev);
}

void FlightRecorder::on_probe_answered(std::int64_t nonce) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kProbeAnswered;
  ev.msg = nonce;
  record(ev);
}

std::vector<TraceEvent> FlightRecorder::drain() {
  // Consume each ring's published window, then k-way merge.  Each ring is
  // (ts, seq)-ordered already — one producer at a time writes it and both
  // ts and seq are monotone per ring — so a merge by (ts, seq) yields one
  // globally time-ordered stream (seq breaks same-microsecond ties
  // deterministically within a shard; cross-shard same-microsecond order
  // is arbitrary but stable for a given drain).
  std::vector<std::vector<TraceEvent>> streams;
  streams.reserve(rings_.size());
  for (auto& rp : rings_) {
    Ring& r = *rp;
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
    std::vector<TraceEvent> s;
    s.reserve(head - tail);
    for (std::uint64_t i = tail; i < head; ++i) {
      s.push_back(r.buf[i & (capacity_ - 1)]);
    }
    r.tail.store(head, std::memory_order_release);
    if (!s.empty()) streams.push_back(std::move(s));
  }

  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  out.reserve(total);
  std::vector<std::size_t> cursor(streams.size(), 0);
  while (out.size() < total) {
    std::size_t best = streams.size();
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (cursor[i] >= streams[i].size()) continue;
      if (best == streams.size()) {
        best = i;
        continue;
      }
      const TraceEvent& a = streams[i][cursor[i]];
      const TraceEvent& b = streams[best][cursor[best]];
      if (a.ts_us < b.ts_us ||
          (a.ts_us == b.ts_us && a.seq < b.seq)) {
        best = i;
      }
    }
    out.push_back(streams[best][cursor[best]++]);
  }
  return out;
}

FlightRecorderStats FlightRecorder::stats() const {
  FlightRecorderStats st;
  st.dropped_per_shard.reserve(rings_.size());
  for (const auto& rp : rings_) {
    const std::uint64_t dropped = rp->dropped.load(std::memory_order_relaxed);
    const std::uint64_t written = rp->seq.load(std::memory_order_relaxed);
    st.dropped += dropped;
    st.recorded += written - dropped;
    st.dropped_per_shard.push_back(dropped);
  }
  return st;
}

void FlightRecorder::publish_metrics(obs::MetricsRegistry& reg) const {
  const FlightRecorderStats st = stats();
  reg.counter("net.trace.recorded").inc(st.recorded);
  reg.counter("net.trace.dropped").inc(st.dropped);
}

std::vector<TraceSpan> to_trace_spans(
    const std::vector<WireWindow>& windows,
    std::chrono::steady_clock::time_point epoch) {
  std::vector<TraceSpan> out;
  out.reserve(windows.size());
  for (const WireWindow& w : windows) {
    if (w.end <= epoch) continue;
    TraceSpan s;
    s.name = w.name;
    s.begin_us =
        w.begin <= epoch
            ? 0
            : static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      w.begin - epoch)
                      .count());
    s.end_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(w.end - epoch)
            .count());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace stpx::net
