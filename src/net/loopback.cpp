#include "net/loopback.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace stpx::net {

namespace {

/// One fault lane: actions sorted by trigger threshold plus a cursor to the
/// first not-yet-fired one.  Counters are monotone and actions fire once,
/// so a cursor makes fire_due O(actions fired this call) — periodic plans
/// arm hundreds of thousands of actions and a rescan would be quadratic.
struct Lane {
  std::vector<fault::FaultAction> actions;
  std::size_t next = 0;
};

}  // namespace

/// Shared state behind a loopback pair: one Link per direction, each with
/// its own mutex, queue, reorder Rng, and fault timeline.  All mutable
/// state of a link — including its Rng, which is not thread-safe on its
/// own — is only ever touched under that link's mutex.
class LoopbackCore {
 public:
  LoopbackCore(const LoopbackConfig& cfg) : cfg_(cfg) {
    Rng seeder(cfg.seed);
    for (int d = 0; d < 2; ++d) {
      links_[d].rng = seeder.split();
      for (const auto& a : cfg.plan.actions) {
        if (fault::is_store_fault(a.kind) ||
            fault::is_corruption_fault(a.kind) ||
            a.kind == fault::FaultKind::kCrashSender ||
            a.kind == fault::FaultKind::kCrashReceiver) {
          continue;  // no transport meaning
        }
        if (a.dir != static_cast<sim::Dir>(d)) continue;
        if (a.trigger.kind == fault::TriggerKind::kWrites) continue;
        auto& lane = a.trigger.kind == fault::TriggerKind::kSends
                         ? links_[d].by_sends
                         : links_[d].by_ticks;
        lane.actions.push_back(a);
      }
      const auto by_at = [](const fault::FaultAction& x,
                            const fault::FaultAction& y) {
        return x.trigger.at < y.trigger.at;
      };
      std::stable_sort(links_[d].by_sends.actions.begin(),
                       links_[d].by_sends.actions.end(), by_at);
      std::stable_sort(links_[d].by_ticks.actions.begin(),
                       links_[d].by_ticks.actions.end(), by_at);
    }
  }

  bool send(sim::Dir dir, const std::vector<std::uint8_t>& bytes) {
    Link& l = link(dir);
    std::lock_guard<std::mutex> hold(l.mu);
    ++l.stats.attempted;
    fire_due(l, l.by_sends, l.stats.attempted);
    fire_due(l, l.by_ticks, l.ticks);
    note_windows(l, dir);
    if (l.ticks < l.blackout_until) {
      ++l.stats.blacked_out;
      return false;
    }
    if (l.pending_drops > 0) {
      --l.pending_drops;
      ++l.stats.dropped;
      return false;
    }
    if ((l.cap > 0 && l.queue.size() >= l.cap) ||
        (cfg_.max_queue > 0 && l.queue.size() >= cfg_.max_queue)) {
      ++l.stats.shed;
      return false;
    }
    l.queue.push_back(bytes);
    ++l.stats.queued;
    if (l.pending_dups > 0) {
      --l.pending_dups;
      l.queue.push_back(bytes);
      ++l.stats.duplicated;
    }
    return true;
  }

  std::optional<std::vector<std::uint8_t>> poll(sim::Dir dir) {
    Link& l = link(dir);
    std::lock_guard<std::mutex> hold(l.mu);
    ++l.ticks;
    fire_due(l, l.by_ticks, l.ticks);
    note_windows(l, dir);
    if (l.ticks < l.freeze_until) {
      ++l.stats.frozen_polls;
      return std::nullopt;
    }
    if (l.queue.empty()) return std::nullopt;
    std::size_t idx = 0;
    if (cfg_.reorder_window > 1) {
      idx = static_cast<std::size_t>(l.rng.below(
          std::min<std::uint64_t>(cfg_.reorder_window, l.queue.size())));
    }
    std::vector<std::uint8_t> out = std::move(l.queue[idx]);
    l.queue.erase(l.queue.begin() + static_cast<std::ptrdiff_t>(idx));
    ++l.stats.delivered;
    return out;
  }

  LoopbackStats stats(sim::Dir dir) {
    Link& l = link(dir);
    std::lock_guard<std::mutex> hold(l.mu);
    return l.stats;
  }

  std::vector<WireWindow> fault_windows() {
    std::vector<WireWindow> out;
    const auto now = std::chrono::steady_clock::now();
    for (int d = 0; d < 2; ++d) {
      Link& l = links_[d];
      const auto dir = static_cast<sim::Dir>(d);
      std::lock_guard<std::mutex> hold(l.mu);
      out.insert(out.end(), l.windows.begin(), l.windows.end());
      if (l.blackout_open) {
        out.push_back({window_name("blackout", dir), l.blackout_begin, now});
      }
      if (l.freeze_open) {
        out.push_back({window_name("freeze", dir), l.freeze_begin, now});
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const WireWindow& a, const WireWindow& b) {
                       return a.begin < b.begin;
                     });
    return out;
  }

 private:
  struct Link {
    std::mutex mu;
    std::deque<std::vector<std::uint8_t>> queue;
    Rng rng;
    Lane by_sends;  // sorted by trigger threshold
    Lane by_ticks;
    std::uint64_t ticks = 0;  // poll() calls
    std::uint64_t pending_drops = 0;
    std::uint64_t pending_dups = 0;
    std::uint64_t blackout_until = 0;  // active while ticks < this
    std::uint64_t freeze_until = 0;
    std::uint64_t cap = 0;  // 0 = uncapped
    LoopbackStats stats;
    // Wall-clock fault-window bookkeeping (windows themselves are
    // tick-denominated; these record when they were observed active, for
    // overlay on wall-clock traces).
    bool blackout_open = false;
    bool freeze_open = false;
    std::chrono::steady_clock::time_point blackout_begin{};
    std::chrono::steady_clock::time_point freeze_begin{};
    std::vector<WireWindow> windows;
  };

  Link& link(sim::Dir dir) { return links_[static_cast<int>(dir)]; }

  static std::string window_name(const char* kind, sim::Dir dir) {
    return std::string(kind) + " " + sim::to_cstr(dir);
  }

  /// Open/close the wall-clock record of tick-denominated fault windows.
  /// Caller holds the link mutex; transitions are observed on every
  /// send()/poll(), which is as fine-grained as the windows can act.
  void note_windows(Link& l, sim::Dir dir) {
    const auto now = std::chrono::steady_clock::now();
    const bool blackout = l.ticks < l.blackout_until;
    if (blackout && !l.blackout_open) {
      l.blackout_open = true;
      l.blackout_begin = now;
    } else if (!blackout && l.blackout_open) {
      l.blackout_open = false;
      l.windows.push_back({window_name("blackout", dir), l.blackout_begin,
                           now});
    }
    const bool freeze = l.ticks < l.freeze_until;
    if (freeze && !l.freeze_open) {
      l.freeze_open = true;
      l.freeze_begin = now;
    } else if (!freeze && l.freeze_open) {
      l.freeze_open = false;
      l.windows.push_back({window_name("freeze", dir), l.freeze_begin, now});
    }
  }

  /// Fire every not-yet-fired action in `lane` whose threshold the counter
  /// has reached.  Caller holds the link mutex.
  void fire_due(Link& l, Lane& lane, std::uint64_t counter) {
    while (lane.next < lane.actions.size() &&
           lane.actions[lane.next].trigger.at <= counter) {
      apply(l, lane.actions[lane.next++]);
    }
  }

  void apply(Link& l, const fault::FaultAction& a) {
    switch (a.kind) {
      case fault::FaultKind::kDropBurst:
        if (a.count == 0) {
          l.stats.dropped += l.queue.size();
          l.queue.clear();
        } else {
          l.pending_drops += a.count;
        }
        break;
      case fault::FaultKind::kDupBurst:
        if (a.count == 0) {
          const std::size_t n = l.queue.size();
          for (std::size_t i = 0; i < n; ++i) l.queue.push_back(l.queue[i]);
          l.stats.duplicated += n;
        } else {
          l.pending_dups += a.count;
        }
        break;
      case fault::FaultKind::kBlackout:
        l.blackout_until = std::max(l.blackout_until, l.ticks + a.duration);
        break;
      case fault::FaultKind::kFreeze:
        l.freeze_until = std::max(l.freeze_until, l.ticks + a.duration);
        break;
      case fault::FaultKind::kCapInFlight:
        if (a.count > 0) l.cap = a.count;
        break;
      default:
        break;  // filtered out at construction
    }
  }

  LoopbackConfig cfg_;
  Link links_[2];
};

namespace {

class LoopbackEnd final : public ITransport {
 public:
  LoopbackEnd(std::shared_ptr<LoopbackCore> core, sim::Dir out_link)
      : core_(std::move(core)), out_(out_link) {}

  bool send(const std::vector<std::uint8_t>& bytes) override {
    return core_->send(out_, bytes);
  }

  std::optional<std::vector<std::uint8_t>> poll() override {
    return core_->poll(in());
  }

  std::string name() const override {
    return out_ == sim::Dir::kSenderToReceiver ? "loopback/a" : "loopback/b";
  }

 private:
  sim::Dir in() const {
    return out_ == sim::Dir::kSenderToReceiver ? sim::Dir::kReceiverToSender
                                               : sim::Dir::kSenderToReceiver;
  }

  std::shared_ptr<LoopbackCore> core_;
  sim::Dir out_;
};

}  // namespace

LoopbackStats LoopbackPair::stats(sim::Dir link) const {
  return core->stats(link);
}

std::vector<WireWindow> LoopbackPair::fault_windows() const {
  return core->fault_windows();
}

LoopbackPair make_loopback(LoopbackConfig cfg) {
  LoopbackPair pair;
  pair.core = std::make_shared<LoopbackCore>(cfg);
  pair.a =
      std::make_unique<LoopbackEnd>(pair.core, sim::Dir::kSenderToReceiver);
  pair.b =
      std::make_unique<LoopbackEnd>(pair.core, sim::Dir::kReceiverToSender);
  return pair;
}

}  // namespace stpx::net
