// FlightRecorder — the wire-level observatory's capture stage.
//
// An INetProbe implementation that turns every mux hook into a compact
// TraceEvent and appends it to a bounded per-shard ring buffer:
//
//   * Shards are claimed per *producer thread*: the first event a thread
//     records binds it to a free ring, so in the common case (threads <=
//     shards) each ring has exactly one producer and one consumer — a true
//     SPSC ring needing only acquire/release atomics on head/tail.  When
//     threads outnumber shards, the surplus threads share rings and a
//     per-ring producer mutex (uncontended otherwise) serializes them;
//     correctness never depends on the thread count.
//   * Rings are BOUNDED (capacity rounded up to a power of two) and never
//     block the hot path: when a ring is full the incoming event is
//     dropped and counted — explicit drop accounting, never backpressure
//     into the mux.  A flight recorder must observe, not perturb.
//   * drain() consumes everything published so far and merge-sorts the
//     per-shard streams into one (ts_us, seq)-ordered stream.  It is safe
//     to call concurrently with live recording (periodic drains bound the
//     memory of long runs) as long as only one thread drains.
//
// Timestamps are steady_clock microseconds relative to the recorder's
// construction (`epoch()`); to_trace_spans() rebases wall-clock intervals
// (e.g. LoopbackPair::fault_windows()) onto the same clock so sinks and
// analyzers can overlay them on the event stream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/mux.hpp"
#include "net/trace_event.hpp"

namespace stpx::net {

struct FlightRecorderConfig {
  /// Producer rings.  Sized for the mux's thread census (workers + pump);
  /// more threads than shards still works, just with mutex sharing.
  std::size_t shards = 8;
  /// Events per ring; rounded up to a power of two (min 8).
  std::size_t ring_capacity = 1 << 14;
  /// Stamped into every event's `backend` field (0 = unattributed).  Give
  /// each fabric backend its own id so traces drained from several
  /// recorders — or several processes — stay attributable after a merge.
  std::uint32_t backend_id = 0;
};

/// Drop/throughput accounting (a consistent-enough snapshot of atomics).
struct FlightRecorderStats {
  std::uint64_t recorded = 0;  // events written into a ring
  std::uint64_t dropped = 0;   // events lost to full rings
  std::vector<std::uint64_t> dropped_per_shard;
};

class FlightRecorder final : public INetProbe {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder() override;

  // --- INetProbe hooks (each is one ring append) ------------------------
  void on_frame_sent(std::uint32_t session, const Frame& f) override;
  void on_frame_received(std::uint32_t session, const Frame& f) override;
  void on_frame_rejected(RejectReason why) override;
  void on_frame_shed(std::uint32_t session) override;
  void on_item(std::uint32_t session, std::size_t index) override;
  void on_session_state(std::uint32_t session, SessionState s) override;
  void on_rehydrate(std::uint32_t session, std::size_t position,
                    SessionState s) override;
  void on_checkpoint_flush(std::size_t shard, std::size_t records,
                           std::uint64_t bytes,
                           std::uint64_t duration_us) override;
  void on_probe_answered(std::int64_t nonce) override;

  /// Consume every event published so far, merge-sorted by (ts_us, seq).
  /// Single consumer; safe against concurrent producers.
  std::vector<TraceEvent> drain();

  FlightRecorderStats stats() const;
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }
  /// The epoch as absolute steady-clock microseconds.  CLOCK_MONOTONIC is
  /// machine-wide, so recorders in different processes (or constructed at
  /// different times in one process) can be merged onto a common clock:
  /// rebase each stream by (epoch_offset_us - min over streams) — see
  /// fabric::merge_backend_traces.
  std::uint64_t epoch_offset_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            epoch_.time_since_epoch())
            .count());
  }
  std::uint32_t backend_id() const { return backend_id_; }
  std::size_t shard_count() const { return rings_.size(); }
  std::size_t ring_capacity() const { return capacity_; }

  /// Publish recorded/dropped counters into `reg` (net.trace.* family).
  void publish_metrics(obs::MetricsRegistry& reg) const;

 private:
  /// One bounded ring.  head_ is published by the producer side with
  /// release order; tail_ by the (single) consumer.  buf_ slots in
  /// [tail_, head_) are owned by the consumer, the rest by producers.
  struct Ring {
    std::vector<TraceEvent> buf;
    std::mutex producer_mu;  // uncontended while threads <= shards
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> tail{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> seq{0};  // per-shard event sequence
  };

  Ring& ring_for_thread();
  void record(TraceEvent ev);
  std::uint64_t now_us() const;

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_ = 0;  // power of two
  std::uint32_t backend_id_ = 0;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::size_t> next_slot_{0};
};

/// Rebase wall-clock WireWindow intervals (e.g. a loopback transport's
/// fault_windows()) onto a recorder's epoch clock.  Windows ending before
/// the epoch vanish; begins before it clamp to 0.
std::vector<TraceSpan> to_trace_spans(
    const std::vector<WireWindow>& windows,
    std::chrono::steady_clock::time_point epoch);

}  // namespace stpx::net
