// HandshakeRetry — the rendezvous dialer's pacing brain, as a pure FSM.
//
// The cross-process UDP handshake (udp.hpp) is hello -> confirm over a
// lossy wire: the dialer's hello datagram or the rendezvous side's
// confirm can vanish, and a single-shot hello then deadlocks the whole
// fork/exec harness on a once-per-thousand loss.  The fix is the classic
// one — resend with jittered exponential backoff, bounded attempts — and
// this class is exactly that policy with the clock injected, so the unit
// test drives it with fabricated time_points and asserts the schedule
// instead of sleeping through it (the same pattern as fabric::
// HealthMonitor).
//
// Usage shape:
//
//   HandshakeRetry fsm(cfg);
//   while (!fsm.acked() && !fsm.exhausted(now)) {
//     if (fsm.should_send(now)) transport.send(hello);
//     if (transport.poll())     fsm.on_ack();   // any datagram confirms
//   }
//
// Jitter is deterministic (splitmix64 over seed ^ attempt): two dialers
// given different seeds spread out, while one dialer replays identically
// — determinism is a repo-wide invariant and retry pacing must not be
// the layer that breaks it.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace stpx::net {

struct RetryConfig {
  /// Hello (re)sends before giving up.
  std::uint32_t max_attempts = 8;
  /// Delay scheduled after the first send; later ones grow by `backoff`.
  std::chrono::microseconds base_delay{2'000};
  double backoff = 2.0;
  std::chrono::microseconds max_delay{250'000};
  /// Extra fraction of the delay added as jitter: delay * [1, 1+jitter).
  double jitter = 0.25;
  /// Seed for the deterministic jitter stream (vary per dialer).
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
};

class HandshakeRetry {
 public:
  using time_point = std::chrono::steady_clock::time_point;

  explicit HandshakeRetry(RetryConfig cfg = {}) : cfg_(cfg) {}

  /// True when a hello (re)send is due at `now`.  Each true consumes one
  /// attempt and schedules the next with jittered exponential backoff;
  /// the first call is always due.  False once acked or out of attempts.
  bool should_send(time_point now) {
    if (acked_ || attempts_ >= cfg_.max_attempts) return false;
    if (attempts_ > 0 && now < next_due_) return false;
    ++attempts_;
    last_delay_ = jittered_delay(attempts_);
    next_due_ = now + last_delay_;
    return true;
  }

  /// The peer confirmed (any datagram on a connected socket proves the
  /// rendezvous side dialed back — only a connected peer can reach us).
  void on_ack() { acked_ = true; }

  bool acked() const { return acked_; }

  /// Out of attempts AND past the last scheduled deadline, unacked: the
  /// caller should give up (or fall back).
  bool exhausted(time_point now) const {
    return !acked_ && attempts_ >= cfg_.max_attempts && now >= next_due_;
  }

  std::uint32_t attempts() const { return attempts_; }
  /// The backoff scheduled by the most recent send (jitter included).
  std::chrono::microseconds last_delay() const { return last_delay_; }

 private:
  static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Delay after send number `attempt` (1-based): base * backoff^(n-1),
  /// capped, then stretched by the deterministic jitter fraction.
  std::chrono::microseconds jittered_delay(std::uint32_t attempt) const {
    double d = static_cast<double>(cfg_.base_delay.count());
    for (std::uint32_t i = 1; i < attempt; ++i) {
      d *= cfg_.backoff;
      if (d >= static_cast<double>(cfg_.max_delay.count())) break;
    }
    d = std::min(d, static_cast<double>(cfg_.max_delay.count()));
    const std::uint64_t r = splitmix64(cfg_.jitter_seed ^ attempt);
    const double u =
        static_cast<double>(r >> 11) / static_cast<double>(1ull << 53);
    d *= 1.0 + cfg_.jitter * u;
    return std::chrono::microseconds(static_cast<std::int64_t>(d));
  }

  RetryConfig cfg_;
  std::uint32_t attempts_ = 0;
  bool acked_ = false;
  time_point next_due_{};
  std::chrono::microseconds last_delay_{0};
};

}  // namespace stpx::net
