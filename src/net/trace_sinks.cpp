#include "net/trace_sinks.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

#include "obs/sinks.hpp"

namespace stpx::net {

void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceEvent>& evs) {
  for (const TraceEvent& ev : evs) out << to_jsonl(ev) << '\n';
}

std::optional<std::vector<TraceEvent>> read_trace_jsonl(std::istream& in) {
  std::vector<TraceEvent> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto ev = parse_jsonl(line);
    if (!ev) return std::nullopt;
    out.push_back(*ev);
  }
  return out;
}

namespace {

// Track (tid) layout inside the single trace process:
//   1                      rejects (session-unattributable)
//   2 .. 2+lanes-1         fault-window lanes (stacked like obs sink)
//   then one per shard     checkpoint flushes
//   then one per session   everything session-scoped
constexpr int kTidRejects = 1;
constexpr int kTidFaultBase = 2;

std::string instant_name(const TraceEvent& ev) {
  std::ostringstream os;
  switch (ev.kind) {
    case TraceEventKind::kFrameSent:
      os << "send " << to_cstr(static_cast<FrameKind>(ev.detail)) << ' '
         << ev.msg;
      break;
    case TraceEventKind::kFrameReceived:
      os << "recv " << to_cstr(static_cast<FrameKind>(ev.detail)) << ' '
         << ev.msg;
      break;
    case TraceEventKind::kFrameShed:
      os << "shed";
      break;
    case TraceEventKind::kItem:
      os << "item[" << ev.msg << ']';
      break;
    case TraceEventKind::kSessionState:
      os << to_cstr(static_cast<SessionState>(ev.detail));
      break;
    case TraceEventKind::kRehydrate:
      os << "rehydrate@" << ev.msg;
      break;
    case TraceEventKind::kFrameRejected:
      os << "reject " << to_cstr(static_cast<RejectReason>(ev.detail));
      break;
    case TraceEventKind::kCheckpointFlush:
      os << "flush " << ev.msg;
      break;
    case TraceEventKind::kProbeAnswered:
      os << "probe-ack " << ev.msg;
      break;
  }
  return os.str();
}

std::string instant_args(const TraceEvent& ev) {
  std::ostringstream os;
  switch (ev.kind) {
    case TraceEventKind::kFrameSent:
    case TraceEventKind::kFrameReceived:
      os << "\"dir\":\"" << sim::to_cstr(ev.dir) << "\",\"msg\":" << ev.msg;
      break;
    case TraceEventKind::kItem:
      os << "\"index\":" << ev.msg;
      break;
    case TraceEventKind::kRehydrate:
      os << "\"position\":" << ev.msg << ",\"state\":\""
         << to_cstr(static_cast<SessionState>(ev.detail)) << '"';
      break;
    case TraceEventKind::kCheckpointFlush:
      os << "\"records\":" << ev.msg << ",\"dur_us\":" << ev.aux;
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace

void write_wire_chrome_trace(std::ostream& out,
                             const std::vector<TraceEvent>& evs,
                             const std::vector<TraceSpan>& windows) {
  // Lane-pack the fault windows exactly like obs::ChromeTraceSink: each
  // window takes the first lane whose previous occupant has ended.
  std::vector<TraceSpan> spans = windows;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.begin_us < b.begin_us;
                   });
  std::vector<std::uint64_t> lane_end;
  std::vector<int> span_tid;
  span_tid.reserve(spans.size());
  for (const TraceSpan& s : spans) {
    std::size_t lane = 0;
    while (lane < lane_end.size() && lane_end[lane] > s.begin_us) ++lane;
    if (lane == lane_end.size()) lane_end.push_back(0);
    lane_end[lane] = s.end_us;
    span_tid.push_back(kTidFaultBase + static_cast<int>(lane));
  }

  // Census of shards (flush tracks) and sessions.
  std::set<std::uint32_t> shards;
  std::set<std::uint32_t> sessions;
  for (const TraceEvent& ev : evs) {
    if (ev.kind == TraceEventKind::kCheckpointFlush) {
      shards.insert(ev.session);
    } else if (ev.kind != TraceEventKind::kFrameRejected) {
      sessions.insert(ev.session);
    }
  }
  const int shard_base = kTidFaultBase + static_cast<int>(lane_end.size());
  std::map<std::uint32_t, int> shard_tid;
  for (const std::uint32_t s : shards) {
    shard_tid.emplace(s, shard_base + static_cast<int>(shard_tid.size()));
  }
  const int session_base = shard_base + static_cast<int>(shard_tid.size());
  std::map<std::uint32_t, int> session_tid;
  for (const std::uint32_t s : sessions) {
    session_tid.emplace(s, session_base + static_cast<int>(session_tid.size()));
  }

  struct Record {
    std::uint64_t ts;
    int order;  // B(0) before instants(1) before E(2) at equal ts
    std::string json;
  };
  std::vector<Record> records;
  records.reserve(evs.size() + 2 * spans.size());

  auto event = [](std::uint64_t ts, int tid, char ph, const std::string& name,
                  const std::string& args, std::uint64_t dur) {
    std::ostringstream os;
    os << "{\"name\":\"" << obs::json_escape(name) << "\",\"ph\":\"" << ph
       << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts;
    if (ph == 'X') os << ",\"dur\":" << dur;
    if (ph == 'i') os << ",\"s\":\"t\"";
    if (!args.empty()) os << ",\"args\":{" << args << '}';
    os << '}';
    return os.str();
  };

  for (const TraceEvent& ev : evs) {
    if (ev.kind == TraceEventKind::kCheckpointFlush) {
      // Flushes are duration slices; stamp the span at flush *start*.
      const std::uint64_t begin =
          ev.ts_us >= ev.aux ? ev.ts_us - ev.aux : 0;
      records.push_back({begin, 1,
                         event(begin, shard_tid.at(ev.session), 'X',
                               instant_name(ev), instant_args(ev),
                               std::max<std::uint64_t>(ev.aux, 1))});
      continue;
    }
    const int tid = ev.kind == TraceEventKind::kFrameRejected
                        ? kTidRejects
                        : session_tid.at(ev.session);
    records.push_back({ev.ts_us, 1,
                       event(ev.ts_us, tid, 'i', instant_name(ev),
                             instant_args(ev), 0)});
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    records.push_back(
        {s.begin_us, 0,
         event(s.begin_us, span_tid[i], 'B', s.name, "", 0)});
    records.push_back(
        {s.end_us, 2, event(s.end_us, span_tid[i], 'E', s.name, "", 0)});
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto meta = [&](int tid, const std::string& name) {
    out << (first ? "" : ",")
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << obs::json_escape(name) << "\"}}";
    first = false;
  };
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"stpx wire\"}}";
  first = false;
  meta(kTidRejects, "rejects");
  for (std::size_t lane = 0; lane < lane_end.size(); ++lane) {
    meta(kTidFaultBase + static_cast<int>(lane),
         lane == 0 ? "faults" : "faults (overflow lane)");
  }
  for (const auto& [shard, tid] : shard_tid) {
    meta(tid, "flush shard " + std::to_string(shard));
  }
  for (const auto& [session, tid] : session_tid) {
    meta(tid, "session " + std::to_string(session));
  }
  for (const Record& r : records) {
    out << (first ? "" : ",") << r.json;
    first = false;
  }
  out << "]}";
}

}  // namespace stpx::net
