// Service façade: StpServer / StpClient — a SessionMux pre-wired for one
// role, plus the pairing helper the tests, example, and load generator
// share.
//
// A *client* hosts sender sessions: each owns an ISender and an input
// sequence and pushes data frames toward the server.  A *server* hosts
// receiver sessions: each owns an IReceiver and the expected sequence it
// must reproduce, acks as its protocol dictates, and FINs on completion.
// The expected sequence is how the service layer states the transmission
// problem's spec (Y == X) at the wire level; a deployment that doesn't
// know X ahead of time would simply skip registering expectations and
// consume the tape — the mux machinery is identical.
//
// run_service_pair() is the in-process harness shape: start both ends
// over a transport pair, wait for every session to reach a terminal
// state, stop both gracefully.
#pragma once

#include <chrono>

#include "net/mux.hpp"

namespace stpx::net {

class StpServer {
 public:
  /// `transport` is the server-side endpoint (non-owning, must outlive).
  StpServer(ITransport* transport, MuxConfig cfg) : mux_(transport, cfg) {}

  void add_session(std::uint32_t id,
                   std::unique_ptr<sim::IReceiver> receiver,
                   seq::Sequence expected) {
    mux_.add_session(id,
                     std::make_unique<proto::ReceiverSessionEndpoint>(
                         std::move(receiver), std::move(expected)),
                     /*is_sender=*/false);
  }

  SessionMux& mux() { return mux_; }
  const SessionMux& mux() const { return mux_; }

 private:
  SessionMux mux_;
};

class StpClient {
 public:
  /// `transport` is the client-side endpoint (non-owning, must outlive).
  StpClient(ITransport* transport, MuxConfig cfg) : mux_(transport, cfg) {}

  void add_session(std::uint32_t id, std::unique_ptr<sim::ISender> sender,
                   seq::Sequence x) {
    mux_.add_session(id,
                     std::make_unique<proto::SenderSessionEndpoint>(
                         std::move(sender), std::move(x)),
                     /*is_sender=*/true);
  }

  SessionMux& mux() { return mux_; }
  const SessionMux& mux() const { return mux_; }

 private:
  SessionMux mux_;
};

/// Start both ends, drain until every session on both is terminal or
/// `timeout` elapses, then stop both gracefully.  Returns true iff both
/// muxes fully drained in time.
bool run_service_pair(StpClient& client, StpServer& server,
                      std::chrono::milliseconds timeout);

}  // namespace stpx::net
