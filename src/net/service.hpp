// Service façade: StpServer / StpClient — a SessionMux pre-wired for one
// role, plus the pairing helper the tests, example, and load generator
// share.
//
// A *client* hosts sender sessions: each owns an ISender and an input
// sequence and pushes data frames toward the server.  A *server* hosts
// receiver sessions: each owns an IReceiver and the expected sequence it
// must reproduce, acks as its protocol dictates, and FINs on completion.
// The expected sequence is how the service layer states the transmission
// problem's spec (Y == X) at the wire level; a deployment that doesn't
// know X ahead of time would simply skip registering expectations and
// consume the tape — the mux machinery is identical.
//
// run_service_pair() is the in-process harness shape: start both ends
// over a transport pair, wait for every session to reach a terminal
// state, stop both gracefully.
//
// Crash-restart (docs/RECOVERY.md): construct the mux with session
// stores and a killed server is rebuilt by constructing a fresh
// StpServer on the SAME transport endpoint and stores and calling
// rehydrate() with per-session protocol/expectation providers — every
// manifested session is re-admitted where its newest durable checkpoint
// left it.
#pragma once

#include <chrono>
#include <functional>

#include "net/mux.hpp"

namespace stpx::net {

class StpServer {
 public:
  /// Builds the protocol receiver for one manifested session; return
  /// nullptr to decline.  `proto_tag` is store::proto_tag_of(the saved
  /// endpoint name) — refuse tags you cannot serve.
  using ReceiverFactory = std::function<std::unique_ptr<sim::IReceiver>(
      std::uint32_t id, std::uint64_t proto_tag)>;
  /// The expected sequence for one manifested session.
  using ExpectedProvider = std::function<seq::Sequence(std::uint32_t id)>;

  /// `transport` is the server-side endpoint (non-owning, must outlive).
  StpServer(ITransport* transport, MuxConfig cfg) : mux_(transport, cfg) {}

  void add_session(std::uint32_t id,
                   std::unique_ptr<sim::IReceiver> receiver,
                   seq::Sequence expected) {
    mux_.add_session(id,
                     std::make_unique<proto::ReceiverSessionEndpoint>(
                         std::move(receiver), std::move(expected)),
                     /*is_sender=*/false);
  }

  /// Re-admit every receiver session manifested in the session stores
  /// (before start()).  Sender manifests are declined — a server hosts
  /// receivers only.  `extra_sources` are handoff logs scanned but not
  /// written (a dead backend's session log, re-homed here — see
  /// docs/FABRIC.md).
  RehydrateReport rehydrate(
      const ReceiverFactory& make_receiver,
      const ExpectedProvider& expected_for,
      const std::vector<store::IStableStore*>& extra_sources = {}) {
    return mux_.rehydrate(
        [&](const store::SessionManifest& m)
            -> std::unique_ptr<proto::ISessionEndpoint> {
          if (m.is_sender) return nullptr;
          auto receiver = make_receiver(m.session, m.proto_tag);
          if (!receiver) return nullptr;
          return std::make_unique<proto::ReceiverSessionEndpoint>(
              std::move(receiver), expected_for(m.session));
        },
        extra_sources);
  }

  SessionMux& mux() { return mux_; }
  const SessionMux& mux() const { return mux_; }

 private:
  SessionMux mux_;
};

class StpClient {
 public:
  /// Builds the protocol sender for one manifested session; nullptr
  /// declines.
  using SenderFactory = std::function<std::unique_ptr<sim::ISender>(
      std::uint32_t id, std::uint64_t proto_tag)>;
  /// The input sequence for one manifested session.
  using InputProvider = std::function<seq::Sequence(std::uint32_t id)>;

  /// `transport` is the client-side endpoint (non-owning, must outlive).
  StpClient(ITransport* transport, MuxConfig cfg) : mux_(transport, cfg) {}

  void add_session(std::uint32_t id, std::unique_ptr<sim::ISender> sender,
                   seq::Sequence x) {
    mux_.add_session(id,
                     std::make_unique<proto::SenderSessionEndpoint>(
                         std::move(sender), std::move(x)),
                     /*is_sender=*/true);
  }

  /// Re-admit every sender session manifested in the session stores
  /// (before start()).  Receiver manifests are declined.
  RehydrateReport rehydrate(
      const SenderFactory& make_sender, const InputProvider& input_for,
      const std::vector<store::IStableStore*>& extra_sources = {}) {
    return mux_.rehydrate(
        [&](const store::SessionManifest& m)
            -> std::unique_ptr<proto::ISessionEndpoint> {
          if (!m.is_sender) return nullptr;
          auto sender = make_sender(m.session, m.proto_tag);
          if (!sender) return nullptr;
          return std::make_unique<proto::SenderSessionEndpoint>(
              std::move(sender), input_for(m.session));
        },
        extra_sources);
  }

  SessionMux& mux() { return mux_; }
  const SessionMux& mux() const { return mux_; }

 private:
  SessionMux mux_;
};

/// Start both ends, drain until every session on both is terminal or
/// `timeout` elapses, then stop both gracefully.  Returns true iff both
/// muxes fully drained in time.
bool run_service_pair(StpClient& client, StpServer& server,
                      std::chrono::milliseconds timeout);

}  // namespace stpx::net
