#include "net/udp.hpp"

#include "net/frame.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define STPX_HAVE_UDP 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#endif

#include <atomic>

namespace stpx::net {

struct UdpTransport::Counters {
  std::atomic<std::uint64_t> sent{0}, received{0}, send_transient{0},
      send_sheds{0}, recv_transient{0};
};

#if defined(STPX_HAVE_UDP)

namespace {

/// Errnos that mean "the datagram (or the peer) died on the wire", not
/// "this socket is broken": loss to count, never an error to surface.
/// ECONNREFUSED/ECONNRESET/EHOSTUNREACH/ENETUNREACH are the kernel
/// echoing a dead peer back at a connected socket; EAGAIN/ENOBUFS are a
/// full local queue (shedding == loss to the protocols anyway); EINTR is
/// a signal races the syscall.
bool transient_errno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == EHOSTUNREACH ||
         err == ENETUNREACH || err == EAGAIN || err == EWOULDBLOCK ||
         err == ENOBUFS || err == EINTR;
}

/// Bind a non-blocking UDP socket to an ephemeral 127.0.0.1 port.
/// Returns the fd (>= 0) and fills `addr` with the bound address.
int bind_ephemeral(sockaddr_in& addr) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return -1;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t port_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

/// The handshake confirm/hello payload: a well-formed kProbeAck on the
/// reserved fabric session, which every consumer already knows to drop
/// (the mux counts stray control kinds as frames_unknown).
std::vector<std::uint8_t> handshake_frame() {
  Frame f;
  f.kind = FrameKind::kProbeAck;
  f.dir = sim::Dir::kReceiverToSender;
  f.session = kFabricSession;
  f.msg = 0;
  return encode(f);
}

}  // namespace

UdpTransport::UdpTransport(int fd)
    : fd_(fd), port_(port_of(fd)), n_(std::make_unique<Counters>()) {}

UdpTransport::~UdpTransport() { ::close(fd_); }

bool UdpTransport::send(const std::vector<std::uint8_t>& bytes) {
  const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_DONTWAIT);
  if (n == static_cast<ssize_t>(bytes.size())) {
    n_->sent.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (n < 0 && transient_errno(errno)) {
    // The frame is gone the way a lost datagram is gone; report it
    // accepted so the mux treats it as wire loss, not backpressure.
    n_->send_transient.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  n_->send_sheds.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::optional<std::vector<std::uint8_t>> UdpTransport::poll() {
  std::uint8_t buf[512];  // frames are 21 bytes; room for hostile jumbo
  const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
  if (n < 0) {
    // A connected socket regurgitates the peer's death as ECONNREFUSED on
    // recv too; count it apart from the routine empty-queue EWOULDBLOCK.
    if (errno == ECONNREFUSED) {
      n_->recv_transient.fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  n_->received.fetch_add(1, std::memory_order_relaxed);
  return std::vector<std::uint8_t>(buf, buf + n);
}

UdpStats UdpTransport::stats() const {
  UdpStats st;
  st.datagrams_sent = n_->sent.load(std::memory_order_relaxed);
  st.datagrams_received = n_->received.load(std::memory_order_relaxed);
  st.send_transient_drops = n_->send_transient.load(std::memory_order_relaxed);
  st.send_sheds = n_->send_sheds.load(std::memory_order_relaxed);
  st.recv_transient_errors = n_->recv_transient.load(std::memory_order_relaxed);
  return st;
}

bool udp_supported() { return true; }

std::optional<UdpPair> make_udp_pair() {
  sockaddr_in addr_a{};
  sockaddr_in addr_b{};
  const int fd_a = bind_ephemeral(addr_a);
  if (fd_a < 0) return std::nullopt;
  const int fd_b = bind_ephemeral(addr_b);
  if (fd_b < 0) {
    ::close(fd_a);
    return std::nullopt;
  }
  if (::connect(fd_a, reinterpret_cast<const sockaddr*>(&addr_b),
                sizeof(addr_b)) != 0 ||
      ::connect(fd_b, reinterpret_cast<const sockaddr*>(&addr_a),
                sizeof(addr_a)) != 0) {
    ::close(fd_a);
    ::close(fd_b);
    return std::nullopt;
  }
  UdpPair pair;
  pair.a = std::make_unique<UdpTransport>(fd_a);
  pair.b = std::make_unique<UdpTransport>(fd_b);
  return pair;
}

UdpRendezvous::~UdpRendezvous() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<UdpTransport> UdpRendezvous::accept_peer(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) return nullptr;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::uint8_t buf[512];
  sockaddr_in peer{};
  for (;;) {
    socklen_t len = sizeof(peer);
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof(buf), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&peer), &len);
    if (n >= 0) break;  // hello consumed; `peer` holds the dialer
    if (std::chrono::steady_clock::now() >= deadline) return nullptr;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&peer),
                sizeof(peer)) != 0) {
    return nullptr;
  }
  auto t = std::make_unique<UdpTransport>(fd_);
  fd_ = -1;  // ownership moved to the transport
  // Confirm the rendezvous: a retrying dialer stops resending hellos the
  // moment any datagram arrives back.  Plain dialers just see one stray
  // control frame, which every consumer drops.
  t->send(handshake_frame());
  return t;
}

std::optional<std::unique_ptr<UdpRendezvous>> make_udp_rendezvous() {
  sockaddr_in addr{};
  const int fd = bind_ephemeral(addr);
  if (fd < 0) return std::nullopt;
  return std::unique_ptr<UdpRendezvous>(
      new UdpRendezvous(fd, ntohs(addr.sin_port)));
}

std::optional<std::unique_ptr<UdpTransport>> make_udp_connected(
    std::uint16_t port) {
  sockaddr_in addr{};
  const int fd = bind_ephemeral(addr);
  if (fd < 0) return std::nullopt;
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&to), sizeof(to)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  return std::make_unique<UdpTransport>(fd);
}

std::optional<std::unique_ptr<UdpTransport>> make_udp_connected_retry(
    std::uint16_t port, RetryConfig retry) {
  auto t = make_udp_connected(port);
  if (!t) return std::nullopt;
  const auto hello = handshake_frame();
  HandshakeRetry fsm(retry);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (fsm.should_send(now)) (*t)->send(hello);
    if ((*t)->poll()) {
      // Anything arriving on a connected socket proves the rendezvous
      // side dialed back.  A real (non-confirm) frame is dropped here —
      // that is UDP loss, which the protocols already heal.
      fsm.on_ack();
      return std::move(*t);
    }
    if (fsm.exhausted(std::chrono::steady_clock::now())) {
      return std::nullopt;  // nobody confirmed; the port is likely dead
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

#else  // !STPX_HAVE_UDP

UdpTransport::UdpTransport(int fd)
    : fd_(fd), n_(std::make_unique<Counters>()) {}
UdpTransport::~UdpTransport() = default;
bool UdpTransport::send(const std::vector<std::uint8_t>&) { return false; }
std::optional<std::vector<std::uint8_t>> UdpTransport::poll() {
  return std::nullopt;
}
UdpStats UdpTransport::stats() const { return {}; }

UdpRendezvous::~UdpRendezvous() = default;
std::unique_ptr<UdpTransport> UdpRendezvous::accept_peer(
    std::chrono::milliseconds) {
  return nullptr;
}

bool udp_supported() { return false; }
std::optional<UdpPair> make_udp_pair() { return std::nullopt; }
std::optional<std::unique_ptr<UdpRendezvous>> make_udp_rendezvous() {
  return std::nullopt;
}
std::optional<std::unique_ptr<UdpTransport>> make_udp_connected(
    std::uint16_t) {
  return std::nullopt;
}
std::optional<std::unique_ptr<UdpTransport>> make_udp_connected_retry(
    std::uint16_t, RetryConfig) {
  return std::nullopt;
}

#endif

}  // namespace stpx::net
