#include "net/udp.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define STPX_HAVE_UDP 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace stpx::net {

#if defined(STPX_HAVE_UDP)

namespace {

/// An ITransport over one connected, non-blocking UDP socket.  The fd is
/// immutable after construction and kernel datagram syscalls are atomic
/// per message, so send()/poll() are thread-safe without a user-space
/// lock.
class UdpTransport final : public ITransport {
 public:
  explicit UdpTransport(int fd) : fd_(fd) {}
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;
  ~UdpTransport() override { ::close(fd_); }

  bool send(const std::vector<std::uint8_t>& bytes) override {
    const ssize_t n =
        ::send(fd_, bytes.data(), bytes.size(), MSG_DONTWAIT);
    return n == static_cast<ssize_t>(bytes.size());
  }

  std::optional<std::vector<std::uint8_t>> poll() override {
    std::uint8_t buf[512];  // frames are 21 bytes; room for hostile jumbo
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0) return std::nullopt;  // EWOULDBLOCK / transient error
    return std::vector<std::uint8_t>(buf, buf + n);
  }

  std::string name() const override { return "udp"; }

 private:
  int fd_;
};

/// Bind a non-blocking UDP socket to an ephemeral 127.0.0.1 port.
/// Returns the fd (>= 0) and fills `addr` with the bound address.
int bind_ephemeral(sockaddr_in& addr) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return -1;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

bool udp_supported() { return true; }

std::optional<UdpPair> make_udp_pair() {
  sockaddr_in addr_a{};
  sockaddr_in addr_b{};
  const int fd_a = bind_ephemeral(addr_a);
  if (fd_a < 0) return std::nullopt;
  const int fd_b = bind_ephemeral(addr_b);
  if (fd_b < 0) {
    ::close(fd_a);
    return std::nullopt;
  }
  if (::connect(fd_a, reinterpret_cast<const sockaddr*>(&addr_b),
                sizeof(addr_b)) != 0 ||
      ::connect(fd_b, reinterpret_cast<const sockaddr*>(&addr_a),
                sizeof(addr_a)) != 0) {
    ::close(fd_a);
    ::close(fd_b);
    return std::nullopt;
  }
  UdpPair pair;
  pair.a = std::make_unique<UdpTransport>(fd_a);
  pair.b = std::make_unique<UdpTransport>(fd_b);
  return pair;
}

#else  // !STPX_HAVE_UDP

bool udp_supported() { return false; }

std::optional<UdpPair> make_udp_pair() { return std::nullopt; }

#endif

}  // namespace stpx::net
