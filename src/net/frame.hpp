// Wire codec: the versioned frame format every stpx transport carries.
//
// A frame is the on-the-wire unit of the service layer: one protocol
// message (`sim::MsgId`) stamped with the session it belongs to, the
// direction it travels, and a checksum.  The layout is fixed-size and
// little-endian so encode/decode are branch-light and allocation-free:
//
//   offset  size  field
//   0       2     magic  0x53 0x54 ("ST")
//   2       1     version (kWireVersion)
//   3       1     kind    (0 = data, 1 = fin, 2 = probe, 3 = probe-ack,
//                          4 = join, 5 = join-ack, 6 = resolve,
//                          7 = resolve-ack, 8 = not-owner)
//   4       1     dir     (0 = S->R, 1 = R->S)
//   5       4     session id, u32 LE
//   9       8     msg id, i64 LE (two's complement)
//   17      4     FNV-1a 32 checksum over bytes [0, 17), u32 LE
//   -- total 21 bytes (kFrameSize)
//
// decode() never throws: malformed bytes — wrong size, bad magic, unknown
// version/kind/dir, checksum mismatch — yield a reject with a reason,
// mirroring the defensive-ignore convention of the stabilization layer
// (docs/STABILIZATION.md): a transport peer can be arbitrarily hostile and
// the worst it achieves is a counted, dropped frame.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace stpx::net {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameSize = 21;
inline constexpr std::uint8_t kMagic0 = 0x53;  // 'S'
inline constexpr std::uint8_t kMagic1 = 0x54;  // 'T'

/// What a frame carries.  kData frames hold one protocol message; kFin is
/// the service layer's receipt notice (the receiver-side session observed
/// its full expected sequence — see docs/NETWORK.md).  kProbe/kProbeAck
/// are the fabric's liveness heartbeat (docs/FABRIC.md): a router sends a
/// kProbe carrying a nonce in `msg` on the reserved kFabricSession; a live
/// mux answers with a kProbeAck echoing the nonce.  Probe frames never
/// reach a session.
///
/// The remaining kinds are fabric control traffic (docs/FABRIC.md):
///   kJoin       — a fenced backend announcing itself for rejoin on the
///                 reserved kFabricSession; `msg` carries its new cell
///                 generation.
///   kJoinAck    — the router's answer; `msg` carries the current
///                 membership epoch, confirming probation has begun.
///   kResolve    — a client asking the nameserver who owns `session`.
///   kResolveAck — the answer: `msg` packs the owner backend id in the
///                 low 32 bits and the membership epoch in the high 32.
///   kNotOwner   — the router bouncing a frame it had to drop (no owner,
///                 fenced owner, stale entry); `msg` carries the current
///                 membership epoch so the holder of a stale lease knows
///                 to re-resolve instead of retrying into a black hole.
/// A mux is not a party to any of these: control kinds other than kProbe
/// reaching a mux pump are counted and dropped, never delivered.
enum class FrameKind : std::uint8_t {
  kData = 0,
  kFin = 1,
  kProbe = 2,
  kProbeAck = 3,
  kJoin = 4,
  kJoinAck = 5,
  kResolve = 6,
  kResolveAck = 7,
  kNotOwner = 8,
};

/// Highest valid FrameKind value (decode()'s validity bound).
inline constexpr std::uint8_t kMaxFrameKind = 8;

constexpr const char* to_cstr(FrameKind k) {
  switch (k) {
    case FrameKind::kData: return "data";
    case FrameKind::kFin: return "fin";
    case FrameKind::kProbe: return "probe";
    case FrameKind::kProbeAck: return "probe-ack";
    case FrameKind::kJoin: return "join";
    case FrameKind::kJoinAck: return "join-ack";
    case FrameKind::kResolve: return "resolve";
    case FrameKind::kResolveAck: return "resolve-ack";
    case FrameKind::kNotOwner: return "not-owner";
  }
  return "?";
}

/// Session id reserved for fabric control traffic (probes); never a real
/// session — the mux refuses to register it.
inline constexpr std::uint32_t kFabricSession = 0xFFFFFFFFu;

/// Why decode() rejected a byte buffer.
enum class RejectReason : std::uint8_t {
  kBadSize = 0,
  kBadMagic,
  kBadVersion,
  kBadKind,
  kBadDir,
  kBadChecksum,
};

constexpr const char* to_cstr(RejectReason r) {
  switch (r) {
    case RejectReason::kBadSize: return "bad-size";
    case RejectReason::kBadMagic: return "bad-magic";
    case RejectReason::kBadVersion: return "bad-version";
    case RejectReason::kBadKind: return "bad-kind";
    case RejectReason::kBadDir: return "bad-dir";
    case RejectReason::kBadChecksum: return "bad-checksum";
  }
  return "?";
}

/// One decoded frame.  `msg` is the protocol payload for kData frames; for
/// kFin frames it carries the receiver's item count (informational).
struct Frame {
  FrameKind kind = FrameKind::kData;
  sim::Dir dir = sim::Dir::kSenderToReceiver;
  std::uint32_t session = 0;
  sim::MsgId msg = 0;

  friend bool operator==(const Frame&, const Frame&) = default;
};

std::string to_string(const Frame& f);

/// FNV-1a 32-bit over `len` bytes (the frame checksum primitive; exposed
/// for tests).  A single corrupted byte anywhere in the covered region is
/// guaranteed to change the digest — each round is injective in the running
/// hash (odd multiplier mod 2^32) and in the input byte (XOR).
std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t len);

/// Serialize to exactly kFrameSize bytes.
std::vector<std::uint8_t> encode(const Frame& f);

/// Parse a byte buffer.  Returns the frame, or std::nullopt with `*why`
/// set (when `why` is non-null).  Never throws, never reads out of bounds.
std::optional<Frame> decode(const std::uint8_t* data, std::size_t len,
                            RejectReason* why = nullptr);
std::optional<Frame> decode(const std::vector<std::uint8_t>& bytes,
                            RejectReason* why = nullptr);

}  // namespace stpx::net
