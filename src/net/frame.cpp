#include "net/frame.hpp"

namespace stpx::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

std::string to_string(const Frame& f) {
  return std::string(to_cstr(f.kind)) + " " + sim::to_cstr(f.dir) +
         " session " + std::to_string(f.session) + " msg " +
         std::to_string(f.msg);
}

std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

std::vector<std::uint8_t> encode(const Frame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameSize);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(f.kind));
  out.push_back(static_cast<std::uint8_t>(f.dir));
  put_u32(out, f.session);
  const auto msg = static_cast<std::uint64_t>(f.msg);
  put_u32(out, static_cast<std::uint32_t>(msg & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(msg >> 32));
  put_u32(out, fnv1a32(out.data(), out.size()));
  return out;
}

std::optional<Frame> decode(const std::uint8_t* data, std::size_t len,
                            RejectReason* why) {
  const auto reject = [&](RejectReason r) -> std::optional<Frame> {
    if (why != nullptr) *why = r;
    return std::nullopt;
  };
  if (data == nullptr || len != kFrameSize) {
    return reject(RejectReason::kBadSize);
  }
  if (data[0] != kMagic0 || data[1] != kMagic1) {
    return reject(RejectReason::kBadMagic);
  }
  if (data[2] != kWireVersion) return reject(RejectReason::kBadVersion);
  if (data[3] > kMaxFrameKind) return reject(RejectReason::kBadKind);
  if (data[4] > 1) return reject(RejectReason::kBadDir);
  // Checksum last: a frame must be structurally plausible before we pay
  // for the hash, and a corrupted header field is the more precise reason.
  if (get_u32(data + 17) != fnv1a32(data, 17)) {
    return reject(RejectReason::kBadChecksum);
  }
  Frame f;
  f.kind = static_cast<FrameKind>(data[3]);
  f.dir = static_cast<sim::Dir>(data[4]);
  f.session = get_u32(data + 5);
  f.msg = static_cast<sim::MsgId>(get_u64(data + 9));
  return f;
}

std::optional<Frame> decode(const std::vector<std::uint8_t>& bytes,
                            RejectReason* why) {
  return decode(bytes.data(), bytes.size(), why);
}

}  // namespace stpx::net
