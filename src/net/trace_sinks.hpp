// Trace sinks for drained flight-recorder streams.
//
//   * write_trace_jsonl / read_trace_jsonl — the archival form: one JSON
//     object per line via the lossless TraceEvent codec.  A drained trace
//     written out and read back is event-for-event identical, so offline
//     analysis of an archived trace reproduces the live TraceReport
//     exactly (the golden round-trip tests pin this).
//   * write_wire_chrome_trace — Chrome trace-event JSON (Perfetto /
//     chrome://tracing) rendering of a drained stream: one thread track
//     per session carrying its frame/item/state instants, checkpoint
//     flushes as complete ("X") slices with their measured duration,
//     rejects on their own track (they are unattributable to a session by
//     construction), and fault/blackout windows as balanced B/E span
//     pairs on stacked fault lanes — the same lane-packing scheme as
//     obs::ChromeTraceSink, so the two trace families look alike in the
//     viewer.
//
// Timestamps are the recorder's epoch-relative microseconds, which is
// natively what the Chrome trace format wants.
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "net/trace_event.hpp"

namespace stpx::net {

/// Write one JSONL line per event, in stream order.
void write_trace_jsonl(std::ostream& out, const std::vector<TraceEvent>& evs);

/// Parse a JSONL stream back into events.  Blank lines are skipped; any
/// malformed non-blank line fails the whole read (nullopt) — an archive is
/// either intact or it is not trustworthy for re-analysis.
std::optional<std::vector<TraceEvent>> read_trace_jsonl(std::istream& in);

/// Export a drained stream (plus optional fault windows, already rebased
/// onto the recorder's clock — see to_trace_spans) as a Chrome trace-event
/// JSON document.
void write_wire_chrome_trace(std::ostream& out,
                             const std::vector<TraceEvent>& evs,
                             const std::vector<TraceSpan>& windows = {});

}  // namespace stpx::net
