// SessionMux — N concurrent STP sessions multiplexed over one transport.
//
// Architecture (docs/NETWORK.md has the full picture):
//
//   * Sessions are registered before start() and partitioned round-robin
//     into shards.  A shard is owned by exactly one worker thread, so
//     session state (the protocol endpoint, counters, RTT samples) needs
//     no per-session locking — only each shard's inbox, which the pump
//     thread fills, is mutex-guarded.
//   * The pump (one std::jthread) polls the transport, decodes frames
//     (rejecting malformed bytes — counted, never thrown), and routes
//     them to the owning shard's inbox by session id.
//   * Workers (std::jthread each) sweep their shard on a fixed cadence:
//     drain the inbox into sessions, then step each active session under
//     a per-sweep send budget and a bounded in-flight credit
//     (backpressure), encode outgoing messages, and hand them to the
//     transport.
//   * Completion is wire-level: when a receiver session's tape equals its
//     expected sequence it emits a FIN frame; the sender session marks
//     itself completed when the FIN arrives.  FIN loss is healed by
//     re-FIN on retransmission arrival plus a sender-side keepalive that
//     re-sends the last data frame when the protocol has gone quiescent.
//   * Idle-session eviction: a session that has received nothing for
//     `idle_eviction_sweeps` sweeps is evicted (dead peer) — terminal,
//     like completion, but distinguishable in the verdict.
//   * stop() drains gracefully: the pump is retired first (no new
//     inbound), each worker performs a final inbox-drain sweep, then
//     joins.
//
// Thread-safety invariants: session objects are touched only by their
// shard's worker; NetCounters are atomics; the transport must be
// thread-safe (both provided implementations are); an attached INetProbe
// must be thread-safe (hooks fire concurrently from workers and pump).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "proto/session_adapter.hpp"

namespace stpx::net {

/// Terminal (and the one non-terminal) session states.
enum class SessionState : std::uint8_t {
  kActive = 0,
  kCompleted,        // receiver: tape == expected; sender: FIN received
  kSafetyViolation,  // receiver wrote a non-prefix item
  kEvicted,          // idle past the eviction threshold
};

constexpr const char* to_cstr(SessionState s) {
  switch (s) {
    case SessionState::kActive: return "active";
    case SessionState::kCompleted: return "completed";
    case SessionState::kSafetyViolation: return "safety-violation";
    case SessionState::kEvicted: return "evicted";
  }
  return "?";
}

/// Thread-safe observer of mux events.  Hooks fire concurrently from the
/// pump and every worker; implementations must be safe under that (the
/// engine-side obs::IProbe contract is single-threaded, hence this
/// separate interface).
class INetProbe {
 public:
  virtual ~INetProbe() = default;
  virtual void on_frame_sent(std::uint32_t session, const Frame& f) {
    (void)session;
    (void)f;
  }
  virtual void on_frame_received(std::uint32_t session, const Frame& f) {
    (void)session;
    (void)f;
  }
  virtual void on_frame_rejected(RejectReason why) { (void)why; }
  /// A receiver session appended output item `index`, still a correct
  /// prefix of its expected sequence (fires per write — the wire-level
  /// analogue of the engine probe's on_write).
  virtual void on_item(std::uint32_t session, std::size_t index) {
    (void)session;
    (void)index;
  }
  virtual void on_session_state(std::uint32_t session, SessionState s) {
    (void)session;
    (void)s;
  }
};

/// A ready-made INetProbe: atomic tallies, enough for tests and demos.
class CountingNetProbe final : public INetProbe {
 public:
  void on_frame_sent(std::uint32_t, const Frame&) override { ++sent_; }
  void on_frame_received(std::uint32_t, const Frame&) override {
    ++received_;
  }
  void on_frame_rejected(RejectReason) override { ++rejected_; }
  void on_item(std::uint32_t, std::size_t) override { ++items_; }
  void on_session_state(std::uint32_t, SessionState s) override {
    if (s == SessionState::kCompleted) ++completed_;
    if (s == SessionState::kSafetyViolation) ++violated_;
    if (s == SessionState::kEvicted) ++evicted_;
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t items() const { return items_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t violated() const { return violated_; }
  std::uint64_t evicted() const { return evicted_; }

 private:
  std::atomic<std::uint64_t> sent_{0}, received_{0}, rejected_{0},
      items_{0}, completed_{0}, violated_{0}, evicted_{0};
};

struct MuxConfig {
  /// Worker threads (= shards).  Sessions are partitioned id-order
  /// round-robin across shards at start().
  std::size_t workers = 2;
  /// Protocol steps granted per active session per sweep.
  std::size_t steps_per_sweep = 2;
  /// Bounded in-flight credit per sender session: stepping pauses while
  /// (frames sent - frames received) >= max_inflight.  Receiver-side
  /// re-acks decay the credit, so a burst of losses stalls the session
  /// only until the next keepalive round-trip.
  std::size_t max_inflight = 32;
  /// Per-session inbox bound; overflow frames are shed (backpressure —
  /// indistinguishable from wire loss, which the protocols tolerate).
  std::size_t inbox_limit = 64;
  /// Sweeps without any inbound frame before a session is evicted
  /// (0 = never evict).
  std::uint64_t idle_eviction_sweeps = 0;
  /// Quiescent-sender keepalive: after this many consecutive sweeps with
  /// nothing to send, re-send the last data frame (0 = off).  Receiver
  /// sessions use the same cadence to refresh their cumulative ack.
  std::uint64_t keepalive_sweeps = 8;
  /// Worker sweep cadence and pump idle backoff.
  std::chrono::microseconds sweep_interval{200};
  std::chrono::microseconds poll_backoff{50};
  /// Optional observer (non-owning, must be thread-safe).
  INetProbe* probe = nullptr;
};

/// Aggregate mux counters (a consistent-enough snapshot of atomics).
struct NetStats {
  std::uint64_t frames_sent = 0;      // handed to the transport
  std::uint64_t frames_received = 0;  // decoded and routed
  std::uint64_t frames_rejected = 0;  // malformed bytes or bad direction
  std::uint64_t frames_unknown_session = 0;
  std::uint64_t frames_shed = 0;  // inbox backpressure
  std::uint64_t fins_sent = 0;
  std::uint64_t items_done = 0;  // receiver-side writes, all sessions
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_violated = 0;
  std::uint64_t sessions_evicted = 0;
};

/// Post-run, per-session outcome.
struct SessionReport {
  std::uint32_t id = 0;
  bool is_sender = false;
  SessionState state = SessionState::kActive;
  std::string endpoint;
  std::size_t items = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Send-to-next-inbound round-trip samples, microseconds (sender
  /// sessions; mirrors the engine metric ack_rtt).
  std::vector<std::uint64_t> ack_rtt_us;
};

class SessionMux {
 public:
  /// `transport` is non-owning and must outlive the mux.
  SessionMux(ITransport* transport, MuxConfig cfg);
  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;
  ~SessionMux();

  /// Register a session (before start() only; ids must be unique).
  /// Sender sessions emit S->R data frames and accept R->S frames;
  /// receiver sessions the reverse.
  void add_session(std::uint32_t id,
                   std::unique_ptr<proto::ISessionEndpoint> endpoint,
                   bool is_sender);

  std::size_t session_count() const { return sessions_.size(); }

  /// Spawn the pump and worker threads.
  void start();

  /// Wait (polling) until every session is terminal or `timeout` elapses.
  /// Returns true when all sessions reached a terminal state.
  bool drain(std::chrono::milliseconds timeout);

  /// Graceful shutdown: retire the pump, final-sweep the shards, join.
  /// Idempotent; the destructor calls it.
  void stop();

  bool all_terminal() const {
    return terminal_.load(std::memory_order_acquire) == sessions_.size();
  }
  /// Live gauge: sessions not yet terminal.
  std::size_t active_sessions() const {
    return sessions_.size() - terminal_.load(std::memory_order_acquire);
  }

  NetStats stats() const;

  /// Per-session outcomes.  Call after stop() (or before start()).
  std::vector<SessionReport> reports() const;

  /// Publish counters, the active-sessions gauge, per-state verdict
  /// counters, and the ack-RTT histogram into `reg` under the net.*
  /// namespace (see docs/OBSERVABILITY.md).  Call after stop().
  void publish_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct Session {
    std::uint32_t id = 0;
    bool is_sender = false;
    std::unique_ptr<proto::ISessionEndpoint> endpoint;
    SessionState state = SessionState::kActive;
    // --- inbox: filled by the pump under the shard mutex ----------------
    std::deque<Frame> inbox;
    // --- worker-private state (shard owner only) ------------------------
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::size_t inflight = 0;        // sent minus received, floored at 0
    std::uint64_t idle_sweeps = 0;   // sweeps since last inbound frame
    std::uint64_t quiet_sweeps = 0;  // sweeps since last outbound frame
    std::size_t items_reported = 0;  // probe on_item high-water mark
    bool refin_pending = false;      // completed receiver saw a retransmit
    std::vector<std::uint8_t> last_data_frame;  // keepalive payload
    std::deque<std::chrono::steady_clock::time_point> pending_sends;
    std::vector<std::uint64_t> ack_rtt_us;
  };

  struct Shard {
    std::mutex mu;  // guards the inboxes of this shard's sessions
    std::vector<std::size_t> members;  // indices into sessions_
  };

  void pump_loop(std::stop_token st);
  void worker_loop(std::stop_token st, std::size_t shard_idx);
  /// One pass over a shard: drain inboxes, step sessions, emit frames.
  void sweep(Shard& shard);
  void deliver(Session& s, const Frame& f);
  void step_session(Session& s);
  void emit(Session& s, FrameKind kind, sim::MsgId msg);
  void finalize(Session& s, SessionState state);
  /// Route one decoded frame to its session's inbox.
  void route(const Frame& f);

  ITransport* transport_;
  MuxConfig cfg_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // id -> sessions_ index; read-only after start().
  std::vector<std::pair<std::uint32_t, std::size_t>> index_;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::size_t> terminal_{0};
  struct Counters {
    std::atomic<std::uint64_t> frames_sent{0}, frames_received{0},
        frames_rejected{0}, frames_unknown{0}, frames_shed{0}, fins_sent{0},
        items_done{0}, completed{0}, violated{0}, evicted{0};
  } n_;

  std::vector<std::jthread> workers_;
  std::jthread pump_;
};

}  // namespace stpx::net
