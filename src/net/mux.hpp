// SessionMux — N concurrent STP sessions multiplexed over one transport.
//
// Architecture (docs/NETWORK.md has the full picture):
//
//   * Sessions are registered before start() and partitioned round-robin
//     into shards.  A shard is owned by exactly one worker thread, so
//     session state (the protocol endpoint, counters, RTT samples) needs
//     no per-session locking — only each shard's inbox, which the pump
//     thread fills, is mutex-guarded.
//   * The pump (one std::jthread) polls the transport, decodes frames
//     (rejecting malformed bytes — counted, never thrown), and routes
//     them to the owning shard's inbox by session id.
//   * Workers (std::jthread each) sweep their shard on a fixed cadence:
//     drain the inbox into sessions, then step each active session under
//     a per-sweep send budget and a bounded in-flight credit
//     (backpressure), encode outgoing messages, and hand them to the
//     transport.
//   * Completion is wire-level: when a receiver session's tape equals its
//     expected sequence it emits a FIN frame; the sender session marks
//     itself completed when the FIN arrives.  FIN loss is healed by
//     re-FIN on retransmission arrival plus a sender-side keepalive that
//     re-sends the last data frame when the protocol has gone quiescent.
//   * Idle-session eviction: a session that has received nothing for
//     `idle_eviction_sweeps` sweeps is evicted (dead peer) — terminal,
//     like completion, but distinguishable in the verdict.
//   * Durability (optional; docs/RECOVERY.md): give MuxConfig one or
//     more IStableStore session logs and every session is checkpointed
//     as a manifest record on a sweep cadence, group-committed per shard
//     (one append_batch per shard flush, so 10k sessions never mean 10k
//     syncs).  Receiver-side outbound frames (cumulative acks, FINs) are
//     HELD until the checkpoint covering the acked state is durable —
//     the write-ahead rule that makes a crash-restart rewind invisible
//     to the peer.  rehydrate() on a fresh mux re-admits every
//     manifested session through a caller-supplied endpoint factory and
//     restores it via save_state()/restore_state().  A restore that
//     witnesses an inconsistency is kRecoveryViolation — loud, never
//     silent corruption.
//   * stop() drains gracefully: the pump is retired first (no new
//     inbound), each worker performs a final inbox-drain sweep, then
//     joins.  drain() additionally arms a final checkpoint flush (and
//     session-log compaction) on that last sweep; a bare stop() is the
//     crash-shaped shutdown — buffered checkpoints are lost, the log
//     still rehydrates cleanly.
//
// Thread-safety invariants: session objects are touched only by their
// shard's worker; NetCounters are atomics; the transport must be
// thread-safe (both provided implementations are); an attached INetProbe
// must be thread-safe (hooks fire concurrently from workers and pump);
// session stores are NOT assumed thread-safe — the mux serializes access
// per store with its own mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "proto/session_adapter.hpp"
#include "store/session_log.hpp"

namespace stpx::net {

/// Terminal (and the one non-terminal) session states.
enum class SessionState : std::uint8_t {
  kActive = 0,
  kCompleted,        // receiver: tape == expected; sender: FIN received
  kSafetyViolation,  // receiver wrote a non-prefix item
  kEvicted,          // idle past the eviction threshold
  // Post-restart safety break, kept distinct from a live kSafetyViolation
  // (the wire analogue of sim::RunVerdict::kRecoveryViolation): the
  // durable manifest was inconsistent at restore (e.g. a rehydrated tape
  // that is not a prefix of the expected sequence), or a rehydrated
  // session's peer never reappeared (progress the log attests to was
  // lost beyond what retransmission can heal).
  kRecoveryViolation,
};

constexpr const char* to_cstr(SessionState s) {
  switch (s) {
    case SessionState::kActive: return "active";
    case SessionState::kCompleted: return "completed";
    case SessionState::kSafetyViolation: return "safety-violation";
    case SessionState::kEvicted: return "evicted";
    case SessionState::kRecoveryViolation: return "recovery-violation";
  }
  return "?";
}

/// Thread-safe observer of mux events.  Hooks fire concurrently from the
/// pump and every worker; implementations must be safe under that (the
/// engine-side obs::IProbe contract is single-threaded, hence this
/// separate interface).
class INetProbe {
 public:
  virtual ~INetProbe() = default;
  virtual void on_frame_sent(std::uint32_t session, const Frame& f) {
    (void)session;
    (void)f;
  }
  virtual void on_frame_received(std::uint32_t session, const Frame& f) {
    (void)session;
    (void)f;
  }
  virtual void on_frame_rejected(RejectReason why) { (void)why; }
  /// An inbound frame for `session` was shed by inbox backpressure (the
  /// session's bounded inbox was full).  Distinct from wire loss: the
  /// frame made it across the transport and the mux chose to drop it.
  virtual void on_frame_shed(std::uint32_t session) { (void)session; }
  /// A receiver session appended output item `index`, still a correct
  /// prefix of its expected sequence (fires per write — the wire-level
  /// analogue of the engine probe's on_write).
  virtual void on_item(std::uint32_t session, std::size_t index) {
    (void)session;
    (void)index;
  }
  virtual void on_session_state(std::uint32_t session, SessionState s) {
    (void)session;
    (void)s;
  }
  /// A manifested session was re-admitted by rehydrate(): `position` is
  /// the restored items_done() and `s` the state it rehydrated into
  /// (kActive, kCompleted, or kRecoveryViolation).  Fires before
  /// start(), single-threaded.
  virtual void on_rehydrate(std::uint32_t session, std::size_t position,
                            SessionState s) {
    (void)session;
    (void)position;
    (void)s;
  }
  /// The pump answered an inbound fabric heartbeat (kProbe) with a
  /// kProbeAck echoing `nonce` — the liveness signal a FabricRouter's
  /// health monitor consumes (docs/FABRIC.md).  Fires from the pump.
  virtual void on_probe_answered(std::int64_t nonce) { (void)nonce; }
  /// A shard group-committed `records` manifest records (`bytes` payload
  /// bytes) in `duration_us` microseconds.  Fires only for non-empty
  /// commits, from that shard's worker thread.
  virtual void on_checkpoint_flush(std::size_t shard, std::size_t records,
                                   std::uint64_t bytes,
                                   std::uint64_t duration_us) {
    (void)shard;
    (void)records;
    (void)bytes;
    (void)duration_us;
  }
};

/// How many distinct RejectReason values exist (per-reason counter arrays).
inline constexpr std::size_t kRejectReasonCount = 6;

/// A ready-made INetProbe: atomic tallies, enough for tests and demos.
class CountingNetProbe final : public INetProbe {
 public:
  void on_frame_sent(std::uint32_t, const Frame&) override { ++sent_; }
  void on_frame_received(std::uint32_t, const Frame&) override {
    ++received_;
  }
  void on_frame_rejected(RejectReason why) override {
    ++rejected_;
    ++by_reason_[static_cast<std::size_t>(why) % kRejectReasonCount];
  }
  void on_frame_shed(std::uint32_t) override { ++sheds_; }
  void on_item(std::uint32_t, std::size_t) override { ++items_; }
  void on_session_state(std::uint32_t, SessionState s) override {
    if (s == SessionState::kCompleted) ++completed_;
    if (s == SessionState::kSafetyViolation) ++violated_;
    if (s == SessionState::kEvicted) ++evicted_;
    if (s == SessionState::kRecoveryViolation) ++recovery_violated_;
  }
  void on_rehydrate(std::uint32_t, std::size_t, SessionState) override {
    ++rehydrated_;
  }
  void on_checkpoint_flush(std::size_t, std::size_t, std::uint64_t,
                           std::uint64_t) override {
    ++flushes_;
  }
  void on_probe_answered(std::int64_t) override { ++probes_answered_; }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t rejected(RejectReason why) const {
    return by_reason_[static_cast<std::size_t>(why) % kRejectReasonCount];
  }
  std::uint64_t sheds() const { return sheds_; }
  std::uint64_t checkpoint_flushes() const { return flushes_; }
  std::uint64_t items() const { return items_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t violated() const { return violated_; }
  std::uint64_t evicted() const { return evicted_; }
  std::uint64_t recovery_violated() const { return recovery_violated_; }
  std::uint64_t rehydrated() const { return rehydrated_; }
  std::uint64_t probes_answered() const { return probes_answered_; }

 private:
  std::atomic<std::uint64_t> sent_{0}, received_{0}, rejected_{0},
      sheds_{0}, flushes_{0}, items_{0}, completed_{0}, violated_{0},
      evicted_{0}, recovery_violated_{0}, rehydrated_{0},
      probes_answered_{0};
  std::atomic<std::uint64_t> by_reason_[kRejectReasonCount] = {};
};

struct MuxConfig {
  /// Worker threads (= shards).  Sessions are partitioned id-order
  /// round-robin across shards at start().
  std::size_t workers = 2;
  /// Protocol steps granted per active session per sweep.
  std::size_t steps_per_sweep = 2;
  /// Bounded in-flight credit per sender session: stepping pauses while
  /// (frames sent - frames received) >= max_inflight.  Receiver-side
  /// re-acks decay the credit, so a burst of losses stalls the session
  /// only until the next keepalive round-trip.
  std::size_t max_inflight = 32;
  /// Per-session inbox bound; overflow frames are shed (backpressure —
  /// indistinguishable from wire loss, which the protocols tolerate).
  std::size_t inbox_limit = 64;
  /// Sweeps without any inbound frame before a session is evicted
  /// (0 = never evict).
  std::uint64_t idle_eviction_sweeps = 0;
  /// Quiescent-sender keepalive: after this many consecutive sweeps with
  /// nothing to send, re-send the last data frame (0 = off).  Receiver
  /// sessions use the same cadence to refresh their cumulative ack.
  std::uint64_t keepalive_sweeps = 8;
  /// Worker sweep cadence and pump idle backoff.
  std::chrono::microseconds sweep_interval{200};
  std::chrono::microseconds poll_backoff{50};
  /// Optional observer (non-owning, must be thread-safe).
  INetProbe* probe = nullptr;
  /// Session checkpoint logs (non-owning; empty = volatile sessions).
  /// Shard i commits to stores[i % size], so giving one store per worker
  /// removes all cross-shard store contention.  The mux never resets the
  /// stores — the caller does, once, before the FIRST server generation
  /// (a restart must find the previous generation's records).
  std::vector<store::IStableStore*> session_stores;
  /// Checkpoint (and release held receiver frames) every N sweeps.
  std::uint64_t checkpoint_every_sweeps = 1;
  /// Stamped as `owner` into every manifest record this mux writes
  /// (0 = unattributed).  Fabric backends set their backend id here so a
  /// handed-off session log stays attributable after re-homing.
  std::uint32_t backend_id = 0;
  /// A rehydrated session that has seen NO inbound frame for this many
  /// sweeps is flagged kRecoveryViolation instead of waiting forever
  /// (0 = off): its manifest attests to an unfinished exchange with a
  /// live peer, the wire shows none — the crash lost progress (e.g. a
  /// completion record) beyond what retransmission can heal.
  std::uint64_t rehydrate_idle_violation_sweeps = 0;
};

/// Aggregate mux counters (a consistent-enough snapshot of atomics).
struct NetStats {
  std::uint64_t frames_sent = 0;      // handed to the transport
  std::uint64_t frames_received = 0;  // decoded and routed
  std::uint64_t frames_rejected = 0;  // malformed bytes or bad direction
  /// frames_rejected split by RejectReason (indexed by the enum value).
  std::uint64_t rejects_by_reason[kRejectReasonCount] = {};
  std::uint64_t frames_unknown_session = 0;
  std::uint64_t frames_shed = 0;  // inbox backpressure
  std::uint64_t probes_answered = 0;  // fabric heartbeats echoed by the pump
  std::uint64_t fins_sent = 0;
  std::uint64_t items_done = 0;  // receiver-side writes, all sessions
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_violated = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_recovery_violated = 0;
  std::uint64_t rehydrated_sessions = 0;
  std::uint64_t checkpoint_flushes = 0;  // non-empty group commits
  std::uint64_t checkpoint_records = 0;  // manifest records appended
  std::uint64_t checkpoint_bytes = 0;    // manifest payload bytes appended
};

/// Post-run, per-session outcome.
struct SessionReport {
  std::uint32_t id = 0;
  bool is_sender = false;
  bool rehydrated = false;  // re-admitted from a manifest by rehydrate()
  SessionState state = SessionState::kActive;
  std::string endpoint;
  std::size_t items = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Send-to-next-inbound round-trip samples, microseconds (sender
  /// sessions; mirrors the engine metric ack_rtt).
  std::vector<std::uint64_t> ack_rtt_us;
};

/// What rehydrate() found and did (docs/RECOVERY.md).
struct RehydrateReport {
  std::size_t sessions = 0;       ///< manifested sessions re-admitted
  std::size_t completed = 0;      ///< restored directly into kCompleted
  std::size_t violations = 0;     ///< flagged kRecoveryViolation at restore
  std::size_t cold_restores = 0;  ///< unusable blobs → cold-started endpoints
  std::size_t declined = 0;       ///< factory returned nullptr (not re-admitted)
  std::size_t collisions = 0;     ///< manifest id already hosted — skipped
  std::uint64_t records_scanned = 0;  ///< valid manifest records replayed
  std::uint64_t records_skipped = 0;  ///< damaged/foreign records skipped
  std::vector<std::uint64_t> restore_latency_us;  ///< per-session
};

class SessionMux {
 public:
  /// `transport` is non-owning and must outlive the mux.
  SessionMux(ITransport* transport, MuxConfig cfg);
  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;
  ~SessionMux();

  /// Register a session (before start() only; ids must be unique).
  /// Sender sessions emit S->R data frames and accept R->S frames;
  /// receiver sessions the reverse.
  void add_session(std::uint32_t id,
                   std::unique_ptr<proto::ISessionEndpoint> endpoint,
                   bool is_sender);

  std::size_t session_count() const { return sessions_.size(); }

  /// Builds the endpoint for one manifested session during rehydrate();
  /// return nullptr to decline (e.g. a proto_tag this host cannot serve).
  using SessionFactory = std::function<std::unique_ptr<proto::ISessionEndpoint>(
      const store::SessionManifest&)>;

  /// Restart-time recovery (before start(); requires session_stores):
  /// replay every session log, fold newest-per-session by (epoch, seq),
  /// and re-admit each manifested session with an endpoint built by
  /// `factory` and restored via restore_state().  Completed manifests
  /// rehydrate straight into kCompleted (still answering retransmits
  /// with re-FINs); inconsistent ones into kRecoveryViolation; unusable
  /// blobs cold-start and re-earn their progress.  Bumps the manifest
  /// epoch past everything seen, so this generation's records supersede
  /// the crashed one's.
  ///
  /// `extra_sources` are additional session logs scanned (read-only) but
  /// never written — the cross-process handoff surface: a survivor
  /// absorbing a dead backend passes the dead generation's logs here, so
  /// the absorbed sessions re-manifest into the survivor's OWN stores
  /// under the bumped epoch and the handoff logs can be retired.  A
  /// manifested id the mux already hosts is skipped and counted
  /// (`collisions`) instead of tripping the duplicate-id contract.
  RehydrateReport rehydrate(
      const SessionFactory& factory,
      const std::vector<store::IStableStore*>& extra_sources = {});

  /// Spawn the pump and worker threads.
  void start();

  /// Wait (polling) until every session is terminal or `timeout` elapses.
  /// Returns true when all sessions reached a terminal state.  Also arms
  /// the final-sweep checkpoint flush + session-log compaction in
  /// stop() — drain-then-stop is the graceful, fully-flushed shutdown;
  /// a bare stop() is the crash-shaped one.
  bool drain(std::chrono::milliseconds timeout);

  /// Graceful shutdown: retire the pump, final-sweep the shards, join.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Crash-shaped shutdown for restart drills: retire the threads WITHOUT
  /// the final drain sweep, checkpoint flush, or log compaction — the
  /// session log is left exactly as of the last cadence flush and held
  /// (durability-gated) frames are dropped, which is what a process kill
  /// leaves behind.  Rehydrate a fresh mux from the same stores to model
  /// the restart.
  void kill();

  bool all_terminal() const {
    return terminal_.load(std::memory_order_acquire) == sessions_.size();
  }
  /// Live gauge: sessions not yet terminal.
  std::size_t active_sessions() const {
    return sessions_.size() - terminal_.load(std::memory_order_acquire);
  }

  NetStats stats() const;

  /// Per-session outcomes.  Call after stop() (or before start()).
  std::vector<SessionReport> reports() const;

  /// Publish counters, the active-sessions gauge, per-state verdict
  /// counters, and the ack-RTT histogram into `reg` under the net.*
  /// namespace (see docs/OBSERVABILITY.md).  Call after stop().
  void publish_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct Session {
    std::uint32_t id = 0;
    bool is_sender = false;
    bool rehydrated = false;  // re-admitted from a manifest
    std::unique_ptr<proto::ISessionEndpoint> endpoint;
    SessionState state = SessionState::kActive;
    // --- inbox: filled by the pump under the shard mutex ----------------
    std::deque<Frame> inbox;
    // --- worker-private state (shard owner only) ------------------------
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::size_t inflight = 0;        // sent minus received, floored at 0
    std::uint64_t idle_sweeps = 0;   // sweeps since last inbound frame
    std::uint64_t quiet_sweeps = 0;  // sweeps since last outbound frame
    std::size_t items_reported = 0;  // probe on_item high-water mark
    bool refin_pending = false;      // completed receiver saw a retransmit
    bool dirty = false;              // state may have moved since last flush
    std::string last_sig;            // last checkpointed state signature
    // Receiver frames gated on durability: held until the covering
    // checkpoint commits, released by flush_shard (bounded; overflow
    // drops the oldest — indistinguishable from wire loss).
    std::vector<std::pair<Frame, std::vector<std::uint8_t>>> held;
    std::vector<std::uint8_t> last_data_frame;  // keepalive payload
    std::deque<std::chrono::steady_clock::time_point> pending_sends;
    std::vector<std::uint64_t> ack_rtt_us;
  };

  struct Shard {
    std::mutex mu;  // guards the inboxes of this shard's sessions
    std::vector<std::size_t> members;  // indices into sessions_
    std::uint64_t sweep_no = 0;        // drives the checkpoint cadence
    std::size_t slot = 0;              // index into slots_
    std::size_t idx = 0;               // own index (probe attribution)
  };

  /// One session store plus the mutex serializing shard access to it
  /// (stores are not thread-safe; slots may be shared by shards).
  struct StoreSlot {
    store::IStableStore* store = nullptr;
    std::mutex mu;
  };

  void pump_loop(std::stop_token st);
  void worker_loop(std::stop_token st, std::size_t shard_idx);
  /// One pass over a shard: drain inboxes, step sessions, emit frames.
  void sweep(Shard& shard);
  void deliver(Session& s, const Frame& f);
  void step_session(Session& s);
  void emit(Session& s, FrameKind kind, sim::MsgId msg);
  /// The unconditional tail of emit(): transport send + accounting.
  void send_now(Session& s, const Frame& f,
                const std::vector<std::uint8_t>& bytes);
  /// Group-commit every dirty session of the shard as one manifest
  /// batch, then release all held frames (they are now covered).
  void flush_shard(Shard& shard, bool force);
  void release_held(Session& s);
  void finalize(Session& s, SessionState state);
  bool durable() const { return !slots_.empty(); }
  /// Route one decoded frame to its session's inbox.
  void route(const Frame& f);
  /// Echo a kProbe back as a kProbeAck (pump thread).
  void answer_probe(const Frame& probe);

  ITransport* transport_;
  MuxConfig cfg_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<StoreSlot>> slots_;
  // id -> sessions_ index; read-only after start().
  std::vector<std::pair<std::uint32_t, std::size_t>> index_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> flush_on_stop_{false};  // armed by drain()
  std::atomic<bool> killed_{false};         // armed by kill()
  std::uint64_t epoch_ = 1;                 // manifest generation
  std::atomic<std::uint64_t> ckpt_seq_{0};  // manifest append order

  std::atomic<std::size_t> terminal_{0};
  struct Counters {
    std::atomic<std::uint64_t> frames_sent{0}, frames_received{0},
        frames_rejected{0}, frames_unknown{0}, frames_shed{0}, fins_sent{0},
        items_done{0}, completed{0}, violated{0}, evicted{0},
        recovery_violated{0}, rehydrated{0}, ckpt_flushes{0},
        ckpt_records{0}, ckpt_bytes{0}, probes_answered{0};
    std::atomic<std::uint64_t> rejects_by_reason[kRejectReasonCount] = {};
  } n_;
  /// The one reject bottleneck: count (total + per reason) and notify.
  void note_reject(RejectReason why);

  std::vector<std::jthread> workers_;
  std::jthread pump_;
};

}  // namespace stpx::net
