// TraceEvent — the compact wire-level flight-recorder record.
//
// One TraceEvent is one INetProbe hook firing, flattened into a fixed-size
// POD the recorder can write into a lock-free ring without allocating:
//
//   ts_us    monotonic microseconds since the recorder's epoch
//   seq      per-producer-shard write index (merge tiebreak: two events
//            with equal timestamps from one producer keep their order)
//   msg      kind-dependent payload: protocol MsgId (frame events), item
//            index (kItem), restored position (kRehydrate), records
//            committed (kCheckpointFlush)
//   aux      kind-dependent extra: flush duration in microseconds
//            (kCheckpointFlush); zero elsewhere
//   session  owning session id (kCheckpointFlush: the shard index;
//            kFrameRejected: unattributable, always 0)
//   kind     which hook fired
//   detail   kind-dependent enum byte: FrameKind (frame send/receive),
//            RejectReason (kFrameRejected), SessionState (kSessionState,
//            kRehydrate)
//   dir      frame direction (frame send/receive only)
//
// The JSONL line codec (to_jsonl / parse_jsonl) is a lossless round-trip:
// parse_jsonl(to_jsonl(ev)) == ev for every valid event, which is what
// lets an offline analysis re-derive the exact TraceReport a live drain
// produced (the golden-trace tests pin both directions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/mux.hpp"
#include "sim/types.hpp"

namespace stpx::net {

enum class TraceEventKind : std::uint8_t {
  kFrameSent = 0,
  kFrameReceived,
  kFrameRejected,
  kFrameShed,
  kItem,
  kSessionState,
  kRehydrate,
  kCheckpointFlush,
  kProbeAnswered,  // fabric heartbeat echoed; msg carries the nonce
};

constexpr const char* to_cstr(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kFrameSent: return "frame-sent";
    case TraceEventKind::kFrameReceived: return "frame-received";
    case TraceEventKind::kFrameRejected: return "frame-rejected";
    case TraceEventKind::kFrameShed: return "frame-shed";
    case TraceEventKind::kItem: return "item";
    case TraceEventKind::kSessionState: return "session-state";
    case TraceEventKind::kRehydrate: return "rehydrate";
    case TraceEventKind::kCheckpointFlush: return "checkpoint-flush";
    case TraceEventKind::kProbeAnswered: return "probe-answered";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t ts_us = 0;
  std::uint64_t seq = 0;
  std::int64_t msg = 0;
  std::uint64_t aux = 0;
  std::uint32_t session = 0;
  /// Which fabric backend recorded the event (0 = unattributed /
  /// single-process).  Stamped by the recorder, so traces drained from
  /// several backend processes stay attributable after a merge.
  std::uint32_t backend = 0;
  TraceEventKind kind = TraceEventKind::kFrameSent;
  std::uint8_t detail = 0;
  sim::Dir dir = sim::Dir::kSenderToReceiver;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// A named wall-clock interval overlaid on a trace (fault windows from the
/// loopback transport, or any caller-supplied annotation).  Times share the
/// recorder's epoch-relative microsecond clock.
struct TraceSpan {
  std::string name;
  std::uint64_t begin_us = 0;
  std::uint64_t end_us = 0;

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

/// One JSON object, no trailing newline:
///   {"ts":12,"seq":3,"ev":"frame-sent","session":7,"kind":"data",
///    "dir":"S->R","msg":5}
/// Field sets are kind-dependent (see trace_event.cpp); every emitted
/// line parses back to the identical event.  A nonzero `backend` is
/// appended as a trailing ,"backend":N — zero (the single-process case)
/// emits nothing, so pre-fabric golden lines stay byte-identical.
std::string to_jsonl(const TraceEvent& ev);

/// Parse one JSONL line (as emitted by to_jsonl).  Returns std::nullopt on
/// anything malformed — never throws, mirroring the frame codec's
/// reject-don't-throw convention.
std::optional<TraceEvent> parse_jsonl(const std::string& line);

}  // namespace stpx::net
