#include "net/mux.hpp"

#include <algorithm>
#include <utility>

#include "util/expect.hpp"

namespace stpx::net {

namespace {

/// Cap on the send-timestamp FIFO used for ack-RTT sampling: with heavy
/// retransmission the FIFO would otherwise grow without bound and skew
/// samples toward ancient sends.
constexpr std::size_t kMaxPendingSends = 64;
/// Cap on stored RTT samples per session.
constexpr std::size_t kMaxRttSamples = 4096;
/// Cap on durability-gated frames held per session between checkpoint
/// flushes; overflow drops the oldest (== wire loss, retransmission
/// heals it).
constexpr std::size_t kMaxHeldFrames = 8;

std::uint64_t us_between(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

SessionMux::SessionMux(ITransport* transport, MuxConfig cfg)
    : transport_(transport), cfg_(cfg) {
  STPX_EXPECT(transport_ != nullptr, "SessionMux: null transport");
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.steps_per_sweep == 0) cfg_.steps_per_sweep = 1;
  if (cfg_.checkpoint_every_sweeps == 0) cfg_.checkpoint_every_sweeps = 1;
  for (store::IStableStore* st : cfg_.session_stores) {
    STPX_EXPECT(st != nullptr, "SessionMux: null session store");
    auto slot = std::make_unique<StoreSlot>();
    slot->store = st;
    slots_.push_back(std::move(slot));
  }
}

SessionMux::~SessionMux() { stop(); }

void SessionMux::add_session(
    std::uint32_t id, std::unique_ptr<proto::ISessionEndpoint> endpoint,
    bool is_sender) {
  STPX_EXPECT(!started_, "SessionMux: add_session after start");
  STPX_EXPECT(endpoint != nullptr, "SessionMux: null endpoint");
  STPX_EXPECT(id != kFabricSession,
              "SessionMux: kFabricSession is reserved for probes");
  for (const auto& [known, idx] : index_) {
    (void)idx;
    STPX_EXPECT(known != id, "SessionMux: duplicate session id");
  }
  auto s = std::make_unique<Session>();
  s->id = id;
  s->is_sender = is_sender;
  s->endpoint = std::move(endpoint);
  index_.emplace_back(id, sessions_.size());
  sessions_.push_back(std::move(s));
}

void SessionMux::start() {
  STPX_EXPECT(!started_, "SessionMux: start called twice");
  started_ = true;
  std::sort(index_.begin(), index_.end());
  const std::size_t shard_count =
      std::max<std::size_t>(1, std::min(cfg_.workers, std::max<std::size_t>(
                                                          1, sessions_.size())));
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->idx = i;
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    shards_[i % shard_count]->members.push_back(i);
  }
  for (std::size_t i = 0; i < shard_count && !slots_.empty(); ++i) {
    shards_[i]->slot = i % slots_.size();
  }
  workers_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token st) { worker_loop(st, i); });
  }
  pump_ = std::jthread([this](std::stop_token st) { pump_loop(st); });
}

bool SessionMux::drain(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!all_terminal() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Drain is the graceful path: arm the final-sweep checkpoint flush so
  // stop() leaves nothing buffered (armed even on timeout — the caller
  // asked for a graceful shutdown; a crash is modelled by bare stop()).
  flush_on_stop_.store(true, std::memory_order_release);
  return all_terminal();
}

void SessionMux::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Retire the pump first so no new inbound frames race the final sweeps.
  pump_.request_stop();
  pump_.join();
  for (auto& w : workers_) w.request_stop();
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (durable() && flush_on_stop_.load(std::memory_order_acquire) &&
      !killed_.load(std::memory_order_acquire)) {
    // Graceful shutdown only: fold each session log down to its newest
    // record per session.  The rewrite is not crash-atomic, which is
    // exactly why a crash-shaped stop() never does this.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j) {
        seen = seen || slots_[j]->store == slots_[i]->store;
      }
      if (!seen) store::compact_session_log(*slots_[i]->store);
    }
  }
}

void SessionMux::kill() {
  // A crash never runs a final sweep: skip the drain pass entirely so the
  // log stays exactly as of the last cadence flush and held frames die
  // with the process image.
  killed_.store(true, std::memory_order_release);
  stop();
}

RehydrateReport SessionMux::rehydrate(
    const SessionFactory& factory,
    const std::vector<store::IStableStore*>& extra_sources) {
  STPX_EXPECT(!started_, "SessionMux: rehydrate after start");
  STPX_EXPECT(durable(), "SessionMux: rehydrate without session stores");
  STPX_EXPECT(static_cast<bool>(factory), "SessionMux: null session factory");
  std::vector<store::IStableStore*> stores;
  stores.reserve(slots_.size() + extra_sources.size());
  for (const auto& slot : slots_) stores.push_back(slot->store);
  // Handoff sources are scanned but never written: their sessions
  // re-manifest into this mux's own stores at the first flush.
  for (store::IStableStore* st : extra_sources) stores.push_back(st);
  const store::SessionLogScan scan = store::scan_session_logs(stores);
  // Every record this generation writes must supersede the crashed
  // generation's, even though the per-mux seq counter restarts.
  epoch_ = scan.max_epoch + 1;

  RehydrateReport rep;
  rep.records_scanned = scan.records_scanned;
  rep.records_skipped = scan.records_skipped;
  for (const auto& [id, m] : scan.newest) {
    bool hosted = false;
    for (const auto& [known, idx] : index_) {
      (void)idx;
      hosted = hosted || known == id;
    }
    if (hosted) {
      // The id is already live here (e.g. a handoff log that still names
      // a session this mux also manifests): the resident session wins.
      ++rep.collisions;
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto endpoint = factory(m);
    if (!endpoint) {
      ++rep.declined;
      continue;
    }
    const bool restored =
        !m.endpoint_state.empty() && endpoint->restore_state(m.endpoint_state);
    if (!restored) ++rep.cold_restores;
    add_session(id, std::move(endpoint), m.is_sender);
    Session& s = *sessions_.back();
    s.rehydrated = true;
    s.dirty = true;  // re-manifest under the new epoch at the first flush
    s.items_reported = s.endpoint->items_done();
    ++rep.sessions;
    n_.rehydrated.fetch_add(1, std::memory_order_relaxed);
    if (!s.endpoint->safety_ok()) {
      // The manifest itself witnessed an inconsistency — loud, terminal,
      // distinct from a live safety violation.
      finalize(s, SessionState::kRecoveryViolation);
      ++rep.violations;
    } else if (m.completed && restored && s.endpoint->done()) {
      // FIN state survived: terminal-completed, but still re-FINs when
      // the peer retransmits (the restart-racing-FIN healing path).
      finalize(s, SessionState::kCompleted);
      ++rep.completed;
    }
    if (cfg_.probe != nullptr) {
      cfg_.probe->on_rehydrate(id, s.endpoint->items_done(), s.state);
    }
    rep.restore_latency_us.push_back(
        us_between(t0, std::chrono::steady_clock::now()));
  }
  return rep;
}

void SessionMux::pump_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    bool any = false;
    // Bounded burst per iteration so a flood cannot starve the stop check.
    for (int i = 0; i < 256; ++i) {
      auto bytes = transport_->poll();
      if (!bytes) break;
      any = true;
      RejectReason why = RejectReason::kBadSize;
      const auto frame = decode(*bytes, &why);
      if (!frame) {
        note_reject(why);
        continue;
      }
      if (frame->kind == FrameKind::kProbe) {
        answer_probe(*frame);
        continue;
      }
      if (frame->kind != FrameKind::kData && frame->kind != FrameKind::kFin) {
        // This mux is not a prober, a router, or a nameserver; stray
        // control traffic (a probe ack reflection, a join/resolve frame
        // from a hostile or confused peer) is dropped, never delivered to
        // a session — a kNotOwner reaching deliver() would read as an ack.
        n_.frames_unknown.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      route(*frame);
    }
    if (!any) std::this_thread::sleep_for(cfg_.poll_backoff);
  }
}

void SessionMux::answer_probe(const Frame& probe) {
  // Fabric heartbeat: answered straight from the pump so liveness never
  // depends on worker sweep cadence, session state, or durability gating
  // (an ack attests only "this process is pumping frames").
  Frame ack;
  ack.kind = FrameKind::kProbeAck;
  ack.dir = probe.dir == sim::Dir::kSenderToReceiver
                ? sim::Dir::kReceiverToSender
                : sim::Dir::kSenderToReceiver;
  ack.session = probe.session;
  ack.msg = probe.msg;  // echo the nonce
  transport_->send(encode(ack));
  n_.probes_answered.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.probe != nullptr) cfg_.probe->on_probe_answered(probe.msg);
}

void SessionMux::route(const Frame& f) {
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), f.session,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == index_.end() || it->first != f.session) {
    n_.frames_unknown.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t idx = it->second;
  Session& s = *sessions_[idx];
  // Direction sanity: sender sessions consume R->S traffic, receiver
  // sessions S->R.  A frame flowing the wrong way is our own reflection
  // (or a hostile peer) — reject, don't deliver.
  const sim::Dir expect = s.is_sender ? sim::Dir::kReceiverToSender
                                      : sim::Dir::kSenderToReceiver;
  if (f.dir != expect) {
    note_reject(RejectReason::kBadDir);
    return;
  }
  Shard& shard = *shards_[idx % shards_.size()];
  bool shed = false;
  {
    std::lock_guard<std::mutex> hold(shard.mu);
    if (cfg_.inbox_limit > 0 && s.inbox.size() >= cfg_.inbox_limit) {
      shed = true;
    } else {
      s.inbox.push_back(f);
    }
  }
  if (shed) {
    n_.frames_shed.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.probe != nullptr) cfg_.probe->on_frame_shed(f.session);
    return;
  }
  n_.frames_received.fetch_add(1, std::memory_order_relaxed);
}

void SessionMux::note_reject(RejectReason why) {
  n_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
  n_.rejects_by_reason[static_cast<std::size_t>(why) % kRejectReasonCount]
      .fetch_add(1, std::memory_order_relaxed);
  if (cfg_.probe != nullptr) cfg_.probe->on_frame_rejected(why);
}

void SessionMux::worker_loop(std::stop_token st, std::size_t shard_idx) {
  Shard& shard = *shards_[shard_idx];
  while (!st.stop_requested()) {
    sweep(shard);
    std::this_thread::sleep_for(cfg_.sweep_interval);
  }
  // Crash-shaped shutdown: no final pass, no flush — see kill().
  if (killed_.load(std::memory_order_acquire)) return;
  // Graceful drain: one final pass so frames routed before the pump
  // retired still reach their sessions.
  sweep(shard);
  // Only a drain()-armed stop flushes buffered checkpoints; a bare
  // stop() is the crash-shaped shutdown and loses them on purpose.
  if (durable() && flush_on_stop_.load(std::memory_order_acquire)) {
    flush_shard(shard, /*force=*/true);
  }
}

void SessionMux::sweep(Shard& shard) {
  ++shard.sweep_no;
  for (const std::size_t idx : shard.members) {
    Session& s = *sessions_[idx];
    std::deque<Frame> arrived;
    {
      std::lock_guard<std::mutex> hold(shard.mu);
      arrived.swap(s.inbox);
    }
    const bool got_inbound = !arrived.empty();
    for (const Frame& f : arrived) deliver(s, f);

    if (s.state != SessionState::kActive) {
      // Completed receivers re-FIN when the peer retransmits (FIN loss
      // healing); at most one per sweep.
      if (s.refin_pending) {
        s.refin_pending = false;
        emit(s, FrameKind::kFin,
             static_cast<sim::MsgId>(s.endpoint->items_done()));
      }
      continue;
    }

    step_session(s);
    if (s.state != SessionState::kActive) continue;

    // Keepalive: a quiescent endpoint re-sends its last frame so a lost
    // FIN or a lost cumulative ack cannot wedge the pair forever.  For
    // durable receivers last_data_frame is only ever a RELEASED (i.e.
    // checkpoint-covered) ack, so the resend needs no fresh gating.
    if (cfg_.keepalive_sweeps > 0 &&
        s.quiet_sweeps >= cfg_.keepalive_sweeps &&
        !s.last_data_frame.empty()) {
      s.quiet_sweeps = 0;
      transport_->send(s.last_data_frame);
      ++s.frames_out;
      n_.frames_sent.fetch_add(1, std::memory_order_relaxed);
      if (s.is_sender) {
        if (s.pending_sends.size() < kMaxPendingSends) {
          s.pending_sends.push_back(std::chrono::steady_clock::now());
        }
      }
    }

    if (got_inbound) {
      s.idle_sweeps = 0;
    } else {
      ++s.idle_sweeps;
      if (cfg_.rehydrate_idle_violation_sweeps > 0 && s.rehydrated &&
          s.frames_in == 0 &&
          s.idle_sweeps > cfg_.rehydrate_idle_violation_sweeps) {
        // The manifest attests to an unfinished exchange, but the peer
        // never spoke after the restart: the crash lost progress beyond
        // what retransmission can heal.  Loud, not a silent wedge.
        finalize(s, SessionState::kRecoveryViolation);
      } else if (cfg_.idle_eviction_sweeps > 0 &&
                 s.idle_sweeps > cfg_.idle_eviction_sweeps) {
        finalize(s, SessionState::kEvicted);
      }
    }
  }
  if (durable() && shard.sweep_no % cfg_.checkpoint_every_sweeps == 0) {
    flush_shard(shard, /*force=*/false);
  }
}

void SessionMux::deliver(Session& s, const Frame& f) {
  ++s.frames_in;
  s.idle_sweeps = 0;
  s.dirty = true;  // any inbound frame may move durable protocol state
  if (cfg_.probe != nullptr) cfg_.probe->on_frame_received(s.id, f);
  if (s.state != SessionState::kActive) {
    // Terminal receiver still answering retransmits: schedule a re-FIN.
    if (!s.is_sender && s.state == SessionState::kCompleted &&
        f.kind == FrameKind::kData) {
      s.refin_pending = true;
    }
    return;
  }
  if (s.is_sender) {
    if (!s.pending_sends.empty()) {
      const auto sent_at = s.pending_sends.front();
      s.pending_sends.pop_front();
      if (s.ack_rtt_us.size() < kMaxRttSamples) {
        s.ack_rtt_us.push_back(
            us_between(sent_at, std::chrono::steady_clock::now()));
      }
    }
    if (s.inflight > 0) --s.inflight;
  }
  if (f.kind == FrameKind::kFin) {
    s.endpoint->on_fin();
    if (s.endpoint->done()) finalize(s, SessionState::kCompleted);
    return;
  }
  s.endpoint->on_deliver(f.msg);
}

void SessionMux::step_session(Session& s) {
  const std::uint64_t frames_out_before = s.frames_out;
  for (std::size_t i = 0; i < cfg_.steps_per_sweep; ++i) {
    if (s.is_sender && cfg_.max_inflight > 0 &&
        s.inflight >= cfg_.max_inflight) {
      break;  // backpressure: wait for acks to decay the credit
    }
    const auto out = s.endpoint->step();

    // Surface fresh receiver writes (prefix-checked by the adapter).
    const std::size_t items = s.endpoint->items_done();
    if (items > s.items_reported) {
      s.dirty = true;
      n_.items_done.fetch_add(items - s.items_reported,
                              std::memory_order_relaxed);
      if (cfg_.probe != nullptr) {
        for (std::size_t j = s.items_reported; j < items; ++j) {
          cfg_.probe->on_item(s.id, j);
        }
      }
      s.items_reported = items;
    }

    if (!s.endpoint->safety_ok()) {
      finalize(s, SessionState::kSafetyViolation);
      return;
    }
    if (!s.is_sender && s.endpoint->done()) {
      if (out) emit(s, FrameKind::kData, *out);
      emit(s, FrameKind::kFin,
           static_cast<sim::MsgId>(s.endpoint->items_done()));
      finalize(s, SessionState::kCompleted);
      return;
    }
    if (!out) break;  // quiescent this sweep
    emit(s, FrameKind::kData, *out);
  }
  s.quiet_sweeps = s.frames_out == frames_out_before ? s.quiet_sweeps + 1 : 0;
}

void SessionMux::emit(Session& s, FrameKind kind, sim::MsgId msg) {
  Frame f;
  f.kind = kind;
  f.dir = s.is_sender ? sim::Dir::kSenderToReceiver
                      : sim::Dir::kReceiverToSender;
  f.session = s.id;
  f.msg = msg;
  auto bytes = encode(f);
  // Durability gating (the write-ahead rule): a receiver's outbound
  // frames — cumulative acks and FINs — attest to externalized state, so
  // they are held until flush_shard commits the covering checkpoint.
  // Sender data frames carry no commitment (retransmission is always
  // safe) and go straight out.
  if (durable() && !s.is_sender) {
    if (s.held.size() >= kMaxHeldFrames) {
      s.held.erase(s.held.begin());  // drop-oldest == wire loss
    }
    s.held.emplace_back(f, std::move(bytes));
    return;
  }
  send_now(s, f, bytes);
}

void SessionMux::send_now(Session& s, const Frame& f,
                          const std::vector<std::uint8_t>& bytes) {
  transport_->send(bytes);  // shed == lost; the protocol retransmits
  ++s.frames_out;
  n_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (f.kind == FrameKind::kFin) {
    n_.fins_sent.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.last_data_frame = bytes;
  }
  if (s.is_sender) {
    ++s.inflight;
    if (s.pending_sends.size() < kMaxPendingSends) {
      s.pending_sends.push_back(std::chrono::steady_clock::now());
    }
  }
  if (cfg_.probe != nullptr) cfg_.probe->on_frame_sent(s.id, f);
}

void SessionMux::release_held(Session& s) {
  for (auto& [f, bytes] : s.held) send_now(s, f, bytes);
  s.held.clear();
}

void SessionMux::flush_shard(Shard& shard, bool force) {
  StoreSlot& slot = *slots_[shard.slot];
  std::vector<std::string> batch;
  std::uint64_t batch_bytes = 0;
  for (const std::size_t idx : shard.members) {
    Session& s = *sessions_[idx];
    if (!s.dirty && !force) continue;
    s.dirty = false;
    store::SessionManifest m;
    m.session = s.id;
    m.is_sender = s.is_sender;
    m.epoch = epoch_;
    m.seq = 0;  // assigned below, only when the state actually moved
    m.proto_tag = store::proto_tag_of(s.endpoint->name());
    m.position = s.endpoint->items_done();
    m.completed = s.state == SessionState::kCompleted;
    m.owner = cfg_.backend_id;
    m.endpoint_state = s.endpoint->save_state();
    // With seq pinned to 0 the payload is a pure state signature:
    // identical signature -> nothing moved -> no record (keepalive-only
    // sweeps cost no log growth).
    std::string sig = m.to_payload();
    if (sig == s.last_sig) continue;
    s.last_sig = std::move(sig);
    m.seq = ckpt_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::string payload = m.to_payload();
    batch_bytes += payload.size();
    batch.push_back(std::move(payload));
  }
  if (!batch.empty()) {
    const auto flush_t0 = std::chrono::steady_clock::now();
    {
      // Group commit: one append_batch (== one sync) for the whole shard.
      std::lock_guard<std::mutex> hold(slot.mu);
      slot.store->append_batch(batch);
    }
    n_.ckpt_flushes.fetch_add(1, std::memory_order_relaxed);
    n_.ckpt_records.fetch_add(batch.size(), std::memory_order_relaxed);
    n_.ckpt_bytes.fetch_add(batch_bytes, std::memory_order_relaxed);
    if (cfg_.probe != nullptr) {
      cfg_.probe->on_checkpoint_flush(
          shard.idx, batch.size(), batch_bytes,
          us_between(flush_t0, std::chrono::steady_clock::now()));
    }
  }
  // Everything held is now covered by a durable record (this batch, or
  // an earlier one when the signature never moved): release.
  for (const std::size_t idx : shard.members) {
    release_held(*sessions_[idx]);
  }
}

void SessionMux::finalize(Session& s, SessionState state) {
  s.state = state;
  s.dirty = true;  // the terminal state itself is worth a manifest record
  switch (state) {
    case SessionState::kCompleted:
      n_.completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionState::kSafetyViolation:
      n_.violated.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionState::kEvicted:
      n_.evicted.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionState::kRecoveryViolation:
      n_.recovery_violated.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionState::kActive:
      break;
  }
  terminal_.fetch_add(1, std::memory_order_release);
  if (cfg_.probe != nullptr) cfg_.probe->on_session_state(s.id, state);
}

NetStats SessionMux::stats() const {
  NetStats out;
  out.frames_sent = n_.frames_sent.load(std::memory_order_relaxed);
  out.frames_received = n_.frames_received.load(std::memory_order_relaxed);
  out.frames_rejected = n_.frames_rejected.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
    out.rejects_by_reason[i] =
        n_.rejects_by_reason[i].load(std::memory_order_relaxed);
  }
  out.frames_unknown_session =
      n_.frames_unknown.load(std::memory_order_relaxed);
  out.frames_shed = n_.frames_shed.load(std::memory_order_relaxed);
  out.probes_answered = n_.probes_answered.load(std::memory_order_relaxed);
  out.fins_sent = n_.fins_sent.load(std::memory_order_relaxed);
  out.items_done = n_.items_done.load(std::memory_order_relaxed);
  out.sessions_completed = n_.completed.load(std::memory_order_relaxed);
  out.sessions_violated = n_.violated.load(std::memory_order_relaxed);
  out.sessions_evicted = n_.evicted.load(std::memory_order_relaxed);
  out.sessions_recovery_violated =
      n_.recovery_violated.load(std::memory_order_relaxed);
  out.rehydrated_sessions = n_.rehydrated.load(std::memory_order_relaxed);
  out.checkpoint_flushes = n_.ckpt_flushes.load(std::memory_order_relaxed);
  out.checkpoint_records = n_.ckpt_records.load(std::memory_order_relaxed);
  out.checkpoint_bytes = n_.ckpt_bytes.load(std::memory_order_relaxed);
  return out;
}

std::vector<SessionReport> SessionMux::reports() const {
  STPX_EXPECT(!started_ || stopped_,
              "SessionMux: reports() while workers are live");
  std::vector<SessionReport> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    SessionReport r;
    r.id = s->id;
    r.is_sender = s->is_sender;
    r.rehydrated = s->rehydrated;
    r.state = s->state;
    r.endpoint = s->endpoint->name();
    r.items = s->endpoint->items_done();
    r.frames_in = s->frames_in;
    r.frames_out = s->frames_out;
    r.ack_rtt_us = s->ack_rtt_us;
    out.push_back(std::move(r));
  }
  return out;
}

void SessionMux::publish_metrics(obs::MetricsRegistry& reg) const {
  const NetStats st = stats();
  reg.counter("net.frames.sent").inc(st.frames_sent);
  reg.counter("net.frames.received").inc(st.frames_received);
  reg.counter("net.frames.rejected").inc(st.frames_rejected);
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
    reg.counter(std::string("net.rejects.") +
                to_cstr(static_cast<RejectReason>(i)))
        .inc(st.rejects_by_reason[i]);
  }
  reg.counter("net.frames.unknown_session").inc(st.frames_unknown_session);
  reg.counter("net.frames.shed").inc(st.frames_shed);
  // Backpressure loss under its own name, so dashboards can tell "the mux
  // chose to drop" apart from frame-accounting noise (`net.frames.shed`
  // stays as the frame-family spelling of the same counter).
  reg.counter("net.sheds").inc(st.frames_shed);
  reg.counter("net.probes.answered").inc(st.probes_answered);
  reg.counter("net.fins.sent").inc(st.fins_sent);
  reg.counter("net.items.done").inc(st.items_done);
  reg.counter("net.rehydrated_sessions").inc(st.rehydrated_sessions);
  reg.counter("net.checkpoint_flushes").inc(st.checkpoint_flushes);
  reg.counter("net.checkpoint_records").inc(st.checkpoint_records);
  reg.counter("net.checkpoint_bytes").inc(st.checkpoint_bytes);
  reg.gauge("net.sessions.active")
      .set(static_cast<std::int64_t>(active_sessions()));
  auto& rtt = reg.histogram("net.ack_rtt_us", obs::pow2_bounds(24));
  for (const auto& s : sessions_) {
    reg.counter(std::string("net.verdict.") + to_cstr(s->state)).inc();
    for (const std::uint64_t sample : s->ack_rtt_us) rtt.observe(sample);
  }
}

}  // namespace stpx::net
