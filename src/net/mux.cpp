#include "net/mux.hpp"

#include <algorithm>
#include <utility>

#include "util/expect.hpp"

namespace stpx::net {

namespace {

/// Cap on the send-timestamp FIFO used for ack-RTT sampling: with heavy
/// retransmission the FIFO would otherwise grow without bound and skew
/// samples toward ancient sends.
constexpr std::size_t kMaxPendingSends = 64;
/// Cap on stored RTT samples per session.
constexpr std::size_t kMaxRttSamples = 4096;

std::uint64_t us_between(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

SessionMux::SessionMux(ITransport* transport, MuxConfig cfg)
    : transport_(transport), cfg_(cfg) {
  STPX_EXPECT(transport_ != nullptr, "SessionMux: null transport");
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.steps_per_sweep == 0) cfg_.steps_per_sweep = 1;
}

SessionMux::~SessionMux() { stop(); }

void SessionMux::add_session(
    std::uint32_t id, std::unique_ptr<proto::ISessionEndpoint> endpoint,
    bool is_sender) {
  STPX_EXPECT(!started_, "SessionMux: add_session after start");
  STPX_EXPECT(endpoint != nullptr, "SessionMux: null endpoint");
  for (const auto& [known, idx] : index_) {
    (void)idx;
    STPX_EXPECT(known != id, "SessionMux: duplicate session id");
  }
  auto s = std::make_unique<Session>();
  s->id = id;
  s->is_sender = is_sender;
  s->endpoint = std::move(endpoint);
  index_.emplace_back(id, sessions_.size());
  sessions_.push_back(std::move(s));
}

void SessionMux::start() {
  STPX_EXPECT(!started_, "SessionMux: start called twice");
  started_ = true;
  std::sort(index_.begin(), index_.end());
  const std::size_t shard_count =
      std::max<std::size_t>(1, std::min(cfg_.workers, std::max<std::size_t>(
                                                          1, sessions_.size())));
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    shards_[i % shard_count]->members.push_back(i);
  }
  workers_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token st) { worker_loop(st, i); });
  }
  pump_ = std::jthread([this](std::stop_token st) { pump_loop(st); });
}

bool SessionMux::drain(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!all_terminal() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return all_terminal();
}

void SessionMux::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Retire the pump first so no new inbound frames race the final sweeps.
  pump_.request_stop();
  pump_.join();
  for (auto& w : workers_) w.request_stop();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void SessionMux::pump_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    bool any = false;
    // Bounded burst per iteration so a flood cannot starve the stop check.
    for (int i = 0; i < 256; ++i) {
      auto bytes = transport_->poll();
      if (!bytes) break;
      any = true;
      RejectReason why = RejectReason::kBadSize;
      const auto frame = decode(*bytes, &why);
      if (!frame) {
        n_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        if (cfg_.probe != nullptr) cfg_.probe->on_frame_rejected(why);
        continue;
      }
      route(*frame);
    }
    if (!any) std::this_thread::sleep_for(cfg_.poll_backoff);
  }
}

void SessionMux::route(const Frame& f) {
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), f.session,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == index_.end() || it->first != f.session) {
    n_.frames_unknown.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t idx = it->second;
  Session& s = *sessions_[idx];
  // Direction sanity: sender sessions consume R->S traffic, receiver
  // sessions S->R.  A frame flowing the wrong way is our own reflection
  // (or a hostile peer) — reject, don't deliver.
  const sim::Dir expect = s.is_sender ? sim::Dir::kReceiverToSender
                                      : sim::Dir::kSenderToReceiver;
  if (f.dir != expect) {
    n_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.probe != nullptr) {
      cfg_.probe->on_frame_rejected(RejectReason::kBadDir);
    }
    return;
  }
  Shard& shard = *shards_[idx % shards_.size()];
  {
    std::lock_guard<std::mutex> hold(shard.mu);
    if (cfg_.inbox_limit > 0 && s.inbox.size() >= cfg_.inbox_limit) {
      n_.frames_shed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    s.inbox.push_back(f);
  }
  n_.frames_received.fetch_add(1, std::memory_order_relaxed);
}

void SessionMux::worker_loop(std::stop_token st, std::size_t shard_idx) {
  Shard& shard = *shards_[shard_idx];
  while (!st.stop_requested()) {
    sweep(shard);
    std::this_thread::sleep_for(cfg_.sweep_interval);
  }
  // Graceful drain: one final pass so frames routed before the pump
  // retired still reach their sessions.
  sweep(shard);
}

void SessionMux::sweep(Shard& shard) {
  for (const std::size_t idx : shard.members) {
    Session& s = *sessions_[idx];
    std::deque<Frame> arrived;
    {
      std::lock_guard<std::mutex> hold(shard.mu);
      arrived.swap(s.inbox);
    }
    const bool got_inbound = !arrived.empty();
    for (const Frame& f : arrived) deliver(s, f);

    if (s.state != SessionState::kActive) {
      // Completed receivers re-FIN when the peer retransmits (FIN loss
      // healing); at most one per sweep.
      if (s.refin_pending) {
        s.refin_pending = false;
        emit(s, FrameKind::kFin,
             static_cast<sim::MsgId>(s.endpoint->items_done()));
      }
      continue;
    }

    step_session(s);
    if (s.state != SessionState::kActive) continue;

    // Keepalive: a quiescent endpoint re-sends its last frame so a lost
    // FIN or a lost cumulative ack cannot wedge the pair forever.
    if (cfg_.keepalive_sweeps > 0 &&
        s.quiet_sweeps >= cfg_.keepalive_sweeps &&
        !s.last_data_frame.empty()) {
      s.quiet_sweeps = 0;
      transport_->send(s.last_data_frame);
      ++s.frames_out;
      n_.frames_sent.fetch_add(1, std::memory_order_relaxed);
      if (s.is_sender) {
        if (s.pending_sends.size() < kMaxPendingSends) {
          s.pending_sends.push_back(std::chrono::steady_clock::now());
        }
      }
    }

    if (got_inbound) {
      s.idle_sweeps = 0;
    } else if (cfg_.idle_eviction_sweeps > 0 &&
               ++s.idle_sweeps > cfg_.idle_eviction_sweeps) {
      finalize(s, SessionState::kEvicted);
    }
  }
}

void SessionMux::deliver(Session& s, const Frame& f) {
  ++s.frames_in;
  s.idle_sweeps = 0;
  if (cfg_.probe != nullptr) cfg_.probe->on_frame_received(s.id, f);
  if (s.state != SessionState::kActive) {
    // Terminal receiver still answering retransmits: schedule a re-FIN.
    if (!s.is_sender && s.state == SessionState::kCompleted &&
        f.kind == FrameKind::kData) {
      s.refin_pending = true;
    }
    return;
  }
  if (s.is_sender) {
    if (!s.pending_sends.empty()) {
      const auto sent_at = s.pending_sends.front();
      s.pending_sends.pop_front();
      if (s.ack_rtt_us.size() < kMaxRttSamples) {
        s.ack_rtt_us.push_back(
            us_between(sent_at, std::chrono::steady_clock::now()));
      }
    }
    if (s.inflight > 0) --s.inflight;
  }
  if (f.kind == FrameKind::kFin) {
    s.endpoint->on_fin();
    if (s.endpoint->done()) finalize(s, SessionState::kCompleted);
    return;
  }
  s.endpoint->on_deliver(f.msg);
}

void SessionMux::step_session(Session& s) {
  const std::uint64_t frames_out_before = s.frames_out;
  for (std::size_t i = 0; i < cfg_.steps_per_sweep; ++i) {
    if (s.is_sender && cfg_.max_inflight > 0 &&
        s.inflight >= cfg_.max_inflight) {
      break;  // backpressure: wait for acks to decay the credit
    }
    const auto out = s.endpoint->step();

    // Surface fresh receiver writes (prefix-checked by the adapter).
    const std::size_t items = s.endpoint->items_done();
    if (items > s.items_reported) {
      n_.items_done.fetch_add(items - s.items_reported,
                              std::memory_order_relaxed);
      if (cfg_.probe != nullptr) {
        for (std::size_t j = s.items_reported; j < items; ++j) {
          cfg_.probe->on_item(s.id, j);
        }
      }
      s.items_reported = items;
    }

    if (!s.endpoint->safety_ok()) {
      finalize(s, SessionState::kSafetyViolation);
      return;
    }
    if (!s.is_sender && s.endpoint->done()) {
      if (out) emit(s, FrameKind::kData, *out);
      emit(s, FrameKind::kFin,
           static_cast<sim::MsgId>(s.endpoint->items_done()));
      finalize(s, SessionState::kCompleted);
      return;
    }
    if (!out) break;  // quiescent this sweep
    emit(s, FrameKind::kData, *out);
  }
  s.quiet_sweeps = s.frames_out == frames_out_before ? s.quiet_sweeps + 1 : 0;
}

void SessionMux::emit(Session& s, FrameKind kind, sim::MsgId msg) {
  Frame f;
  f.kind = kind;
  f.dir = s.is_sender ? sim::Dir::kSenderToReceiver
                      : sim::Dir::kReceiverToSender;
  f.session = s.id;
  f.msg = msg;
  const auto bytes = encode(f);
  transport_->send(bytes);  // shed == lost; the protocol retransmits
  ++s.frames_out;
  n_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (kind == FrameKind::kFin) {
    n_.fins_sent.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.last_data_frame = bytes;
  }
  if (s.is_sender) {
    ++s.inflight;
    if (s.pending_sends.size() < kMaxPendingSends) {
      s.pending_sends.push_back(std::chrono::steady_clock::now());
    }
  }
  if (cfg_.probe != nullptr) cfg_.probe->on_frame_sent(s.id, f);
}

void SessionMux::finalize(Session& s, SessionState state) {
  s.state = state;
  switch (state) {
    case SessionState::kCompleted:
      n_.completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionState::kSafetyViolation:
      n_.violated.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionState::kEvicted:
      n_.evicted.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionState::kActive:
      break;
  }
  terminal_.fetch_add(1, std::memory_order_release);
  if (cfg_.probe != nullptr) cfg_.probe->on_session_state(s.id, state);
}

NetStats SessionMux::stats() const {
  NetStats out;
  out.frames_sent = n_.frames_sent.load(std::memory_order_relaxed);
  out.frames_received = n_.frames_received.load(std::memory_order_relaxed);
  out.frames_rejected = n_.frames_rejected.load(std::memory_order_relaxed);
  out.frames_unknown_session =
      n_.frames_unknown.load(std::memory_order_relaxed);
  out.frames_shed = n_.frames_shed.load(std::memory_order_relaxed);
  out.fins_sent = n_.fins_sent.load(std::memory_order_relaxed);
  out.items_done = n_.items_done.load(std::memory_order_relaxed);
  out.sessions_completed = n_.completed.load(std::memory_order_relaxed);
  out.sessions_violated = n_.violated.load(std::memory_order_relaxed);
  out.sessions_evicted = n_.evicted.load(std::memory_order_relaxed);
  return out;
}

std::vector<SessionReport> SessionMux::reports() const {
  STPX_EXPECT(!started_ || stopped_,
              "SessionMux: reports() while workers are live");
  std::vector<SessionReport> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    SessionReport r;
    r.id = s->id;
    r.is_sender = s->is_sender;
    r.state = s->state;
    r.endpoint = s->endpoint->name();
    r.items = s->endpoint->items_done();
    r.frames_in = s->frames_in;
    r.frames_out = s->frames_out;
    r.ack_rtt_us = s->ack_rtt_us;
    out.push_back(std::move(r));
  }
  return out;
}

void SessionMux::publish_metrics(obs::MetricsRegistry& reg) const {
  const NetStats st = stats();
  reg.counter("net.frames.sent").inc(st.frames_sent);
  reg.counter("net.frames.received").inc(st.frames_received);
  reg.counter("net.frames.rejected").inc(st.frames_rejected);
  reg.counter("net.frames.unknown_session").inc(st.frames_unknown_session);
  reg.counter("net.frames.shed").inc(st.frames_shed);
  reg.counter("net.fins.sent").inc(st.fins_sent);
  reg.counter("net.items.done").inc(st.items_done);
  reg.gauge("net.sessions.active")
      .set(static_cast<std::int64_t>(active_sessions()));
  auto& rtt = reg.histogram("net.ack_rtt_us", obs::pow2_bounds(24));
  for (const auto& s : sessions_) {
    reg.counter(std::string("net.verdict.") + to_cstr(s->state)).inc();
    for (const std::uint64_t sample : s->ack_rtt_us) rtt.observe(sample);
  }
}

}  // namespace stpx::net
