#include "knowledge/explorer.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "sim/trace.hpp"
#include "util/expect.hpp"

namespace stpx::knowledge {

using sim::Action;
using sim::ActionKind;
using sim::Dir;

namespace {

/// Distinct S->R messages sent so far, read off the sender's history.
std::vector<sim::MsgId> distinct_sends(const sim::LocalHistory& s_hist) {
  std::set<sim::MsgId> seen;
  for (const sim::LocalEvent& ev : s_hist) {
    if (ev.kind == sim::LocalEvent::Kind::kStep && ev.sent >= 0) {
      seen.insert(ev.sent);
    }
  }
  return {seen.begin(), seen.end()};
}

/// Merge key: deterministic protocols + history-determined channels mean a
/// global state is (input, S history, R history).
std::string state_key(std::size_t input_index, const sim::Engine& e) {
  return std::to_string(input_index) + '|' +
         sim::history_key(e.sender_history()) + '|' +
         sim::history_key(e.receiver_history());
}

/// All actions applicable at the current state of `e`.
std::vector<Action> legal_actions(const sim::Engine& e) {
  std::vector<Action> out;
  out.push_back({ActionKind::kSenderStep, -1});
  out.push_back({ActionKind::kReceiverStep, -1});
  for (sim::MsgId m : e.channel().deliverable(Dir::kSenderToReceiver)) {
    out.push_back({ActionKind::kDeliverToReceiver, m});
  }
  for (sim::MsgId m : e.channel().deliverable(Dir::kReceiverToSender)) {
    out.push_back({ActionKind::kDeliverToSender, m});
  }
  return out;
}

}  // namespace

Exploration explore(const stp::SystemSpec& spec, const seq::Family& family,
                    const ExploreConfig& config) {
  Exploration ex;
  ex.family = family;

  stp::SystemSpec local = spec;
  local.engine.record_histories = true;
  local.engine.stop_when_complete = false;
  // The explorer drives actions itself; give the engine ample headroom.
  local.engine.max_steps = config.max_depth + 1;

  struct Node {
    std::unique_ptr<sim::Engine> engine;
    std::size_t input_index;
    std::uint64_t depth;
  };

  std::deque<Node> frontier;
  std::set<std::string> visited;

  auto record = [&ex](const Node& node) {
    ExploredPoint p;
    p.input_index = node.input_index;
    p.depth = node.depth;
    p.output = node.engine->output();
    p.r_key = sim::history_key(node.engine->receiver_history());
    p.s_key = sim::history_key(node.engine->sender_history());
    p.sent_to_receiver = distinct_sends(node.engine->sender_history());
    for (sim::MsgId m :
         node.engine->channel().deliverable(Dir::kSenderToReceiver)) {
      p.deliverable_r.emplace_back(
          m, node.engine->channel().copies(Dir::kSenderToReceiver, m));
    }
    p.safety_ok = node.engine->safety_ok();
    ex.by_r_history[p.r_key].push_back(ex.points.size());
    ex.by_s_history[p.s_key].push_back(ex.points.size());
    ex.points.push_back(std::move(p));
  };

  for (std::size_t idx = 0; idx < family.members.size(); ++idx) {
    auto engine = std::make_unique<sim::Engine>(stp::make_engine(local, 0));
    engine->begin(family.members[idx]);
    Node node{std::move(engine), idx, 0};
    const std::string key = state_key(idx, *node.engine);
    if (visited.insert(key).second) {
      record(node);
      frontier.push_back(std::move(node));
    }
  }

  while (!frontier.empty()) {
    if (ex.points.size() >= config.max_points) {
      ex.truncated = true;
      break;
    }
    Node node = std::move(frontier.front());
    frontier.pop_front();
    if (node.depth >= config.max_depth) {
      ex.truncated = true;  // unexplored successors exist past the horizon
      continue;
    }
    for (const Action& a : legal_actions(*node.engine)) {
      auto child = node.engine->clone();
      child->apply(a);
      const std::string key = state_key(node.input_index, *child);
      if (!visited.insert(key).second) continue;
      Node next{std::move(child), node.input_index, node.depth + 1};
      record(next);
      if (ex.points.size() >= config.max_points) {
        ex.truncated = true;
        break;
      }
      frontier.push_back(std::move(next));
    }
  }
  if (!frontier.empty()) ex.truncated = true;

  return ex;
}

ExhaustiveVerdict exhaustive_safety(const stp::SystemSpec& spec,
                                    const seq::Family& family,
                                    const ExploreConfig& config) {
  const Exploration ex = explore(spec, family, config);
  ExhaustiveVerdict verdict;
  verdict.points_checked = ex.points.size();
  verdict.exhausted = !ex.truncated;
  for (const ExploredPoint& p : ex.points) {
    if (!p.safety_ok) {
      verdict.violation_found = true;
      verdict.input_index = p.input_index;
      verdict.violating_output = p.output;
      break;
    }
  }
  return verdict;
}

namespace {

/// Message ids a process has received, read off its history.
std::set<sim::MsgId> distinct_receipts(const sim::LocalHistory& hist) {
  std::set<sim::MsgId> seen;
  for (const sim::LocalEvent& ev : hist) {
    if (ev.kind == sim::LocalEvent::Kind::kRecv) seen.insert(ev.received);
  }
  return seen;
}

/// Bounded information-quiescence check (see exhaustive_deadlock's doc).
/// Probes are bounded at 64 process steps; receivers are assumed
/// insensitive to duplicate deliveries of already-received ids (true of
/// every receiver in this repository — they all dedupe or re-ack
/// idempotently).
bool information_quiescent(const sim::Engine& e) {
  constexpr int kProbeSteps = 64;

  // 1. Every deliverable message must already have been received once by
  // its addressee — otherwise delivering it is new information.
  const auto r_seen = distinct_receipts(e.receiver_history());
  for (sim::MsgId m : e.channel().deliverable(Dir::kSenderToReceiver)) {
    if (!r_seen.count(m)) return false;
  }
  const auto s_seen = distinct_receipts(e.sender_history());
  for (sim::MsgId m : e.channel().deliverable(Dir::kReceiverToSender)) {
    if (!s_seen.count(m)) return false;
  }

  // 2. Probe the sender: can it ever emit a message id it has not already
  // sent (timers included, up to the probe bound)?
  {
    auto probe = e.clone();
    std::set<sim::MsgId> sent;
    for (const sim::LocalEvent& ev : probe->sender_history()) {
      if (ev.kind == sim::LocalEvent::Kind::kStep && ev.sent >= 0) {
        sent.insert(ev.sent);
      }
    }
    for (int i = 0; i < kProbeSteps; ++i) {
      probe->apply(Action{ActionKind::kSenderStep, -1});
      const sim::LocalEvent& last = probe->sender_history().back();
      if (last.sent >= 0 && !sent.count(last.sent)) return false;
    }
  }

  // 3. Probe the receiver: left alone, does it ever write or say anything
  // new?
  {
    auto probe = e.clone();
    std::set<sim::MsgId> sent;
    for (const sim::LocalEvent& ev : probe->receiver_history()) {
      if (ev.kind == sim::LocalEvent::Kind::kStep && ev.sent >= 0) {
        sent.insert(ev.sent);
      }
    }
    const std::size_t writes_before = probe->output().size();
    for (int i = 0; i < kProbeSteps; ++i) {
      probe->apply(Action{ActionKind::kReceiverStep, -1});
      if (probe->output().size() != writes_before) return false;
      const sim::LocalEvent& last = probe->receiver_history().back();
      if (last.sent >= 0 && !sent.count(last.sent)) return false;
    }
  }
  return true;
}

}  // namespace

DeadlockVerdict exhaustive_deadlock(const stp::SystemSpec& spec,
                                    const seq::Family& family,
                                    const ExploreConfig& config) {
  // A fresh BFS (rather than reusing explore()) because quiescence needs
  // live engines to probe.
  stp::SystemSpec local = spec;
  local.engine.record_histories = true;
  local.engine.stop_when_complete = false;
  local.engine.max_steps = config.max_depth + 128;  // probe headroom

  struct Node {
    std::unique_ptr<sim::Engine> engine;
    std::size_t input_index;
    std::uint64_t depth;
  };

  DeadlockVerdict verdict;
  verdict.exhausted = true;
  std::deque<Node> frontier;
  std::set<std::string> visited;

  for (std::size_t idx = 0; idx < family.members.size(); ++idx) {
    auto engine = std::make_unique<sim::Engine>(stp::make_engine(local, 0));
    engine->begin(family.members[idx]);
    const std::string key = state_key(idx, *engine);
    if (visited.insert(key).second) {
      frontier.push_back({std::move(engine), idx, 0});
    }
  }

  while (!frontier.empty()) {
    Node node = std::move(frontier.front());
    frontier.pop_front();
    if (++verdict.points_checked > config.max_points) {
      verdict.exhausted = false;
      break;
    }
    if (!node.engine->completed() &&
        information_quiescent(*node.engine)) {
      verdict.deadlock_found = true;
      verdict.input_index = node.input_index;
      verdict.stuck_output = node.engine->output();
      return verdict;
    }
    if (node.depth >= config.max_depth) {
      verdict.exhausted = false;
      continue;
    }
    for (const Action& a : legal_actions(*node.engine)) {
      auto child = node.engine->clone();
      child->apply(a);
      const std::string key = state_key(node.input_index, *child);
      if (!visited.insert(key).second) continue;
      frontier.push_back({std::move(child), node.input_index,
                          node.depth + 1});
    }
  }
  return verdict;
}

std::optional<seq::DataItem> receiver_knows_item(const Exploration& ex,
                                                 const ExploredPoint& point,
                                                 std::size_t i) {
  const auto it = ex.by_r_history.find(point.r_key);
  STPX_EXPECT(it != ex.by_r_history.end(),
              "receiver_knows_item: point not from this exploration");
  std::optional<seq::DataItem> value;
  for (std::size_t idx : it->second) {
    const seq::Sequence& x =
        ex.family.members[ex.points[idx].input_index];
    if (i >= x.size()) return std::nullopt;  // some twin lacks item i
    if (!value) {
      value = x[i];
    } else if (*value != x[i]) {
      return std::nullopt;  // twins disagree: R does not know
    }
  }
  return value;
}

std::size_t receiver_known_prefix(const Exploration& ex,
                                  const ExploredPoint& point) {
  std::size_t known = 0;
  while (receiver_knows_item(ex, point, known).has_value()) ++known;
  return known;
}

std::size_t sender_known_written(const Exploration& ex,
                                 const ExploredPoint& point) {
  const auto it = ex.by_s_history.find(point.s_key);
  STPX_EXPECT(it != ex.by_s_history.end(),
              "sender_known_written: point not from this exploration");
  std::size_t known = SIZE_MAX;
  for (std::size_t idx : it->second) {
    known = std::min(known, ex.points[idx].output.size());
  }
  return known == SIZE_MAX ? 0 : known;
}

bool sender_knows_receiver_knows(const Exploration& ex,
                                 const ExploredPoint& point, std::size_t i) {
  const auto it = ex.by_s_history.find(point.s_key);
  STPX_EXPECT(it != ex.by_s_history.end(),
              "sender_knows_receiver_knows: point not from this exploration");
  for (std::size_t idx : it->second) {
    if (receiver_known_prefix(ex, ex.points[idx]) < i + 1) return false;
  }
  return true;
}

PointPred knows(Process p, PointPred phi) {
  return [p, phi = std::move(phi)](const Exploration& ex,
                                   const ExploredPoint& point) {
    const auto& classes =
        p == Process::kReceiver ? ex.by_r_history : ex.by_s_history;
    const std::string& key =
        p == Process::kReceiver ? point.r_key : point.s_key;
    const auto it = classes.find(key);
    STPX_EXPECT(it != classes.end(),
                "knows: point not from this exploration");
    for (std::size_t idx : it->second) {
      if (!phi(ex, ex.points[idx])) return false;
    }
    return true;
  };
}

PointPred fact_item_is(std::size_t i, seq::DataItem d) {
  return [i, d](const Exploration& ex, const ExploredPoint& point) {
    const seq::Sequence& x = ex.family.members[point.input_index];
    return i < x.size() && x[i] == d;
  };
}

PointPred fact_written_at_least(std::size_t n) {
  return [n](const Exploration&, const ExploredPoint& point) {
    return point.output.size() >= n;
  };
}

std::size_t knowledge_chain_depth(const Exploration& ex,
                                  const ExploredPoint& point, std::size_t i,
                                  std::size_t max_depth) {
  const seq::Sequence& x = ex.family.members[point.input_index];
  if (i >= x.size()) return 0;
  // The base fact is x_i = (its value in this run); rungs alternate R, S.
  PointPred rung = fact_item_is(i, x[i]);
  std::size_t depth = 0;
  while (depth < max_depth) {
    rung = knows(depth % 2 == 0 ? Process::kReceiver : Process::kSender,
                 std::move(rung));
    if (!rung(ex, point)) return depth;
    ++depth;
  }
  return depth;
}

std::vector<std::optional<std::uint64_t>> learn_times(
    const Exploration& ex, const sim::RunResult& run) {
  STPX_EXPECT(!run.trace.empty() || run.stats.steps == 0,
              "learn_times: run must be recorded with record_trace");
  std::vector<std::optional<std::uint64_t>> times(run.input.size(),
                                                  std::nullopt);
  // Replay: maintain the receiver-history prefix step by step and query the
  // ~_R class at each point.
  sim::LocalHistory r_hist;
  std::size_t best_known = 0;

  auto note_knowledge = [&](std::uint64_t step) -> bool {
    const auto it = ex.by_r_history.find(sim::history_key(r_hist));
    if (it == ex.by_r_history.end()) return false;  // past the horizon
    const ExploredPoint& rep = ex.points[it->second.front()];
    const std::size_t known = receiver_known_prefix(ex, rep);
    for (std::size_t i = best_known; i < known && i < times.size(); ++i) {
      times[i] = step;
    }
    best_known = std::max(best_known, known);
    return true;
  };

  if (!note_knowledge(0)) return times;
  for (const sim::TraceEvent& ev : run.trace) {
    switch (ev.action.kind) {
      case ActionKind::kReceiverStep: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kStep;
        le.sent = ev.did_send ? ev.sent : -1;
        le.writes = ev.writes;
        r_hist.push_back(std::move(le));
        break;
      }
      case ActionKind::kDeliverToReceiver: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kRecv;
        le.received = ev.action.msg;
        r_hist.push_back(std::move(le));
        break;
      }
      default:
        continue;  // receiver-invisible actions cannot change its knowledge
    }
    if (!note_knowledge(ev.step + 1)) break;
  }
  return times;
}

namespace {

/// Receiver-invisible steps allowed between two consecutive matched target
/// events.  The search only needs enough slack to *enable* the next event
/// (a few sender steps and ack deliveries); it never has to reproduce the
/// original run's idle time, so a small constant suffices and keeps the
/// incompatible-input searches from wandering.
constexpr std::uint64_t kGapSlack = 48;

/// Can a run of `x` reach a point with receiver history exactly `target`?
/// Depth-first with the receiver-visible action tried first, so witnesses
/// for compatible inputs are found in roughly |target| steps.
bool input_reaches_view(const stp::SystemSpec& spec, const seq::Sequence& x,
                        const sim::LocalHistory& target,
                        std::uint64_t max_steps, std::size_t max_states,
                        bool& exhaustive) {
  stp::SystemSpec local = spec;
  local.engine.record_histories = true;
  local.engine.stop_when_complete = false;
  local.engine.max_steps = max_steps + 1;

  struct Node {
    std::unique_ptr<sim::Engine> engine;
    std::size_t r_pos;       // events of `target` already matched
    std::uint64_t gap;       // invisible steps since the last match
  };

  auto root = std::make_unique<sim::Engine>(stp::make_engine(local, 0));
  root->begin(x);
  if (target.empty()) return true;

  std::vector<Node> stack;
  std::set<std::string> visited;
  std::size_t states = 0;
  stack.push_back({std::move(root), 0, 0});

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    if (++states > max_states || node.engine->steps() >= max_steps) {
      exhaustive = false;
      continue;
    }

    // Build the candidate actions; the matching receiver-visible event is
    // pushed LAST so the depth-first pop tries it first.
    std::vector<Action> actions;
    if (node.gap < kGapSlack) {
      actions.push_back({ActionKind::kSenderStep, -1});
      for (sim::MsgId ack :
           node.engine->channel().deliverable(Dir::kReceiverToSender)) {
        actions.push_back({ActionKind::kDeliverToSender, ack});
      }
    } else {
      exhaustive = false;  // gap pruning makes the verdict approximate
    }
    const sim::LocalEvent& want = target[node.r_pos];
    if (want.kind == sim::LocalEvent::Kind::kStep) {
      actions.push_back({ActionKind::kReceiverStep, -1});
    } else if (node.engine->channel().copies(Dir::kSenderToReceiver,
                                             want.received) > 0) {
      actions.push_back({ActionKind::kDeliverToReceiver, want.received});
    }

    for (const Action& a : actions) {
      auto child = node.engine->clone();
      child->apply(a);
      std::size_t r_pos = node.r_pos;
      std::uint64_t gap = node.gap + 1;
      const bool receiver_visible = a.kind == ActionKind::kReceiverStep ||
                                    a.kind == ActionKind::kDeliverToReceiver;
      if (receiver_visible) {
        // The receiver is deterministic, but verify the produced event
        // really matches the target (defensive against protocol surprises,
        // e.g. a step that also wrote items the target lacks).
        if (child->receiver_history().back() != want) continue;
        ++r_pos;
        gap = 0;
        if (r_pos == target.size()) return true;
      }
      const std::string key =
          sim::history_key(child->sender_history()) + '#' +
          std::to_string(r_pos);
      if (!visited.insert(key).second) continue;
      stack.push_back({std::move(child), r_pos, gap});
    }
  }
  return false;
}

}  // namespace

CompatibilityResult compatible_inputs(const stp::SystemSpec& spec,
                                      const seq::Family& family,
                                      const sim::LocalHistory& target,
                                      std::uint64_t max_steps,
                                      std::size_t max_states) {
  CompatibilityResult out;
  out.compatible.resize(family.members.size(), false);
  for (std::size_t i = 0; i < family.members.size(); ++i) {
    bool exhaustive = true;
    out.compatible[i] = input_reaches_view(
        spec, family.members[i], target, max_steps, max_states, exhaustive);
    out.exhaustive = out.exhaustive && exhaustive;
  }
  return out;
}

std::vector<std::optional<std::uint64_t>> learn_times_targeted(
    const stp::SystemSpec& spec, const seq::Family& family,
    const sim::RunResult& run, std::uint64_t max_steps,
    std::size_t max_states) {
  std::vector<std::optional<std::uint64_t>> times(run.input.size(),
                                                  std::nullopt);
  sim::LocalHistory r_hist;
  std::size_t best_known = 0;
  // Compatibility is monotone: an input ruled out by a view prefix stays
  // ruled out by every extension, so dead inputs are never re-searched.
  std::vector<bool> alive(family.members.size(), true);

  auto known_prefix_now = [&]() -> std::size_t {
    for (std::size_t i = 0; i < family.members.size(); ++i) {
      if (!alive[i]) continue;
      bool exhaustive = true;
      alive[i] = input_reaches_view(spec, family.members[i], r_hist,
                                    max_steps, max_states, exhaustive);
    }
    std::size_t known = 0;
    for (;; ++known) {
      std::optional<seq::DataItem> agreed;
      bool all_agree = true;
      bool any = false;
      for (std::size_t i = 0; i < family.members.size(); ++i) {
        if (!alive[i]) continue;
        any = true;
        const seq::Sequence& x = family.members[i];
        if (known >= x.size()) {
          all_agree = false;
          break;
        }
        if (!agreed) {
          agreed = x[known];
        } else if (*agreed != x[known]) {
          all_agree = false;
          break;
        }
      }
      if (!any || !all_agree) break;
    }
    return known;
  };

  auto note = [&](std::uint64_t step) {
    const std::size_t known = known_prefix_now();
    for (std::size_t i = best_known; i < known && i < times.size(); ++i) {
      times[i] = step;
    }
    best_known = std::max(best_known, known);
  };

  note(0);
  for (const sim::TraceEvent& ev : run.trace) {
    if (best_known >= times.size()) break;
    bool is_receive = false;
    switch (ev.action.kind) {
      case ActionKind::kReceiverStep: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kStep;
        le.sent = ev.did_send ? ev.sent : -1;
        le.writes = ev.writes;
        r_hist.push_back(std::move(le));
        break;
      }
      case ActionKind::kDeliverToReceiver: {
        sim::LocalEvent le;
        le.kind = sim::LocalEvent::Kind::kRecv;
        le.received = ev.action.msg;
        r_hist.push_back(std::move(le));
        is_receive = true;
        break;
      }
      default:
        continue;
    }
    // R's own steps are deterministic — every input compatible before the
    // step can mirror it, so knowledge only changes on receives.
    if (is_receive) note(ev.step + 1);
  }
  return times;
}

namespace {

/// Shared engine behind the two decisive-tuple finders: scan each ~_R class
/// for points over distinct inputs whose per-point qualifying message sets
/// share at least `min_messages` messages.
template <typename QualifyingSet>
std::optional<DecisiveTuple> find_decisive(const Exploration& ex,
                                           std::size_t min_points,
                                           std::size_t min_messages,
                                           QualifyingSet qualifying) {
  std::optional<DecisiveTuple> best;
  for (const auto& [key, indices] : ex.by_r_history) {
    (void)key;
    // Per input, the class may contain many points (different sender/
    // channel progress under the same receiver view); Definition 1/3 lets
    // us pick any one, so pick the point with the largest qualifying set —
    // for the protocols here these sets grow monotonically with sender
    // progress, so max-size maximizes the final intersection.
    std::map<std::size_t, std::size_t> by_input;
    for (std::size_t idx : indices) {
      auto [it, inserted] = by_input.emplace(ex.points[idx].input_index, idx);
      if (!inserted &&
          qualifying(ex.points[idx]).size() >
              qualifying(ex.points[it->second]).size()) {
        it->second = idx;
      }
    }
    if (by_input.size() < min_points) continue;
    std::vector<sim::MsgId> common;
    bool first = true;
    for (const auto& [input, idx] : by_input) {
      (void)input;
      const std::vector<sim::MsgId> mine = qualifying(ex.points[idx]);
      if (first) {
        common = mine;
        first = false;
      } else {
        std::vector<sim::MsgId> merged;
        std::set_intersection(common.begin(), common.end(), mine.begin(),
                              mine.end(), std::back_inserter(merged));
        common = std::move(merged);
      }
      if (common.size() < min_messages) break;
    }
    if (common.size() < min_messages) continue;
    DecisiveTuple tuple;
    for (const auto& [input, idx] : by_input) {
      (void)input;
      tuple.point_indices.push_back(idx);
    }
    tuple.messages = common;
    if (!best || tuple.messages.size() > best->messages.size() ||
        (tuple.messages.size() == best->messages.size() &&
         tuple.point_indices.size() > best->point_indices.size())) {
      best = std::move(tuple);
    }
  }
  return best;
}

}  // namespace

std::optional<DecisiveTuple> find_dup_decisive(const Exploration& ex,
                                               std::size_t min_points,
                                               std::size_t min_messages) {
  return find_decisive(ex, min_points, min_messages,
                       [](const ExploredPoint& p) {
                         return p.sent_to_receiver;  // already sorted
                       });
}

std::optional<DecisiveTuple> find_del_decisive(const Exploration& ex,
                                               std::size_t min_points,
                                               std::size_t min_messages,
                                               std::uint64_t copies) {
  return find_decisive(ex, min_points, min_messages,
                       [copies](const ExploredPoint& p) {
                         std::vector<sim::MsgId> out;
                         for (const auto& [msg, count] : p.deliverable_r) {
                           if (count >= copies) out.push_back(msg);
                         }
                         std::sort(out.begin(), out.end());
                         return out;
                       });
}

}  // namespace stpx::knowledge
