// The knowledge layer (paper §2.2–§2.4), made executable.
//
// A system is the set of runs of (P_S, P_R, channel) over a *family* 𝒳 of
// inputs.  We enumerate its reachable points by breadth-first exploration of
// every scheduler choice, for every input, up to a depth bound.  Because the
// protocols are deterministic functions of their complete local histories,
// a global state is fully determined by (input, sender history, receiver
// history); points with equal keys are merged, which keeps the tree an
// acyclic DAG of states rather than an exponential forest of schedules.
//
// On top of the exploration we evaluate the paper's epistemic vocabulary:
//   * ~_R  — two points are receiver-indistinguishable iff their receiver
//     histories are equal (complete history interpretation, §2.3);
//   * K_R(x_i = d) — holds at a point iff every explored point with the
//     same receiver history has x_i = d (true K_R up to the exploration
//     horizon; callers must treat "knows" as "knows within horizon");
//   * t_i — the first time along a concrete run at which R knows items
//     1..i (§2.4), recovered by replaying the run against the index;
//   * dup-decisive tuples (Definition 1) — sets of ≥k mutually
//     R-indistinguishable points over distinct inputs, all preceded by the
//     sending of a common message set M.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "stp/runner.hpp"

namespace stpx::knowledge {

struct ExploreConfig {
  std::uint64_t max_depth = 10;     // global steps from the initial state
  std::size_t max_points = 200000;  // hard cap on explored states
};

/// One reachable global state (merged over schedules).
struct ExploredPoint {
  std::size_t input_index = 0;  // which family member this run reads
  std::uint64_t depth = 0;      // minimal number of steps to reach it
  seq::Sequence output;         // Y at this point
  std::string r_key;            // receiver history key (the ~_R class id)
  std::string s_key;            // sender history key (the ~_S class id)
  std::vector<sim::MsgId> sent_to_receiver;  // distinct S->R msgs sent
  /// The paper's dlvrble_R vector at this point: (message, copies) pairs
  /// with copies > 0.  On a dup channel copies is 1 for anything ever sent.
  std::vector<std::pair<sim::MsgId, std::uint64_t>> deliverable_r;
  bool safety_ok = true;
};

struct Exploration {
  seq::Family family;
  std::vector<ExploredPoint> points;
  /// ~_R classes: receiver-history key -> indices into `points`.
  std::map<std::string, std::vector<std::size_t>> by_r_history;
  /// ~_S classes: sender-history key -> indices into `points`.
  std::map<std::string, std::vector<std::size_t>> by_s_history;
  bool truncated = false;  // hit max_points or max_depth with frontier left
};

/// Enumerate all reachable points of the system over `family`.
Exploration explore(const stp::SystemSpec& spec, const seq::Family& family,
                    const ExploreConfig& config);

/// K_R(x_i) at `point`: does R know the value of input item `i` (0-based)?
/// If yes, returns the value; if no (some ~_R-equivalent point disagrees or
/// lacks item i), returns nullopt.  Exact up to the exploration horizon.
std::optional<seq::DataItem> receiver_knows_item(const Exploration& ex,
                                                 const ExploredPoint& point,
                                                 std::size_t i);

/// Number of leading items R knows at `point` (the largest i such that
/// K_R(x_1) ∧ ... ∧ K_R(x_i) holds).
std::size_t receiver_known_prefix(const Exploration& ex,
                                  const ExploredPoint& point);

// ---- the epistemic hierarchy on the sender side --------------------------
//
// The paper evaluates K_R; the same machinery gives K_S and the *nested*
// modality K_S K_R — "the sender knows that the receiver knows" — which is
// exactly what an acknowledgement transports: after R receives x_i, K_R(x_i)
// holds; only after S receives the ack does K_S K_R(x_i) hold.  (It is the
// first two rungs of the common-knowledge ladder that unreliable channels
// famously cannot finish climbing.)

/// Largest n such that K_S(|Y| >= n): in every ~_S-equivalent point the
/// receiver has written at least n items.
std::size_t sender_known_written(const Exploration& ex,
                                 const ExploredPoint& point);

/// K_S K_R(x_i): in every ~_S-equivalent point, the receiver knows item i.
bool sender_knows_receiver_knows(const Exploration& ex,
                                 const ExploredPoint& point, std::size_t i);

// ---- arbitrary nesting ----------------------------------------------------

enum class Process { kSender, kReceiver };

/// A fact evaluated at a point of the exploration.
using PointPred =
    std::function<bool(const Exploration&, const ExploredPoint&)>;

/// The modal operator K_p φ as a predicate transformer: (K_p φ)(q) holds
/// iff φ holds at every point ~_p-indistinguishable from q.  Composable to
/// any depth: knows(S, knows(R, φ)), knows(R, knows(S, knows(R, φ))), ...
PointPred knows(Process p, PointPred phi);

/// The atom "x_i = d in this run" (for building nested facts about data).
PointPred fact_item_is(std::size_t i, seq::DataItem d);

/// The atom "R has written at least n items".
PointPred fact_written_at_least(std::size_t n);

/// Depth of the alternating knowledge chain about item i's value that holds
/// at `point`, starting from the receiver:
///   1 = K_R(x_i), 2 = K_S K_R(x_i), 3 = K_R K_S K_R(x_i), ...
/// capped at `max_depth` (each rung costs one more pass over the classes).
/// This is the ladder toward common knowledge that unreliable channels can
/// climb only one message at a time — and never finish.
std::size_t knowledge_chain_depth(const Exploration& ex,
                                  const ExploredPoint& point, std::size_t i,
                                  std::size_t max_depth);

/// The paper's t_i along a concrete run: replay `run` (which must have been
/// recorded with histories) against the exploration and return, for each i
/// in [1, |X|], the first step at which R knows items 1..i.  nullopt where
/// the run leaves the exploration horizon before learning.
std::vector<std::optional<std::uint64_t>> learn_times(
    const Exploration& ex, const sim::RunResult& run);

/// Exhaustive bounded-depth safety verification: enumerate EVERY schedule
/// (not a random sample) up to `max_depth` steps for every family member
/// and report any reachable safety violation.  Complements the randomized
/// sweeps in stp::sweep_family with small-model certainty.
struct ExhaustiveVerdict {
  bool violation_found = false;
  std::size_t input_index = 0;     // of the first violating point
  seq::Sequence violating_output;  // its Y
  std::size_t points_checked = 0;
  bool exhausted = false;  // explored every point within the horizon
};

ExhaustiveVerdict exhaustive_safety(const stp::SystemSpec& spec,
                                    const seq::Family& family,
                                    const ExploreConfig& config);

/// Exhaustive *information deadlock* detection — the liveness complement.
///
/// A point is information-quiescent when no action can produce anything the
/// receiver has not already absorbed: the sender's next step sends nothing
/// (or only re-sends ids already sent), and every deliverable message in
/// either direction has been received by its addressee at least once.  From
/// such a point the receiver's knowledge can never grow (redeliveries of
/// known ids do not change any protocol state), so a quiescent point with
/// an incomplete output is a certified liveness violation — the operational
/// closure of a decisive stall (Lemma 1's conclusion, machine-checked).
struct DeadlockVerdict {
  bool deadlock_found = false;
  std::size_t input_index = 0;
  seq::Sequence stuck_output;  // Y at the deadlocked point
  std::size_t points_checked = 0;
  bool exhausted = false;
};

DeadlockVerdict exhaustive_deadlock(const stp::SystemSpec& spec,
                                    const seq::Family& family,
                                    const ExploreConfig& config);

/// Targeted compatibility: can a run over family member `i` reach a point
/// whose receiver history equals `target`?  This evaluates K_R at one
/// specific ~_R class without enumerating the whole run tree: the receiver
/// is deterministic given its history, so branching is confined to the
/// sender's side (its steps and ack deliveries), which the search dedups on
/// (sender history, receiver position).
struct CompatibilityResult {
  std::vector<bool> compatible;  // per family member
  bool exhaustive = true;        // false if any search hit its budget
};

CompatibilityResult compatible_inputs(const stp::SystemSpec& spec,
                                      const seq::Family& family,
                                      const sim::LocalHistory& target,
                                      std::uint64_t max_steps,
                                      std::size_t max_states);

/// The paper's t_i along a concrete run, computed with the targeted search
/// (tractable for runs far deeper than explore() can reach).  For each i in
/// [1, |X|]: the first step at which every input compatible with R's view
/// agrees on items 1..i.  nullopt where the budget was exhausted before
/// knowledge was established.
std::vector<std::optional<std::uint64_t>> learn_times_targeted(
    const stp::SystemSpec& spec, const seq::Family& family,
    const sim::RunResult& run, std::uint64_t max_steps,
    std::size_t max_states);

/// A dup-decisive tuple (Definition 1): point indices with mutually distinct
/// inputs, pairwise ~_R, and a common set M of messages sent before each.
struct DecisiveTuple {
  std::vector<std::size_t> point_indices;
  std::vector<sim::MsgId> messages;  // M
};

/// Find a dup-decisive tuple with at least `min_points` points over distinct
/// inputs and |M| >= min_messages.  Returns the one maximizing |M| then
/// point count.
std::optional<DecisiveTuple> find_dup_decisive(const Exploration& ex,
                                               std::size_t min_points,
                                               std::size_t min_messages);

/// Find a del-decisive tuple (Definition 3): like the dup version, but each
/// message of M must have at least `copies` undelivered copies in flight at
/// every point of the tuple (the counter n that the deletion-case induction
/// spends at rate c per extension).
std::optional<DecisiveTuple> find_del_decisive(const Exploration& ex,
                                               std::size_t min_points,
                                               std::size_t min_messages,
                                               std::uint64_t copies);

}  // namespace stpx::knowledge
