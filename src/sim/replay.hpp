// Run <-> script conversion: extract the action script of a recorded run so
// it can be replayed deterministically (through ScriptedScheduler or direct
// Engine::apply), serialized for bug reports, or minimized by hand.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace stpx::sim {

/// The action sequence of a recorded trace.
std::vector<Action> script_from_trace(const std::vector<TraceEvent>& trace);

/// One-line-per-action text form, e.g. "S\nR\nD>R 3\nD>S 0\n".
std::string script_to_text(const std::vector<Action>& script);

/// Inverse of script_to_text; throws ContractError on malformed input.
std::vector<Action> script_from_text(const std::string& text);

}  // namespace stpx::sim
