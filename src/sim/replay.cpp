#include "sim/replay.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace stpx::sim {

std::vector<Action> script_from_trace(const std::vector<TraceEvent>& trace) {
  std::vector<Action> script;
  script.reserve(trace.size());
  for (const TraceEvent& ev : trace) script.push_back(ev.action);
  return script;
}

std::string script_to_text(const std::vector<Action>& script) {
  std::ostringstream os;
  for (const Action& a : script) {
    switch (a.kind) {
      case ActionKind::kSenderStep:
        os << "S\n";
        break;
      case ActionKind::kReceiverStep:
        os << "R\n";
        break;
      case ActionKind::kDeliverToReceiver:
        os << "D>R " << a.msg << "\n";
        break;
      case ActionKind::kDeliverToSender:
        os << "D>S " << a.msg << "\n";
        break;
    }
  }
  return os.str();
}

std::vector<Action> script_from_text(const std::string& text) {
  std::vector<Action> script;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string op;
    ls >> op;
    Action a;
    if (op == "S") {
      a.kind = ActionKind::kSenderStep;
    } else if (op == "R") {
      a.kind = ActionKind::kReceiverStep;
    } else if (op == "D>R" || op == "D>S") {
      a.kind = op == "D>R" ? ActionKind::kDeliverToReceiver
                           : ActionKind::kDeliverToSender;
      MsgId msg = -1;
      ls >> msg;
      STPX_EXPECT(!ls.fail(),
                  "script_from_text: missing message id at line " +
                      std::to_string(line_no));
      a.msg = msg;
    } else {
      STPX_EXPECT(false, "script_from_text: unknown op '" + op +
                             "' at line " + std::to_string(line_no));
    }
    script.push_back(a);
  }
  return script;
}

}  // namespace stpx::sim
