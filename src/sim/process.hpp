// Protocol interfaces: the sender protocol P_S and receiver protocol P_R.
//
// Protocols are deterministic state machines driven by the engine.  The
// sender receives the whole input sequence up front — this deliberately
// grants the *non-uniform* power the paper's impossibility theorems allow
// ("P_{S,X} can have all of X built into its code"); uniform protocols
// simply don't exploit it.  Protocols must be cloneable so the knowledge
// explorer and attack synthesizer can branch runs.
#pragma once

#include <memory>
#include <string>

#include "sim/types.hpp"

namespace stpx::sim {

/// Sentinel for alphabet_size(): the protocol uses unbounded headers (a
/// baseline outside the paper's finite-alphabet regime).
inline constexpr int kUnboundedAlphabet = -1;

class ISender {
 public:
  virtual ~ISender() = default;

  /// Begin a run with input sequence `x`.  Must fully reset prior state.
  virtual void start(const seq::Sequence& x) = 0;

  /// Called when the scheduler grants the sender a step.
  virtual SenderEffect on_step() = 0;

  /// Called when the channel delivers message `msg` (from M^R) to the sender.
  virtual void on_deliver(MsgId msg) = 0;

  /// |M^S|, or kUnboundedAlphabet for unbounded-header baselines.
  virtual int alphabet_size() const = 0;

  virtual std::unique_ptr<ISender> clone() const = 0;
  virtual std::string name() const = 0;
};

class IReceiver {
 public:
  virtual ~IReceiver() = default;

  /// Begin a run.  The receiver learns nothing about X here (Property 1a:
  /// all initial receiver states are equal).
  virtual void start() = 0;

  /// Called when the scheduler grants the receiver a step.
  virtual ReceiverEffect on_step() = 0;

  /// Called when the channel delivers message `msg` (from M^S).
  virtual void on_deliver(MsgId msg) = 0;

  /// |M^R|, or kUnboundedAlphabet for unbounded-header baselines.
  virtual int alphabet_size() const = 0;

  virtual std::unique_ptr<IReceiver> clone() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace stpx::sim
