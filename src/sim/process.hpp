// Protocol interfaces: the sender protocol P_S and receiver protocol P_R.
//
// Protocols are deterministic state machines driven by the engine.  The
// sender receives the whole input sequence up front — this deliberately
// grants the *non-uniform* power the paper's impossibility theorems allow
// ("P_{S,X} can have all of X built into its code"); uniform protocols
// simply don't exploit it.  Protocols must be cloneable so the knowledge
// explorer and attack synthesizer can branch runs.
#pragma once

#include <memory>
#include <string>

#include "sim/types.hpp"

namespace stpx::sim {

/// Sentinel for alphabet_size(): the protocol uses unbounded headers (a
/// baseline outside the paper's finite-alphabet regime).
inline constexpr int kUnboundedAlphabet = -1;

class ISender {
 public:
  virtual ~ISender() = default;

  /// Begin a run with input sequence `x`.  Must fully reset prior state.
  virtual void start(const seq::Sequence& x) = 0;

  /// Called when the scheduler grants the sender a step.
  virtual SenderEffect on_step() = 0;

  /// Called when the channel delivers message `msg` (from M^R) to the sender.
  virtual void on_deliver(MsgId msg) = 0;

  /// |M^S|, or kUnboundedAlphabet for unbounded-header baselines.
  virtual int alphabet_size() const = 0;

  /// Serialize the durable fields (util::Blob text).  An empty string
  /// means the protocol declares no durable state; the engine then never
  /// appends a checkpoint for it.
  virtual std::string save_state() const { return {}; }

  /// Rehydrate from a checkpoint blob.  Called after start(), so a false
  /// return (no durable fields, or a malformed blob) leaves a clean cold
  /// start.  Implementations must validate before mutating.
  virtual bool restore_state(const std::string& blob) {
    (void)blob;
    return false;
  }

  virtual std::unique_ptr<ISender> clone() const = 0;
  virtual std::string name() const = 0;
};

class IReceiver {
 public:
  virtual ~IReceiver() = default;

  /// Begin a run.  The receiver learns nothing about X here (Property 1a:
  /// all initial receiver states are equal).
  virtual void start() = 0;

  /// Called when the scheduler grants the receiver a step.
  virtual ReceiverEffect on_step() = 0;

  /// Called when the channel delivers message `msg` (from M^S).
  virtual void on_deliver(MsgId msg) = 0;

  /// |M^R|, or kUnboundedAlphabet for unbounded-header baselines.
  virtual int alphabet_size() const = 0;

  /// Serialize the durable fields (util::Blob text).  Empty = the
  /// protocol declares no durable state.
  virtual std::string save_state() const { return {}; }

  /// Rehydrate from a checkpoint blob.  `tape` is the engine-owned output
  /// Y at restart time — ground truth that survives the crash.  A restored
  /// checkpoint may predate the newest writes (lost tail records), so
  /// implementations reconcile against the tape: writes the tape already
  /// holds are dropped from pending queues and cursors advance to
  /// tape.size().  Called after start(); false = cold start.
  virtual bool restore_state(const std::string& blob, const seq::Sequence& tape) {
    (void)blob;
    (void)tape;
    return false;
  }

  virtual std::unique_ptr<IReceiver> clone() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace stpx::sim
