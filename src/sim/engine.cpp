#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace stpx::sim {

namespace {

std::size_t dir_index(Dir d) { return static_cast<std::size_t>(d); }

/// Validate a message id against a finite alphabet (no-op for unbounded).
void check_alphabet(MsgId msg, int alphabet, const char* who) {
  if (alphabet == kUnboundedAlphabet) return;
  STPX_EXPECT(msg >= 0 && msg < alphabet,
              std::string(who) + " sent a message outside its alphabet");
}

}  // namespace

Engine::Engine(std::unique_ptr<ISender> sender,
               std::unique_ptr<IReceiver> receiver,
               std::unique_ptr<IChannel> channel,
               std::unique_ptr<IScheduler> scheduler, EngineConfig config)
    : sender_(std::move(sender)),
      receiver_(std::move(receiver)),
      channel_(std::move(channel)),
      scheduler_(std::move(scheduler)),
      config_(config) {
  STPX_EXPECT(sender_ && receiver_ && channel_ && scheduler_,
              "Engine: null component");
}

Engine::Engine(const Engine& other)
    : sender_(other.sender_->clone()),
      receiver_(other.receiver_->clone()),
      channel_(other.channel_->clone()),
      scheduler_(other.scheduler_->clone()),
      config_(other.config_),
      x_(other.x_),
      y_(other.y_),
      safety_ok_(other.safety_ok_),
      stalled_(other.stalled_),
      last_progress_step_(other.last_progress_step_),
      first_violation_step_(other.first_violation_step_),
      first_crash_step_(other.first_crash_step_),
      corruption_seen_(other.corruption_seen_),
      first_corruption_step_(other.first_corruption_step_),
      pre_corruption_len_(other.pre_corruption_len_),
      corrupt_prefix_c_(other.corrupt_prefix_c_),
      correct_prefix_(other.correct_prefix_),
      last_saved_{other.last_saved_[0], other.last_saved_[1]},
      stats_(other.stats_),
      trace_(other.trace_),
      receiver_hist_(other.receiver_hist_),
      sender_hist_(other.sender_hist_),
      begun_(other.begun_) {}

void Engine::begin(const seq::Sequence& x) {
  x_ = x;
  y_.clear();
  safety_ok_ = true;
  stalled_ = false;
  last_progress_step_ = 0;
  first_violation_step_ = 0;
  first_crash_step_.reset();
  corruption_seen_ = false;
  first_corruption_step_ = 0;
  pre_corruption_len_ = 0;
  corrupt_prefix_c_ = 0;
  correct_prefix_ = 0;
  last_saved_[0].clear();
  last_saved_[1].clear();
  stats_ = RunStats{};
  trace_.clear();
  receiver_hist_.clear();
  sender_hist_.clear();
  channel_->reset();
  scheduler_->reset();
  if (config_.sender_store) config_.sender_store->reset();
  if (config_.receiver_store) config_.receiver_store->reset();
  sender_->start(x);
  receiver_->start();
  begun_ = true;
  // Baseline checkpoints: a crash before any transition recovers the
  // initial state rather than falling back to a cold start.
  persist(Proc::kSender);
  persist(Proc::kReceiver);
  if (config_.probe) config_.probe->on_run_begin(x_.size());
}

SchedView Engine::view() const {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  SchedView v;
  v.step = stats_.steps;
  v.deliverable_to_receiver = channel_->deliverable(Dir::kSenderToReceiver);
  v.deliverable_to_sender = channel_->deliverable(Dir::kReceiverToSender);
  v.items_written = y_.size();
  v.items_total = x_.size();
  return v;
}

bool Engine::legal(const Action& a) const {
  switch (a.kind) {
    case ActionKind::kSenderStep:
    case ActionKind::kReceiverStep:
      return true;
    case ActionKind::kDeliverToReceiver:
      return channel_->copies(Dir::kSenderToReceiver, a.msg) > 0;
    case ActionKind::kDeliverToSender:
      return channel_->copies(Dir::kReceiverToSender, a.msg) > 0;
  }
  return false;
}

void Engine::note_send(Dir dir, MsgId msg) {
  channel_->send(dir, msg);
  ++stats_.sent[dir_index(dir)];
  if (config_.probe) config_.probe->on_send(stats_.steps, dir, msg);
}

void Engine::apply(const Action& a) {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  STPX_EXPECT(legal(a), "Engine: illegal action " + to_string(a));

  if (config_.probe) config_.probe->on_step(stats_.steps, a);

  TraceEvent ev;
  ev.step = stats_.steps;
  ev.action = a;

  switch (a.kind) {
    case ActionKind::kSenderStep: {
      SenderEffect eff = sender_->on_step();
      if (eff.send) {
        check_alphabet(*eff.send, sender_->alphabet_size(), "sender");
        note_send(Dir::kSenderToReceiver, *eff.send);
        ev.did_send = true;
        ev.sent = *eff.send;
      }
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kStep;
        le.sent = eff.send.value_or(-1);
        sender_hist_.push_back(std::move(le));
      }
      break;
    }
    case ActionKind::kReceiverStep: {
      ReceiverEffect eff = receiver_->on_step();
      if (eff.send) {
        check_alphabet(*eff.send, receiver_->alphabet_size(), "receiver");
        note_send(Dir::kReceiverToSender, *eff.send);
        ev.did_send = true;
        ev.sent = *eff.send;
      }
      for (seq::DataItem d : eff.writes) {
        const std::size_t pos = y_.size();
        y_.push_back(d);
        stats_.write_step.push_back(stats_.steps);
        last_progress_step_ = stats_.steps;
        if (config_.probe) config_.probe->on_write(stats_.steps, pos, d);
        if (correct_prefix_ == pos && pos < x_.size() && x_[pos] == d) {
          ++correct_prefix_;
        }
        // Online safety check: Y must stay a prefix of X.
        if (safety_ok_ && (pos >= x_.size() || x_[pos] != d)) {
          safety_ok_ = false;
          first_violation_step_ = stats_.steps;
        }
      }
      ev.writes = eff.writes;
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kStep;
        le.sent = eff.send.value_or(-1);
        le.writes = std::move(eff.writes);
        receiver_hist_.push_back(std::move(le));
      }
      break;
    }
    case ActionKind::kDeliverToReceiver: {
      channel_->deliver(Dir::kSenderToReceiver, a.msg);
      ++stats_.delivered[dir_index(Dir::kSenderToReceiver)];
      if (config_.probe) {
        config_.probe->on_deliver(stats_.steps, Dir::kSenderToReceiver, a.msg);
      }
      receiver_->on_deliver(a.msg);
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kRecv;
        le.received = a.msg;
        receiver_hist_.push_back(std::move(le));
      }
      break;
    }
    case ActionKind::kDeliverToSender: {
      channel_->deliver(Dir::kReceiverToSender, a.msg);
      ++stats_.delivered[dir_index(Dir::kReceiverToSender)];
      if (config_.probe) {
        config_.probe->on_deliver(stats_.steps, Dir::kReceiverToSender, a.msg);
      }
      sender_->on_deliver(a.msg);
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kRecv;
        le.received = a.msg;
        sender_hist_.push_back(std::move(le));
      }
      break;
    }
  }

  // Commit point: the acting process's durable state may have changed —
  // checkpoint it before the action's effects can be externalized further.
  persist(a.kind == ActionKind::kSenderStep ||
                  a.kind == ActionKind::kDeliverToSender
              ? Proc::kSender
              : Proc::kReceiver);

  if (config_.record_trace) trace_.push_back(std::move(ev));
  ++stats_.steps;
}

void Engine::persist(Proc who) {
  store::IStableStore* st = who == Proc::kSender ? config_.sender_store
                                                 : config_.receiver_store;
  if (!st) return;
  std::string s = who == Proc::kSender ? sender_->save_state()
                                       : receiver_->save_state();
  if (s.empty()) return;  // protocol declares no durable state
  std::string& last = last_saved_[static_cast<std::size_t>(who)];
  if (s == last) return;
  st->append(s);
  last = std::move(s);
  if (config_.compact_every > 0 && st->appends() % config_.compact_every == 0) {
    st->compact();
  }
}

void Engine::apply_store_fault(const StoreFaultRequest& rq) {
  store::IStableStore* st = rq.proc == Proc::kSender ? config_.sender_store
                                                     : config_.receiver_store;
  if (!st) return;
  switch (rq.kind) {
    case StoreFaultKind::kTornWrite: st->fault_torn_next_append(); break;
    case StoreFaultKind::kLoseTail: st->fault_lose_tail(rq.count); break;
    case StoreFaultKind::kCorruptRecord: st->fault_corrupt_record(); break;
    case StoreFaultKind::kStaleSnapshot: st->fault_stale_snapshot(); break;
  }
}

void Engine::rehydrate(Proc who) {
  store::IStableStore* st = who == Proc::kSender ? config_.sender_store
                                                 : config_.receiver_store;
  bool rehydrated = false;
  std::uint64_t replayed = 0;
  if (st) {
    const store::RecoveredState rec = st->recover();
    replayed = rec.records_replayed;
    stats_.records_replayed += rec.records_replayed;
    if (rec.found) {
      rehydrated = who == Proc::kSender
                       ? sender_->restore_state(rec.state)
                       : receiver_->restore_state(rec.state, y_);
    }
    if (rehydrated) ++stats_.recoveries;
    // Re-baseline against the restored (or cold) state; the store already
    // holds every durable transition, so nothing is re-appended here.
    last_saved_[static_cast<std::size_t>(who)] =
        who == Proc::kSender ? sender_->save_state() : receiver_->save_state();
  }
  if (config_.probe) {
    config_.probe->on_restart(stats_.steps, who, rehydrated, replayed);
  }
}

bool Engine::converged() const {
  if (!corruption_seen_) return completed();
  const std::size_t k = static_cast<std::size_t>(config_.convergence_window);
  const std::size_t ny = y_.size();
  const std::size_t nx = x_.size();
  if (nx == 0) return true;
  // Greedy maximal terminal match: the last t items of Y equal X's last t.
  std::size_t t = 0;
  while (t < ny && t < nx && y_[ny - 1 - t] == x_[nx - 1 - t]) ++t;
  if (t == 0) return false;  // Y does not end with X's ending
  const std::size_t j = nx - t;  // X position where the matched tail begins
  if (j > corrupt_prefix_c_ + k) return false;  // > k items of X lost
  const std::size_t post = ny - pre_corruption_len_;
  const std::size_t garbage = post > t ? post - t : 0;
  return garbage <= k;
}

void Engine::note_corruption() {
  if (!corruption_seen_) {
    corruption_seen_ = true;
    first_corruption_step_ = stats_.steps;
  }
  pre_corruption_len_ = y_.size();
  corrupt_prefix_c_ = correct_prefix_;
}

void Engine::scramble_state(Proc who, std::uint64_t salt) {
  const std::string blob = who == Proc::kSender ? sender_->save_state()
                                                : receiver_->save_state();
  std::vector<std::int64_t> tokens;
  {
    std::istringstream is(blob);
    std::int64_t v = 0;
    while (is >> v) tokens.push_back(v);
  }
  bool accepted = false;
  // A process without durable state (or an unparseable blob) is immune.
  if (tokens.size() >= 2) {
    for (std::uint64_t attempt = 0; attempt < 8 && !accepted; ++attempt) {
      // Deterministic adversarial bytes: same (salt, attempt) -> same blob,
      // so scramble runs replay and minimize exactly like channel faults.
      std::uint64_t seed_state = salt ^ (0x9E3779B97F4A7C15ULL * (attempt + 1));
      Rng rng(splitmix64(seed_state));
      std::vector<std::int64_t> mut = tokens;
      // The leading tag survives: the scramble forges plausible state, not
      // a blob restore_state() can dismiss by family alone.
      bool changed = false;
      for (std::size_t i = 1; i < mut.size(); ++i) {
        if (!rng.chance(0.6)) continue;
        mut[i] = static_cast<std::int64_t>(rng.below(9));
        changed = changed || mut[i] != tokens[i];
      }
      if (!changed) {
        const std::size_t i = 1 + static_cast<std::size_t>(
                                      rng.below(mut.size() - 1));
        mut[i] ^= 1;
      }
      std::ostringstream os;
      for (std::size_t i = 0; i < mut.size(); ++i) {
        if (i > 0) os << ' ';
        os << mut[i];
      }
      const std::string scrambled = os.str();
      accepted = who == Proc::kSender
                     ? sender_->restore_state(scrambled)
                     : receiver_->restore_state(scrambled, y_);
    }
  }
  if (accepted) {
    ++stats_.scrambles_applied;
  } else {
    ++stats_.scrambles_rejected;
  }
  // Every attempt counts as a corruption event, accepted or not: a
  // restore_state() that reports rejection may still have mutated live
  // state on the way to the failed check (non-atomic restores are a real
  // protocol defect this layer is meant to surface, not mask).  A truly
  // clean rejection costs nothing — the run then completes exactly and the
  // verdict stays kCompleted.
  if (tokens.size() >= 2) note_corruption();
  if (config_.probe) {
    config_.probe->on_scramble(stats_.steps, who, accepted);
  }
}

void Engine::crash_restart_sender() {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  sender_->start(x_);
  ++stats_.crashes[0];
  if (!first_crash_step_) first_crash_step_ = stats_.steps;
  if (config_.probe) config_.probe->on_crash(stats_.steps, Proc::kSender);
  rehydrate(Proc::kSender);
}

void Engine::crash_restart_receiver() {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  receiver_->start();
  ++stats_.crashes[1];
  if (!first_crash_step_) first_crash_step_ = stats_.steps;
  if (config_.probe) config_.probe->on_crash(stats_.steps, Proc::kReceiver);
  rehydrate(Proc::kReceiver);
}

Action Engine::step_once() {
  // Give fault-injecting channels their timeline hook *before* the
  // scheduler looks at the deliverable sets, so a burst/blackout/freeze
  // firing this step is visible to (and survivable by) the legality check.
  const TickEffect fx = channel_->tick({stats_.steps, y_.size()});
  // Storage faults strike before crashes within a tick, so a fault and a
  // crash at the same trigger make recovery read the damaged store.
  for (const StoreFaultRequest& rq : fx.store_faults) apply_store_fault(rq);
  if (fx.crash_sender) crash_restart_sender();
  if (fx.crash_receiver) crash_restart_receiver();
  // Scrambles strike after crashes so a same-tick restart cannot wash the
  // corruption away; payload corruptions/forgeries already happened inside
  // the channel — only the convergence bookkeeping needs the tally.
  for (const ScrambleRequest& rq : fx.scrambles) {
    scramble_state(rq.proc, rq.salt);
  }
  if (fx.corruptions > 0) {
    stats_.corruptions += fx.corruptions;
    note_corruption();
  }
  const Action a = scheduler_->choose(view());
  apply(a);
  return a;
}

void Engine::run_to_completion() {
  while (stats_.steps < config_.max_steps) {
    // A post-corruption violation is survivable when a convergence window
    // is set: the stabilization question is precisely whether the protocol
    // recovers *after* writing garbage.  Pre-corruption violations (and any
    // violation under the legacy k = 0 regime) still halt the run.
    if (!safety_ok_ &&
        !(config_.convergence_window > 0 && corruption_seen_ &&
          first_violation_step_ >= first_corruption_step_)) {
      break;
    }
    if (config_.stop_when_complete &&
        (completed() || (corruption_seen_ && converged()))) {
      break;
    }
    if (config_.stall_window > 0 && !completed() &&
        stats_.steps - last_progress_step_ >= config_.stall_window) {
      stalled_ = true;
      if (config_.probe) config_.probe->on_stall(stats_.steps);
      break;
    }
    step_once();
  }
  if (config_.probe && corruption_seen_ && converged()) {
    config_.probe->on_converge(stats_.steps,
                               stats_.steps - first_corruption_step_);
  }
  if (config_.probe) config_.probe->on_run_end(stats_.steps, verdict());
}

RunResult Engine::run(const seq::Sequence& x) {
  begin(x);
  run_to_completion();
  return result();
}

RunResult Engine::result() const {
  RunResult r;
  r.input = x_;
  r.output = y_;
  r.safety_ok = safety_ok_;
  r.first_violation_step = first_violation_step_;
  r.completed = completed();
  r.stalled = stalled_;
  r.converged = converged();
  r.verdict = verdict();
  r.stats = stats_;
  r.trace = trace_;
  r.receiver_history = receiver_hist_;
  r.sender_history = sender_hist_;
  return r;
}

}  // namespace stpx::sim
