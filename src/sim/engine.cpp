#include "sim/engine.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace stpx::sim {

namespace {

std::size_t dir_index(Dir d) { return static_cast<std::size_t>(d); }

/// Validate a message id against a finite alphabet (no-op for unbounded).
void check_alphabet(MsgId msg, int alphabet, const char* who) {
  if (alphabet == kUnboundedAlphabet) return;
  STPX_EXPECT(msg >= 0 && msg < alphabet,
              std::string(who) + " sent a message outside its alphabet");
}

}  // namespace

Engine::Engine(std::unique_ptr<ISender> sender,
               std::unique_ptr<IReceiver> receiver,
               std::unique_ptr<IChannel> channel,
               std::unique_ptr<IScheduler> scheduler, EngineConfig config)
    : sender_(std::move(sender)),
      receiver_(std::move(receiver)),
      channel_(std::move(channel)),
      scheduler_(std::move(scheduler)),
      config_(config) {
  STPX_EXPECT(sender_ && receiver_ && channel_ && scheduler_,
              "Engine: null component");
}

Engine::Engine(const Engine& other)
    : sender_(other.sender_->clone()),
      receiver_(other.receiver_->clone()),
      channel_(other.channel_->clone()),
      scheduler_(other.scheduler_->clone()),
      config_(other.config_),
      x_(other.x_),
      y_(other.y_),
      safety_ok_(other.safety_ok_),
      stalled_(other.stalled_),
      last_progress_step_(other.last_progress_step_),
      first_violation_step_(other.first_violation_step_),
      stats_(other.stats_),
      trace_(other.trace_),
      receiver_hist_(other.receiver_hist_),
      sender_hist_(other.sender_hist_),
      begun_(other.begun_) {}

void Engine::begin(const seq::Sequence& x) {
  x_ = x;
  y_.clear();
  safety_ok_ = true;
  stalled_ = false;
  last_progress_step_ = 0;
  first_violation_step_ = 0;
  stats_ = RunStats{};
  trace_.clear();
  receiver_hist_.clear();
  sender_hist_.clear();
  channel_->reset();
  scheduler_->reset();
  sender_->start(x);
  receiver_->start();
  begun_ = true;
  if (config_.probe) config_.probe->on_run_begin(x_.size());
}

SchedView Engine::view() const {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  SchedView v;
  v.step = stats_.steps;
  v.deliverable_to_receiver = channel_->deliverable(Dir::kSenderToReceiver);
  v.deliverable_to_sender = channel_->deliverable(Dir::kReceiverToSender);
  v.items_written = y_.size();
  v.items_total = x_.size();
  return v;
}

bool Engine::legal(const Action& a) const {
  switch (a.kind) {
    case ActionKind::kSenderStep:
    case ActionKind::kReceiverStep:
      return true;
    case ActionKind::kDeliverToReceiver:
      return channel_->copies(Dir::kSenderToReceiver, a.msg) > 0;
    case ActionKind::kDeliverToSender:
      return channel_->copies(Dir::kReceiverToSender, a.msg) > 0;
  }
  return false;
}

void Engine::note_send(Dir dir, MsgId msg) {
  channel_->send(dir, msg);
  ++stats_.sent[dir_index(dir)];
  if (config_.probe) config_.probe->on_send(stats_.steps, dir, msg);
}

void Engine::apply(const Action& a) {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  STPX_EXPECT(legal(a), "Engine: illegal action " + to_string(a));

  if (config_.probe) config_.probe->on_step(stats_.steps, a);

  TraceEvent ev;
  ev.step = stats_.steps;
  ev.action = a;

  switch (a.kind) {
    case ActionKind::kSenderStep: {
      SenderEffect eff = sender_->on_step();
      if (eff.send) {
        check_alphabet(*eff.send, sender_->alphabet_size(), "sender");
        note_send(Dir::kSenderToReceiver, *eff.send);
        ev.did_send = true;
        ev.sent = *eff.send;
      }
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kStep;
        le.sent = eff.send.value_or(-1);
        sender_hist_.push_back(std::move(le));
      }
      break;
    }
    case ActionKind::kReceiverStep: {
      ReceiverEffect eff = receiver_->on_step();
      if (eff.send) {
        check_alphabet(*eff.send, receiver_->alphabet_size(), "receiver");
        note_send(Dir::kReceiverToSender, *eff.send);
        ev.did_send = true;
        ev.sent = *eff.send;
      }
      for (seq::DataItem d : eff.writes) {
        const std::size_t pos = y_.size();
        y_.push_back(d);
        stats_.write_step.push_back(stats_.steps);
        last_progress_step_ = stats_.steps;
        if (config_.probe) config_.probe->on_write(stats_.steps, pos, d);
        // Online safety check: Y must stay a prefix of X.
        if (safety_ok_ && (pos >= x_.size() || x_[pos] != d)) {
          safety_ok_ = false;
          first_violation_step_ = stats_.steps;
        }
      }
      ev.writes = eff.writes;
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kStep;
        le.sent = eff.send.value_or(-1);
        le.writes = std::move(eff.writes);
        receiver_hist_.push_back(std::move(le));
      }
      break;
    }
    case ActionKind::kDeliverToReceiver: {
      channel_->deliver(Dir::kSenderToReceiver, a.msg);
      ++stats_.delivered[dir_index(Dir::kSenderToReceiver)];
      if (config_.probe) {
        config_.probe->on_deliver(stats_.steps, Dir::kSenderToReceiver, a.msg);
      }
      receiver_->on_deliver(a.msg);
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kRecv;
        le.received = a.msg;
        receiver_hist_.push_back(std::move(le));
      }
      break;
    }
    case ActionKind::kDeliverToSender: {
      channel_->deliver(Dir::kReceiverToSender, a.msg);
      ++stats_.delivered[dir_index(Dir::kReceiverToSender)];
      if (config_.probe) {
        config_.probe->on_deliver(stats_.steps, Dir::kReceiverToSender, a.msg);
      }
      sender_->on_deliver(a.msg);
      if (config_.record_histories) {
        LocalEvent le;
        le.kind = LocalEvent::Kind::kRecv;
        le.received = a.msg;
        sender_hist_.push_back(std::move(le));
      }
      break;
    }
  }

  if (config_.record_trace) trace_.push_back(std::move(ev));
  ++stats_.steps;
}

void Engine::crash_restart_sender() {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  sender_->start(x_);
  ++stats_.crashes[0];
  if (config_.probe) config_.probe->on_crash(stats_.steps, Proc::kSender);
}

void Engine::crash_restart_receiver() {
  STPX_EXPECT(begun_, "Engine: begin() not called");
  receiver_->start();
  ++stats_.crashes[1];
  if (config_.probe) config_.probe->on_crash(stats_.steps, Proc::kReceiver);
}

Action Engine::step_once() {
  // Give fault-injecting channels their timeline hook *before* the
  // scheduler looks at the deliverable sets, so a burst/blackout/freeze
  // firing this step is visible to (and survivable by) the legality check.
  const TickEffect fx = channel_->tick({stats_.steps, y_.size()});
  if (fx.crash_sender) crash_restart_sender();
  if (fx.crash_receiver) crash_restart_receiver();
  const Action a = scheduler_->choose(view());
  apply(a);
  return a;
}

void Engine::run_to_completion() {
  while (stats_.steps < config_.max_steps) {
    if (!safety_ok_) break;
    if (config_.stop_when_complete && completed()) break;
    if (config_.stall_window > 0 && !completed() &&
        stats_.steps - last_progress_step_ >= config_.stall_window) {
      stalled_ = true;
      if (config_.probe) config_.probe->on_stall(stats_.steps);
      break;
    }
    step_once();
  }
  if (config_.probe) config_.probe->on_run_end(stats_.steps, verdict());
}

RunResult Engine::run(const seq::Sequence& x) {
  begin(x);
  run_to_completion();
  return result();
}

RunResult Engine::result() const {
  RunResult r;
  r.input = x_;
  r.output = y_;
  r.safety_ok = safety_ok_;
  r.first_violation_step = first_violation_step_;
  r.completed = completed();
  r.stalled = stalled_;
  r.verdict = verdict();
  r.stats = stats_;
  r.trace = trace_;
  r.receiver_history = receiver_hist_;
  r.sender_history = sender_hist_;
  return r;
}

}  // namespace stpx::sim
