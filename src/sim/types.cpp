#include "sim/types.hpp"

#include <sstream>

namespace stpx::sim {

std::string to_string(const Action& a) {
  std::ostringstream os;
  os << to_cstr(a.kind);
  if (a.kind == ActionKind::kDeliverToReceiver ||
      a.kind == ActionKind::kDeliverToSender) {
    os << " msg=" << a.msg;
  }
  return os.str();
}

}  // namespace stpx::sim
