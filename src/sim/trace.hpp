// Run traces and complete-history local states.
//
// The engine can record two views of a run:
//   * the global trace — one TraceEvent per step, enough to replay or print
//     the run;
//   * per-process local histories — the *complete history interpretation* of
//     the paper (§2.3): a process's local state is the sequence of events it
//     itself has observed (its own steps, what it sent/wrote, what it
//     received).  Two points are ~_p-indistinguishable iff the local
//     histories of p are equal; this is the exact relation the knowledge
//     layer and the attack synthesizer use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace stpx::sim {

/// One step of the global trace.
struct TraceEvent {
  std::uint64_t step = 0;
  Action action;
  /// Message sent during this step, if any (valid for process steps).
  bool did_send = false;
  MsgId sent = -1;
  /// Items written by the receiver during this step, if any.
  std::vector<seq::DataItem> writes;
};

std::string to_string(const TraceEvent& ev);

/// One event in a process's local history.
struct LocalEvent {
  enum class Kind : std::uint8_t { kStep, kRecv };
  Kind kind = Kind::kStep;
  /// For kStep: message sent this step (-1 if none).
  MsgId sent = -1;
  /// For kRecv: the delivered message.
  MsgId received = -1;
  /// For receiver kStep: items written this step.
  std::vector<seq::DataItem> writes;

  friend bool operator==(const LocalEvent&, const LocalEvent&) = default;
};

/// A process's complete local history; equality = indistinguishability ~_p.
using LocalHistory = std::vector<LocalEvent>;

/// Stable string key for a history (for hashing / grouping points by ~_p).
std::string history_key(const LocalHistory& h);

}  // namespace stpx::sim
