// The lock-step simulation engine.
//
// Wires a sender protocol, receiver protocol, channel, and scheduler into
// the paper's run model: each step applies exactly one action; messages sent
// in a step become deliverable only in later steps; the output tape Y is
// checked against the prefix-safety property online.
//
// Two usage modes:
//   * run(x)           — drive the scheduler until completion / violation /
//                        step cap; the normal mode for experiments;
//   * begin/apply      — externally controlled stepping, used by the attack
//                        synthesizer and the knowledge explorer to branch
//                        runs (Engine is deep-copyable via clone()).
#pragma once

#include <memory>
#include <optional>

#include "obs/probe.hpp"
#include "sim/channel_iface.hpp"
#include "sim/process.hpp"
#include "sim/scheduler_iface.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "store/stable_store.hpp"

namespace stpx::sim {

struct EngineConfig {
  std::uint64_t max_steps = 200000;
  bool record_trace = false;
  bool record_histories = false;
  /// Stop run() as soon as Y == X.
  bool stop_when_complete = true;
  /// Watchdog: abort run() if the output tape makes no progress for this
  /// many consecutive steps (livelock / quiescence detection).  0 disables.
  std::uint64_t stall_window = 0;
  /// Optional run observer (non-owning; see obs/probe.hpp).  Null — the
  /// default — costs one pointer test per hook site and records nothing.
  /// clone() shares the pointer, so attach probes to linear runs only.
  obs::IProbe* probe = nullptr;
  /// Optional stable stores (non-owning; see store/stable_store.hpp).
  /// When attached, the engine appends a checkpoint record after every
  /// durable state transition of that process (commit point) and
  /// rehydrates from the store on crash_restart_*.  Null — the default —
  /// keeps crash-restart the pure amnesia fault.  clone() shares the
  /// pointers, so attach stores to linear runs only.
  store::IStableStore* sender_store = nullptr;
  store::IStableStore* receiver_store = nullptr;
  /// Fold the log into the snapshot every this-many appends (0 = never).
  std::uint64_t compact_every = 32;
  /// Suffix-safety slack k for runs with injected transient corruption
  /// (corrupt-payload / forge-message / scramble-state).  0 — the default —
  /// keeps the legacy regime: the run halts at the first prefix violation
  /// and a post-corruption violation is verdicted kStabilizationViolation.
  /// k > 0 lets the run continue past post-corruption violations and
  /// declares convergence when the newly written output is a correct
  /// continuation within k items (see Engine::converged()).
  std::uint64_t convergence_window = 0;
};

struct RunStats {
  std::uint64_t steps = 0;
  std::uint64_t sent[2] = {0, 0};       // indexed by Dir
  std::uint64_t delivered[2] = {0, 0};  // indexed by Dir
  /// Crash-restarts executed, indexed 0 = sender, 1 = receiver.
  std::uint64_t crashes[2] = {0, 0};
  /// Restarts that rehydrated state from a stable store.
  std::uint64_t recoveries = 0;
  /// Store records scanned across all recoveries.
  std::uint64_t records_replayed = 0;
  /// Payload corruptions + forgeries executed by the channel layer.
  std::uint64_t corruptions = 0;
  /// State scrambles the target process accepted / rejected (a rejection —
  /// every mutated blob failed restore_state() validation — is the hardened
  /// protocol's detection-as-defense and counts as *no* corruption).
  std::uint64_t scrambles_applied = 0;
  std::uint64_t scrambles_rejected = 0;
  /// Step index at which output item i was written.
  std::vector<std::uint64_t> write_step;
};

struct RunResult {
  seq::Sequence input;
  seq::Sequence output;
  bool safety_ok = true;
  std::uint64_t first_violation_step = 0;
  bool completed = false;  // output == input
  /// Watchdog verdict (only ever true when stall_window > 0).
  bool stalled = false;
  /// Suffix-safety convergence held at run end (always true for completed
  /// corruption-free runs; see Engine::converged()).
  bool converged = false;
  RunVerdict verdict = RunVerdict::kBudgetExhausted;
  RunStats stats;
  std::vector<TraceEvent> trace;            // if record_trace
  LocalHistory receiver_history;            // if record_histories
  LocalHistory sender_history;              // if record_histories
};

class Engine {
 public:
  Engine(std::unique_ptr<ISender> sender, std::unique_ptr<IReceiver> receiver,
         std::unique_ptr<IChannel> channel,
         std::unique_ptr<IScheduler> scheduler, EngineConfig config);

  Engine(const Engine& other);
  Engine& operator=(const Engine&) = delete;

  /// Reset everything and install input sequence `x`.
  void begin(const seq::Sequence& x);

  /// Current scheduler view (legal deliveries etc.).
  SchedView view() const;

  /// True iff `a` is applicable now (deliveries must name a deliverable
  /// message).
  bool legal(const Action& a) const;

  /// Apply one action.  Precondition: legal(a).
  void apply(const Action& a);

  /// Crash-restart a process: its volatile local state is reset to the
  /// initial state (the sender re-reads X from its code, per the model; the
  /// receiver forgets everything) while the engine-owned output tape Y and
  /// the channel contents survive.  This is the self-stabilization /
  /// amnesia fault; protocols whose progress lives only in volatile state
  /// must re-earn it — or violate safety trying.
  void crash_restart_sender();
  void crash_restart_receiver();

  /// Ask the scheduler for an action and apply it.  Returns the action.
  Action step_once();

  /// Drive to completion / violation / cap from the current state.
  void run_to_completion();

  /// begin(x) then run_to_completion() then result().
  RunResult run(const seq::Sequence& x);

  /// Snapshot of the run so far.
  RunResult result() const;

  // --- fine-grained accessors for the analysis layers -------------------
  const seq::Sequence& input() const { return x_; }
  const seq::Sequence& output() const { return y_; }
  bool safety_ok() const { return safety_ok_; }
  bool completed() const { return y_ == x_; }
  bool stalled() const { return stalled_; }
  /// Whether a transient corruption (payload / forgery / accepted state
  /// scramble) has struck this run.
  bool corruption_seen() const { return corruption_seen_; }
  /// The suffix-safety convergence criterion of the stabilization layer.
  /// Without corruption it is plain completion.  After the *last* injected
  /// corruption — with p = |Y| and c = |correct prefix of Y| recorded at
  /// that moment — let t be the maximal terminal match (the last t items of
  /// Y equal the last t items of X).  The run converged iff Y ends with X's
  /// ending (t >= 1), the continuation reaches back far enough that at most
  /// k items of X are lost (|X| - t <= c + k), and at most k post-corruption
  /// garbage items precede the correct tail ((|Y| - p) - t <= k), where
  /// k = EngineConfig::convergence_window.  Duplicated items inside the
  /// matched tail are tolerated: re-sending is how protocols re-converge.
  bool converged() const;
  /// Structured verdict of the run so far (same logic result() records).
  /// A safety violation at or after the first injected corruption is
  /// classified by the suffix-safety criterion (converged -> kCompleted,
  /// else kStabilizationViolation) — this outranks the crash-restart
  /// classification because corruption faults *lie* to the protocol, which
  /// no recovery layer is expected to absorb.  A safety violation at or
  /// after the first crash-restart (and before any corruption) is a
  /// recovery violation: the protocol was safe until a restart lost (or
  /// mis-restored) state, so the blame lies with recovery, not the
  /// steady-state protocol.
  RunVerdict verdict() const {
    if (!safety_ok_) {
      if (corruption_seen_ &&
          first_violation_step_ >= first_corruption_step_) {
        return converged() ? RunVerdict::kCompleted
                           : RunVerdict::kStabilizationViolation;
      }
      return (first_crash_step_ &&
              first_violation_step_ >= *first_crash_step_)
                 ? RunVerdict::kRecoveryViolation
                 : RunVerdict::kSafetyViolation;
    }
    if (completed() || (corruption_seen_ && converged())) {
      return RunVerdict::kCompleted;
    }
    return stalled_ ? RunVerdict::kStalled : RunVerdict::kBudgetExhausted;
  }
  std::uint64_t steps() const { return stats_.steps; }
  /// Step at which the output tape last grew (0 if it never has).
  std::uint64_t last_progress_step() const { return last_progress_step_; }
  const IChannel& channel() const { return *channel_; }
  IChannel& channel() { return *channel_; }
  const LocalHistory& receiver_history() const { return receiver_hist_; }
  const LocalHistory& sender_history() const { return sender_hist_; }
  const EngineConfig& config() const { return config_; }

  std::unique_ptr<Engine> clone() const {
    return std::make_unique<Engine>(*this);
  }

 private:
  void note_send(Dir dir, MsgId msg);
  /// Append a checkpoint when `who`'s durable state changed this action.
  void persist(Proc who);
  /// Execute one requested storage fault (no-op without a store).
  void apply_store_fault(const StoreFaultRequest& rq);
  /// recover() + restore_state() + probe on_restart for a restarted `who`.
  void rehydrate(Proc who);
  /// Execute one requested state scramble: mutate `who`'s save_state() blob
  /// deterministically from `salt` and force it back through
  /// restore_state().  Retries a few mutations; a process that rejects all
  /// of them (blob validation) is counted scrambles_rejected and suffers no
  /// corruption.
  void scramble_state(Proc who, std::uint64_t salt);
  /// Record that a corruption struck *now* (p/c snapshot for converged()).
  void note_corruption();

  std::unique_ptr<ISender> sender_;
  std::unique_ptr<IReceiver> receiver_;
  std::unique_ptr<IChannel> channel_;
  std::unique_ptr<IScheduler> scheduler_;
  EngineConfig config_;

  seq::Sequence x_;
  seq::Sequence y_;
  bool safety_ok_ = true;
  bool stalled_ = false;
  std::uint64_t last_progress_step_ = 0;
  std::uint64_t first_violation_step_ = 0;
  /// Step of the first crash-restart (recovery-violation classification).
  std::optional<std::uint64_t> first_crash_step_;
  // --- stabilization bookkeeping (see converged()) ----------------------
  bool corruption_seen_ = false;
  std::uint64_t first_corruption_step_ = 0;
  std::size_t pre_corruption_len_ = 0;  // |Y| at the last corruption
  std::size_t corrupt_prefix_c_ = 0;    // correct prefix of Y at that moment
  std::size_t correct_prefix_ = 0;      // longest correct prefix of Y so far
  /// Last checkpoint appended per process (skip no-op appends).
  std::string last_saved_[2];
  RunStats stats_;
  std::vector<TraceEvent> trace_;
  LocalHistory receiver_hist_;
  LocalHistory sender_hist_;
  bool begun_ = false;
};

}  // namespace stpx::sim
