// Channel (environment) interface.
//
// The environment's local state s_E tracks, per direction and message id,
// what is deliverable (the paper's dlvrble vectors).  Concrete channels give
// this different semantics:
//   * dup channel  — a *set*: once sent, a message is deliverable forever
//     (arbitrarily many copies); deliver() does not consume.
//   * del channel  — a *multiset*: sent-minus-delivered copy counts;
//     deliver() consumes a copy, drop() deletes one (the adversary's move).
//   * FIFO channels — order-preserving queues for baselines (ABP) that
//     assume no reordering.
// Reordering needs no mechanism anywhere: which deliverable message arrives
// next is simply the scheduler's choice.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace stpx::sim {

/// Engine-visible progress snapshot handed to the channel once per step,
/// *before* the scheduler chooses the step's action.  Plain channels ignore
/// it; fault-injecting decorators (fault::ChaosChannel) use it to advance
/// their scripted timelines.
struct ChannelTick {
  std::uint64_t step = 0;
  std::size_t items_written = 0;
};

/// One requested storage fault: damage `proc`'s stable store.  Ignored by
/// the engine when that process has no store attached.
struct StoreFaultRequest {
  Proc proc = Proc::kSender;
  StoreFaultKind kind = StoreFaultKind::kTornWrite;
  std::uint64_t count = 1;  // lose-tail depth; unused by the other kinds
};

/// One requested state scramble: overwrite `proc`'s state (via its
/// save_state()/restore_state() hooks) with adversarial bytes derived
/// deterministically from `salt`.  Processes without durable state are
/// immune; processes that *validate* their blobs may reject the scramble.
struct ScrambleRequest {
  Proc proc = Proc::kSender;
  std::uint64_t salt = 0;
};

/// What a tick may ask of the engine.  Channels cannot reach the processes
/// directly, so process-level faults (crash-restart: volatile local state
/// lost, output tape kept), storage faults, and state scrambles are
/// requested here and executed by the engine.  Store faults are applied
/// before crashes within the same tick, so a fault and a crash at the same
/// trigger exercise recovery from the already-damaged store; scrambles are
/// applied after crashes so a same-tick crash cannot erase the corruption.
/// `corruptions` counts payload corruptions/forgeries the channel already
/// executed itself this tick — the engine only needs the tally to start its
/// convergence bookkeeping.
struct TickEffect {
  bool crash_sender = false;
  bool crash_receiver = false;
  std::vector<StoreFaultRequest> store_faults;
  std::vector<ScrambleRequest> scrambles;
  std::uint64_t corruptions = 0;
};

class IChannel {
 public:
  virtual ~IChannel() = default;

  /// Reset to the empty initial state.
  virtual void reset() = 0;

  /// Called by the engine at the start of every step.  Default: no-op.
  virtual TickEffect tick(const ChannelTick&) { return {}; }

  /// A message is placed on the channel (counts as "sent" this step).
  virtual void send(Dir dir, MsgId msg) = 0;

  /// Distinct message ids currently deliverable in `dir` (each listed once,
  /// regardless of copy count).  For FIFO channels: the head only.
  virtual std::vector<MsgId> deliverable(Dir dir) const = 0;

  /// Copies of `msg` currently deliverable in `dir` (the dlvrble vector).
  /// Dup channels report 1 for any ever-sent message.
  virtual std::uint64_t copies(Dir dir, MsgId msg) const = 0;

  /// Deliver one copy of `msg` in `dir`.  Precondition: copies() > 0.
  virtual void deliver(Dir dir, MsgId msg) = 0;

  /// Whether this channel semantics permits deletion.
  virtual bool can_drop() const = 0;

  /// Delete one copy of `msg` in `dir` (adversary move / fault injection).
  /// Precondition: can_drop() and copies() > 0.
  virtual void drop(Dir dir, MsgId msg) = 0;

  virtual std::unique_ptr<IChannel> clone() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace stpx::sim
