// Vocabulary of the simulation model (paper §2.2).
//
// A global state is (s_E, s_S, s_R).  A run is a sequence of global states;
// each transition is exactly one *action*: a sender step, a receiver step,
// or the delivery of one message to one process.  Messages are never
// delivered in the step they are sent, and at most one message is delivered
// per step — both assumptions taken directly from the paper (it notes all
// results hold without them; the engine enforces them for fidelity).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "seq/types.hpp"

namespace stpx::sim {

/// A message identifier.  For the paper's finite-alphabet channels this is an
/// index into M^S or M^R (two copies of the same id are indistinguishable —
/// that is the whole point).  Baseline protocols with unbounded headers
/// (Stenning, sliding window) encode their full message content into the id.
using MsgId = std::int64_t;

/// Direction of travel on the bidirectional link.
enum class Dir : std::uint8_t {
  kSenderToReceiver = 0,
  kReceiverToSender = 1,
};

constexpr const char* to_cstr(Dir d) {
  return d == Dir::kSenderToReceiver ? "S->R" : "R->S";
}

/// Which of the four action kinds a step performs.
enum class ActionKind : std::uint8_t {
  kSenderStep,
  kReceiverStep,
  kDeliverToReceiver,
  kDeliverToSender,
};

constexpr const char* to_cstr(ActionKind k) {
  switch (k) {
    case ActionKind::kSenderStep: return "S-step";
    case ActionKind::kReceiverStep: return "R-step";
    case ActionKind::kDeliverToReceiver: return "deliver->R";
    case ActionKind::kDeliverToSender: return "deliver->S";
  }
  return "?";
}

/// The two processes, by the engine's indexing convention (RunStats,
/// crash counters, probe hooks all use 0 = sender, 1 = receiver).
enum class Proc : std::uint8_t {
  kSender = 0,
  kReceiver = 1,
};

constexpr const char* to_cstr(Proc p) {
  return p == Proc::kSender ? "sender" : "receiver";
}

/// Structured outcome of a driven run, most severe first.
enum class RunVerdict : std::uint8_t {
  kSafetyViolation,    // Y stopped being a prefix of X
  kRecoveryViolation,  // Y stopped being a prefix of X at/after a crash-restart
  kStabilizationViolation,  // a transient corruption was injected and the
                            // run failed the suffix-safety convergence
                            // criterion (EngineConfig::convergence_window)
  kStalled,            // watchdog: no write progress within stall_window
  kBudgetExhausted,    // hit max_steps without completing
  kCompleted,          // Y == X (or, post-corruption, converged)
};

constexpr const char* to_cstr(RunVerdict v) {
  switch (v) {
    case RunVerdict::kSafetyViolation: return "safety-violation";
    case RunVerdict::kRecoveryViolation: return "recovery-violation";
    case RunVerdict::kStabilizationViolation:
      return "stabilization-violation";
    case RunVerdict::kStalled: return "stalled";
    case RunVerdict::kBudgetExhausted: return "budget-exhausted";
    case RunVerdict::kCompleted: return "completed";
  }
  return "?";
}

/// Storage-fault kinds a fault plan can aim at a process's stable store.
/// Declared here so the sim layer needs no dependency on the fault library;
/// the damage itself is executed by store::IStableStore's fault entry
/// points, which the engine invokes when a TickEffect requests one.
enum class StoreFaultKind : std::uint8_t {
  kTornWrite,      // the store's next append is truncated mid-record
  kLoseTail,       // the newest `count` log records vanish
  kCorruptRecord,  // bytes of the newest record flip (checksum catches it)
  kStaleSnapshot,  // roll compaction back to the previous snapshot + log
};

constexpr const char* to_cstr(StoreFaultKind k) {
  switch (k) {
    case StoreFaultKind::kTornWrite: return "torn-write";
    case StoreFaultKind::kLoseTail: return "lose-tail";
    case StoreFaultKind::kCorruptRecord: return "corrupt-record";
    case StoreFaultKind::kStaleSnapshot: return "stale-snapshot";
  }
  return "?";
}

/// One scheduler decision.  `msg` is meaningful only for deliveries.
struct Action {
  ActionKind kind = ActionKind::kSenderStep;
  MsgId msg = -1;

  friend bool operator==(const Action&, const Action&) = default;
};

std::string to_string(const Action& a);

/// What the sender does in one of its steps.
struct SenderEffect {
  std::optional<MsgId> send;  // at most one message per step
};

/// What the receiver does in one of its steps.  `writes` are appended to the
/// output tape Y (the model writes one item per step; allowing a short burst
/// loses nothing and simplifies protocols that learn several items at once —
/// cf. the paper's discussion of why t_i is defined via knowledge).
struct ReceiverEffect {
  std::optional<MsgId> send;
  std::vector<seq::DataItem> writes;
};

}  // namespace stpx::sim
