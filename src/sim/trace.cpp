#include "sim/trace.hpp"

#include <sstream>

namespace stpx::sim {

std::string to_string(const TraceEvent& ev) {
  std::ostringstream os;
  os << "#" << ev.step << ' ' << to_string(ev.action);
  if (ev.did_send) os << " sent=" << ev.sent;
  if (!ev.writes.empty()) {
    os << " wrote=";
    for (std::size_t i = 0; i < ev.writes.size(); ++i) {
      if (i > 0) os << ',';
      os << ev.writes[i];
    }
  }
  return os.str();
}

std::string history_key(const LocalHistory& h) {
  std::ostringstream os;
  for (const LocalEvent& e : h) {
    if (e.kind == LocalEvent::Kind::kStep) {
      os << 's' << e.sent;
      if (!e.writes.empty()) {
        os << 'w';
        for (seq::DataItem d : e.writes) os << d << ',';
      }
    } else {
      os << 'r' << e.received;
    }
    os << ';';
  }
  return os.str();
}

}  // namespace stpx::sim
