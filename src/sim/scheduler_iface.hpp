// Scheduler interface: the single funnel for all nondeterminism.
//
// Every step, the engine asks the scheduler to pick one action given a view
// of what is currently possible.  Fair randomized schedulers model "nature";
// scripted and search-driven schedulers model the adversary of the
// impossibility proofs.  Determinism of (protocols, channel, scheduler)
// makes every run exactly replayable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace stpx::sim {

/// What the scheduler can see when choosing the next action.  (It may see
/// everything — the adversary in the paper is omniscient about the channel.)
struct SchedView {
  std::uint64_t step = 0;
  /// Distinct deliverable message ids, per direction.
  std::vector<MsgId> deliverable_to_receiver;
  std::vector<MsgId> deliverable_to_sender;
  /// Progress signals (used by fairness heuristics / stopping rules).
  std::size_t items_written = 0;
  std::size_t items_total = 0;
};

class IScheduler {
 public:
  virtual ~IScheduler() = default;

  virtual void reset() = 0;

  /// Choose the next action.  Delivery choices must name a message listed in
  /// the view; the engine validates and rejects anything else.
  virtual Action choose(const SchedView& view) = 0;

  virtual std::unique_ptr<IScheduler> clone() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace stpx::sim
