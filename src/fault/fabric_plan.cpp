#include "fault/fabric_plan.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace stpx::fault {

namespace {

std::string group_to_text(const std::vector<std::uint32_t>& g) {
  std::ostringstream os;
  bool first = true;
  for (const std::uint32_t h : g) {
    if (!first) os << ',';
    first = false;
    os << h;
  }
  return os.str();
}

std::vector<std::uint32_t> group_from_text(const std::string& s,
                                           const std::string& where) {
  std::vector<std::uint32_t> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    STPX_EXPECT(!tok.empty() &&
                    tok.find_first_not_of("0123456789") == std::string::npos,
                "fabric_plan_from_text: bad host id '" + tok + "'" + where);
    out.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
  }
  STPX_EXPECT(!out.empty(),
              "fabric_plan_from_text: empty partition group" + where);
  return out;
}

/// Parse "20ms" -> 20.  The unit is mandatory; anything else is malformed.
std::chrono::milliseconds ms_from_text(const std::string& s,
                                       const std::string& where) {
  STPX_EXPECT(s.size() > 2 && s.substr(s.size() - 2) == "ms" &&
                  s.find_first_not_of("0123456789") == s.size() - 2,
              "fabric_plan_from_text: bad time '" + s + "'" + where);
  return std::chrono::milliseconds(std::stol(s.substr(0, s.size() - 2)));
}

}  // namespace

std::string to_text(const FabricFaultPlan& plan) {
  if (plan.actions.empty()) return "-";
  std::ostringstream os;
  bool first = true;
  for (const FabricFaultAction& a : plan.actions) {
    if (!first) os << "; ";
    first = false;
    os << to_cstr(a.kind) << '@' << a.at.count() << "ms";
    const bool windowed = a.kind != FabricFaultKind::kBackendCrash &&
                          a.kind != FabricFaultKind::kRejoin;
    if (windowed) os << '+' << a.len.count() << "ms";
    if (is_partition_fault(a.kind)) {
      os << ' ' << group_to_text(a.group_a) << '|' << group_to_text(a.group_b);
    } else {
      os << " b" << a.backend;
    }
  }
  return os.str();
}

FabricFaultPlan fabric_plan_from_text(const std::string& text) {
  FabricFaultPlan plan;
  // Normalize "; " separators to newlines, then parse line by line.
  std::string norm = text;
  for (std::size_t i = 0; i + 1 < norm.size(); ++i) {
    if (norm[i] == ';') norm[i] = '\n';
  }
  std::istringstream is(norm);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head) || head == "-" || head[0] == '#') continue;
    const std::string where = " (line " + std::to_string(lineno) + ")";

    // head is "<kind>@<at>ms" or "<kind>@<at>ms+<len>ms" or
    // "<kind>@<start>ms..<end>ms".
    const auto at_pos = head.find('@');
    STPX_EXPECT(at_pos != std::string::npos,
                "fabric_plan_from_text: missing '@' in '" + head + "'" + where);
    const std::string op = head.substr(0, at_pos);
    std::string when = head.substr(at_pos + 1);

    FabricFaultAction a;
    if (op == "backend-crash") {
      a.kind = FabricFaultKind::kBackendCrash;
    } else if (op == "probe-blackout") {
      a.kind = FabricFaultKind::kProbeBlackout;
    } else if (op == "router-split") {
      a.kind = FabricFaultKind::kRouterSplit;
    } else if (op == "partition") {
      a.kind = FabricFaultKind::kPartition;
    } else if (op == "partition-oneway") {
      a.kind = FabricFaultKind::kPartitionOneWay;
    } else if (op == "rejoin") {
      a.kind = FabricFaultKind::kRejoin;
    } else {
      STPX_EXPECT(false,
                  "fabric_plan_from_text: unknown fault '" + op + "'" + where);
    }

    const auto plus = when.find('+');
    const auto span = when.find("..");
    if (plus != std::string::npos) {
      a.at = ms_from_text(when.substr(0, plus), where);
      a.len = ms_from_text(when.substr(plus + 1), where);
    } else if (span != std::string::npos) {
      a.at = ms_from_text(when.substr(0, span), where);
      const auto end = ms_from_text(when.substr(span + 2), where);
      STPX_EXPECT(end >= a.at,
                  "fabric_plan_from_text: window ends before it starts" +
                      where);
      a.len = end - a.at;
    } else {
      a.at = ms_from_text(when, where);
    }

    std::string scope;
    STPX_EXPECT(static_cast<bool>(ls >> scope),
                "fabric_plan_from_text: missing scope" + where);
    if (is_partition_fault(a.kind)) {
      const auto bar = scope.find('|');
      STPX_EXPECT(bar != std::string::npos,
                  "fabric_plan_from_text: partition needs 'a|b' groups" +
                      where);
      a.group_a = group_from_text(scope.substr(0, bar), where);
      a.group_b = group_from_text(scope.substr(bar + 1), where);
    } else {
      STPX_EXPECT(scope.size() > 1 && scope[0] == 'b',
                  "fabric_plan_from_text: expected 'b<id>', got '" + scope +
                      "'" + where);
      STPX_EXPECT(scope.find_first_not_of("0123456789", 1) ==
                      std::string::npos,
                  "fabric_plan_from_text: bad backend id '" + scope + "'" +
                      where);
      a.backend = static_cast<std::uint32_t>(std::stoul(scope.substr(1)));
    }
    plan.actions.push_back(std::move(a));
  }
  return plan;
}

}  // namespace stpx::fault
