#include "fault/chaos_channel.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace stpx::fault {

namespace {
std::size_t di(sim::Dir d) { return static_cast<std::size_t>(d); }
}  // namespace

ChaosChannel::ChaosChannel(std::unique_ptr<sim::IChannel> inner,
                           FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  STPX_EXPECT(inner_ != nullptr, "ChaosChannel: null inner channel");
  fired_.assign(plan_.actions.size(), false);
}

ChaosChannel::ChaosChannel(const ChaosChannel& other)
    : inner_(other.inner_->clone()),
      plan_(other.plan_),
      step_(other.step_),
      sends_seen_(other.sends_seen_),
      fired_(other.fired_),
      windows_(other.windows_),
      cap_{other.cap_[0], other.cap_[1]},
      stats_(other.stats_),
      probe_(other.probe_) {}

void ChaosChannel::reset() {
  inner_->reset();
  step_ = 0;
  sends_seen_ = 0;
  fired_.assign(plan_.actions.size(), false);
  windows_.clear();
  cap_[0] = cap_[1] = 0;
  stats_ = ChaosStats{};
}

bool ChaosChannel::frozen(sim::Dir dir) const {
  for (const Window& w : windows_) {
    if (w.kind == FaultKind::kFreeze && w.dir == dir && step_ < w.end_step) {
      return true;
    }
  }
  return false;
}

bool ChaosChannel::blacked_out(sim::Dir dir, sim::MsgId msg) const {
  for (const Window& w : windows_) {
    if (w.kind == FaultKind::kBlackout && w.dir == dir &&
        step_ < w.end_step && (w.match == kAnyMsg || w.match == msg)) {
      return true;
    }
  }
  return false;
}

std::uint64_t ChaosChannel::deliverable_copies(sim::Dir dir) const {
  std::uint64_t total = 0;
  for (sim::MsgId id : inner_->deliverable(dir)) {
    total += inner_->copies(dir, id);
  }
  return total;
}

bool ChaosChannel::fire(const FaultAction& a, sim::TickEffect& fx) {
  // Payload corruption needs a victim: if no matching message is in flight
  // at this tick, stay armed and strike the first one that appears (a
  // trigger firing into an empty channel would otherwise be a silent no-op
  // and the conformance cell would "pass" without its fault ever biting).
  if (a.kind == FaultKind::kCorruptPayload) {
    bool victim = false;
    for (sim::MsgId id : inner_->deliverable(a.dir)) {
      if (a.match != kAnyMsg && a.match != id) continue;
      if (inner_->copies(a.dir, id) == 0) continue;
      victim = true;
      break;
    }
    if (!victim) return false;
  }
  ++stats_.actions_fired;
  if (probe_) {
    obs::FaultEvent ev;
    ev.step = step_;
    ev.kind = to_cstr(a.kind);
    ev.dir = a.dir;
    ev.count = a.count;
    // Windows report their effective (clamped) span so trace spans match
    // what the channel actually enforces below.
    ev.duration = (a.kind == FaultKind::kBlackout ||
                   a.kind == FaultKind::kFreeze)
                      ? std::max<std::uint64_t>(a.duration, 1)
                      : 0;
    ev.match = a.match;
    probe_->on_fault(ev);
  }
  switch (a.kind) {
    case FaultKind::kDropBurst: {
      if (!inner_->can_drop()) break;  // dup channels: deletion is forbidden
      std::uint64_t budget =
          a.count == 0 ? ~std::uint64_t{0} : a.count;
      for (sim::MsgId id : inner_->deliverable(a.dir)) {
        if (a.match != kAnyMsg && a.match != id) continue;
        while (budget > 0 && inner_->copies(a.dir, id) > 0) {
          inner_->drop(a.dir, id);
          ++stats_.copies_dropped;
          --budget;
        }
        if (budget == 0) break;
      }
      break;
    }
    case FaultKind::kDupBurst: {
      std::vector<sim::MsgId> ids;
      for (sim::MsgId id : inner_->deliverable(a.dir)) {
        if (a.match == kAnyMsg || a.match == id) ids.push_back(id);
      }
      if (ids.empty()) break;  // nothing in flight to amplify
      const std::uint64_t budget = a.count == 0 ? 1 : a.count;
      for (std::uint64_t i = 0; i < budget; ++i) {
        inner_->send(a.dir, ids[static_cast<std::size_t>(i % ids.size())]);
        ++stats_.copies_duplicated;
      }
      break;
    }
    case FaultKind::kBlackout:
    case FaultKind::kFreeze:
      windows_.push_back(
          Window{a.kind, a.dir, a.match, step_ + std::max<std::uint64_t>(
                                                     a.duration, 1)});
      break;
    case FaultKind::kCapInFlight:
      cap_[di(a.dir)] = std::max<std::uint64_t>(a.count, 1);
      break;
    case FaultKind::kCrashSender:
      fx.crash_sender = true;
      ++stats_.crashes_requested;
      break;
    case FaultKind::kCrashReceiver:
      fx.crash_receiver = true;
      ++stats_.crashes_requested;
      break;
    case FaultKind::kTornWrite:
      fx.store_faults.push_back(
          {a.proc, sim::StoreFaultKind::kTornWrite, 1});
      ++stats_.store_faults_requested;
      break;
    case FaultKind::kLoseTail:
      fx.store_faults.push_back({a.proc, sim::StoreFaultKind::kLoseTail,
                                 std::max<std::uint64_t>(a.count, 1)});
      ++stats_.store_faults_requested;
      break;
    case FaultKind::kCorruptRecord:
      fx.store_faults.push_back(
          {a.proc, sim::StoreFaultKind::kCorruptRecord, 1});
      ++stats_.store_faults_requested;
      break;
    case FaultKind::kStaleSnapshot:
      fx.store_faults.push_back(
          {a.proc, sim::StoreFaultKind::kStaleSnapshot, 1});
      ++stats_.store_faults_requested;
      break;
    case FaultKind::kCorruptPayload: {
      // Mutate the first matching in-flight id: one copy is replaced by
      // id ^ mask (mask >= 1, so the twin always differs; XOR of two
      // non-negative int64s stays non-negative, keeping MsgId invariants).
      // On channels that forbid deletion (dup) the original copy also
      // survives — corruption there *adds* a convincing imposter.
      const sim::MsgId mask =
          static_cast<sim::MsgId>(std::max<std::uint64_t>(a.count, 1));
      for (sim::MsgId id : inner_->deliverable(a.dir)) {
        if (a.match != kAnyMsg && a.match != id) continue;
        if (inner_->copies(a.dir, id) == 0) continue;
        if (inner_->can_drop()) inner_->drop(a.dir, id);
        inner_->send(a.dir, id ^ mask);
        ++stats_.payloads_corrupted;
        ++fx.corruptions;
        break;
      }
      break;
    }
    case FaultKind::kForgeMessage: {
      // Inject copies of a message nobody sent.  The forged id is `match`
      // (kAnyMsg degrades to 0, the smallest alphabet symbol); sends go to
      // the inner channel directly so blackouts cannot swallow the forgery.
      const sim::MsgId forged = a.match == kAnyMsg ? 0 : a.match;
      const std::uint64_t copies = std::max<std::uint64_t>(a.count, 1);
      for (std::uint64_t i = 0; i < copies; ++i) {
        inner_->send(a.dir, forged);
        ++stats_.messages_forged;
        ++fx.corruptions;
      }
      break;
    }
    case FaultKind::kScrambleState:
      fx.scrambles.push_back({a.proc, a.count});
      ++stats_.scrambles_requested;
      break;
  }
  return true;
}

sim::TickEffect ChaosChannel::tick(const sim::ChannelTick& t) {
  step_ = t.step;
  sim::TickEffect fx = inner_->tick(t);  // stacked decorators compose
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    if (fired_[i]) continue;
    const FaultAction& a = plan_.actions[i];
    std::uint64_t watched = 0;
    switch (a.trigger.kind) {
      case TriggerKind::kStep: watched = t.step; break;
      case TriggerKind::kWrites: watched = t.items_written; break;
      case TriggerKind::kSends: watched = sends_seen_; break;
    }
    if (watched < a.trigger.at) continue;
    fired_[i] = fire(a, fx);
  }
  // Expired windows can be discarded (steps only move forward).
  std::erase_if(windows_, [&](const Window& w) { return step_ >= w.end_step; });
  return fx;
}

void ChaosChannel::send(sim::Dir dir, sim::MsgId msg) {
  ++sends_seen_;
  if (blacked_out(dir, msg)) {
    ++stats_.sends_blacked_out;
    return;
  }
  if (cap_[di(dir)] > 0 && deliverable_copies(dir) >= cap_[di(dir)]) {
    ++stats_.sends_shed;
    return;
  }
  inner_->send(dir, msg);
}

std::vector<sim::MsgId> ChaosChannel::deliverable(sim::Dir dir) const {
  if (frozen(dir)) return {};
  return inner_->deliverable(dir);
}

std::uint64_t ChaosChannel::copies(sim::Dir dir, sim::MsgId msg) const {
  if (frozen(dir)) return 0;
  return inner_->copies(dir, msg);
}

void ChaosChannel::deliver(sim::Dir dir, sim::MsgId msg) {
  STPX_EXPECT(!frozen(dir),
              "ChaosChannel: deliver during a freeze window");
  inner_->deliver(dir, msg);
}

void ChaosChannel::drop(sim::Dir dir, sim::MsgId msg) {
  inner_->drop(dir, msg);
}

std::unique_ptr<sim::IChannel> ChaosChannel::clone() const {
  return std::make_unique<ChaosChannel>(*this);
}

}  // namespace stpx::fault
