// Declarative fault plans: scripted adversarial schedules for the chaos
// layer.
//
// A FaultPlan is a timeline of actions, each armed by a *trigger* (a step
// count, an output-tape write count, or a channel-write count) and scoped by
// a direction and an optional message-id predicate.  The vocabulary covers
// the adversaries of the paper and its neighbours:
//
//   * drop / dup bursts  — the deletion and duplication moves of Theorems
//     1–2, fired as finite volleys instead of per-message policy;
//   * blackout windows   — asymmetric loss: every send in one direction
//     vanishes for a while (Graham-style repeated deletion);
//   * freeze windows     — the starving scheduler: nothing is deliverable in
//     one direction for a while (reordering taken to its fair-run limit);
//   * in-flight caps     — a bounded channel that silently sheds overflow;
//   * crash-restarts     — the self-stabilizing-channel setting: a process
//     loses its volatile state mid-run (output tape survives).
//
// Plans are plain data: comparable, text-serializable (one action per
// line), samplable from a seed, and shrinkable — which is what lets the
// soak harness delta-debug a failing schedule to a minimal counterexample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace stpx::fault {

/// Matches any message id (the default predicate).
inline constexpr sim::MsgId kAnyMsg = -1;

enum class TriggerKind : std::uint8_t {
  kStep,    // fire when the global step count reaches `at`
  kWrites,  // fire when the output tape holds `at` items
  kSends,   // fire when `at` messages have been handed to the channel (both
            // directions, counting sends swallowed by earlier faults)
};

constexpr const char* to_cstr(TriggerKind k) {
  switch (k) {
    case TriggerKind::kStep: return "step";
    case TriggerKind::kWrites: return "writes";
    case TriggerKind::kSends: return "sends";
  }
  return "?";
}

/// Fire-once arming condition: satisfied when the watched counter first
/// reaches `at`.
struct Trigger {
  TriggerKind kind = TriggerKind::kStep;
  std::uint64_t at = 0;

  friend bool operator==(const Trigger&, const Trigger&) = default;
};

enum class FaultKind : std::uint8_t {
  kDropBurst,  // delete up to `count` deliverable copies (matching `match`)
  kDupBurst,   // re-send up to `count` copies of deliverable ids (matching)
  kBlackout,   // for `duration` steps, sends in `dir` (matching) vanish
  kFreeze,     // for `duration` steps, nothing in `dir` is deliverable
  kCapInFlight,     // from trigger on, sends that would exceed `count`
                    // deliverable copies in `dir` are shed
  kCrashSender,     // crash-restart the sender process
  kCrashReceiver,   // crash-restart the receiver process
  kTornWrite,       // `proc`'s stable store: next append truncated
  kLoseTail,        // `proc`'s stable store: newest `count` records vanish
  kCorruptRecord,   // `proc`'s stable store: newest record's bytes flip
  kStaleSnapshot,   // `proc`'s stable store: roll back the last compaction
  kCorruptPayload,  // mutate an in-flight message in `dir` (id ^= count)
  kForgeMessage,    // inject `count` copies of a never-sent id into `dir`
  kScrambleState,   // overwrite `proc`'s volatile+durable state with
                    // adversarial bytes derived from `count` (the salt)
};

constexpr const char* to_cstr(FaultKind k) {
  switch (k) {
    case FaultKind::kDropBurst: return "drop";
    case FaultKind::kDupBurst: return "dup";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kFreeze: return "freeze";
    case FaultKind::kCapInFlight: return "cap";
    case FaultKind::kCrashSender: return "crash-sender";
    case FaultKind::kCrashReceiver: return "crash-receiver";
    case FaultKind::kTornWrite: return "torn-write";
    case FaultKind::kLoseTail: return "lose-tail";
    case FaultKind::kCorruptRecord: return "corrupt-record";
    case FaultKind::kStaleSnapshot: return "stale-snapshot";
    case FaultKind::kCorruptPayload: return "corrupt-payload";
    case FaultKind::kForgeMessage: return "forge-message";
    case FaultKind::kScrambleState: return "scramble-state";
  }
  return "?";
}

/// True for the storage-fault kinds, which are scoped by `proc` rather
/// than a channel direction.
constexpr bool is_store_fault(FaultKind k) {
  return k == FaultKind::kTornWrite || k == FaultKind::kLoseTail ||
         k == FaultKind::kCorruptRecord || k == FaultKind::kStaleSnapshot;
}

/// True for the transient-corruption kinds of the stabilization layer
/// (PR 4): faults that *lie* — mutate payloads, forge messages, or scramble
/// process state — rather than merely losing or replaying.
constexpr bool is_corruption_fault(FaultKind k) {
  return k == FaultKind::kCorruptPayload || k == FaultKind::kForgeMessage ||
         k == FaultKind::kScrambleState;
}

/// One scripted fault.  Fields beyond `kind`/`trigger` are meaningful only
/// where the kind uses them (see FaultKind); unused fields stay at their
/// defaults so structural equality is well-defined.
struct FaultAction {
  FaultKind kind = FaultKind::kDropBurst;
  Trigger trigger;
  sim::Dir dir = sim::Dir::kSenderToReceiver;  // channel-scoped kinds only
  sim::Proc proc = sim::Proc::kSender;         // storage-fault kinds only
  std::uint64_t count = 0;     // burst size / cap value (0 = unlimited burst)
                               // / lose-tail depth
  std::uint64_t duration = 0;  // window length in steps
  sim::MsgId match = kAnyMsg;  // message predicate for drop/dup/blackout

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// A timeline of scripted faults.  Actions whose triggers fire in the same
/// step execute in plan order.
struct FaultPlan {
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }
  std::size_t size() const { return actions.size(); }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// One-line-per-action text form, e.g.
///   "drop @step 120 dir SR count 3 match *"
///   "crash-receiver @writes 2"
///   "lose-tail @writes 2 proc receiver count 1"
std::string to_text(const FaultPlan& plan);

/// Inverse of to_text; throws ContractError on malformed input.
FaultPlan plan_from_text(const std::string& text);

/// Shape of randomly sampled plans.  All windows and bursts are finite, so
/// sampled plans are *fair*: they perturb but never permanently silence the
/// channel (caps are kept >= 2 for the same reason).
struct SamplerConfig {
  std::size_t min_actions = 1;
  std::size_t max_actions = 6;
  std::uint64_t step_horizon = 4000;  // triggers drawn from [0, horizon)
  std::uint64_t max_writes_trigger = 8;
  std::uint64_t max_burst = 6;        // drop/dup burst sizes in [1, max]
  std::uint64_t max_duration = 800;   // window lengths in [1, max]
  std::uint64_t min_cap = 2;          // in-flight caps in [min_cap, min_cap+6]
  /// Which fault kinds the sampler may emit.
  bool allow_drop = true;
  bool allow_dup = true;
  bool allow_blackout = true;
  bool allow_freeze = true;
  bool allow_cap = false;
  bool allow_crash_sender = false;
  bool allow_crash_receiver = false;
  /// Storage faults (meaningful only when the run attaches stable stores;
  /// the engine ignores requests against an absent store).
  bool allow_torn_write = false;
  bool allow_lose_tail = false;
  bool allow_corrupt_record = false;
  bool allow_stale_snapshot = false;
  std::uint64_t max_lose_tail = 2;  // lose-tail depths in [1, max]
  /// Transient-corruption faults (opt-in: they attack message bytes and
  /// process state, which only stabilizing protocols are expected to
  /// survive — see docs/STABILIZATION.md).
  bool allow_corrupt_payload = false;
  bool allow_forge_message = false;
  bool allow_scramble_state = false;
  std::uint64_t max_forge_id = 8;   // forged ids drawn from [0, max)
  std::uint64_t max_xor_mask = 64;  // corrupt-payload masks in [1, max]
};

/// Deterministically sample a plan (same rng state -> same plan).
FaultPlan sample_plan(Rng& rng, const SamplerConfig& cfg);

/// A sustained-fault timeline: one `kind` action of size `count`, scoped
/// to `dir`, every `period` sends, for triggers in [period, horizon].
/// This turns the burst-oriented grammar into steady-state loss or
/// duplication — e.g. periodic_plan(kDropBurst, SR, 10, 1, 100000) loses
/// every 10th frame.  The wire transport layer (net::LoopbackTransport)
/// runs its loss benches on exactly these plans; requires period >= 1.
FaultPlan periodic_plan(FaultKind kind, sim::Dir dir, std::uint64_t period,
                        std::uint64_t count, std::uint64_t horizon);

}  // namespace stpx::fault
