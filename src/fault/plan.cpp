#include "fault/plan.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace stpx::fault {

namespace {

const char* dir_token(sim::Dir d) {
  return d == sim::Dir::kSenderToReceiver ? "SR" : "RS";
}

bool uses_dir(FaultKind k) {
  return k != FaultKind::kCrashSender && k != FaultKind::kCrashReceiver &&
         k != FaultKind::kScrambleState && !is_store_fault(k);
}

bool uses_proc(FaultKind k) {
  return is_store_fault(k) || k == FaultKind::kScrambleState;
}

bool uses_match(FaultKind k) {
  return k == FaultKind::kDropBurst || k == FaultKind::kDupBurst ||
         k == FaultKind::kBlackout || k == FaultKind::kCorruptPayload ||
         k == FaultKind::kForgeMessage;
}

bool uses_count(FaultKind k) {
  return k == FaultKind::kDropBurst || k == FaultKind::kDupBurst ||
         k == FaultKind::kCapInFlight || k == FaultKind::kLoseTail ||
         k == FaultKind::kCorruptPayload || k == FaultKind::kForgeMessage ||
         k == FaultKind::kScrambleState;
}

bool uses_duration(FaultKind k) {
  return k == FaultKind::kBlackout || k == FaultKind::kFreeze;
}

}  // namespace

std::string to_text(const FaultPlan& plan) {
  std::ostringstream os;
  for (const FaultAction& a : plan.actions) {
    os << to_cstr(a.kind) << " @" << to_cstr(a.trigger.kind) << " "
       << a.trigger.at;
    if (uses_dir(a.kind)) os << " dir " << dir_token(a.dir);
    if (uses_proc(a.kind)) os << " proc " << sim::to_cstr(a.proc);
    if (uses_count(a.kind)) os << " count " << a.count;
    if (uses_duration(a.kind)) os << " len " << a.duration;
    if (uses_match(a.kind)) {
      os << " match ";
      if (a.match == kAnyMsg) {
        os << "*";
      } else {
        os << a.match;
      }
    }
    os << "\n";
  }
  return os.str();
}

FaultPlan plan_from_text(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::string where = " at line " + std::to_string(line_no);
    std::istringstream ls(line);
    std::string op;
    ls >> op;

    FaultAction a;
    if (op == "drop") {
      a.kind = FaultKind::kDropBurst;
    } else if (op == "dup") {
      a.kind = FaultKind::kDupBurst;
    } else if (op == "blackout") {
      a.kind = FaultKind::kBlackout;
    } else if (op == "freeze") {
      a.kind = FaultKind::kFreeze;
    } else if (op == "cap") {
      a.kind = FaultKind::kCapInFlight;
    } else if (op == "crash-sender") {
      a.kind = FaultKind::kCrashSender;
    } else if (op == "crash-receiver") {
      a.kind = FaultKind::kCrashReceiver;
    } else if (op == "torn-write") {
      a.kind = FaultKind::kTornWrite;
    } else if (op == "lose-tail") {
      a.kind = FaultKind::kLoseTail;
    } else if (op == "corrupt-record") {
      a.kind = FaultKind::kCorruptRecord;
    } else if (op == "stale-snapshot") {
      a.kind = FaultKind::kStaleSnapshot;
    } else if (op == "corrupt-payload") {
      a.kind = FaultKind::kCorruptPayload;
    } else if (op == "forge-message") {
      a.kind = FaultKind::kForgeMessage;
    } else if (op == "scramble-state") {
      a.kind = FaultKind::kScrambleState;
    } else {
      STPX_EXPECT(false, "plan_from_text: unknown fault '" + op + "'" + where);
    }

    std::string tok;
    ls >> tok;
    STPX_EXPECT(!tok.empty() && tok[0] == '@',
                "plan_from_text: expected @trigger" + where);
    const std::string trig = tok.substr(1);
    if (trig == "step") {
      a.trigger.kind = TriggerKind::kStep;
    } else if (trig == "writes") {
      a.trigger.kind = TriggerKind::kWrites;
    } else if (trig == "sends") {
      a.trigger.kind = TriggerKind::kSends;
    } else {
      STPX_EXPECT(false,
                  "plan_from_text: unknown trigger '" + trig + "'" + where);
    }
    ls >> a.trigger.at;
    STPX_EXPECT(!ls.fail(), "plan_from_text: missing trigger value" + where);

    while (ls >> tok) {
      if (tok == "dir") {
        std::string d;
        ls >> d;
        STPX_EXPECT(d == "SR" || d == "RS",
                    "plan_from_text: bad dir '" + d + "'" + where);
        a.dir = d == "SR" ? sim::Dir::kSenderToReceiver
                          : sim::Dir::kReceiverToSender;
      } else if (tok == "proc") {
        std::string p;
        ls >> p;
        STPX_EXPECT(p == "sender" || p == "receiver",
                    "plan_from_text: bad proc '" + p + "'" + where);
        a.proc = p == "sender" ? sim::Proc::kSender : sim::Proc::kReceiver;
      } else if (tok == "count") {
        ls >> a.count;
      } else if (tok == "len") {
        ls >> a.duration;
      } else if (tok == "match") {
        std::string m;
        ls >> m;
        a.match = m == "*" ? kAnyMsg
                           : static_cast<sim::MsgId>(std::stoll(m));
      } else {
        STPX_EXPECT(false,
                    "plan_from_text: unknown field '" + tok + "'" + where);
      }
      STPX_EXPECT(!ls.fail(), "plan_from_text: missing field value" + where);
    }
    plan.actions.push_back(a);
  }
  return plan;
}

FaultPlan sample_plan(Rng& rng, const SamplerConfig& cfg) {
  STPX_EXPECT(cfg.min_actions <= cfg.max_actions,
              "sample_plan: min_actions > max_actions");
  std::vector<FaultKind> menu;
  if (cfg.allow_drop) menu.push_back(FaultKind::kDropBurst);
  if (cfg.allow_dup) menu.push_back(FaultKind::kDupBurst);
  if (cfg.allow_blackout) menu.push_back(FaultKind::kBlackout);
  if (cfg.allow_freeze) menu.push_back(FaultKind::kFreeze);
  if (cfg.allow_cap) menu.push_back(FaultKind::kCapInFlight);
  if (cfg.allow_crash_sender) menu.push_back(FaultKind::kCrashSender);
  if (cfg.allow_crash_receiver) menu.push_back(FaultKind::kCrashReceiver);
  if (cfg.allow_torn_write) menu.push_back(FaultKind::kTornWrite);
  if (cfg.allow_lose_tail) menu.push_back(FaultKind::kLoseTail);
  if (cfg.allow_corrupt_record) menu.push_back(FaultKind::kCorruptRecord);
  if (cfg.allow_stale_snapshot) menu.push_back(FaultKind::kStaleSnapshot);
  if (cfg.allow_corrupt_payload) menu.push_back(FaultKind::kCorruptPayload);
  if (cfg.allow_forge_message) menu.push_back(FaultKind::kForgeMessage);
  if (cfg.allow_scramble_state) menu.push_back(FaultKind::kScrambleState);
  STPX_EXPECT(!menu.empty(), "sample_plan: every fault kind disabled");

  FaultPlan plan;
  const std::size_t n = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(cfg.min_actions),
                static_cast<std::int64_t>(cfg.max_actions)));
  for (std::size_t i = 0; i < n; ++i) {
    FaultAction a;
    a.kind = rng.pick(menu);
    // Write-count triggers arm on visible progress; step triggers cover the
    // early run where nothing is written yet.
    if (rng.chance(0.35) && cfg.max_writes_trigger > 0) {
      a.trigger = {TriggerKind::kWrites,
                   1 + rng.below(cfg.max_writes_trigger)};
    } else {
      a.trigger = {TriggerKind::kStep, rng.below(cfg.step_horizon)};
    }
    a.dir = rng.chance(0.5) ? sim::Dir::kSenderToReceiver
                            : sim::Dir::kReceiverToSender;
    if (uses_proc(a.kind)) {
      a.proc = rng.chance(0.5) ? sim::Proc::kSender : sim::Proc::kReceiver;
    }
    if (uses_count(a.kind)) {
      a.count = a.kind == FaultKind::kCapInFlight ? cfg.min_cap + rng.below(7)
                : a.kind == FaultKind::kLoseTail  ? 1 + rng.below(cfg.max_lose_tail)
                : a.kind == FaultKind::kCorruptPayload
                    ? 1 + rng.below(cfg.max_xor_mask)
                : a.kind == FaultKind::kScrambleState ? rng.below(1u << 16)
                                                      : 1 + rng.below(cfg.max_burst);
    }
    if (uses_duration(a.kind)) a.duration = 1 + rng.below(cfg.max_duration);
    if (a.kind == FaultKind::kForgeMessage) {
      // Forged ids come from the finite alphabet, not the wildcard: a forge
      // must name the lie it injects so plans replay exactly.
      a.match = static_cast<sim::MsgId>(rng.below(cfg.max_forge_id));
    }
    plan.actions.push_back(a);
  }
  return plan;
}

FaultPlan periodic_plan(FaultKind kind, sim::Dir dir, std::uint64_t period,
                        std::uint64_t count, std::uint64_t horizon) {
  STPX_EXPECT(period >= 1, "periodic_plan: period must be >= 1");
  FaultPlan plan;
  plan.actions.reserve(horizon / period);
  for (std::uint64_t at = period; at <= horizon; at += period) {
    FaultAction a;
    a.kind = kind;
    a.trigger = {TriggerKind::kSends, at};
    a.dir = dir;
    a.count = count;
    plan.actions.push_back(a);
  }
  return plan;
}

}  // namespace stpx::fault
