// ChaosChannel — a fault-injecting decorator around any sim::IChannel.
//
// The decorator forwards the IChannel contract to the wrapped channel and
// superimposes a scripted FaultPlan on it, advanced by the engine's
// per-step tick():
//
//   * burst actions (drop, dup) mutate the inner channel the moment their
//     trigger fires;
//   * window actions (blackout, freeze) intercept the contract for a span
//     of steps — blackout swallows send()s, freeze empties deliverable()
//     and copies() in one direction;
//   * cap actions shed send()s that would exceed a per-direction bound on
//     deliverable copies;
//   * crash actions are returned to the engine as TickEffects (only the
//     engine can reach the processes).
//
// Determinism: the decorator holds no RNG.  (plan, inner channel,
// scheduler, seed, input) fully determines a run, so any chaos failure is
// replayable from its FaultPlan text — the property the soak harness's
// minimizer relies on.  reset() re-arms the plan, clone() deep-copies inner
// and timeline state.
#pragma once

#include <memory>

#include "fault/plan.hpp"
#include "obs/probe.hpp"
#include "sim/channel_iface.hpp"

namespace stpx::fault {

/// Observability counters for reporting and tests.
struct ChaosStats {
  std::uint64_t actions_fired = 0;
  std::uint64_t copies_dropped = 0;     // by drop bursts
  std::uint64_t copies_duplicated = 0;  // by dup bursts
  std::uint64_t sends_blacked_out = 0;  // swallowed by blackout windows
  std::uint64_t sends_shed = 0;         // swallowed by in-flight caps
  std::uint64_t crashes_requested = 0;
  std::uint64_t store_faults_requested = 0;
  std::uint64_t payloads_corrupted = 0;   // in-flight ids mutated
  std::uint64_t messages_forged = 0;      // never-sent copies injected
  std::uint64_t scrambles_requested = 0;  // state scrambles handed upward
};

class ChaosChannel final : public sim::IChannel {
 public:
  ChaosChannel(std::unique_ptr<sim::IChannel> inner, FaultPlan plan);
  ChaosChannel(const ChaosChannel& other);
  ChaosChannel& operator=(const ChaosChannel&) = delete;

  void reset() override;
  sim::TickEffect tick(const sim::ChannelTick& t) override;
  void send(sim::Dir dir, sim::MsgId msg) override;
  std::vector<sim::MsgId> deliverable(sim::Dir dir) const override;
  std::uint64_t copies(sim::Dir dir, sim::MsgId msg) const override;
  void deliver(sim::Dir dir, sim::MsgId msg) override;
  bool can_drop() const override { return inner_->can_drop(); }
  void drop(sim::Dir dir, sim::MsgId msg) override;
  std::unique_ptr<sim::IChannel> clone() const override;
  std::string name() const override { return "chaos(" + inner_->name() + ")"; }

  const FaultPlan& plan() const { return plan_; }
  const ChaosStats& stats() const { return stats_; }
  const sim::IChannel& inner() const { return *inner_; }

  /// Report fired fault actions to `probe` (non-owning; null disables).
  /// stp::with_chaos() forwards the run's EngineConfig::probe here so fault
  /// events land in the same stream as the engine's.  clone() shares the
  /// pointer.
  void set_probe(obs::IProbe* probe) { probe_ = probe; }

 private:
  struct Window {
    FaultKind kind;  // kBlackout or kFreeze
    sim::Dir dir;
    sim::MsgId match;
    std::uint64_t end_step;  // active while step < end_step
  };

  bool frozen(sim::Dir dir) const;
  bool blacked_out(sim::Dir dir, sim::MsgId msg) const;
  std::uint64_t deliverable_copies(sim::Dir dir) const;
  /// Execute one triggered action.  Returns true when the action is spent;
  /// corrupt-payload returns false (stays armed) until a matching message
  /// is actually in flight to corrupt.
  bool fire(const FaultAction& a, sim::TickEffect& fx);

  std::unique_ptr<sim::IChannel> inner_;
  FaultPlan plan_;
  // --- timeline state (all re-armed by reset()) -------------------------
  std::uint64_t step_ = 0;
  std::uint64_t sends_seen_ = 0;  // attempted sends, both directions
  std::vector<bool> fired_;
  std::vector<Window> windows_;
  std::uint64_t cap_[2] = {0, 0};  // 0 = no cap active (per Dir)
  ChaosStats stats_;
  obs::IProbe* probe_ = nullptr;  // non-owning
};

}  // namespace stpx::fault
