// Fabric-level fault plans: scripted wall-clock adversaries for the
// service fabric.
//
// The engine-level FaultPlan (fault/plan.hpp) scripts logical-time faults
// against one protocol instance; a FabricFaultPlan scripts wall-clock
// faults against the fleet — crashes, heartbeat blackouts, data splits,
// host-level partitions, and rejoins.  The executor lives in
// stp/fabric_soak.cpp (in-process fleet) and bench/r7_fabric.cpp
// (fork/exec over UDP); this header is plain data + text round-trip, so
// a minimized counterexample can be written to a CI artifact and replayed
// verbatim.
//
// Scope vocabulary: backends are 1..N; host 0 is the router/nameserver
// (and client) side.  A partition names two host groups and severs
// everything between them for the window — the group containing host 0
// keeps the router, so in practice the backends in the OTHER group drop
// off the fabric (both directions for `partition`, one direction for
// `partition-oneway`: group_a -> group_b traffic is severed, answers
// still flow).
//
// Text grammar (one action per "; " or newline):
//
//   backend-crash@20ms b2
//   probe-blackout@5ms+80ms b1
//   router-split@10ms+30ms b3
//   partition@20ms+40ms 0,1|2,3
//   partition-oneway@20ms+40ms 0|2
//   rejoin@90ms b2
//
// Windows also parse in span form "@20ms..60ms" (equivalent to
// "@20ms+40ms"); serialization always emits the +len form.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace stpx::fault {

enum class FabricFaultKind : std::uint8_t {
  kBackendCrash = 0,  ///< kill the backend's mux mid-flight
  kProbeBlackout,     ///< heartbeats vanish, data flows (false suspicion)
  kRouterSplit,       ///< data severed, heartbeats answer (alive but dark)
  kPartition,         ///< host split: everything severed both ways
  kPartitionOneWay,   ///< host split: group_a -> group_b severed only
  kRejoin,            ///< a crashed backend announces a fresh generation
};

constexpr const char* to_cstr(FabricFaultKind k) {
  switch (k) {
    case FabricFaultKind::kBackendCrash: return "backend-crash";
    case FabricFaultKind::kProbeBlackout: return "probe-blackout";
    case FabricFaultKind::kRouterSplit: return "router-split";
    case FabricFaultKind::kPartition: return "partition";
    case FabricFaultKind::kPartitionOneWay: return "partition-oneway";
    case FabricFaultKind::kRejoin: return "rejoin";
  }
  return "?";
}

/// True for the kinds scoped by host groups rather than one backend.
constexpr bool is_partition_fault(FabricFaultKind k) {
  return k == FabricFaultKind::kPartition ||
         k == FabricFaultKind::kPartitionOneWay;
}

/// One scripted fabric fault.  `backend` scopes the single-backend kinds;
/// `group_a`/`group_b` scope the partition kinds (host 0 = router side).
/// Unused fields stay at their defaults so structural equality is
/// well-defined.
struct FabricFaultAction {
  FabricFaultKind kind = FabricFaultKind::kBackendCrash;
  std::uint32_t backend = 1;
  /// When the fault fires, measured from traffic start.
  std::chrono::milliseconds at{0};
  /// Window length for blackout/split/partition (crash and rejoin are
  /// instantaneous).
  std::chrono::milliseconds len{0};
  std::vector<std::uint32_t> group_a;
  std::vector<std::uint32_t> group_b;

  friend bool operator==(const FabricFaultAction&,
                         const FabricFaultAction&) = default;
};

struct FabricFaultPlan {
  std::vector<FabricFaultAction> actions;

  bool empty() const { return actions.empty(); }
  std::size_t size() const { return actions.size(); }

  friend bool operator==(const FabricFaultPlan&,
                         const FabricFaultPlan&) = default;
};

/// Canonical text form (see file comment); "-" for the empty plan.
std::string to_text(const FabricFaultPlan& plan);

/// Inverse of to_text — also accepts "@start..end" window spans.  Throws
/// ContractError on malformed input.
FabricFaultPlan fabric_plan_from_text(const std::string& text);

}  // namespace stpx::fault
