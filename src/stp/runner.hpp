// Experiment runner: wire a protocol pair, channel, and scheduler into the
// engine and sweep whole sequence families, aggregating safety/liveness
// verdicts and cost statistics.
//
// Everything is factory-based so a sweep can build a fresh, independently
// seeded system per (input, trial) without shared mutable state.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "proto/suite.hpp"
#include "seq/family.hpp"
#include "sim/engine.hpp"

namespace stpx::stp {

/// Builders for the four components of a system.  Scheduler and channel
/// builders receive a trial seed so randomized components are reproducible.
struct SystemSpec {
  std::function<proto::ProtocolPair()> protocols;
  std::function<std::unique_ptr<sim::IChannel>(std::uint64_t seed)> channel;
  std::function<std::unique_ptr<sim::IScheduler>(std::uint64_t seed)>
      scheduler;
  sim::EngineConfig engine;
};

/// Build an engine for one trial.
sim::Engine make_engine(const SystemSpec& spec, std::uint64_t seed);

/// Run one (input, seed) trial.
sim::RunResult run_one(const SystemSpec& spec, const seq::Sequence& x,
                       std::uint64_t seed);

/// One failed trial, kept for diagnosis.
struct TrialFailure {
  seq::Sequence input;
  std::uint64_t seed = 0;
  bool safety = false;  // true: safety violation; false: incomplete (liveness)
  std::string detail;
  /// Structured verdict (distinguishes stalled from budget-exhausted, which
  /// `safety == false` alone conflates).
  sim::RunVerdict verdict = sim::RunVerdict::kBudgetExhausted;
};

/// Aggregate verdict over a family sweep.
struct SweepResult {
  std::size_t trials = 0;
  std::size_t safety_failures = 0;
  /// Safety violations whose first bad write came at or after the first
  /// crash-restart — i.e. the recovery path, not the protocol, is at fault.
  std::size_t recovery_failures = 0;
  /// Runs struck by an injected transient corruption that failed the
  /// suffix-safety convergence criterion (see docs/STABILIZATION.md).
  std::size_t stabilization_failures = 0;
  std::size_t incomplete = 0;  // liveness failures = stalled + exhausted
  /// Per-verdict breakdown of `incomplete` (watchdog stall vs step budget).
  std::size_t stalled = 0;
  std::size_t exhausted = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_msgs_sent = 0;
  std::uint64_t total_msgs_delivered = 0;
  std::vector<TrialFailure> failures;
  /// Raw observability samples (one per write / per trial) for reports.
  std::vector<std::uint64_t> write_latencies;
  std::vector<std::uint64_t> trial_steps;

  bool all_ok() const {
    return safety_failures == 0 && recovery_failures == 0 &&
           stabilization_failures == 0 && incomplete == 0;
  }
  double avg_steps() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(total_steps) /
                             static_cast<double>(trials);
  }
  double msgs_per_trial() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(total_msgs_sent) /
                             static_cast<double>(trials);
  }

  /// Fold another sweep into this one (bench binaries aggregate the sweeps
  /// of all their parameter points into one report).
  void merge(const SweepResult& other);
};

/// Run every member of `family` once per seed in `seeds`.
SweepResult sweep_family(const SystemSpec& spec, const seq::Family& family,
                         const std::vector<std::uint64_t>& seeds);

/// Run a single input once per seed (convenience for cost experiments).
SweepResult sweep_input(const SystemSpec& spec, const seq::Sequence& x,
                        const std::vector<std::uint64_t>& seeds);

/// Condense a sweep into the machine-readable report schema (verdict
/// breakdown, exact latency percentiles).  `ok` is set from all_ok().
obs::SweepReport report_of(const std::string& name, const SweepResult& r);

}  // namespace stpx::stp
