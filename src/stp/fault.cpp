#include "stp/fault.hpp"

#include <algorithm>

#include "channel/del_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "util/expect.hpp"

namespace stpx::stp {

namespace {

/// Drop every in-flight copy, whatever concrete channel is installed.
std::uint64_t drop_everything(sim::IChannel& ch) {
  if (auto* del = dynamic_cast<channel::DelChannel*>(&ch)) {
    return del->drop_everything();
  }
  if (auto* fifo = dynamic_cast<channel::FifoChannel*>(&ch)) {
    return fifo->drop_everything();
  }
  STPX_EXPECT(false, "measure_fault_recovery: channel '" + ch.name() +
                         "' cannot drop in-flight messages");
  return 0;  // unreachable
}

}  // namespace

FaultRecovery measure_fault_recovery(const SystemSpec& spec,
                                     const seq::Sequence& x,
                                     const FaultExperiment& fx,
                                     std::uint64_t seed) {
  sim::Engine engine = make_engine(spec, seed);
  engine.begin(x);

  FaultRecovery out;
  const std::uint64_t step_cap =
      fx.max_steps == 0 ? engine.config().max_steps
                        : std::min(fx.max_steps, engine.config().max_steps);

  // Phase 1: run until the trigger point.
  while (engine.steps() < step_cap && !engine.completed()) {
    if (engine.output().size() >= fx.fault_after_writes) break;
    engine.step_once();
  }
  if (engine.completed() || engine.output().size() < fx.fault_after_writes) {
    // Finished (or stalled) before the fault could fire; report as-is.
    out.completed = engine.completed();
    return out;
  }

  // Inject: delete everything currently in flight.
  out.fault_injected = true;
  out.fault_step = engine.steps();
  out.copies_dropped = drop_everything(engine.channel());

  // Phase 2: run on, watching for the next write and for completion.
  const std::size_t writes_at_fault = engine.output().size();
  while (engine.steps() < step_cap && engine.safety_ok()) {
    if (!out.recovered && engine.output().size() > writes_at_fault) {
      out.recovered = true;
      out.recovery_steps = engine.steps() - out.fault_step;
    }
    if (engine.completed()) break;
    engine.step_once();
  }
  // A run can complete exactly at the cap; account for the final state.
  if (!out.recovered && engine.output().size() > writes_at_fault) {
    out.recovered = true;
    out.recovery_steps = engine.steps() - out.fault_step;
  }
  out.completed = engine.completed();
  if (out.completed) {
    out.steps_to_completion = engine.steps() - out.fault_step;
  }
  return out;
}

}  // namespace stpx::stp
