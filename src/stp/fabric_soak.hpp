// Fabric soak harness: wall-clock fault plans against a live service
// fabric, with counterexample minimization.
//
// The engine-level soak (stp/soak.hpp) scripts faults in *logical* time
// (channel steps) against one protocol instance; the fabric soak scripts
// them in *wall-clock* time against the whole fleet, because the faults
// under test — a backend crash, a probe blackout, a split router, a host
// partition, a rejoin — are properties of running threads and heartbeat
// timeouts, not of a deterministic step function.  What stays
// deterministic is the acceptance criterion, which is timing-insensitive:
//
//   * every client session completes (exact copy, live checks), and
//   * the merged per-backend trace attests prefix safety per session
//     ACROSS any re-home or reclaim (the offline attestor re-derives the
//     paper's acceptance criterion from the trace alone), and
//   * no session anywhere ends kSafetyViolation / kRecoveryViolation.
//
// A plan that defeats those is a real finding regardless of scheduling
// jitter.  minimize_fabric_plan() shrinks a failing plan to 1-minimal by
// action removal (the fabric analogue of stp::minimize_plan), re-running
// the soak per probe.
//
// The plan vocabulary itself (kinds, scopes, text round-trip) lives in
// fault/fabric_plan.hpp so a minimized counterexample can be written to a
// CI artifact and replayed verbatim; this header re-exports the names the
// existing harnesses use.  The client here runs over a ResolverTransport,
// so every soak also exercises the nameserver protocol: leases on
// connect, epoch-fenced redirects on ownership changes.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/trace_pipeline.hpp"
#include "fabric/fabric.hpp"
#include "fabric/resolver.hpp"
#include "fault/fabric_plan.hpp"

namespace stpx::stp {

// Historical home of the fabric plan grammar; the types moved to
// fault/fabric_plan.hpp (pure data + text round-trip) and these aliases
// keep every existing caller compiling unchanged.
using FabricFaultKind = fault::FabricFaultKind;
using FabricFaultAction = fault::FabricFaultAction;
using FabricFaultPlan = fault::FabricFaultPlan;
using fault::is_partition_fault;
using fault::to_cstr;

/// "backend-crash@20ms b2; probe-blackout@5ms+80ms b1" (empty plan: "-").
/// Delegates to fault::to_text; fault::fabric_plan_from_text inverts it.
std::string to_string(const FabricFaultPlan& plan);

struct FabricSoakConfig {
  std::size_t backends = 3;
  std::size_t sessions = 24;
  std::size_t seq_len = 5;
  int domain = 8;
  fabric::HealthConfig health;
  /// Pacing template for every cell and the client (session_stores /
  /// backend_id / probe are overwritten per mux).  Throttle it
  /// (steps_per_sweep, max_inflight, sweep_interval) so scripted faults
  /// land mid-traffic instead of after a sub-millisecond sprint.
  net::MuxConfig mux;
  /// Wait for completion after the last scripted action.
  std::chrono::milliseconds drain_timeout{60'000};
  FabricFaultPlan plan;
};

struct FabricSoakResult {
  bool ok = false;
  std::string failure;  ///< first violated criterion; empty when ok
  std::size_t completed = 0;      ///< client sessions that completed
  std::size_t live_violations = 0;  ///< safety + recovery, client + cells
  std::size_t rehomes = 0;          ///< successful fence-and-re-homes
  std::size_t rejoins = 0;          ///< kJoin handshakes acked
  std::size_t reclaims = 0;         ///< successful rejoin-and-reclaims
  std::vector<std::uint64_t> restore_latency_us;  ///< per re-home absorb
  std::vector<std::uint64_t> reclaim_latency_us;  ///< per reclaim absorb
  fabric::RouterStats router;      ///< drop/redirect accounting
  fabric::ResolverStats resolver;  ///< client-side lease accounting
  analysis::TraceReport trace;  ///< merged-trace attestation report
  /// The merged per-backend trace the attestation ran over, in merge
  /// order — what a failing run writes to a CI artifact so the verdict
  /// can be re-derived offline.
  std::vector<net::TraceEvent> merged_trace;
};

/// One full fabric run under `cfg.plan` (see file comment).
FabricSoakResult run_fabric_soak(const FabricSoakConfig& cfg);

/// Deterministic small random plan for one sweep trial: 1-3 actions,
/// crashes capped at backends-1 so a survivor always exists.
FabricFaultPlan sample_fabric_plan(std::uint64_t seed,
                                   std::size_t backends);

/// Deterministic resilience plan: a crash → rejoin pair (so every trial
/// exercises reclaim across three generations of ownership) plus up to
/// two ambient faults — a router-side partition window and/or a probe
/// blackout.  Partitions scope host 0 (router side) against one backend.
FabricFaultPlan sample_resilience_plan(std::uint64_t seed,
                                       std::size_t backends);

struct FabricSoakFailure {
  std::uint64_t seed = 0;
  FabricFaultPlan plan;
  std::string failure;
};

struct FabricSoakReport {
  std::size_t trials = 0;
  std::size_t completed_trials = 0;
  std::size_t total_rehomes = 0;
  std::size_t total_reclaims = 0;
  std::vector<FabricSoakFailure> failures;
  bool clean() const { return failures.empty(); }
};

/// One run_fabric_soak per seed, plan sampled per seed.  `resilience`
/// switches the sampler from sample_fabric_plan (crash/blackout/split)
/// to sample_resilience_plan (crash → rejoin under partitions).
FabricSoakReport fabric_soak_sweep(const FabricSoakConfig& base,
                                   const std::vector<std::uint64_t>& seeds,
                                   bool resilience = false);

struct MinimizedFabricPlan {
  FabricFaultPlan plan;
  std::size_t probe_runs = 0;  ///< soak runs spent shrinking
};

/// Shrink `failing` (which makes run_fabric_soak fail under `cfg`) to a
/// 1-minimal failing plan: removing any single remaining action makes
/// the soak pass.  Each probe is a full fabric run — budget accordingly.
MinimizedFabricPlan minimize_fabric_plan(const FabricSoakConfig& cfg,
                                         const FabricFaultPlan& failing);

}  // namespace stpx::stp
