#include "stp/fairness.hpp"

#include <map>

namespace stpx::stp {

FairnessProfile measure_fairness(const SystemSpec& spec,
                                 const seq::Sequence& x,
                                 const std::vector<std::uint64_t>& seeds) {
  using sim::ActionKind;

  FairnessProfile profile;
  std::vector<double> latencies[2];

  SystemSpec local = spec;
  local.engine.record_trace = true;

  for (std::uint64_t seed : seeds) {
    const sim::RunResult run = run_one(local, x, seed);
    ++profile.runs;

    // Delivery latency: for each direction, remember the earliest
    // outstanding send step per message id; a delivery of that id closes
    // the oldest one (FIFO pairing is the natural reading for latency).
    std::map<sim::MsgId, std::vector<std::uint64_t>> outstanding[2];
    std::uint64_t last_sender_step = 0, last_receiver_step = 0;

    for (const sim::TraceEvent& ev : run.trace) {
      switch (ev.action.kind) {
        case ActionKind::kSenderStep:
          profile.max_sender_gap = std::max(profile.max_sender_gap,
                                            ev.step - last_sender_step);
          last_sender_step = ev.step;
          if (ev.did_send) outstanding[0][ev.sent].push_back(ev.step);
          break;
        case ActionKind::kReceiverStep:
          profile.max_receiver_gap = std::max(profile.max_receiver_gap,
                                              ev.step - last_receiver_step);
          last_receiver_step = ev.step;
          if (ev.did_send) outstanding[1][ev.sent].push_back(ev.step);
          break;
        case ActionKind::kDeliverToReceiver:
        case ActionKind::kDeliverToSender: {
          const int dir =
              ev.action.kind == ActionKind::kDeliverToReceiver ? 0 : 1;
          auto it = outstanding[dir].find(ev.action.msg);
          if (it != outstanding[dir].end() && !it->second.empty()) {
            latencies[dir].push_back(
                static_cast<double>(ev.step - it->second.front()));
            it->second.erase(it->second.begin());
          }
          break;
        }
      }
    }
  }
  profile.delivery_latency[0] = analysis::summarize(std::move(latencies[0]));
  profile.delivery_latency[1] = analysis::summarize(std::move(latencies[1]));
  return profile;
}

}  // namespace stpx::stp
