// Scheduler fairness measurement (the operational side of §2.4's ℱ).
//
// The impossibility proofs need only Property 2 (every prefix extends to a
// fair run); the *achievability* results need actual fair runs, which our
// experiments realize with seeded randomized schedulers.  This module
// quantifies how fair they really are:
//
//   * delivery latency — steps between a message's send and a delivery of
//     that id (per direction): fair schedulers keep the tail bounded;
//   * process starvation — longest gap between consecutive steps of the
//     same process: the FairRandomScheduler's aging override caps this at
//     its starvation_limit, which we verify empirically.
//
// These numbers also calibrate experiment budgets: a liveness verdict within
// `max_steps` is only meaningful when max_steps dwarfs the latency tail.
#pragma once

#include "analysis/stats.hpp"
#include "stp/runner.hpp"

namespace stpx::stp {

struct FairnessProfile {
  /// Send→first-subsequent-delivery-of-that-id gaps, per direction.
  analysis::Summary delivery_latency[2];
  /// Longest run of steps during which a process was never scheduled.
  std::uint64_t max_sender_gap = 0;
  std::uint64_t max_receiver_gap = 0;
  std::size_t runs = 0;
};

/// Measure fairness over `seeds` runs of input `x` (runs are recorded with
/// traces internally; the spec's record flags are overridden).
FairnessProfile measure_fairness(const SystemSpec& spec,
                                 const seq::Sequence& x,
                                 const std::vector<std::uint64_t>& seeds);

}  // namespace stpx::stp
