// Attack synthesis: the executable form of the impossibility theorems.
//
// Theorem 1 (and its deletion twin, Theorem 2) say that once |𝒳| exceeds
// alpha(m), *every* protocol — even one that knows its input in advance —
// has runs violating safety or liveness.  The proof builds, by induction,
// pairs of runs over distinct inputs that the receiver cannot tell apart
// (the decisive tuples).  This module makes the construction concrete for
// a given protocol implementation:
//
//  1. *Skeleton extraction.*  Run each input X benignly and record the
//     sequence of distinct S→R messages first sent — the protocol's de
//     facto encoding word μ(X).  Words are repetition-free, so at most
//     alpha(m) distinct ones exist; with |𝒳| > alpha(m) some two inputs
//     collide (pigeonhole), or some input cannot even finish benignly.
//
//  2. *Mirror driving.*  For a colliding pair (X_a, X_b), co-simulate the
//     two systems while giving the receiver an IDENTICAL view: deliver only
//     messages available in both runs, step R in lockstep, and let each
//     sender receive its own acks (invisible to R).  Every action is legal
//     in both runs, so both traces are genuine runs of the protocol.  The
//     receiver, unable to distinguish, writes the same output Y in both:
//       * if Y stops being a prefix of X_a or of X_b → SAFETY violation,
//         with the exact schedule recorded;
//       * if both runs quiesce with equal outputs, distinct inputs, and the
//         stalled run's sender has sent nothing the twin did not also send
//         → a live DECISIVE STALL: the operational image of the paper's
//         dup-decisive tuple {(r_a,t), (r_b,t)} with M = all sent messages;
//         by Lemma 1 no fair continuation can deliver the missing items
//         without first breaking the indistinguishability — i.e., liveness
//         is unachievable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "seq/encoding.hpp"
#include "stp/runner.hpp"

namespace stpx::stp {

struct AttackBudget {
  std::uint64_t skeleton_steps = 50000;  // per-input benign run budget
  std::uint64_t mirror_rounds = 2000;    // co-simulation rounds per pair
  std::uint64_t stall_rounds = 32;       // quiescent rounds before verdict
};

/// The protocol's observable encoding of one input.
struct Skeleton {
  seq::MsgWord word;  // distinct S->R messages in first-send order
  bool completed = false;
  bool safety_ok = true;  // did the benign run stay safe?
};

/// Benignly run `x` and extract its skeleton.
Skeleton extract_skeleton(const SystemSpec& spec, const seq::Sequence& x,
                          std::uint64_t budget_steps);

struct AttackResult {
  enum class Kind {
    kSafetyViolation,  // concrete run writes a wrong item
    kDecisiveStall,    // dup/del-decisive pair: liveness unachievable
    kLivenessStall,    // a single input cannot finish even benignly
    kNone,             // budget exhausted without a witness
  };
  Kind kind = Kind::kNone;
  seq::Sequence x_a, x_b;  // witness inputs (x_b empty for kLivenessStall)
  seq::Sequence y_a, y_b;  // outputs at the end of the attack
  std::uint64_t rounds = 0;
  std::string detail;

  bool found() const { return kind != Kind::kNone; }
};

const char* to_cstr(AttackResult::Kind kind);

/// Co-simulate one pair with mirrored receiver views.
AttackResult mirror_attack_pair(const SystemSpec& spec,
                                const seq::Sequence& x_a,
                                const seq::Sequence& x_b,
                                const AttackBudget& budget);

/// Full synthesis over a family: skeletons → pigeonhole candidates →
/// mirror attacks.  Returns the strongest witness found (safety violation
/// preferred over decisive stall over liveness stall).
AttackResult find_attack(const SystemSpec& spec, const seq::Family& family,
                         const AttackBudget& budget);

/// Bounded-exhaustive mirror search: enumerate EVERY mirrored schedule of
/// the pair (all interleavings of sender steps, ack deliveries, and
/// receiver-view events kept identical across the two runs) up to
/// `max_depth` actions.  Unlike the greedy mirror driver this is a proof
/// procedure: if it exhausts the space without a violation, no mirrored
/// schedule of that depth can break safety for this pair — the
/// model-checking complement to the synthesizer's witness search.
struct ExhaustiveMirrorResult {
  bool violation_found = false;
  seq::Sequence y_at_violation;   // receiver output when safety broke
  std::size_t states_explored = 0;
  bool exhausted = false;  // full space covered within the budgets
};

ExhaustiveMirrorResult exhaustive_mirror_search(const SystemSpec& spec,
                                                const seq::Sequence& x_a,
                                                const seq::Sequence& x_b,
                                                std::uint64_t max_depth,
                                                std::size_t max_states);

}  // namespace stpx::stp
