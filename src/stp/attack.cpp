#include "stp/attack.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "sim/trace.hpp"
#include "util/expect.hpp"

namespace stpx::stp {

using sim::Action;
using sim::ActionKind;
using sim::Dir;

const char* to_cstr(AttackResult::Kind kind) {
  switch (kind) {
    case AttackResult::Kind::kSafetyViolation: return "safety-violation";
    case AttackResult::Kind::kDecisiveStall: return "decisive-stall";
    case AttackResult::Kind::kLivenessStall: return "liveness-stall";
    case AttackResult::Kind::kNone: return "none";
  }
  return "?";
}

Skeleton extract_skeleton(const SystemSpec& spec, const seq::Sequence& x,
                          std::uint64_t budget_steps) {
  SystemSpec local = spec;
  local.engine.record_trace = true;
  local.engine.max_steps = budget_steps;
  const sim::RunResult r = run_one(local, x, /*seed=*/0);

  Skeleton out;
  out.completed = r.completed && r.safety_ok;
  out.safety_ok = r.safety_ok;
  std::set<sim::MsgId> seen;
  for (const sim::TraceEvent& ev : r.trace) {
    if (ev.action.kind == ActionKind::kSenderStep && ev.did_send &&
        seen.insert(ev.sent).second) {
      out.word.push_back(static_cast<int>(ev.sent));
    }
  }
  return out;
}

namespace {

/// Sorted set of distinct S->R messages ever *sent* in an engine's run.
/// For a dup channel deliverable() is exactly the ever-sent set; for a del
/// channel we track it from outside via the engine's trace-free stats — so
/// instead we maintain it incrementally in the driver (below) by observing
/// sender steps.
struct MirrorState {
  std::set<sim::MsgId> sent_a, sent_b;  // S->R messages ever sent, per run
};

/// One mirrored round.  Returns a progress signature.
std::string mirror_round(sim::Engine& ea, sim::Engine& eb, MirrorState& st) {
  // 1. Step both senders (invisible to R).
  auto step_sender = [](sim::Engine& e, std::set<sim::MsgId>& sent) {
    // Observe what the sender emits by diffing the channel through apply.
    const std::uint64_t before = e.result().stats.sent[0];
    e.apply(Action{ActionKind::kSenderStep, -1});
    if (e.result().stats.sent[0] > before) {
      // The just-sent message is deliverable (or at least was sent); find it
      // by scanning deliverable ids not yet recorded, falling back to any.
      for (sim::MsgId m : e.channel().deliverable(Dir::kSenderToReceiver)) {
        sent.insert(m);
      }
    }
  };
  step_sender(ea, st.sent_a);
  step_sender(eb, st.sent_b);

  // 2. Deliver every message available in BOTH runs to R (same order).
  std::vector<sim::MsgId> da =
      ea.channel().deliverable(Dir::kSenderToReceiver);
  std::vector<sim::MsgId> db =
      eb.channel().deliverable(Dir::kSenderToReceiver);
  std::vector<sim::MsgId> common;
  std::set_intersection(da.begin(), da.end(), db.begin(), db.end(),
                        std::back_inserter(common));
  for (sim::MsgId m : common) {
    if (ea.channel().copies(Dir::kSenderToReceiver, m) == 0) continue;
    if (eb.channel().copies(Dir::kSenderToReceiver, m) == 0) continue;
    ea.apply(Action{ActionKind::kDeliverToReceiver, m});
    eb.apply(Action{ActionKind::kDeliverToReceiver, m});
  }

  // 3. Step R in lockstep.
  ea.apply(Action{ActionKind::kReceiverStep, -1});
  eb.apply(Action{ActionKind::kReceiverStep, -1});

  // 4. Deliver all acks to each sender independently (R cannot see this).
  auto flush_acks = [](sim::Engine& e) {
    for (sim::MsgId m : e.channel().deliverable(Dir::kReceiverToSender)) {
      if (e.channel().copies(Dir::kReceiverToSender, m) > 0) {
        e.apply(Action{ActionKind::kDeliverToSender, m});
      }
    }
  };
  flush_acks(ea);
  flush_acks(eb);

  // Progress signature: new *information* only — outputs and the distinct
  // message sets.  Mechanical retransmissions and re-acks (del-mode
  // protocols repeat them forever) are not progress.
  std::ostringstream sig;
  sig << ea.output().size() << ':' << eb.output().size() << ':'
      << st.sent_a.size() << ':' << st.sent_b.size();
  return sig.str();
}

}  // namespace

AttackResult mirror_attack_pair(const SystemSpec& spec,
                                const seq::Sequence& x_a,
                                const seq::Sequence& x_b,
                                const AttackBudget& budget) {
  SystemSpec local = spec;
  local.engine.record_histories = true;
  local.engine.stop_when_complete = false;
  // Generous cap: the driver applies a handful of actions per round.
  local.engine.max_steps =
      budget.mirror_rounds * 64 + local.engine.max_steps;

  sim::Engine ea = make_engine(local, /*seed=*/0);
  sim::Engine eb = make_engine(local, /*seed=*/0);
  ea.begin(x_a);
  eb.begin(x_b);

  MirrorState st;
  AttackResult out;
  out.x_a = x_a;
  out.x_b = x_b;

  std::string last_sig;
  std::uint64_t stall = 0;
  for (std::uint64_t round = 0; round < budget.mirror_rounds; ++round) {
    const std::string sig = mirror_round(ea, eb, st);
    out.rounds = round + 1;

    // The receiver's views must be identical by construction.
    STPX_EXPECT(
        sim::history_key(ea.receiver_history()) ==
            sim::history_key(eb.receiver_history()),
        "mirror_attack_pair: receiver views diverged (driver bug)");

    if (!ea.safety_ok() || !eb.safety_ok()) {
      out.kind = AttackResult::Kind::kSafetyViolation;
      out.y_a = ea.output();
      out.y_b = eb.output();
      std::ostringstream os;
      os << "receiver, seeing identical histories, wrote "
         << seq::to_string(!ea.safety_ok() ? ea.output() : eb.output())
         << " — not a prefix of "
         << seq::to_string(!ea.safety_ok() ? x_a : x_b);
      out.detail = os.str();
      return out;
    }

    if (sig == last_sig) {
      if (++stall >= budget.stall_rounds) break;
    } else {
      stall = 0;
      last_sig = sig;
    }
  }

  out.y_a = ea.output();
  out.y_b = eb.output();

  const bool incomplete = !ea.completed() || !eb.completed();
  const bool subset_ab =
      std::includes(st.sent_b.begin(), st.sent_b.end(), st.sent_a.begin(),
                    st.sent_a.end()) ||
      std::includes(st.sent_a.begin(), st.sent_a.end(), st.sent_b.begin(),
                    st.sent_b.end());
  if (stall >= budget.stall_rounds && incomplete &&
      ea.output() == eb.output() && subset_ab) {
    out.kind = AttackResult::Kind::kDecisiveStall;
    std::ostringstream os;
    os << "quiescent decisive pair: R cannot tell the runs apart (equal "
       << "histories), outputs both " << seq::to_string(ea.output())
       << ", inputs differ, and the stalled sender has sent nothing its "
       << "twin did not; by Lemma 1 no fair continuation can deliver the "
       << "missing items without first breaking safety";
    out.detail = os.str();
    return out;
  }

  out.kind = AttackResult::Kind::kNone;
  out.detail = "pair not exploitable within budget";
  return out;
}

ExhaustiveMirrorResult exhaustive_mirror_search(const SystemSpec& spec,
                                                const seq::Sequence& x_a,
                                                const seq::Sequence& x_b,
                                                std::uint64_t max_depth,
                                                std::size_t max_states) {
  SystemSpec local = spec;
  local.engine.record_histories = true;
  local.engine.stop_when_complete = false;
  local.engine.max_steps = max_depth * 2 + 8;

  struct Node {
    std::unique_ptr<sim::Engine> ea, eb;
    std::uint64_t depth;
  };

  auto key_of = [](const Node& n) {
    // Receiver views are identical by construction, so one copy suffices.
    return sim::history_key(n.ea->sender_history()) + '|' +
           sim::history_key(n.eb->sender_history()) + '|' +
           sim::history_key(n.ea->receiver_history());
  };

  ExhaustiveMirrorResult result;
  Node root;
  root.ea = std::make_unique<sim::Engine>(make_engine(local, 0));
  root.eb = std::make_unique<sim::Engine>(make_engine(local, 0));
  root.ea->begin(x_a);
  root.eb->begin(x_b);
  root.depth = 0;

  std::deque<Node> frontier;
  std::set<std::string> visited;
  visited.insert(key_of(root));
  frontier.push_back(std::move(root));
  result.exhausted = true;

  while (!frontier.empty()) {
    Node node = std::move(frontier.front());
    frontier.pop_front();
    if (++result.states_explored > max_states) {
      result.exhausted = false;
      break;
    }
    if (!node.ea->safety_ok() || !node.eb->safety_ok()) {
      result.violation_found = true;
      result.y_at_violation = node.ea->safety_ok() ? node.eb->output()
                                                   : node.ea->output();
      return result;
    }
    if (node.depth >= max_depth) {
      result.exhausted = false;  // deeper schedules exist
      continue;
    }

    // Successor moves.  Receiver-invisible moves touch one engine;
    // receiver-visible moves are mirrored into both.
    struct Move {
      enum class Kind { kStepA, kStepB, kAckA, kAckB, kMirrorR, kMirrorDel };
      Kind kind;
      sim::MsgId msg = -1;
    };
    std::vector<Move> moves;
    moves.push_back({Move::Kind::kStepA, -1});
    moves.push_back({Move::Kind::kStepB, -1});
    for (sim::MsgId ack :
         node.ea->channel().deliverable(Dir::kReceiverToSender)) {
      moves.push_back({Move::Kind::kAckA, ack});
    }
    for (sim::MsgId ack :
         node.eb->channel().deliverable(Dir::kReceiverToSender)) {
      moves.push_back({Move::Kind::kAckB, ack});
    }
    moves.push_back({Move::Kind::kMirrorR, -1});
    {
      std::vector<sim::MsgId> da =
          node.ea->channel().deliverable(Dir::kSenderToReceiver);
      std::vector<sim::MsgId> db =
          node.eb->channel().deliverable(Dir::kSenderToReceiver);
      std::vector<sim::MsgId> common;
      std::set_intersection(da.begin(), da.end(), db.begin(), db.end(),
                            std::back_inserter(common));
      for (sim::MsgId m : common) {
        moves.push_back({Move::Kind::kMirrorDel, m});
      }
    }

    for (const Move& mv : moves) {
      Node child;
      child.ea = node.ea->clone();
      child.eb = node.eb->clone();
      child.depth = node.depth + 1;
      switch (mv.kind) {
        case Move::Kind::kStepA:
          child.ea->apply(Action{ActionKind::kSenderStep, -1});
          break;
        case Move::Kind::kStepB:
          child.eb->apply(Action{ActionKind::kSenderStep, -1});
          break;
        case Move::Kind::kAckA:
          child.ea->apply(Action{ActionKind::kDeliverToSender, mv.msg});
          break;
        case Move::Kind::kAckB:
          child.eb->apply(Action{ActionKind::kDeliverToSender, mv.msg});
          break;
        case Move::Kind::kMirrorR:
          child.ea->apply(Action{ActionKind::kReceiverStep, -1});
          child.eb->apply(Action{ActionKind::kReceiverStep, -1});
          break;
        case Move::Kind::kMirrorDel:
          child.ea->apply(Action{ActionKind::kDeliverToReceiver, mv.msg});
          child.eb->apply(Action{ActionKind::kDeliverToReceiver, mv.msg});
          break;
      }
      if (!visited.insert(key_of(child)).second) continue;
      frontier.push_back(std::move(child));
    }
  }
  return result;
}

AttackResult find_attack(const SystemSpec& spec, const seq::Family& family,
                         const AttackBudget& budget) {
  // Phase 1: skeletons.  A benign-run safety violation is an immediate
  // witness; a benign-run stall is a liveness witness of last resort (the
  // mirror phase may still find the stronger, two-run decisive witness).
  std::vector<Skeleton> skeletons;
  skeletons.reserve(family.members.size());
  std::optional<std::size_t> stalled_input;
  for (std::size_t i = 0; i < family.members.size(); ++i) {
    Skeleton sk =
        extract_skeleton(spec, family.members[i], budget.skeleton_steps);
    if (!sk.safety_ok) {
      AttackResult out;
      out.kind = AttackResult::Kind::kSafetyViolation;
      out.x_a = family.members[i];
      out.detail = "protocol writes a wrong item even on a benign schedule";
      return out;
    }
    if (!sk.completed && !stalled_input) stalled_input = i;
    skeletons.push_back(std::move(sk));
  }

  // Phase 2: candidate pairs by pigeonhole — identical words first, then
  // prefix-related words.
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (std::size_t i = 0; i < skeletons.size(); ++i) {
    for (std::size_t j = i + 1; j < skeletons.size(); ++j) {
      if (skeletons[i].word == skeletons[j].word) {
        candidates.emplace_back(i, j);
      }
    }
  }
  auto is_word_prefix = [](const seq::MsgWord& p, const seq::MsgWord& w) {
    return p.size() <= w.size() &&
           std::equal(p.begin(), p.end(), w.begin());
  };
  for (std::size_t i = 0; i < skeletons.size(); ++i) {
    for (std::size_t j = 0; j < skeletons.size(); ++j) {
      if (i == j || skeletons[i].word == skeletons[j].word) continue;
      if (is_word_prefix(skeletons[i].word, skeletons[j].word) &&
          !seq::is_prefix(family.members[i], family.members[j])) {
        candidates.emplace_back(std::min(i, j), std::max(i, j));
      }
    }
  }

  // Phase 3: mirror attacks, strongest witness wins.
  AttackResult best;
  for (const auto& [i, j] : candidates) {
    const AttackResult r = mirror_attack_pair(spec, family.members[i],
                                              family.members[j], budget);
    if (r.kind == AttackResult::Kind::kSafetyViolation) return r;
    if (r.kind == AttackResult::Kind::kDecisiveStall &&
        best.kind == AttackResult::Kind::kNone) {
      best = r;
    }
  }
  if (best.kind == AttackResult::Kind::kNone && stalled_input) {
    best.kind = AttackResult::Kind::kLivenessStall;
    best.x_a = family.members[*stalled_input];
    best.detail = "input cannot be transmitted even on a benign schedule "
                  "within the step budget";
  }
  return best;
}

}  // namespace stpx::stp
