#include "stp/fabric_soak.hpp"

#include <algorithm>
#include <memory>
#include <thread>

#include "net/flight_recorder.hpp"
#include "net/service.hpp"
#include "proto/suite.hpp"
#include "store/session_log.hpp"
#include "store/stable_store.hpp"
#include "util/rng.hpp"

namespace stpx::stp {

namespace {

constexpr std::uint64_t kPlanSalt = 0xFAB51CULL;
constexpr std::uint64_t kResilienceSalt = 0x4E501E9CULL;

seq::Sequence seq_for(std::uint32_t id, std::size_t len, int domain) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>(
        (id + i) % static_cast<std::uint32_t>(domain)));
  }
  return x;
}

bool group_has(const std::vector<std::uint32_t>& g, std::uint32_t h) {
  return std::find(g.begin(), g.end(), h) != g.end();
}

/// Apply (or heal) one partition action.  The fabric is a hub: only pairs
/// that cross the router carry traffic, so the group containing host 0
/// keeps the router and every backend in the OTHER group is severed.  A
/// partition naming two router-less groups has no router-crossing pair
/// and is a no-op.  One-way severs group_a -> group_b traffic only:
/// kToBackend when the router sits in group_a, kFromBackend when it sits
/// in group_b.
void apply_partition(fabric::Fabric& fab, std::size_t backends,
                     const FabricFaultAction& a, bool on) {
  const bool router_in_a = group_has(a.group_a, 0);
  const bool router_in_b = group_has(a.group_b, 0);
  if (router_in_a == router_in_b) return;
  fabric::PartitionMode mode = fabric::PartitionMode::kBoth;
  if (a.kind == FabricFaultKind::kPartitionOneWay) {
    mode = router_in_a ? fabric::PartitionMode::kToBackend
                       : fabric::PartitionMode::kFromBackend;
  }
  const auto& severed = router_in_a ? a.group_b : a.group_a;
  for (const std::uint32_t h : severed) {
    if (h >= 1 && h <= backends) {
      fab.set_partition(h, on ? mode : fabric::PartitionMode::kNone);
    }
  }
}

}  // namespace

std::string to_string(const FabricFaultPlan& plan) {
  return fault::to_text(plan);
}

FabricSoakResult run_fabric_soak(const FabricSoakConfig& cfg) {
  FabricSoakResult res;
  const int domain = cfg.domain;

  // One session log and one flight recorder per backend; the stores also
  // serve as the handoff source when their backend dies — and as the
  // reclaim manifest when it rejoins.
  std::vector<std::unique_ptr<store::MemStore>> stores;
  std::vector<std::unique_ptr<net::FlightRecorder>> recorders;
  for (std::size_t i = 0; i < cfg.backends; ++i) {
    stores.push_back(std::make_unique<store::MemStore>());
    stores.back()->reset();
    net::FlightRecorderConfig rc;
    rc.backend_id = static_cast<std::uint32_t>(i + 1);
    recorders.push_back(std::make_unique<net::FlightRecorder>(rc));
  }

  fabric::FabricConfig fc;
  fc.backends = cfg.backends;
  fc.router.health = cfg.health;
  fc.mux = cfg.mux;
  fc.mux.probe = nullptr;
  fc.mux.session_stores.clear();
  fc.make_receiver = [domain](std::uint32_t, std::uint64_t tag)
      -> std::unique_ptr<sim::IReceiver> {
    // Tag 0 is the cold-add sentinel; anything else must be a receiver
    // manifest this harness can serve.
    if (tag != 0 && tag != store::proto_tag_of("stenning-receiver")) {
      return nullptr;
    }
    return proto::make_stenning(domain).receiver;
  };
  fc.expected_for = [cfg, domain](std::uint32_t sid) {
    return seq_for(sid, cfg.seq_len, domain);
  };
  fc.stores_for = [&stores](std::uint32_t id) {
    return std::vector<store::IStableStore*>{stores[id - 1].get()};
  };
  fc.probe_for = [&recorders](std::uint32_t id) -> net::INetProbe* {
    return recorders[id - 1].get();
  };
  fabric::Fabric fab(fc);

  // The client dials through the resolver, so every soak run doubles as a
  // nameserver drill: a lease per session up front, epoch-fenced
  // redirects whenever a re-home or reclaim moves ownership.
  fabric::ResolverTransport resolver(fab.client_endpoint());
  net::MuxConfig client_cfg = cfg.mux;
  client_cfg.probe = nullptr;
  client_cfg.session_stores.clear();
  client_cfg.backend_id = 0;
  net::StpClient client(&resolver, client_cfg);
  for (std::size_t i = 0; i < cfg.sessions; ++i) {
    const std::uint32_t sid = static_cast<std::uint32_t>(i + 1);
    fab.add_session(sid);
    client.add_session(sid,
                       proto::make_stenning(domain, true).sender,
                       seq_for(sid, cfg.seq_len, domain));
    resolver.resolve_now(sid);
  }

  // Script the plan as an absolute-time switch list (window faults get an
  // on and an off edge), then fire each on schedule.
  struct Edge {
    std::chrono::milliseconds at;
    FabricFaultAction action;
    bool on;
  };
  std::vector<Edge> edges;
  for (const FabricFaultAction& a : cfg.plan.actions) {
    const bool windowed = a.kind != FabricFaultKind::kBackendCrash &&
                          a.kind != FabricFaultKind::kRejoin;
    if (!is_partition_fault(a.kind) &&
        (a.backend < 1 || a.backend > cfg.backends)) {
      continue;
    }
    edges.push_back({a.at, a, true});
    if (windowed) edges.push_back({a.at + a.len, a, false});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) { return a.at < b.at; });

  fab.start();
  client.mux().start();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint32_t> crashed;
  std::vector<std::uint32_t> rejoined;  // handshake acked; reclaim pending
  for (const Edge& e : edges) {
    std::this_thread::sleep_until(t0 + e.at);
    const FabricFaultAction& a = e.action;
    switch (a.kind) {
      case FabricFaultKind::kBackendCrash:
        if (e.on) {
          fab.kill_backend(a.backend);
          crashed.push_back(a.backend);
        }
        break;
      case FabricFaultKind::kProbeBlackout:
        fab.set_probe_blackout(a.backend, e.on);
        break;
      case FabricFaultKind::kRouterSplit:
        fab.set_data_split(a.backend, e.on);
        break;
      case FabricFaultKind::kPartition:
      case FabricFaultKind::kPartitionOneWay:
        apply_partition(fab, cfg.backends, a, e.on);
        break;
      case FabricFaultKind::kRejoin:
        // A rejoin that cannot be acked (backend alive, link partitioned
        // for the whole window, ...) just leaves the cell dead; that is
        // the protocol's answer, not a harness failure.
        if (e.on && fab.rejoin_backend(a.backend)) {
          rejoined.push_back(a.backend);
        }
        break;
    }
  }

  // Death rides on heartbeat silence, not traffic: a crash that lands
  // after the last frame still MUST be detected and re-homed.  Wait for
  // the supervisor to record every scripted crash (ok or not) before
  // draining, so `rehomes` is deterministic rather than a race between
  // session completion and the strike ladder.  Likewise every acked
  // rejoin must produce a reclaim record (the probation window plus the
  // release/reclaim absorbs run behind the supervisor thread).
  const auto fence_deadline =
      std::chrono::steady_clock::now() + cfg.drain_timeout;
  for (const std::uint32_t b : crashed) {
    // A crashed backend that rejoined before the strike ladder condemned
    // it never produces a rehome record; its reclaim record is the
    // terminal event instead.
    const bool came_back = group_has(rejoined, b);
    for (;;) {
      const auto recs = fab.rehomes();
      bool seen = std::any_of(
          recs.begin(), recs.end(),
          [b](const fabric::RehomeRecord& r) { return r.dead == b; });
      if (came_back) {
        const auto recl = fab.reclaims();
        seen = seen || std::any_of(recl.begin(), recl.end(),
                                   [b](const fabric::ReclaimRecord& r) {
                                     return r.backend == b;
                                   });
      }
      if (seen || std::chrono::steady_clock::now() >= fence_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (const std::uint32_t b : rejoined) {
    for (;;) {
      const auto recs = fab.reclaims();
      const bool seen = std::any_of(
          recs.begin(), recs.end(),
          [b](const fabric::ReclaimRecord& r) { return r.backend == b; });
      if (seen || std::chrono::steady_clock::now() >= fence_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const bool drained = client.mux().drain(cfg.drain_timeout) &&
                       fab.drain(cfg.drain_timeout);
  client.mux().stop();
  fab.stop();

  // --- live verdicts ----------------------------------------------------
  res.completed = client.mux().stats().sessions_completed;
  res.live_violations = client.mux().stats().sessions_violated +
                        client.mux().stats().sessions_recovery_violated;
  for (std::size_t i = 0; i < cfg.backends; ++i) {
    const auto id = static_cast<std::uint32_t>(i + 1);
    if (fab.cell(id).killed()) continue;  // fenced: sessions moved away
    const auto st = fab.cell(id).server().mux().stats();
    res.live_violations +=
        st.sessions_violated + st.sessions_recovery_violated;
  }
  std::size_t failed_rehomes = 0;
  for (const fabric::RehomeRecord& r : fab.rehomes()) {
    if (!r.ok) {
      ++failed_rehomes;
      continue;
    }
    ++res.rehomes;
    res.restore_latency_us.push_back(r.absorb.latency_us);
  }
  res.rejoins = rejoined.size();
  std::size_t failed_reclaims = 0;
  for (const fabric::ReclaimRecord& r : fab.reclaims()) {
    if (!r.ok) {
      ++failed_reclaims;
      continue;
    }
    ++res.reclaims;
    res.reclaim_latency_us.push_back(r.absorb.latency_us);
  }
  res.router = fab.router().stats();
  res.resolver = resolver.stats();

  // --- offline attestation over the merged per-backend trace ------------
  std::vector<fabric::TracePart> parts;
  for (auto& rec : recorders) {
    parts.push_back({rec->epoch_offset_us(), rec->drain()});
  }
  analysis::TraceContext ctx;
  for (std::size_t i = 0; i < cfg.sessions; ++i) {
    ctx.expected_items[static_cast<std::uint32_t>(i + 1)] = cfg.seq_len;
  }
  analysis::TracePipeline pipe;
  pipe.add(analysis::make_prefix_attestor())
      .add(analysis::make_rehydration_analyzer());
  res.merged_trace = fabric::merge_backend_traces(parts);
  res.trace = pipe.run(res.merged_trace, ctx);

  if (!drained) {
    res.failure = "drain timeout: sessions never all completed";
  } else if (res.completed != cfg.sessions) {
    res.failure = "client completed " + std::to_string(res.completed) +
                  " of " + std::to_string(cfg.sessions) + " sessions";
  } else if (res.live_violations != 0) {
    res.failure = std::to_string(res.live_violations) +
                  " live safety/recovery violations";
  } else if (failed_rehomes != 0) {
    res.failure = "re-home found no alive survivor";
  } else if (failed_reclaims != 0) {
    res.failure = "rejoin reclaim failed to absorb";
  } else if (res.rejoins != res.reclaims) {
    res.failure = "acked rejoin never produced a reclaim record";
  } else if (!res.trace.ok) {
    res.failure = "merged trace failed prefix attestation";
  } else {
    res.ok = true;
  }
  return res;
}

FabricFaultPlan sample_fabric_plan(std::uint64_t seed,
                                   std::size_t backends) {
  Rng rng(seed ^ kPlanSalt);
  FabricFaultPlan plan;
  const std::size_t n = 1 + rng.below(3);
  std::size_t crashes = 0;
  const std::size_t max_crashes = backends > 1 ? backends - 1 : 0;
  for (std::size_t i = 0; i < n; ++i) {
    FabricFaultAction a;
    const std::uint64_t pick = rng.below(4);
    if (pick <= 1 && crashes < max_crashes) {
      a.kind = FabricFaultKind::kBackendCrash;
      ++crashes;
    } else if (pick == 2 || max_crashes == 0) {
      a.kind = FabricFaultKind::kProbeBlackout;
    } else {
      a.kind = FabricFaultKind::kRouterSplit;
    }
    a.backend = static_cast<std::uint32_t>(1 + rng.below(backends));
    a.at = std::chrono::milliseconds(5 + rng.below(60));
    a.len = std::chrono::milliseconds(30 + rng.below(90));
    plan.actions.push_back(a);
  }
  return plan;
}

FabricFaultPlan sample_resilience_plan(std::uint64_t seed,
                                       std::size_t backends) {
  Rng rng(seed ^ kResilienceSalt);
  FabricFaultPlan plan;
  if (backends < 2) return sample_fabric_plan(seed, backends);

  // The spine of every trial: one crash, one rejoin of the same backend,
  // far enough apart that the strike ladder condemns it and a re-home
  // completes in between — so the reclaim genuinely crosses three
  // generations of ownership (victim gen-1 -> survivor -> victim gen-2).
  const auto victim = static_cast<std::uint32_t>(1 + rng.below(backends));
  FabricFaultAction crash;
  crash.kind = FabricFaultKind::kBackendCrash;
  crash.backend = victim;
  crash.at = std::chrono::milliseconds(5 + rng.below(25));
  plan.actions.push_back(crash);

  FabricFaultAction rj;
  rj.kind = FabricFaultKind::kRejoin;
  rj.backend = victim;
  rj.at = crash.at + std::chrono::milliseconds(60 + rng.below(60));
  plan.actions.push_back(rj);

  // Ambient stress, maybe: a partition window pinning a SURVIVOR off the
  // router side (the nameserver keeps granting its lease; the partition
  // is a network fact, not a membership fact) ...
  if (rng.below(2) == 0) {
    auto other = static_cast<std::uint32_t>(1 + rng.below(backends));
    if (other == victim) other = victim % backends + 1;
    FabricFaultAction p;
    p.kind = rng.below(2) == 0 ? FabricFaultKind::kPartition
                               : FabricFaultKind::kPartitionOneWay;
    p.group_a = {0};
    p.group_b = {other};
    p.at = std::chrono::milliseconds(10 + rng.below(40));
    p.len = std::chrono::milliseconds(20 + rng.below(40));
    plan.actions.push_back(p);
  }
  // ... and/or a probe blackout to keep false suspicion in the mix.
  if (rng.below(2) == 0) {
    FabricFaultAction bl;
    bl.kind = FabricFaultKind::kProbeBlackout;
    bl.backend = static_cast<std::uint32_t>(1 + rng.below(backends));
    bl.at = std::chrono::milliseconds(5 + rng.below(50));
    bl.len = std::chrono::milliseconds(20 + rng.below(60));
    plan.actions.push_back(bl);
  }
  return plan;
}

FabricSoakReport fabric_soak_sweep(const FabricSoakConfig& base,
                                   const std::vector<std::uint64_t>& seeds,
                                   bool resilience) {
  FabricSoakReport rep;
  for (const std::uint64_t seed : seeds) {
    FabricSoakConfig cfg = base;
    cfg.plan = resilience ? sample_resilience_plan(seed, base.backends)
                          : sample_fabric_plan(seed, base.backends);
    const FabricSoakResult r = run_fabric_soak(cfg);
    ++rep.trials;
    rep.total_rehomes += r.rehomes;
    rep.total_reclaims += r.reclaims;
    if (r.ok) {
      ++rep.completed_trials;
    } else {
      rep.failures.push_back({seed, cfg.plan, r.failure});
    }
  }
  return rep;
}

MinimizedFabricPlan minimize_fabric_plan(const FabricSoakConfig& cfg,
                                         const FabricFaultPlan& failing) {
  MinimizedFabricPlan out;
  out.plan = failing;
  bool shrunk = true;
  while (shrunk && !out.plan.actions.empty()) {
    shrunk = false;
    for (std::size_t i = 0; i < out.plan.actions.size(); ++i) {
      FabricFaultPlan cand = out.plan;
      cand.actions.erase(cand.actions.begin() +
                         static_cast<std::ptrdiff_t>(i));
      FabricSoakConfig probe = cfg;
      probe.plan = cand;
      ++out.probe_runs;
      if (!run_fabric_soak(probe).ok) {
        out.plan = std::move(cand);
        shrunk = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace stpx::stp
