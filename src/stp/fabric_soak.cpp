#include "stp/fabric_soak.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <thread>

#include "net/flight_recorder.hpp"
#include "net/service.hpp"
#include "proto/suite.hpp"
#include "store/session_log.hpp"
#include "store/stable_store.hpp"
#include "util/rng.hpp"

namespace stpx::stp {

namespace {

constexpr std::uint64_t kPlanSalt = 0xFAB51CULL;

seq::Sequence seq_for(std::uint32_t id, std::size_t len, int domain) {
  seq::Sequence x;
  x.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    x.push_back(static_cast<seq::DataItem>(
        (id + i) % static_cast<std::uint32_t>(domain)));
  }
  return x;
}

}  // namespace

std::string to_string(const FabricFaultPlan& plan) {
  if (plan.actions.empty()) return "-";
  std::ostringstream os;
  bool first = true;
  for (const FabricFaultAction& a : plan.actions) {
    if (!first) os << "; ";
    first = false;
    os << to_cstr(a.kind) << '@' << a.at.count() << "ms";
    if (a.kind != FabricFaultKind::kBackendCrash) {
      os << '+' << a.len.count() << "ms";
    }
    os << " b" << a.backend;
  }
  return os.str();
}

FabricSoakResult run_fabric_soak(const FabricSoakConfig& cfg) {
  FabricSoakResult res;
  const int domain = cfg.domain;

  // One session log and one flight recorder per backend; the stores also
  // serve as the handoff source when their backend dies.
  std::vector<std::unique_ptr<store::MemStore>> stores;
  std::vector<std::unique_ptr<net::FlightRecorder>> recorders;
  for (std::size_t i = 0; i < cfg.backends; ++i) {
    stores.push_back(std::make_unique<store::MemStore>());
    stores.back()->reset();
    net::FlightRecorderConfig rc;
    rc.backend_id = static_cast<std::uint32_t>(i + 1);
    recorders.push_back(std::make_unique<net::FlightRecorder>(rc));
  }

  fabric::FabricConfig fc;
  fc.backends = cfg.backends;
  fc.router.health = cfg.health;
  fc.mux = cfg.mux;
  fc.mux.probe = nullptr;
  fc.mux.session_stores.clear();
  fc.make_receiver = [domain](std::uint32_t, std::uint64_t tag)
      -> std::unique_ptr<sim::IReceiver> {
    // Tag 0 is the cold-add sentinel; anything else must be a receiver
    // manifest this harness can serve.
    if (tag != 0 && tag != store::proto_tag_of("stenning-receiver")) {
      return nullptr;
    }
    return proto::make_stenning(domain).receiver;
  };
  fc.expected_for = [cfg, domain](std::uint32_t sid) {
    return seq_for(sid, cfg.seq_len, domain);
  };
  fc.stores_for = [&stores](std::uint32_t id) {
    return std::vector<store::IStableStore*>{stores[id - 1].get()};
  };
  fc.probe_for = [&recorders](std::uint32_t id) -> net::INetProbe* {
    return recorders[id - 1].get();
  };
  fabric::Fabric fab(fc);

  net::MuxConfig client_cfg = cfg.mux;
  client_cfg.probe = nullptr;
  client_cfg.session_stores.clear();
  client_cfg.backend_id = 0;
  net::StpClient client(fab.client_endpoint(), client_cfg);
  for (std::size_t i = 0; i < cfg.sessions; ++i) {
    const std::uint32_t sid = static_cast<std::uint32_t>(i + 1);
    fab.add_session(sid);
    client.add_session(sid,
                       proto::make_stenning(domain, true).sender,
                       seq_for(sid, cfg.seq_len, domain));
  }

  // Script the plan as an absolute-time switch list (window faults get an
  // on and an off edge), then fire each on schedule.
  struct Edge {
    std::chrono::milliseconds at;
    FabricFaultKind kind;
    std::uint32_t backend;
    bool on;
  };
  std::vector<Edge> edges;
  for (const FabricFaultAction& a : cfg.plan.actions) {
    if (a.backend < 1 || a.backend > cfg.backends) continue;
    edges.push_back({a.at, a.kind, a.backend, true});
    if (a.kind != FabricFaultKind::kBackendCrash) {
      edges.push_back({a.at + a.len, a.kind, a.backend, false});
    }
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) { return a.at < b.at; });

  fab.start();
  client.mux().start();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint32_t> crashed;
  for (const Edge& e : edges) {
    std::this_thread::sleep_until(t0 + e.at);
    switch (e.kind) {
      case FabricFaultKind::kBackendCrash:
        if (e.on) {
          fab.kill_backend(e.backend);
          crashed.push_back(e.backend);
        }
        break;
      case FabricFaultKind::kProbeBlackout:
        fab.set_probe_blackout(e.backend, e.on);
        break;
      case FabricFaultKind::kRouterSplit:
        fab.set_data_split(e.backend, e.on);
        break;
    }
  }

  // Death rides on heartbeat silence, not traffic: a crash that lands
  // after the last frame still MUST be detected and re-homed.  Wait for
  // the supervisor to record every scripted crash (ok or not) before
  // draining, so `rehomes` is deterministic rather than a race between
  // session completion and the strike ladder.
  const auto rehome_deadline =
      std::chrono::steady_clock::now() + cfg.drain_timeout;
  for (const std::uint32_t b : crashed) {
    for (;;) {
      const auto recs = fab.rehomes();
      const bool seen = std::any_of(
          recs.begin(), recs.end(),
          [b](const fabric::RehomeRecord& r) { return r.dead == b; });
      if (seen || std::chrono::steady_clock::now() >= rehome_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const bool drained = client.mux().drain(cfg.drain_timeout) &&
                       fab.drain(cfg.drain_timeout);
  client.mux().stop();
  fab.stop();

  // --- live verdicts ----------------------------------------------------
  res.completed = client.mux().stats().sessions_completed;
  res.live_violations = client.mux().stats().sessions_violated +
                        client.mux().stats().sessions_recovery_violated;
  for (std::size_t i = 0; i < cfg.backends; ++i) {
    const auto id = static_cast<std::uint32_t>(i + 1);
    if (fab.cell(id).killed()) continue;  // fenced: sessions moved away
    const auto st = fab.cell(id).server().mux().stats();
    res.live_violations +=
        st.sessions_violated + st.sessions_recovery_violated;
  }
  std::size_t failed_rehomes = 0;
  for (const fabric::RehomeRecord& r : fab.rehomes()) {
    if (!r.ok) {
      ++failed_rehomes;
      continue;
    }
    ++res.rehomes;
    res.restore_latency_us.push_back(r.absorb.latency_us);
  }

  // --- offline attestation over the merged per-backend trace ------------
  std::vector<fabric::TracePart> parts;
  for (auto& rec : recorders) {
    parts.push_back({rec->epoch_offset_us(), rec->drain()});
  }
  analysis::TraceContext ctx;
  for (std::size_t i = 0; i < cfg.sessions; ++i) {
    ctx.expected_items[static_cast<std::uint32_t>(i + 1)] = cfg.seq_len;
  }
  analysis::TracePipeline pipe;
  pipe.add(analysis::make_prefix_attestor())
      .add(analysis::make_rehydration_analyzer());
  res.trace = pipe.run(fabric::merge_backend_traces(parts), ctx);

  if (!drained) {
    res.failure = "drain timeout: sessions never all completed";
  } else if (res.completed != cfg.sessions) {
    res.failure = "client completed " + std::to_string(res.completed) +
                  " of " + std::to_string(cfg.sessions) + " sessions";
  } else if (res.live_violations != 0) {
    res.failure = std::to_string(res.live_violations) +
                  " live safety/recovery violations";
  } else if (failed_rehomes != 0) {
    res.failure = "re-home found no alive survivor";
  } else if (!res.trace.ok) {
    res.failure = "merged trace failed prefix attestation";
  } else {
    res.ok = true;
  }
  return res;
}

FabricFaultPlan sample_fabric_plan(std::uint64_t seed,
                                   std::size_t backends) {
  Rng rng(seed ^ kPlanSalt);
  FabricFaultPlan plan;
  const std::size_t n = 1 + rng.below(3);
  std::size_t crashes = 0;
  const std::size_t max_crashes = backends > 1 ? backends - 1 : 0;
  for (std::size_t i = 0; i < n; ++i) {
    FabricFaultAction a;
    const std::uint64_t pick = rng.below(4);
    if (pick <= 1 && crashes < max_crashes) {
      a.kind = FabricFaultKind::kBackendCrash;
      ++crashes;
    } else if (pick == 2 || max_crashes == 0) {
      a.kind = FabricFaultKind::kProbeBlackout;
    } else {
      a.kind = FabricFaultKind::kRouterSplit;
    }
    a.backend = static_cast<std::uint32_t>(1 + rng.below(backends));
    a.at = std::chrono::milliseconds(5 + rng.below(60));
    a.len = std::chrono::milliseconds(30 + rng.below(90));
    plan.actions.push_back(a);
  }
  return plan;
}

FabricSoakReport fabric_soak_sweep(const FabricSoakConfig& base,
                                   const std::vector<std::uint64_t>& seeds) {
  FabricSoakReport rep;
  for (const std::uint64_t seed : seeds) {
    FabricSoakConfig cfg = base;
    cfg.plan = sample_fabric_plan(seed, base.backends);
    const FabricSoakResult r = run_fabric_soak(cfg);
    ++rep.trials;
    rep.total_rehomes += r.rehomes;
    if (r.ok) {
      ++rep.completed_trials;
    } else {
      rep.failures.push_back({seed, cfg.plan, r.failure});
    }
  }
  return rep;
}

MinimizedFabricPlan minimize_fabric_plan(const FabricSoakConfig& cfg,
                                         const FabricFaultPlan& failing) {
  MinimizedFabricPlan out;
  out.plan = failing;
  bool shrunk = true;
  while (shrunk && !out.plan.actions.empty()) {
    shrunk = false;
    for (std::size_t i = 0; i < out.plan.actions.size(); ++i) {
      FabricFaultPlan cand = out.plan;
      cand.actions.erase(cand.actions.begin() +
                         static_cast<std::ptrdiff_t>(i));
      FabricSoakConfig probe = cfg;
      probe.plan = cand;
      ++out.probe_runs;
      if (!run_fabric_soak(probe).ok) {
        out.plan = std::move(cand);
        shrunk = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace stpx::stp
