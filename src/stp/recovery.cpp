#include "stp/recovery.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "channel/sync_channel.hpp"
#include "proto/encoded.hpp"
#include "proto/suite.hpp"
#include "seq/encoding.hpp"
#include "seq/family.hpp"
#include "store/stable_store.hpp"
#include "util/expect.hpp"

namespace stpx::stp {

namespace {

constexpr fault::FaultKind kStoreFaults[] = {
    fault::FaultKind::kTornWrite,
    fault::FaultKind::kLoseTail,
    fault::FaultKind::kCorruptRecord,
    fault::FaultKind::kStaleSnapshot,
};

/// Rewind kinds can surface a one-record-old checkpoint at recovery.  A
/// stale snapshot cannot: records are full-state checkpoints, so re-reading
/// superseded ones only inflates records_replayed.
bool can_rewind(fault::FaultKind k) {
  return k != fault::FaultKind::kStaleSnapshot;
}

sim::EngineConfig trial_engine() {
  sim::EngineConfig cfg;
  cfg.max_steps = 300000;
  cfg.stall_window = 4000;
  // Compact aggressively so the stale-snapshot trials actually have a
  // previous snapshot generation to roll back to.
  cfg.compact_every = 4;
  return cfg;
}

std::function<std::unique_ptr<sim::IScheduler>(std::uint64_t)>
fair_scheduler() {
  return [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
}

}  // namespace

fault::FaultPlan recovery_plan(fault::FaultKind kind, sim::Proc proc,
                               bool biting, bool writes_can_batch) {
  STPX_EXPECT(fault::is_store_fault(kind),
              "recovery_plan: not a storage-fault kind");
  // Biting lines the damage up with the newest record at the crash; a torn
  // write needs the crash one write later so the truncated append has
  // happened (and IS the newest record) when recovery runs.  Superseded
  // placement fires the fault early and crashes later: the engine persists
  // on every durable change, so any intact append between the fault and the
  // crash makes the newest record equal the live durable state again and
  // recovery is exact.  The superseded torn write is the delicate one: the
  // truncated record is the first durable change *after* arming, and
  // ack-gated stop-and-wait senders only append their (k+1)-th advance once
  // write k+2 is in sight — so their crash waits until @writes 3.  Write-
  // batching protocols never expose y == 3 to a tick (the final flush jumps
  // past it), but their processes append on sub-write cadence, so @writes 2
  // already sits past an intact record.
  const std::uint64_t fault_at =
      biting ? 2 : (kind == fault::FaultKind::kTornWrite ? 0 : 1);
  std::uint64_t crash_at = 2;
  if (kind == fault::FaultKind::kTornWrite)
    crash_at = biting ? 3 : (writes_can_batch ? 2 : 3);
  fault::FaultPlan plan;
  fault::FaultAction f;
  f.kind = kind;
  f.trigger = {fault::TriggerKind::kWrites, fault_at};
  f.proc = proc;
  if (kind == fault::FaultKind::kLoseTail) f.count = 1;
  plan.actions.push_back(f);
  fault::FaultAction crash;
  crash.kind = proc == sim::Proc::kSender ? fault::FaultKind::kCrashSender
                                          : fault::FaultKind::kCrashReceiver;
  crash.trigger = {fault::TriggerKind::kWrites, crash_at};
  plan.actions.push_back(crash);
  return plan;
}

RecoveryReport recovery_sweep(const std::vector<RecoveryCase>& cases,
                              std::uint64_t seed) {
  RecoveryReport report;
  for (const RecoveryCase& c : cases) {
    for (fault::FaultKind kind : kStoreFaults) {
      for (sim::Proc proc : {sim::Proc::kSender, sim::Proc::kReceiver}) {
        const bool rewind_safe = proc == sim::Proc::kSender
                                     ? c.sender_rewind_safe
                                     : c.receiver_rewind_safe;
        const bool biting = rewind_safe || !can_rewind(kind);
        store::MemStore sender_store;
        store::MemStore receiver_store;
        SystemSpec spec = c.spec;
        spec.engine.sender_store = &sender_store;
        spec.engine.receiver_store = &receiver_store;
        const fault::FaultPlan plan =
            recovery_plan(kind, proc, biting, c.writes_can_batch);
        const sim::RunResult r = run_one(with_chaos(spec, plan), c.input, seed);

        RecoveryTrial t;
        t.protocol = c.name;
        t.fault = kind;
        t.proc = proc;
        t.biting = biting;
        t.verdict = r.verdict;
        t.crashes = r.stats.crashes[0] + r.stats.crashes[1];
        t.recoveries = r.stats.recoveries;
        t.records_replayed = r.stats.records_replayed;
        t.steps = r.stats.steps;
        // The contract: the run completes AND the crash actually happened
        // AND recovery rehydrated from the store (no silent cold restart).
        // Exception: sender checkpoints are ack-driven, so under loss the
        // sender log can still hold a single record when a lose-tail or
        // corrupt-record fault destroys it outright.  A cold sender restart
        // is then the *correct* recovery (the sender re-reads X from its
        // code) and completing the transfer is the whole contract.
        const bool cold_ok =
            proc == sim::Proc::kSender &&
            (kind == fault::FaultKind::kLoseTail ||
             kind == fault::FaultKind::kCorruptRecord);
        const bool ok = r.verdict == sim::RunVerdict::kCompleted &&
                        t.crashes >= 1 && (t.recoveries >= 1 || cold_ok);
        if (ok) {
          ++report.completed;
        } else {
          ++report.failed;
          std::ostringstream os;
          os << c.name << " x " << fault::to_cstr(kind) << " proc "
             << sim::to_cstr(proc) << (biting ? " (biting)" : " (superseded)")
             << " -> " << sim::to_cstr(r.verdict) << " crashes=" << t.crashes
             << " recoveries=" << t.recoveries << " after " << t.steps
             << " steps, wrote " << seq::to_string(r.output);
          t.detail = os.str();
        }
        report.trials.push_back(std::move(t));
      }
    }
  }
  return report;
}

std::vector<RecoveryCase> default_recovery_cases() {
  std::vector<RecoveryCase> cases;
  const seq::Sequence six{0, 1, 2, 3, 4, 5};
  auto add = [&](std::string name,
                 std::function<proto::ProtocolPair()> protocols,
                 std::function<std::unique_ptr<sim::IChannel>(std::uint64_t)>
                     channel,
                 seq::Sequence input, bool sender_rewind_safe = true,
                 bool receiver_rewind_safe = true) {
    RecoveryCase c;
    c.name = std::move(name);
    c.spec.protocols = std::move(protocols);
    c.spec.channel = std::move(channel);
    c.spec.scheduler = fair_scheduler();
    c.spec.engine = trial_engine();
    c.input = std::move(input);
    c.sender_rewind_safe = sender_rewind_safe;
    c.receiver_rewind_safe = receiver_rewind_safe;
    cases.push_back(std::move(c));
  };

  add("stenning", [] { return proto::make_stenning(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six);
  // Bounded-header senders (abp, modk, block, hybrid) cannot tolerate a
  // rewound checkpoint: the re-sent item reuses a header bit / seqno residue
  // the receiver has already cycled past, and the alias is accepted as the
  // *next* item — a wrong write (see the Hazard tests and docs/RECOVERY.md).
  // Their unbounded-seqno and content-addressed peers rewind safely.
  add("abp", [] { return proto::make_abp(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.2, 0.1, seed);
      },
      six, /*sender_rewind_safe=*/false, /*receiver_rewind_safe=*/true);
  add("modk-stenning", [] { return proto::make_modk_stenning(6, 3); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.2, 0.1, seed);
      },
      six, /*sender_rewind_safe=*/false, /*receiver_rewind_safe=*/true);
  add("repfree-dup", [] { return proto::make_repfree_dup(6); },
      [](std::uint64_t) { return std::make_unique<channel::DupChannel>(); },
      six);
  // The repfree-del sender cannot tolerate a rewound checkpoint: it would
  // re-send an already-acked item the receiver's seen_ set silently eats,
  // and no future ack names it (the W = a+1 stall; see docs/RECOVERY.md).
  add("repfree-del", [] { return proto::make_repfree_del(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six, /*sender_rewind_safe=*/false, /*receiver_rewind_safe=*/true);
  add("go-back-n", [] { return proto::make_go_back_n(6, 3); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six);
  add("selective-repeat", [] { return proto::make_selective_repeat(6, 3); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six);
  add("block", [] { return proto::make_block(4, 2, 12); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.2, 0.0, seed);
      },
      seq::Sequence{0, 1, 2, 3, 1, 2}, /*sender_rewind_safe=*/false,
      /*receiver_rewind_safe=*/true);
  add("hybrid", [] { return proto::make_hybrid(6, 8); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.1, 0.0, seed);
      },
      six, /*sender_rewind_safe=*/false, /*receiver_rewind_safe=*/true);
  // Encoded pair over a chain family: words exist trivially (the encoding
  // embeds the prefix trie of <0..5> into the repetition-free word tree).
  {
    seq::Family fam;
    fam.domain = seq::Domain{6};
    for (std::size_t len = 0; len <= six.size(); ++len) {
      fam.members.emplace_back(six.begin(),
                               six.begin() + static_cast<std::ptrdiff_t>(len));
    }
    auto enc = seq::try_build_encoding(fam, 6);
    STPX_EXPECT(enc.has_value(), "chain-family encoding must exist");
    auto table =
        std::make_shared<const seq::Encoding>(std::move(*enc));
    add("encoded-knowledge",
        [table] {
          return proto::ProtocolPair{
              std::make_unique<proto::EncodedSender>(table,
                                                     /*retransmit=*/false),
              std::make_unique<proto::KnowledgeReceiver>(table,
                                                         /*reack=*/false)};
        },
        [](std::uint64_t) { return std::make_unique<channel::DupChannel>(); },
        six);
  }
  // Sync stop-and-wait has no headers, so NEITHER side can dedup a rewound
  // stream — exact restore works, rewinds are the documented hazard.
  add("sync-stop-wait", [] { return proto::make_sync_stop_wait(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::SyncLossChannel>(0.2, seed);
      },
      six, /*sender_rewind_safe=*/false, /*receiver_rewind_safe=*/false);
  cases.back().writes_can_batch = true;  // verdict-gated flushes batch writes
  return cases;
}

}  // namespace stpx::stp
