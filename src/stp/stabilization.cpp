#include "stp/stabilization.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "channel/del_channel.hpp"
#include "channel/dup_channel.hpp"
#include "channel/fifo_channel.hpp"
#include "channel/schedulers.hpp"
#include "channel/sync_channel.hpp"
#include "proto/encoded.hpp"
#include "proto/suite.hpp"
#include "seq/encoding.hpp"
#include "seq/family.hpp"
#include "util/expect.hpp"

namespace stpx::stp {

namespace {

sim::EngineConfig trial_engine() {
  sim::EngineConfig cfg;
  cfg.max_steps = 300000;
  cfg.stall_window = 4000;
  // Suffix-safety convergence: after the last corruption, the output must
  // become a correct continuation within two items (one mis-written item
  // plus the slack of a protocol that re-sends the damaged position).
  cfg.convergence_window = 2;
  return cfg;
}

std::function<std::unique_ptr<sim::IScheduler>(std::uint64_t)>
fair_scheduler() {
  return [](std::uint64_t seed) {
    return std::make_unique<channel::FairRandomScheduler>(seed);
  };
}

std::size_t kind_index(fault::FaultKind kind) {
  for (std::size_t i = 0; i < kCorruptionKindCount; ++i) {
    if (kCorruptionKinds[i] == kind) return i;
  }
  STPX_EXPECT(false, "kind_index: not a corruption kind");
  return 0;  // unreachable
}

}  // namespace

fault::FaultPlan stabilization_plan(fault::FaultKind kind, sim::Proc proc) {
  STPX_EXPECT(fault::is_corruption_fault(kind),
              "stabilization_plan: not a corruption-fault kind");
  fault::FaultAction a;
  a.kind = kind;
  // Arm once two items are on the tape: there is a correct prefix to
  // diverge from, and every protocol still has traffic in flight.
  a.trigger = {fault::TriggerKind::kWrites, 2};
  switch (kind) {
    case fault::FaultKind::kCorruptPayload:
      // Mangle a message the target is about to receive.
      a.dir = proc == sim::Proc::kReceiver ? sim::Dir::kSenderToReceiver
                                           : sim::Dir::kReceiverToSender;
      a.count = 21;  // the XOR mask: flips item bits and survives masking
      break;
    case fault::FaultKind::kForgeMessage:
      a.dir = proc == sim::Proc::kReceiver ? sim::Dir::kSenderToReceiver
                                           : sim::Dir::kReceiverToSender;
      a.match = 4;  // a plausible small id: in-alphabet for most protocols
      a.count = 2;  // two copies, so a dropped first copy still lands
      break;
    case fault::FaultKind::kScrambleState:
      a.proc = proc;
      a.count = 0xB0A710ADULL;  // the scramble salt (fixed => deterministic)
      break;
    default: break;  // unreachable (guarded above)
  }
  fault::FaultPlan plan;
  plan.actions.push_back(a);
  return plan;
}

StabilizationReport stabilization_sweep(
    const std::vector<StabilizationCase>& cases, std::uint64_t seed) {
  StabilizationReport report;
  for (const StabilizationCase& c : cases) {
    for (fault::FaultKind kind : kCorruptionKinds) {
      for (sim::Proc proc : {sim::Proc::kSender, sim::Proc::kReceiver}) {
        const fault::FaultPlan plan = stabilization_plan(kind, proc);
        const sim::RunResult r = run_one(with_chaos(c.spec, plan), c.input,
                                         seed);

        StabilizationTrial t;
        t.protocol = c.name;
        t.kind = kind;
        t.proc = proc;
        t.expected =
            c.expected[kind_index(kind)][proc == sim::Proc::kSender ? 0 : 1];
        t.verdict = r.verdict;
        t.converged = r.converged;
        t.corruptions = r.stats.corruptions;
        t.scrambles_applied = r.stats.scrambles_applied;
        t.scrambles_rejected = r.stats.scrambles_rejected;
        t.steps = r.stats.steps;
        if (t.verdict == t.expected) {
          ++report.matched;
        } else {
          ++report.mismatched;
          std::ostringstream os;
          os << c.name << " x " << fault::to_cstr(kind) << " proc "
             << sim::to_cstr(proc) << " -> " << sim::to_cstr(r.verdict)
             << " (pinned " << sim::to_cstr(t.expected) << ") corruptions="
             << t.corruptions << " scrambles=" << t.scrambles_applied << "/"
             << t.scrambles_rejected << " after " << t.steps
             << " steps, wrote " << seq::to_string(r.output) << " of "
             << seq::to_string(r.input);
          t.detail = os.str();
        }
        report.trials.push_back(std::move(t));
      }
    }
  }
  return report;
}

std::vector<StabilizationCase> default_stabilization_cases() {
  std::vector<StabilizationCase> cases;
  const seq::Sequence six{0, 1, 2, 3, 4, 5};
  constexpr sim::RunVerdict kDone = sim::RunVerdict::kCompleted;
  constexpr sim::RunVerdict kStall = sim::RunVerdict::kStalled;
  constexpr sim::RunVerdict kDiverge = sim::RunVerdict::kStabilizationViolation;
  // Cell order mirrors kCorruptionKinds:
  //   row 0 corrupt-payload, row 1 forge-message, row 2 scramble-state;
  //   column 0 targets the sender, column 1 the receiver.
  auto add = [&](std::string name,
                 std::function<proto::ProtocolPair()> protocols,
                 std::function<std::unique_ptr<sim::IChannel>(std::uint64_t)>
                     channel,
                 seq::Sequence input,
                 std::initializer_list<sim::RunVerdict> pins = {}) {
    StabilizationCase c;
    c.name = std::move(name);
    c.spec.protocols = std::move(protocols);
    c.spec.channel = std::move(channel);
    c.spec.scheduler = fair_scheduler();
    c.spec.engine = trial_engine();
    c.input = std::move(input);
    if (pins.size() != 0) {
      STPX_EXPECT(pins.size() == kCorruptionKindCount * 2,
                  "default_stabilization_cases: pin matrix must have 6 cells");
      auto it = pins.begin();
      for (std::size_t k = 0; k < kCorruptionKindCount; ++k) {
        for (std::size_t p = 0; p < 2; ++p) c.expected[k][p] = *it++;
      }
    }
    cases.push_back(std::move(c));
  };

  // ---- the hardened protocol: pinned kCompleted in every cell (the pin
  // matrix default).  Checksummed ids shed corrupt/forged traffic and the
  // sealed checkpoint rejects scrambles, so every cell re-converges.
  add("hardened", [] { return proto::make_hardened(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.2, seed);
      },
      six);

  // ---- the un-hardened suite.  Pins below record the *measured*,
  // deterministic outcome of each cell (seed 2026; see
  // docs/STABILIZATION.md for the per-protocol analysis).
  add("stenning", [] { return proto::make_stenning(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six,
      {kDone, kDone,
       kDone, kDone,
       kDone, kDone});
  add("abp", [] { return proto::make_abp(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.2, 0.1, seed);
      },
      six,
      {kDone, kDone,
       kDone, kDone,
       kDone, kDone});
  // A scrambled sender cursor jumps past the receiver's frontier; with only
  // mod-K tags there is no cumulative ack to walk it back: livelock.
  add("modk-stenning", [] { return proto::make_modk_stenning(6, 3); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.2, 0.1, seed);
      },
      six,
      {kDone, kDone,
       kDone, kDone,
       kStall, kDone});
  // Content IS the header here, so a forged in-alphabet id is believed on
  // either side: the receiver writes it out of order, the sender takes it
  // as a premature ack — both diverge past the convergence window.
  add("repfree-dup", [] { return proto::make_repfree_dup(6); },
      [](std::uint64_t) { return std::make_unique<channel::DupChannel>(); },
      six,
      {kDone, kDone,
       kDiverge, kDiverge,
       kDone, kDone});
  // Same forged-ack hazard as repfree-dup on the receiver side; a scrambled
  // sender cursor additionally livelocks (the W = a+1 stall of
  // docs/RECOVERY.md, reached by corruption instead of a rewind).
  add("repfree-del", [] { return proto::make_repfree_del(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six,
      {kDone, kDone,
       kDone, kDiverge,
       kStall, kDone});
  // The cumulative ack is trusted verbatim: a mangled or forged ack larger
  // than the frontier fast-forwards the sender past items the receiver
  // never saw, and nothing ever walks it back.
  add("go-back-n", [] { return proto::make_go_back_n(6, 3); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six,
      {kStall, kDone,
       kStall, kDone,
       kDone, kDone});
  // A forged per-item ack marks an unsent item as delivered; the sender
  // never retransmits it and the receiver waits forever.
  add("selective-repeat", [] { return proto::make_selective_repeat(6, 3); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::DelChannel>(0.3, seed);
      },
      six,
      {kDone, kDone,
       kStall, kDone,
       kDone, kDone});
  add("block", [] { return proto::make_block(4, 2, 12); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.2, 0.0, seed);
      },
      seq::Sequence{0, 1, 2, 3, 1, 2},
      {kDone, kDone,
       kDone, kDone,
       kDone, kDone});
  add("hybrid", [] { return proto::make_hybrid(6, 8); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::FifoChannel>(0.1, 0.0, seed);
      },
      six,
      {kDone, kDone,
       kDone, kDone,
       kDone, kDone});
  {
    seq::Family fam;
    fam.domain = seq::Domain{6};
    for (std::size_t len = 0; len <= six.size(); ++len) {
      fam.members.emplace_back(six.begin(),
                               six.begin() + static_cast<std::ptrdiff_t>(len));
    }
    auto enc = seq::try_build_encoding(fam, 6);
    STPX_EXPECT(enc.has_value(), "chain-family encoding must exist");
    auto table = std::make_shared<const seq::Encoding>(std::move(*enc));
    add("encoded-knowledge",
        [table] {
          return proto::ProtocolPair{
              std::make_unique<proto::EncodedSender>(table,
                                                     /*retransmit=*/false),
              std::make_unique<proto::KnowledgeReceiver>(table,
                                                         /*reack=*/false)};
        },
        [](std::uint64_t) { return std::make_unique<channel::DupChannel>(); },
        six,
        // A forged word symbol poisons the prefix-trie decode on either
        // side (the send-once sender waits for an ack that never matches,
        // the receiver's candidate set goes empty); a scrambled receiver
        // loses received_ and the send-once sender never re-sends.
        {kDone, kDone,
         kStall, kStall,
         kDone, kStall});
  }
  // A scrambled sender cursor desynchronizes the headerless lockstep; the
  // receiver cannot name what it is missing, so the run livelocks.
  add("sync-stop-wait", [] { return proto::make_sync_stop_wait(6); },
      [](std::uint64_t seed) {
        return std::make_unique<channel::SyncLossChannel>(0.2, seed);
      },
      six,
      {kDone, kDone,
       kDone, kDone,
       kStall, kDone});
  return cases;
}

}  // namespace stpx::stp
