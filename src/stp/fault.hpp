// Fault injection and recovery measurement (the instrument behind T6/F3).
//
// A "fault" here is the §5 scenario: at a chosen moment every in-flight
// message, in both directions, is deleted.  We then measure how many steps
// the system needs to make its next visible progress (the next output
// write) and to finish the whole transfer.  A *bounded* protocol (paper
// Definition 2) recovers in O(1) steps regardless of history; the §5
// weakly-bounded hybrid needs Θ(|X|).
#pragma once

#include <cstdint>
#include <optional>

#include "stp/runner.hpp"

namespace stpx::stp {

struct FaultExperiment {
  /// Inject the fault when this many items have been written.
  std::size_t fault_after_writes = 1;
  /// Give up if the run does not finish within this many steps; 0 inherits
  /// the step budget of the spec's engine config.
  std::uint64_t max_steps = 0;
};

struct FaultRecovery {
  bool fault_injected = false;
  std::uint64_t fault_step = 0;       // global step of the injection
  std::uint64_t copies_dropped = 0;   // in-flight messages deleted
  bool recovered = false;             // another item was eventually written
  std::uint64_t recovery_steps = 0;   // steps from fault to next write
  bool completed = false;             // whole sequence delivered
  std::uint64_t steps_to_completion = 0;  // steps from fault to completion
};

/// Run `x` through `spec`, injecting a drop-everything fault once
/// `fault_after_writes` items are out, then measure recovery.  The channel
/// built by the spec must be a DelChannel or FifoChannel (anything with a
/// drop-everything capability); otherwise this throws.
FaultRecovery measure_fault_recovery(const SystemSpec& spec,
                                     const seq::Sequence& x,
                                     const FaultExperiment& fx,
                                     std::uint64_t seed);

}  // namespace stpx::stp
