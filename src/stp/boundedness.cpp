#include "stp/boundedness.hpp"

#include <algorithm>

namespace stpx::stp {

std::vector<std::uint64_t> write_gaps(const sim::RunResult& r) {
  std::vector<std::uint64_t> gaps;
  gaps.reserve(r.stats.write_step.size());
  std::uint64_t prev = 0;
  for (std::uint64_t step : r.stats.write_step) {
    gaps.push_back(step - prev);
    prev = step;
  }
  return gaps;
}

GapProfile measure_gaps(const SystemSpec& spec, const seq::Sequence& x,
                        const std::vector<std::uint64_t>& seeds) {
  GapProfile profile;
  std::uint64_t gap_sum = 0;
  std::size_t gap_count = 0;
  for (std::uint64_t seed : seeds) {
    const sim::RunResult r = run_one(spec, x, seed);
    ++profile.runs;
    if (!r.safety_ok || !r.completed) {
      ++profile.failed_runs;
      continue;
    }
    const auto gaps = write_gaps(r);
    if (gaps.size() > profile.max_gap.size()) {
      profile.max_gap.resize(gaps.size(), 0);
    }
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      profile.max_gap[i] = std::max(profile.max_gap[i], gaps[i]);
      profile.overall_max = std::max(profile.overall_max, gaps[i]);
      gap_sum += gaps[i];
      ++gap_count;
    }
  }
  profile.overall_mean =
      gap_count == 0 ? 0.0
                     : static_cast<double>(gap_sum) /
                           static_cast<double>(gap_count);
  return profile;
}

bool constant_bounded(const GapProfile& profile, std::uint64_t bound) {
  return std::all_of(profile.max_gap.begin(), profile.max_gap.end(),
                     [bound](std::uint64_t g) { return g <= bound; });
}

}  // namespace stpx::stp
