// Empirical boundedness measurement (paper Definition 2 and §5).
//
// Definition 2 asks: from any point past t_{i-1}, is there an extension in
// which R learns item i within f(i) steps, using no pre-point messages?  We
// measure the operational shadow of this: the distribution of *learning
// gaps* (steps between consecutive output writes) across runs, and — via
// stp/fault.hpp — the recovery gap after all in-flight state is destroyed.
// A bounded protocol shows gaps independent of i and of |X|; the §5 hybrid's
// post-fault gap grows with |X|.
#pragma once

#include <cstdint>
#include <vector>

#include "stp/runner.hpp"

namespace stpx::stp {

/// Per-index gap statistics over a set of runs.
struct GapProfile {
  /// max over runs of (write_step[i] - write_step[i-1]), indexed by i
  /// (gap[0] = steps to the first write).
  std::vector<std::uint64_t> max_gap;
  std::uint64_t overall_max = 0;
  double overall_mean = 0.0;
  std::size_t runs = 0;
  std::size_t failed_runs = 0;  // incomplete or unsafe: excluded from gaps
};

/// Extract the gaps of one completed run.
std::vector<std::uint64_t> write_gaps(const sim::RunResult& r);

/// Measure gaps for `x` across `seeds` trials under `spec`.
GapProfile measure_gaps(const SystemSpec& spec, const seq::Sequence& x,
                        const std::vector<std::uint64_t>& seeds);

/// Verdict helper: does the profile look f-bounded by a *constant*?  True
/// iff every per-index max gap is at most `bound`.
bool constant_bounded(const GapProfile& profile, std::uint64_t bound);

}  // namespace stpx::stp
