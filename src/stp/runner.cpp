#include "stp/runner.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace stpx::stp {

sim::Engine make_engine(const SystemSpec& spec, std::uint64_t seed) {
  STPX_EXPECT(spec.protocols && spec.channel && spec.scheduler,
              "SystemSpec: missing component factory");
  proto::ProtocolPair pair = spec.protocols();
  return sim::Engine(std::move(pair.sender), std::move(pair.receiver),
                     spec.channel(seed), spec.scheduler(seed), spec.engine);
}

sim::RunResult run_one(const SystemSpec& spec, const seq::Sequence& x,
                       std::uint64_t seed) {
  return make_engine(spec, seed).run(x);
}

namespace {

void accumulate(SweepResult& agg, const sim::RunResult& r,
                const seq::Sequence& x, std::uint64_t seed) {
  ++agg.trials;
  agg.total_steps += r.stats.steps;
  agg.total_msgs_sent += r.stats.sent[0] + r.stats.sent[1];
  agg.total_msgs_delivered += r.stats.delivered[0] + r.stats.delivered[1];
  if (!r.safety_ok) {
    ++agg.safety_failures;
    std::ostringstream os;
    os << "safety violated at step " << r.first_violation_step << ": wrote "
       << seq::to_string(r.output) << " for input " << seq::to_string(x);
    agg.failures.push_back({x, seed, true, os.str()});
  } else if (!r.completed) {
    ++agg.incomplete;
    std::ostringstream os;
    os << "incomplete after " << r.stats.steps << " steps: wrote "
       << seq::to_string(r.output) << " of " << seq::to_string(x);
    agg.failures.push_back({x, seed, false, os.str()});
  }
}

}  // namespace

SweepResult sweep_family(const SystemSpec& spec, const seq::Family& family,
                         const std::vector<std::uint64_t>& seeds) {
  SweepResult agg;
  for (const seq::Sequence& x : family.members) {
    for (std::uint64_t seed : seeds) {
      accumulate(agg, run_one(spec, x, seed), x, seed);
    }
  }
  return agg;
}

SweepResult sweep_input(const SystemSpec& spec, const seq::Sequence& x,
                        const std::vector<std::uint64_t>& seeds) {
  SweepResult agg;
  for (std::uint64_t seed : seeds) {
    accumulate(agg, run_one(spec, x, seed), x, seed);
  }
  return agg;
}

}  // namespace stpx::stp
