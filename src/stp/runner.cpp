#include "stp/runner.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace stpx::stp {

sim::Engine make_engine(const SystemSpec& spec, std::uint64_t seed) {
  STPX_EXPECT(spec.protocols && spec.channel && spec.scheduler,
              "SystemSpec: missing component factory");
  proto::ProtocolPair pair = spec.protocols();
  return sim::Engine(std::move(pair.sender), std::move(pair.receiver),
                     spec.channel(seed), spec.scheduler(seed), spec.engine);
}

sim::RunResult run_one(const SystemSpec& spec, const seq::Sequence& x,
                       std::uint64_t seed) {
  return make_engine(spec, seed).run(x);
}

namespace {

void accumulate(SweepResult& agg, const sim::RunResult& r,
                const seq::Sequence& x, std::uint64_t seed) {
  ++agg.trials;
  agg.total_steps += r.stats.steps;
  agg.total_msgs_sent += r.stats.sent[0] + r.stats.sent[1];
  agg.total_msgs_delivered += r.stats.delivered[0] + r.stats.delivered[1];
  agg.trial_steps.push_back(r.stats.steps);
  const auto gaps = obs::write_latencies_of(r.stats);
  agg.write_latencies.insert(agg.write_latencies.end(), gaps.begin(),
                             gaps.end());
  // Classify on the structured verdict: a corrupted run can end kCompleted
  // with safety_ok false (post-corruption garbage followed by suffix-safe
  // convergence), so safety_ok alone no longer separates pass from fail.
  switch (r.verdict) {
    case sim::RunVerdict::kCompleted:
      break;
    case sim::RunVerdict::kSafetyViolation:
    case sim::RunVerdict::kRecoveryViolation:
    case sim::RunVerdict::kStabilizationViolation: {
      const char* what =
          r.verdict == sim::RunVerdict::kRecoveryViolation
              ? "recovery violated safety"
          : r.verdict == sim::RunVerdict::kStabilizationViolation
              ? "corrupted run failed to re-converge"
              : "safety violated";
      if (r.verdict == sim::RunVerdict::kRecoveryViolation) {
        ++agg.recovery_failures;
      } else if (r.verdict == sim::RunVerdict::kStabilizationViolation) {
        ++agg.stabilization_failures;
      } else {
        ++agg.safety_failures;
      }
      std::ostringstream os;
      os << what << " at step " << r.first_violation_step << ": wrote "
         << seq::to_string(r.output) << " for input " << seq::to_string(x);
      agg.failures.push_back({x, seed, true, os.str(), r.verdict});
      break;
    }
    case sim::RunVerdict::kStalled:
    case sim::RunVerdict::kBudgetExhausted: {
      ++agg.incomplete;
      if (r.verdict == sim::RunVerdict::kStalled) {
        ++agg.stalled;
      } else {
        ++agg.exhausted;
      }
      std::ostringstream os;
      os << to_cstr(r.verdict) << " after " << r.stats.steps
         << " steps: wrote " << seq::to_string(r.output) << " of "
         << seq::to_string(x);
      agg.failures.push_back({x, seed, false, os.str(), r.verdict});
      break;
    }
  }
}

}  // namespace

void SweepResult::merge(const SweepResult& other) {
  trials += other.trials;
  safety_failures += other.safety_failures;
  recovery_failures += other.recovery_failures;
  stabilization_failures += other.stabilization_failures;
  incomplete += other.incomplete;
  stalled += other.stalled;
  exhausted += other.exhausted;
  total_steps += other.total_steps;
  total_msgs_sent += other.total_msgs_sent;
  total_msgs_delivered += other.total_msgs_delivered;
  failures.insert(failures.end(), other.failures.begin(),
                  other.failures.end());
  write_latencies.insert(write_latencies.end(), other.write_latencies.begin(),
                         other.write_latencies.end());
  trial_steps.insert(trial_steps.end(), other.trial_steps.begin(),
                     other.trial_steps.end());
}

SweepResult sweep_family(const SystemSpec& spec, const seq::Family& family,
                         const std::vector<std::uint64_t>& seeds) {
  SweepResult agg;
  for (const seq::Sequence& x : family.members) {
    for (std::uint64_t seed : seeds) {
      accumulate(agg, run_one(spec, x, seed), x, seed);
    }
  }
  return agg;
}

SweepResult sweep_input(const SystemSpec& spec, const seq::Sequence& x,
                        const std::vector<std::uint64_t>& seeds) {
  SweepResult agg;
  for (std::uint64_t seed : seeds) {
    accumulate(agg, run_one(spec, x, seed), x, seed);
  }
  return agg;
}

obs::SweepReport report_of(const std::string& name, const SweepResult& r) {
  obs::SweepReport rep;
  rep.name = name;
  rep.trials = r.trials;
  rep.ok = r.all_ok();
  rep.verdicts.completed = r.trials - r.safety_failures -
                           r.recovery_failures - r.stabilization_failures -
                           r.stalled - r.exhausted;
  rep.verdicts.safety_violation = r.safety_failures;
  rep.verdicts.recovery_violation = r.recovery_failures;
  rep.verdicts.stabilization_violation = r.stabilization_failures;
  rep.verdicts.stalled = r.stalled;
  rep.verdicts.budget_exhausted = r.exhausted;
  rep.total_steps = r.total_steps;
  rep.total_msgs_sent = r.total_msgs_sent;
  rep.write_latency_samples = r.write_latencies;
  rep.trial_step_samples = r.trial_steps;
  return rep;
}

}  // namespace stpx::stp
