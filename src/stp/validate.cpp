#include "stp/validate.hpp"

#include <map>
#include <sstream>

namespace stpx::stp {

namespace {

using sim::ActionKind;
using sim::Dir;

std::string describe_msg(Dir dir, sim::MsgId msg) {
  std::ostringstream os;
  os << to_cstr(dir) << " msg=" << msg;
  return os.str();
}

}  // namespace

ValidationReport validate_trace(const sim::RunResult& run,
                                bool dup_semantics) {
  ValidationReport report;
  auto flag = [&report](std::uint64_t step, const char* rule,
                        std::string detail) {
    report.issues.push_back({step, rule, std::move(detail)});
  };

  // Per (dir, msg): step of first send, send count, delivery count.
  struct MsgState {
    bool ever_sent = false;
    std::uint64_t first_send_step = 0;
    std::uint64_t sends = 0;
    std::uint64_t deliveries = 0;
  };
  std::map<std::pair<int, sim::MsgId>, MsgState> ledger;
  std::vector<seq::DataItem> written_by_steps;

  std::uint64_t expected_step = run.trace.empty() ? 0 : run.trace[0].step;
  for (const sim::TraceEvent& ev : run.trace) {
    // V4: consecutive single-action steps.
    if (ev.step != expected_step) {
      flag(ev.step, "V4",
           "non-consecutive step (expected " +
               std::to_string(expected_step) + ")");
      expected_step = ev.step;
    }
    ++expected_step;

    const bool is_delivery = ev.action.kind == ActionKind::kDeliverToReceiver ||
                             ev.action.kind == ActionKind::kDeliverToSender;
    const Dir dir = (ev.action.kind == ActionKind::kDeliverToReceiver ||
                     ev.action.kind == ActionKind::kSenderStep)
                        ? Dir::kSenderToReceiver
                        : Dir::kReceiverToSender;

    if (ev.did_send) {
      auto& st = ledger[{static_cast<int>(dir), ev.sent}];
      if (!st.ever_sent) {
        st.ever_sent = true;
        st.first_send_step = ev.step;
      }
      ++st.sends;
    }

    if (is_delivery) {
      auto& st = ledger[{static_cast<int>(dir), ev.action.msg}];
      if (!st.ever_sent) {
        flag(ev.step, "V1",
             "delivery of never-sent " + describe_msg(dir, ev.action.msg));
      } else if (st.first_send_step == ev.step) {
        flag(ev.step, "V2",
             "same-step delivery of " + describe_msg(dir, ev.action.msg));
      }
      ++st.deliveries;
      if (!dup_semantics && st.deliveries > st.sends) {
        flag(ev.step, "V3",
             "over-delivery of " + describe_msg(dir, ev.action.msg) + " (" +
                 std::to_string(st.deliveries) + " > " +
                 std::to_string(st.sends) + ")");
      }
    }

    if (!ev.writes.empty() &&
        ev.action.kind != ActionKind::kReceiverStep) {
      flag(ev.step, "V5", "output written outside a receiver step");
    }
    for (seq::DataItem d : ev.writes) written_by_steps.push_back(d);
  }

  // V5 (second half): the recorded output equals the concatenated writes.
  if (written_by_steps != run.output) {
    flag(run.stats.steps, "V5",
         "trace writes do not reconstruct the output tape");
  }
  return report;
}

}  // namespace stpx::stp
