#include "stp/soak.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace stpx::stp {

namespace {

bool failing(sim::RunVerdict v) { return v != sim::RunVerdict::kCompleted; }

std::string describe(const sim::RunResult& r) {
  std::ostringstream os;
  os << to_cstr(r.verdict) << " after " << r.stats.steps << " steps: wrote "
     << seq::to_string(r.output) << " of " << seq::to_string(r.input);
  if (!r.safety_ok) os << " (violation at step " << r.first_violation_step
                       << ")";
  return os.str();
}

}  // namespace

SystemSpec with_chaos(const SystemSpec& spec, const fault::FaultPlan& plan) {
  STPX_EXPECT(static_cast<bool>(spec.channel),
              "with_chaos: spec has no channel factory");
  SystemSpec out = spec;
  auto inner = spec.channel;
  obs::IProbe* probe = spec.engine.probe;
  out.channel = [inner, plan, probe](std::uint64_t seed) {
    auto chaos = std::make_unique<fault::ChaosChannel>(inner(seed), plan);
    chaos->set_probe(probe);
    return chaos;
  };
  return out;
}

fault::FaultPlan plan_for_trial(std::uint64_t seed,
                                const fault::SamplerConfig& sampler) {
  // Decorrelate from the scheduler, which consumes the raw seed.
  std::uint64_t mix = seed ^ 0xC7A05C7A05C7A05AULL;
  Rng rng(splitmix64(mix));
  return fault::sample_plan(rng, sampler);
}

SoakReport soak_sweep(const std::string& protocol, const SystemSpec& spec,
                      const std::vector<seq::Sequence>& inputs,
                      const SoakConfig& cfg) {
  SoakReport report;
  report.protocol = protocol;
  for (const seq::Sequence& x : inputs) {
    for (std::uint64_t seed : cfg.seeds) {
      const fault::FaultPlan plan = plan_for_trial(seed, cfg.sampler);
      const sim::RunResult r = run_one(with_chaos(spec, plan), x, seed);
      ++report.trials;
      report.total_steps += r.stats.steps;
      report.total_msgs_sent += r.stats.sent[0] + r.stats.sent[1];
      report.trial_steps.push_back(r.stats.steps);
      const auto gaps = obs::write_latencies_of(r.stats);
      report.write_latencies.insert(report.write_latencies.end(), gaps.begin(),
                                    gaps.end());
      switch (r.verdict) {
        case sim::RunVerdict::kCompleted: ++report.completed; break;
        case sim::RunVerdict::kSafetyViolation:
          ++report.safety_violations;
          break;
        case sim::RunVerdict::kRecoveryViolation:
          ++report.recovery_violations;
          break;
        case sim::RunVerdict::kStabilizationViolation:
          ++report.stabilization_violations;
          break;
        case sim::RunVerdict::kStalled: ++report.stalled; break;
        case sim::RunVerdict::kBudgetExhausted: ++report.exhausted; break;
      }
      if (failing(r.verdict)) {
        report.failures.push_back(
            {protocol, x, seed, plan, r.verdict, describe(r)});
      }
    }
  }
  return report;
}

sim::RunResult replay_failure(const SystemSpec& spec, const SoakFailure& f) {
  return run_one(with_chaos(spec, f.plan), f.input, f.seed);
}

MinimizedPlan minimize_plan(const SystemSpec& spec, const SoakFailure& f) {
  MinimizedPlan out;
  out.plan = f.plan;

  auto run = [&](const fault::FaultPlan& candidate) {
    ++out.probe_runs;
    return run_one(with_chaos(spec, candidate), f.input, f.seed).verdict;
  };
  const sim::RunVerdict v0 = run(out.plan);
  STPX_EXPECT(failing(v0), "minimize_plan: recorded failure does not reproduce");
  // Safety-class failures must stay the SAME kind while shrinking: a
  // post-crash (recovery) violation that degenerates into a stall — or into
  // a plain pre-crash violation — is a different bug, and the minimal
  // schedule would no longer witness the recorded one.
  const bool safety_class =
      v0 == sim::RunVerdict::kSafetyViolation ||
      v0 == sim::RunVerdict::kRecoveryViolation ||
      v0 == sim::RunVerdict::kStabilizationViolation;
  auto probe = [&](const fault::FaultPlan& candidate) {
    const sim::RunVerdict v = run(candidate);
    return safety_class ? v == v0 : failing(v);
  };

  // Greedy ddmin to a fixpoint: alternately try deleting whole actions and
  // halving numeric fields; keep any candidate that still fails.  Runs are
  // deterministic, so the fixpoint is 1-minimal: removing any remaining
  // action (or halving any remaining field) yields a passing schedule.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < out.plan.actions.size(); ++i) {
      fault::FaultPlan candidate = out.plan;
      candidate.actions.erase(candidate.actions.begin() +
                              static_cast<std::ptrdiff_t>(i));
      if (probe(candidate)) {
        out.plan = std::move(candidate);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    for (std::size_t i = 0; i < out.plan.actions.size() && !changed; ++i) {
      auto try_field = [&](std::uint64_t fault::FaultAction::* field) {
        if (changed || out.plan.actions[i].*field <= 1) return;
        fault::FaultPlan candidate = out.plan;
        candidate.actions[i].*field /= 2;
        if (probe(candidate)) {
          out.plan = std::move(candidate);
          changed = true;
        }
      };
      try_field(&fault::FaultAction::count);
      try_field(&fault::FaultAction::duration);
      if (!changed && out.plan.actions[i].trigger.at > 1) {
        fault::FaultPlan candidate = out.plan;
        candidate.actions[i].trigger.at /= 2;
        if (probe(candidate)) {
          out.plan = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  out.verdict = run(out.plan);
  return out;
}

std::vector<DedupedFailure> dedup_failures(
    const SystemSpec& spec, const std::vector<SoakFailure>& failures) {
  std::vector<DedupedFailure> out;
  for (const SoakFailure& f : failures) {
    const MinimizedPlan min = minimize_plan(spec, f);
    const std::string signature =
        std::string(to_cstr(min.verdict)) + "\n" + fault::to_text(min.plan);
    bool found = false;
    for (DedupedFailure& d : out) {
      if (std::string(to_cstr(d.verdict)) + "\n" + fault::to_text(d.minimized)
          == signature) {
        ++d.occurrences;
        found = true;
        break;
      }
    }
    if (!found) {
      out.push_back({f, min.plan, min.verdict, 1});
    }
  }
  return out;
}

obs::SweepReport report_of(const SoakReport& r) {
  obs::SweepReport rep;
  rep.name = r.protocol;
  rep.trials = r.trials;
  rep.ok = r.clean();
  rep.verdicts.completed = r.completed;
  rep.verdicts.safety_violation = r.safety_violations;
  rep.verdicts.recovery_violation = r.recovery_violations;
  rep.verdicts.stabilization_violation = r.stabilization_violations;
  rep.verdicts.stalled = r.stalled;
  rep.verdicts.budget_exhausted = r.exhausted;
  rep.total_steps = r.total_steps;
  rep.total_msgs_sent = r.total_msgs_sent;
  rep.write_latency_samples = r.write_latencies;
  rep.trial_step_samples = r.trial_steps;
  return rep;
}

}  // namespace stpx::stp
