// Soak harness: randomized fault-plan sweeps with counterexample
// minimization.
//
// The harness samples declarative FaultPlans (fault/plan.hpp), superimposes
// each on a system via a ChaosChannel decorator, and classifies every run
// with the engine's structured verdict (safety violation / watchdog stall /
// budget exhaustion / completed).  Failing (protocol, input, seed, plan)
// triples are recorded as replayable artifacts: because the chaos layer is
// RNG-free and the scheduler is seeded, re-running the same triple
// reproduces the same run action for action.
//
// delta-debugging: minimize_plan() shrinks a failing plan to a *1-minimal*
// schedule — the failure persists, but removing any single remaining action
// (or further shrinking any burst/window/trigger field) makes it pass.
// This is the fault-plan analogue of sim/replay's action-script
// minimization, and is what turns "a 6-action random storm broke ABP" into
// "one drop-burst at step 40 breaks ABP".
#pragma once

#include "fault/chaos_channel.hpp"
#include "stp/runner.hpp"

namespace stpx::stp {

struct SoakConfig {
  /// One trial per (input, seed); the seed feeds both the plan sampler and
  /// the system's scheduler/channel factories.
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  fault::SamplerConfig sampler;
};

/// A failing trial, self-contained enough to replay or minimize later.
struct SoakFailure {
  std::string protocol;
  seq::Sequence input;
  std::uint64_t seed = 0;
  fault::FaultPlan plan;
  sim::RunVerdict verdict = sim::RunVerdict::kBudgetExhausted;
  std::string detail;
};

struct SoakReport {
  std::string protocol;
  std::size_t trials = 0;
  std::size_t completed = 0;
  std::size_t safety_violations = 0;
  /// Post-crash safety violations (RunVerdict::kRecoveryViolation): the
  /// recovery path, not the protocol logic, produced the bad write.
  std::size_t recovery_violations = 0;
  /// Corrupted runs that failed the suffix-safety convergence criterion
  /// (RunVerdict::kStabilizationViolation; see docs/STABILIZATION.md).
  std::size_t stabilization_violations = 0;
  std::size_t stalled = 0;
  std::size_t exhausted = 0;
  std::vector<SoakFailure> failures;
  /// Cost + observability aggregates across every trial (for report_of).
  std::uint64_t total_steps = 0;
  std::uint64_t total_msgs_sent = 0;
  std::vector<std::uint64_t> write_latencies;
  std::vector<std::uint64_t> trial_steps;

  /// Safety never violated AND the watchdog never fired AND no budget ran
  /// out: the protocol rode out every sampled schedule.
  bool clean() const { return failures.empty(); }
};

/// `spec` with its channel factory wrapped in a ChaosChannel running `plan`.
/// The spec's EngineConfig::probe (if any) is forwarded to the decorator,
/// so chaos fault firings land in the same probe stream as engine events.
SystemSpec with_chaos(const SystemSpec& spec, const fault::FaultPlan& plan);

/// The plan a soak trial with this seed uses (deterministic).
fault::FaultPlan plan_for_trial(std::uint64_t seed,
                                const fault::SamplerConfig& sampler);

/// Sweep inputs x seeds, one sampled fault plan per trial.  The engine
/// config inside `spec` supplies max_steps and the watchdog stall_window.
SoakReport soak_sweep(const std::string& protocol, const SystemSpec& spec,
                      const std::vector<seq::Sequence>& inputs,
                      const SoakConfig& cfg);

/// Re-run a recorded failure exactly; deterministic, so the verdict must
/// match the recorded one (asserted by tests, not here).
sim::RunResult replay_failure(const SystemSpec& spec, const SoakFailure& f);

struct MinimizedPlan {
  fault::FaultPlan plan;
  sim::RunVerdict verdict = sim::RunVerdict::kCompleted;  // of the final plan
  std::size_t probe_runs = 0;  // delta-debug probes spent
};

/// Shrink f.plan to a 1-minimal failing schedule (see file comment).  The
/// result can be the empty plan when the bare channel already defeats the
/// protocol (e.g. ABP under reordering needs no injected fault at all).
MinimizedPlan minimize_plan(const SystemSpec& spec, const SoakFailure& f);

/// One minimized counterexample plus every recorded failure it explains.
struct DedupedFailure {
  SoakFailure witness;       // the first failure with this signature
  fault::FaultPlan minimized;
  sim::RunVerdict verdict = sim::RunVerdict::kCompleted;  // of `minimized`
  std::size_t occurrences = 0;  // recorded failures sharing the signature
};

/// Deduplicate soak failures by minimized-plan signature: each failure is
/// minimized and keyed by (verdict, minimized plan text), so a crash-storm
/// sweep that trips over the same 1-minimal counterexample dozens of times
/// reports it once (with its multiplicity) instead of dozens of times.
/// Order follows first appearance; every witness replays deterministically.
std::vector<DedupedFailure> dedup_failures(
    const SystemSpec& spec, const std::vector<SoakFailure>& failures);

/// Condense a soak into the machine-readable report schema; `ok` is set
/// from clean().
obs::SweepReport report_of(const SoakReport& r);

}  // namespace stpx::stp
