// Stabilization conformance suite: protocol x corruption kind x target
// process.
//
// Each trial scripts exactly one transient-corruption fault from the
// fault-plan grammar (fault/plan.hpp) against a chosen process:
//
//   corrupt-payload  — an in-flight message toward the target is XOR-mangled
//   forge-message    — an id the target's peer never sent is injected
//   scramble-state   — the target's live state blob is mutated and restored
//
// and runs the protocol on its design channel with the engine's suffix-
// safety convergence window armed (EngineConfig::convergence_window): after
// the last injected corruption the newly written output must become a
// correct continuation of X within k items, or the run is classified
// RunVerdict::kStabilizationViolation (see docs/STABILIZATION.md).
//
// Unlike the recovery suite, the conformance contract here is NOT "every
// cell completes": the un-hardened protocols were designed for lossy
// channels, not byzantine bits, and several cells legitimately diverge or
// livelock.  Each case therefore carries a pinned expected-verdict matrix —
// the suite asserts the outcome is *exactly* the documented one, so a
// regression in either direction (a hardened cell degrading, or a pinned
// divergence silently healing) trips the sweep.  make_hardened() is the
// existence proof: its row is pinned kCompleted in every cell.
#pragma once

#include "fault/plan.hpp"
#include "stp/soak.hpp"

namespace stpx::stp {

/// The corruption kinds a stabilization trial can inject, in matrix order.
constexpr fault::FaultKind kCorruptionKinds[] = {
    fault::FaultKind::kCorruptPayload,
    fault::FaultKind::kForgeMessage,
    fault::FaultKind::kScrambleState,
};
constexpr std::size_t kCorruptionKindCount = 3;

/// One protocol entry in the conformance matrix.
struct StabilizationCase {
  std::string name;
  SystemSpec spec;
  seq::Sequence input;
  /// Pinned expected verdict per cell, indexed [kind][proc] with `kind`
  /// following kCorruptionKinds and `proc` 0 = sender, 1 = receiver.
  /// Defaults to "every cell re-converges"; cases override the cells where
  /// the un-hardened protocol demonstrably does not.
  sim::RunVerdict expected[kCorruptionKindCount][2] = {
      {sim::RunVerdict::kCompleted, sim::RunVerdict::kCompleted},
      {sim::RunVerdict::kCompleted, sim::RunVerdict::kCompleted},
      {sim::RunVerdict::kCompleted, sim::RunVerdict::kCompleted},
  };
};

struct StabilizationTrial {
  std::string protocol;
  fault::FaultKind kind = fault::FaultKind::kCorruptPayload;
  /// The targeted process: the scramble victim, or the process whose
  /// *incoming* traffic is corrupted/forged.
  sim::Proc proc = sim::Proc::kSender;
  sim::RunVerdict expected = sim::RunVerdict::kCompleted;
  sim::RunVerdict verdict = sim::RunVerdict::kBudgetExhausted;
  bool converged = false;
  std::uint64_t corruptions = 0;
  std::uint64_t scrambles_applied = 0;
  std::uint64_t scrambles_rejected = 0;
  std::uint64_t steps = 0;
  std::string detail;  // non-empty iff the trial missed its pin
};

struct StabilizationReport {
  std::vector<StabilizationTrial> trials;
  std::size_t matched = 0;
  std::size_t mismatched = 0;

  bool clean() const { return mismatched == 0 && !trials.empty(); }
};

/// The scripted schedule one conformance trial runs: a single corruption
/// aimed at `proc`, armed once two items are on the output tape (so there
/// is a correct prefix to diverge from).  Exposed so tests can aim a cell's
/// plan at a protocol directly.
fault::FaultPlan stabilization_plan(fault::FaultKind kind, sim::Proc proc);

/// Run the full matrix: every case x all three corruption kinds x both
/// target processes.  `seed` feeds the per-trial scheduler/channel
/// factories; runs are deterministic per (case, kind, proc, seed).
StabilizationReport stabilization_sweep(
    const std::vector<StabilizationCase>& cases, std::uint64_t seed);

/// The default matrix: every protocol family in proto/suite.hpp (plus the
/// encoded sender/knowledge-receiver pair) on its design channel, plus the
/// hardened protocol, with the expected-verdict pins of
/// docs/STABILIZATION.md.
std::vector<StabilizationCase> default_stabilization_cases();

}  // namespace stpx::stp
