// Trace validators: check that a recorded run obeys the model's
// conservation laws (paper §2.2 and Property 1).
//
// The engine enforces these operationally, but the validators re-derive
// them from the *trace alone*, so they double as an independent audit of
// the kernel (property tests run them over every protocol/channel pair)
// and as a debugging aid for externally supplied schedules:
//
//   V1  no creation    — every delivery is preceded by a send of the same
//                        message in the same direction;
//   V2  no same-step   — a message is never delivered in the step where it
//                        was first sent;
//   V3  conservation   — per (direction, message): deliveries never exceed
//                        sends (dup channels are exempt: one send funds any
//                        number of deliveries);
//   V4  one action     — trace steps are consecutive and each step is a
//                        single action;
//   V5  output source  — every item written appears in a receiver step.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace stpx::stp {

struct ValidationIssue {
  std::uint64_t step = 0;
  std::string rule;  // "V1".."V5"
  std::string detail;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  bool ok() const { return issues.empty(); }
};

/// Validate a run recorded with record_trace.  `dup_semantics` exempts the
/// trace from V3 (a dup channel legitimately over-delivers).
ValidationReport validate_trace(const sim::RunResult& run,
                                bool dup_semantics);

}  // namespace stpx::stp
