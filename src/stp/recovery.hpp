// Recovery conformance suite: protocol x crash schedule x storage fault.
//
// Each trial attaches fresh stable stores to both processes, scripts one
// storage fault plus one crash-restart against a chosen process, and runs
// the protocol on its design channel.  The sweep asserts the durable
// recovery layer's contract: prefix-safety always holds (a violation at or
// after the crash surfaces as RunVerdict::kRecoveryViolation) and liveness
// resumes (the run still completes).
//
// Fault placement comes in two flavours:
//   * biting      — the damage lines up with the newest record at the crash,
//                   so recovery rehydrates a one-record-old checkpoint.
//                   Protocols declared rewind-safe must ride this out.
//   * superseded  — the damage lands early and later appends out-date it, so
//                   recovery is exact.  Used for the (documented) protocols
//                   that cannot tolerate a rewound checkpoint at all; the
//                   dedicated hazard tests pin down what biting does to them.
#pragma once

#include "fault/plan.hpp"
#include "stp/soak.hpp"

namespace stpx::stp {

/// One protocol entry in the conformance matrix.  `spec` carries no stores;
/// recovery_sweep attaches a fresh MemStore pair per trial.
struct RecoveryCase {
  std::string name;
  SystemSpec spec;
  seq::Sequence input;
  /// Whether this process tolerates recovering from a checkpoint one record
  /// older than its live state (see docs/RECOVERY.md for the per-protocol
  /// analysis).  Rewind-unsafe combos get superseded fault placement.
  bool sender_rewind_safe = true;
  bool receiver_rewind_safe = true;
  /// The receiver flushes buffered writes in bursts (sync stop-and-wait
  /// does), so a @writes trigger above 2 can land inside the final burst
  /// and never be observed by a channel tick.  Caps the superseded
  /// torn-write crash trigger at 2; see recovery_plan.
  bool writes_can_batch = false;
};

struct RecoveryTrial {
  std::string protocol;
  fault::FaultKind fault = fault::FaultKind::kTornWrite;
  sim::Proc proc = sim::Proc::kSender;
  bool biting = false;
  sim::RunVerdict verdict = sim::RunVerdict::kBudgetExhausted;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t steps = 0;
  std::string detail;  // non-empty iff the trial failed
};

struct RecoveryReport {
  std::vector<RecoveryTrial> trials;
  std::size_t completed = 0;
  std::size_t failed = 0;

  bool clean() const { return failed == 0 && !trials.empty(); }
};

/// The scripted schedule one conformance trial runs: one storage fault
/// against `proc`'s store, then a crash-restart of `proc`.  Exposed so the
/// hazard tests can aim a biting plan at a rewind-unsafe protocol.
/// `writes_can_batch` mirrors RecoveryCase::writes_can_batch.
fault::FaultPlan recovery_plan(fault::FaultKind kind, sim::Proc proc,
                               bool biting, bool writes_can_batch = false);

/// Run the full matrix: every case x all four storage-fault kinds x both
/// processes.  `seed` feeds the per-trial scheduler/channel factories.
RecoveryReport recovery_sweep(const std::vector<RecoveryCase>& cases,
                              std::uint64_t seed);

/// The default matrix: every protocol family in proto/suite.hpp (plus the
/// encoded sender/knowledge-receiver pair) on its design channel.
std::vector<RecoveryCase> default_recovery_cases();

}  // namespace stpx::stp
