// Metrics registry: named counters, gauges, and fixed-bucket histograms,
// plus the MetricsProbe that populates one from engine/chaos hooks.
//
// Instruments are owned by the registry and addressed by name; repeated
// lookups with the same name return the same instrument.  Iteration order
// (and hence JSON output) is lexicographic, so two identical runs serialize
// identically — determinism is a repo-wide invariant and metrics must not
// be the layer that breaks it.
//
// Histograms are fixed-bucket: observe() is O(#buckets) worst case with no
// allocation, which keeps the per-step probe cost bounded.  Percentiles
// read from a histogram are therefore bucket-upper-bound approximations;
// the exact-sample percentiles in obs/report.hpp are the tool for offline
// report generation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace stpx::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A signed instantaneous level that also remembers its high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  std::int64_t value() const { return value_; }
  std::int64_t max() const { return max_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Fixed-bucket histogram over non-negative integer samples.  `bounds` are
/// inclusive upper bounds of the first N buckets; one implicit overflow
/// bucket catches everything beyond the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t sample);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max_seen() const { return max_seen_; }
  double mean() const;
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Smallest bucket upper bound b with cumulative(b) >= q * count().
  /// Samples past the last bound report max_seen().  q in [0, 1].
  std::uint64_t quantile(double q) const;

 private:
  std::vector<std::uint64_t> bounds_;  // sorted, strictly increasing
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_seen_ = 0;
};

/// Exponential bucket bounds 1, 2, 4, ... (n bounds) — the default shape
/// for step-latency style metrics.
std::vector<std::uint64_t> pow2_bounds(std::size_t n);

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used on first creation only; later lookups reuse the
  /// existing instrument.
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Counter value, or 0 when absent (convenient in tests/assertions).
  std::uint64_t counter_value(const std::string& name) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The standard engine instrumentation, accumulated across every run the
/// probe observes (attach a fresh registry per sweep for per-sweep stats).
///
/// Metric catalog (see docs/OBSERVABILITY.md):
///   counters   runs, steps, sends.sr / sends.rs, delivers.sr / delivers.rs,
///              dup_replays.sr / dup_replays.rs (re-deliveries of an id
///              already delivered in that direction within the run),
///              writes, crashes.sender / crashes.receiver, stalls,
///              recoveries (restarts rehydrated from a stable store),
///              recoveries.cold (restarts that came back with no state),
///              records_replayed (store records scanned across recoveries),
///              faults.<kind>, verdict.<name>,
///              stabilization.scrambles / stabilization.scrambles.rejected
///              (scramble-state strikes, split by whether the process
///              accepted any mutated blob), stabilization.converged (runs
///              whose corrupted output re-converged)
///   gauges     inflight.sr / inflight.rs (sends minus deliveries; dup
///              channels can drive these negative — delivery does not
///              consume), with high-water mark
///   histograms occupancy.sr / occupancy.rs (in-flight level sampled each
///              step), write_latency (steps between consecutive writes),
///              ack_rtt (sender data send -> next delivery to the sender),
///              recovery.latency (restart -> next output write: how long a
///              recovery takes to resume visible progress),
///              stabilization.latency (first injected corruption -> the
///              step convergence was declared)
///
/// The wire layer publishes a parallel net.* family from
/// net::SessionMux::publish_metrics (post-stop, registry untouched while
/// workers are live — MetricsRegistry itself is not thread-safe):
///   counters   net.frames.sent / received / rejected / unknown_session /
///              shed, net.fins.sent, net.items.done, net.verdict.<state>
///   gauges     net.sessions.active
///   histograms net.ack_rtt_us (sender frame send -> next inbound frame,
///              microseconds — the wire analogue of ack_rtt)
class MetricsProbe final : public IProbe {
 public:
  /// `registry` is non-owning and must outlive the probe's use.
  explicit MetricsProbe(MetricsRegistry* registry);

  void on_run_begin(std::size_t items_total) override;
  void on_step(std::uint64_t step, const sim::Action& a) override;
  void on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_deliver(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_write(std::uint64_t step, std::size_t index,
                seq::DataItem item) override;
  void on_crash(std::uint64_t step, sim::Proc who) override;
  void on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                  std::uint64_t records_replayed) override;
  void on_stall(std::uint64_t step) override;
  void on_scramble(std::uint64_t step, sim::Proc who, bool accepted) override;
  void on_converge(std::uint64_t step,
                   std::uint64_t steps_since_corruption) override;
  void on_run_end(std::uint64_t steps, sim::RunVerdict verdict) override;
  void on_fault(const FaultEvent& ev) override;

 private:
  MetricsRegistry* reg_;
  // --- per-run state, cleared by on_run_begin ---------------------------
  std::int64_t inflight_[2] = {0, 0};
  std::map<sim::MsgId, std::uint64_t> seen_[2];  // deliveries per id per dir
  std::vector<std::uint64_t> pending_sends_;     // S->R send steps, FIFO
  std::uint64_t last_write_step_ = 0;
  bool restart_pending_ = false;        // a restart awaits its next write
  std::uint64_t last_restart_step_ = 0;  // step of that restart
};

}  // namespace stpx::obs
