// Run observatory: the probe interface the engine (and the chaos layer)
// report into while a run executes.
//
// The engine's RunResult is an end-state artifact; the paper's arguments —
// and any live diagnosis of a sweep or soak — are about what happened
// *during* the run: which direction carried traffic, how long items waited
// to be written, when a fault window opened.  An IProbe is a passive
// observer of exactly those events.  Hooks fire synchronously from
// Engine::apply() / ChaosChannel::fire(), so implementations must be cheap
// and must not touch the engine re-entrantly.
//
// Wiring: set EngineConfig::probe (a non-owning pointer; the caller keeps
// the probe alive for the duration of the run).  With no probe attached the
// engine pays a single null-pointer test per hook site — nothing is
// recorded and nothing is allocated.  stp::with_chaos() forwards the same
// probe into its ChaosChannel decorator so fault firings land in the same
// stream.  Note that Engine::clone() shares the probe pointer: analysis
// layers that branch runs (knowledge explorer, attack synthesizer) will
// interleave events from every branch, so attach probes to linear runs.
//
// This header is intentionally link-free (pure interface + inline no-op
// defaults): sim depends on it, while the obs *library* (metrics, sinks,
// reports) depends on sim.  That keeps the library DAG acyclic:
//   util <- seq <- sim(+probe.hpp) <- {channel, fault} <- obs <- proto ...
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace stpx::obs {

/// A fault action fired by the chaos layer.  `kind` is the stable text name
/// (fault::to_cstr of the FaultKind) so the probe layer does not depend on
/// the fault library; `duration > 0` marks window faults (blackout/freeze),
/// whose effect spans [step, step + duration).
struct FaultEvent {
  std::uint64_t step = 0;
  const char* kind = "";
  sim::Dir dir = sim::Dir::kSenderToReceiver;
  std::uint64_t count = 0;
  std::uint64_t duration = 0;
  sim::MsgId match = -1;
};

class IProbe {
 public:
  virtual ~IProbe() = default;

  /// begin(x) was called: a fresh run over `items_total` input items.
  virtual void on_run_begin(std::size_t items_total) { (void)items_total; }

  /// An action is about to be applied at `step` (fires once per step).
  virtual void on_step(std::uint64_t step, const sim::Action& a) {
    (void)step;
    (void)a;
  }

  /// A process handed a message to the channel (counted even if a fault
  /// later swallows it — sends are the process's observable act).
  virtual void on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) {
    (void)step;
    (void)dir;
    (void)msg;
  }

  /// One copy of `msg` was delivered in `dir`.
  virtual void on_deliver(std::uint64_t step, sim::Dir dir, sim::MsgId msg) {
    (void)step;
    (void)dir;
    (void)msg;
  }

  /// The receiver appended output item `index` (0-based) with value `item`.
  virtual void on_write(std::uint64_t step, std::size_t index,
                        seq::DataItem item) {
    (void)step;
    (void)index;
    (void)item;
  }

  /// A process was crash-restarted (volatile state lost).
  virtual void on_crash(std::uint64_t step, sim::Proc who) {
    (void)step;
    (void)who;
  }

  /// Paired with on_crash: the restarted process came back up.
  /// `rehydrated` distinguishes a recovery from an attached stable store
  /// (restore_state succeeded) from a cold start (no store, nothing
  /// recoverable, or a restore the protocol rejected);
  /// `records_replayed` is the store records scanned during recovery.
  virtual void on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                          std::uint64_t records_replayed) {
    (void)step;
    (void)who;
    (void)rehydrated;
    (void)records_replayed;
  }

  /// The engine watchdog declared the run stalled.
  virtual void on_stall(std::uint64_t step) { (void)step; }

  /// A scramble-state fault struck `who`.  `accepted` is whether any
  /// mutated blob survived restore_state() validation — false means the
  /// process detected and rejected the corruption (hardened protocols).
  virtual void on_scramble(std::uint64_t step, sim::Proc who, bool accepted) {
    (void)step;
    (void)who;
    (void)accepted;
  }

  /// A corrupted run satisfied the suffix-safety convergence criterion at
  /// run end; `steps_since_corruption` is the stabilization latency from
  /// the first injected corruption.
  virtual void on_converge(std::uint64_t step,
                           std::uint64_t steps_since_corruption) {
    (void)step;
    (void)steps_since_corruption;
  }

  /// run_to_completion() returned (verdict as of that moment).
  virtual void on_run_end(std::uint64_t steps, sim::RunVerdict verdict) {
    (void)steps;
    (void)verdict;
  }

  /// The chaos layer fired a fault action (see FaultEvent).
  virtual void on_fault(const FaultEvent& ev) { (void)ev; }
};

/// Fan-out: forwards every hook to each registered probe, in order.  Lets a
/// caller attach a MetricsProbe and a trace sink to the same run.
class MultiProbe final : public IProbe {
 public:
  MultiProbe() = default;
  explicit MultiProbe(std::vector<IProbe*> probes);

  /// Register a probe (non-owning; ignored if null).
  void add(IProbe* p);

  void on_run_begin(std::size_t items_total) override;
  void on_step(std::uint64_t step, const sim::Action& a) override;
  void on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_deliver(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_write(std::uint64_t step, std::size_t index,
                seq::DataItem item) override;
  void on_crash(std::uint64_t step, sim::Proc who) override;
  void on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                  std::uint64_t records_replayed) override;
  void on_stall(std::uint64_t step) override;
  void on_scramble(std::uint64_t step, sim::Proc who, bool accepted) override;
  void on_converge(std::uint64_t step,
                   std::uint64_t steps_since_corruption) override;
  void on_run_end(std::uint64_t steps, sim::RunVerdict verdict) override;
  void on_fault(const FaultEvent& ev) override;

 private:
  std::vector<IProbe*> probes_;
};

}  // namespace stpx::obs
