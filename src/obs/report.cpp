#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/sinks.hpp"
#include "util/expect.hpp"

namespace stpx::obs {

namespace {

double nearest_rank(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx > 0) --idx;                          // 1-based rank -> index
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return static_cast<double>(sorted[idx]);
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string percentiles_json(const Percentiles& p) {
  std::ostringstream os;
  os << "{\"count\":" << p.count << ",\"p50\":" << fmt(p.p50)
     << ",\"p90\":" << fmt(p.p90) << ",\"p99\":" << fmt(p.p99) << '}';
  return os.str();
}

}  // namespace

Percentiles percentiles_u64(std::vector<std::uint64_t> samples) {
  Percentiles p;
  p.count = samples.size();
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = nearest_rank(samples, 0.50);
  p.p90 = nearest_rank(samples, 0.90);
  p.p99 = nearest_rank(samples, 0.99);
  return p;
}

void VerdictCounts::add(sim::RunVerdict v, std::uint64_t n) {
  switch (v) {
    case sim::RunVerdict::kCompleted: completed += n; break;
    case sim::RunVerdict::kSafetyViolation: safety_violation += n; break;
    case sim::RunVerdict::kRecoveryViolation: recovery_violation += n; break;
    case sim::RunVerdict::kStabilizationViolation:
      stabilization_violation += n;
      break;
    case sim::RunVerdict::kStalled: stalled += n; break;
    case sim::RunVerdict::kBudgetExhausted: budget_exhausted += n; break;
  }
}

std::string VerdictCounts::to_json() const {
  std::ostringstream os;
  os << "{\"completed\":" << completed
     << ",\"safety-violation\":" << safety_violation
     << ",\"recovery-violation\":" << recovery_violation
     << ",\"stabilization-violation\":" << stabilization_violation
     << ",\"stalled\":" << stalled
     << ",\"budget-exhausted\":" << budget_exhausted << '}';
  return os.str();
}

std::vector<std::uint64_t> write_latencies_of(const sim::RunStats& stats) {
  std::vector<std::uint64_t> gaps;
  gaps.reserve(stats.write_step.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t s : stats.write_step) {
    gaps.push_back(s - prev);
    prev = s;
  }
  return gaps;
}

RunReport make_run_report(const std::string& name, const sim::RunResult& r) {
  RunReport rep;
  rep.name = name;
  rep.verdict = r.verdict;
  rep.steps = r.stats.steps;
  for (int i = 0; i < 2; ++i) {
    rep.sent[i] = r.stats.sent[i];
    rep.delivered[i] = r.stats.delivered[i];
    rep.crashes[i] = r.stats.crashes[i];
  }
  rep.items_written = r.output.size();
  rep.items_total = r.input.size();
  rep.write_latency = percentiles_u64(write_latencies_of(r.stats));
  return rep;
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name) << "\",\"verdict\":\""
     << sim::to_cstr(verdict) << "\",\"steps\":" << steps
     << ",\"sent\":{\"sr\":" << sent[0] << ",\"rs\":" << sent[1]
     << "},\"delivered\":{\"sr\":" << delivered[0] << ",\"rs\":" << delivered[1]
     << "},\"crashes\":{\"sender\":" << crashes[0]
     << ",\"receiver\":" << crashes[1] << "},\"items_written\":" << items_written
     << ",\"items_total\":" << items_total
     << ",\"write_latency\":" << percentiles_json(write_latency) << '}';
  return os.str();
}

void SweepReport::add_trial(const sim::RunResult& r) {
  ++trials;
  verdicts.add(r.verdict);
  total_steps += r.stats.steps;
  total_msgs_sent += r.stats.sent[0] + r.stats.sent[1];
  trial_step_samples.push_back(r.stats.steps);
  const auto gaps = write_latencies_of(r.stats);
  write_latency_samples.insert(write_latency_samples.end(), gaps.begin(),
                               gaps.end());
}

double SweepReport::avg_steps() const {
  return trials == 0 ? 0.0
                     : static_cast<double>(total_steps) /
                           static_cast<double>(trials);
}

double SweepReport::msgs_per_trial() const {
  return trials == 0 ? 0.0
                     : static_cast<double>(total_msgs_sent) /
                           static_cast<double>(trials);
}

Percentiles SweepReport::write_latency() const {
  return percentiles_u64(write_latency_samples);
}

Percentiles SweepReport::trial_steps() const {
  return percentiles_u64(trial_step_samples);
}

std::string SweepReport::to_json() const {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name) << "\",\"params\":{";
  bool first = true;
  for (const auto& [k, v] : params) {
    os << (first ? "" : ",") << '"' << json_escape(k) << "\":\""
       << json_escape(v) << '"';
    first = false;
  }
  os << "},\"trials\":" << trials << ",\"ok\":" << (ok ? "true" : "false")
     << ",\"verdicts\":" << verdicts.to_json()
     << ",\"avg_steps\":" << fmt(avg_steps())
     << ",\"msgs_per_trial\":" << fmt(msgs_per_trial())
     << ",\"write_latency\":" << percentiles_json(write_latency())
     << ",\"trial_steps\":" << percentiles_json(trial_steps());
  if (!metrics_json.empty()) os << ",\"metrics\":" << metrics_json;
  os << '}';
  return os.str();
}

void SweepReport::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  STPX_EXPECT(out.good(), "SweepReport: cannot open " + path);
  out << to_json() << '\n';
  out.close();
  STPX_EXPECT(out.good(), "SweepReport: write failed for " + path);
}

}  // namespace stpx::obs
