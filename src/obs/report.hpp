// Machine-readable run/sweep reports.
//
// A RunReport condenses one sim::RunResult; a SweepReport aggregates many
// trials (a stp sweep, a soak, or a whole bench binary) into the schema the
// BENCH_<name>.json trajectory records:
//
//   {"name":..., "params":{...}, "trials":N, "ok":true,
//    "verdicts":{"completed":...,"safety-violation":...,"stalled":...,
//                "budget-exhausted":...},
//    "avg_steps":..., "msgs_per_trial":...,
//    "write_latency":{"p50":...,"p90":...,"p99":...},
//    "trial_steps":{"p50":...,"p90":...,"p99":...},
//    "metrics":{...}}                        // optional registry snapshot
//
// Percentiles here are exact (nearest-rank over the raw samples), unlike
// the bucketed approximations a live obs::Histogram reports.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace stpx::obs {

struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::uint64_t count = 0;
};

/// Nearest-rank percentiles of a sample (all-zero for an empty sample).
Percentiles percentiles_u64(std::vector<std::uint64_t> samples);

/// Per-verdict trial counts.
struct VerdictCounts {
  std::uint64_t completed = 0;
  std::uint64_t safety_violation = 0;
  std::uint64_t recovery_violation = 0;
  std::uint64_t stabilization_violation = 0;
  std::uint64_t stalled = 0;
  std::uint64_t budget_exhausted = 0;

  void add(sim::RunVerdict v, std::uint64_t n = 1);
  std::uint64_t total() const {
    return completed + safety_violation + recovery_violation +
           stabilization_violation + stalled + budget_exhausted;
  }
  std::string to_json() const;
};

/// One run, condensed.
struct RunReport {
  std::string name;
  sim::RunVerdict verdict = sim::RunVerdict::kBudgetExhausted;
  std::uint64_t steps = 0;
  std::uint64_t sent[2] = {0, 0};       // indexed by Dir
  std::uint64_t delivered[2] = {0, 0};  // indexed by Dir
  std::uint64_t crashes[2] = {0, 0};    // indexed by Proc
  std::size_t items_written = 0;
  std::size_t items_total = 0;
  Percentiles write_latency;  // steps between consecutive writes

  std::string to_json() const;
};

RunReport make_run_report(const std::string& name, const sim::RunResult& r);

/// The per-item write latencies of one run: gaps between consecutive
/// write steps (the first item's latency counts from step 0).
std::vector<std::uint64_t> write_latencies_of(const sim::RunStats& stats);

/// Many trials, aggregated.  Build one via stp::report_of() or fold trials
/// in with add_trial().
struct SweepReport {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
  std::uint64_t trials = 0;
  VerdictCounts verdicts;
  std::uint64_t total_steps = 0;
  std::uint64_t total_msgs_sent = 0;
  bool ok = true;
  /// Raw samples; percentiles are computed at serialization time.
  std::vector<std::uint64_t> write_latency_samples;
  std::vector<std::uint64_t> trial_step_samples;
  /// Optional metrics snapshot (a MetricsRegistry::to_json() document).
  std::string metrics_json;

  void add_trial(const sim::RunResult& r);
  double avg_steps() const;
  double msgs_per_trial() const;
  Percentiles write_latency() const;
  Percentiles trial_steps() const;

  std::string to_json() const;
  /// Serialize to `path` (overwrites); throws util::ContractError on I/O
  /// failure.
  void write_json_file(const std::string& path) const;
};

}  // namespace stpx::obs
