#include "obs/probe.hpp"

#include <algorithm>

namespace stpx::obs {

MultiProbe::MultiProbe(std::vector<IProbe*> probes)
    : probes_(std::move(probes)) {
  std::erase(probes_, nullptr);
}

void MultiProbe::add(IProbe* p) {
  if (p != nullptr) probes_.push_back(p);
}

void MultiProbe::on_run_begin(std::size_t items_total) {
  for (IProbe* p : probes_) p->on_run_begin(items_total);
}

void MultiProbe::on_step(std::uint64_t step, const sim::Action& a) {
  for (IProbe* p : probes_) p->on_step(step, a);
}

void MultiProbe::on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) {
  for (IProbe* p : probes_) p->on_send(step, dir, msg);
}

void MultiProbe::on_deliver(std::uint64_t step, sim::Dir dir, sim::MsgId msg) {
  for (IProbe* p : probes_) p->on_deliver(step, dir, msg);
}

void MultiProbe::on_write(std::uint64_t step, std::size_t index,
                          seq::DataItem item) {
  for (IProbe* p : probes_) p->on_write(step, index, item);
}

void MultiProbe::on_crash(std::uint64_t step, sim::Proc who) {
  for (IProbe* p : probes_) p->on_crash(step, who);
}

void MultiProbe::on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                            std::uint64_t records_replayed) {
  for (IProbe* p : probes_) p->on_restart(step, who, rehydrated, records_replayed);
}

void MultiProbe::on_stall(std::uint64_t step) {
  for (IProbe* p : probes_) p->on_stall(step);
}

void MultiProbe::on_scramble(std::uint64_t step, sim::Proc who,
                             bool accepted) {
  for (IProbe* p : probes_) p->on_scramble(step, who, accepted);
}

void MultiProbe::on_converge(std::uint64_t step,
                             std::uint64_t steps_since_corruption) {
  for (IProbe* p : probes_) p->on_converge(step, steps_since_corruption);
}

void MultiProbe::on_run_end(std::uint64_t steps, sim::RunVerdict verdict) {
  for (IProbe* p : probes_) p->on_run_end(steps, verdict);
}

void MultiProbe::on_fault(const FaultEvent& ev) {
  for (IProbe* p : probes_) p->on_fault(ev);
}

}  // namespace stpx::obs
