#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"

namespace stpx::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  STPX_EXPECT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "Histogram: bounds must be strictly increasing");
}

void Histogram::observe(std::uint64_t sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += sample;
  if (sample > max_seen_) max_seen_ = sample;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) return bounds_[i];
  }
  return max_seen_;
}

std::vector<std::uint64_t> pow2_bounds(std::size_t n) {
  std::vector<std::uint64_t> bounds(n);
  for (std::size_t i = 0; i < n; ++i) bounds[i] = std::uint64_t{1} << i;
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << name << "\":" << c.value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << '"' << name << "\":{\"value\":" << g.value()
       << ",\"max\":" << g.max() << '}';
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h.count()
       << ",\"sum\":" << h.sum() << ",\"max\":" << h.max_seen()
       << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
       << ",\"p99\":" << h.quantile(0.99) << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

namespace {

std::size_t di(sim::Dir d) { return static_cast<std::size_t>(d); }

const char* dir_suffix(sim::Dir d) {
  return d == sim::Dir::kSenderToReceiver ? "sr" : "rs";
}

}  // namespace

MetricsProbe::MetricsProbe(MetricsRegistry* registry) : reg_(registry) {
  STPX_EXPECT(reg_ != nullptr, "MetricsProbe: null registry");
}

void MetricsProbe::on_run_begin(std::size_t items_total) {
  (void)items_total;
  reg_->counter("runs").inc();
  inflight_[0] = inflight_[1] = 0;
  seen_[0].clear();
  seen_[1].clear();
  pending_sends_.clear();
  last_write_step_ = 0;
  restart_pending_ = false;
  last_restart_step_ = 0;
  reg_->gauge("inflight.sr").set(0);
  reg_->gauge("inflight.rs").set(0);
}

void MetricsProbe::on_step(std::uint64_t step, const sim::Action& a) {
  (void)step;
  (void)a;
  reg_->counter("steps").inc();
  // Occupancy over time: sample the in-flight level once per step.
  reg_->histogram("occupancy.sr", pow2_bounds(16))
      .observe(static_cast<std::uint64_t>(std::max<std::int64_t>(
          inflight_[0], 0)));
  reg_->histogram("occupancy.rs", pow2_bounds(16))
      .observe(static_cast<std::uint64_t>(std::max<std::int64_t>(
          inflight_[1], 0)));
}

void MetricsProbe::on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) {
  (void)msg;
  reg_->counter(std::string("sends.") + dir_suffix(dir)).inc();
  reg_->gauge(std::string("inflight.") + dir_suffix(dir)).add(1);
  ++inflight_[di(dir)];
  if (dir == sim::Dir::kSenderToReceiver) {
    // Bounded pending queue: enough to pair each outstanding data message
    // with the next ack the sender sees; cap so a flooding sender cannot
    // grow the probe without bound.
    if (pending_sends_.size() < 1024) pending_sends_.push_back(step);
  }
}

void MetricsProbe::on_deliver(std::uint64_t step, sim::Dir dir,
                              sim::MsgId msg) {
  reg_->counter(std::string("delivers.") + dir_suffix(dir)).inc();
  reg_->gauge(std::string("inflight.") + dir_suffix(dir)).add(-1);
  --inflight_[di(dir)];
  if (++seen_[di(dir)][msg] > 1) {
    reg_->counter(std::string("dup_replays.") + dir_suffix(dir)).inc();
  }
  if (dir == sim::Dir::kReceiverToSender && !pending_sends_.empty()) {
    // Ack round trip: oldest unacknowledged data send -> this delivery to
    // the sender.  An approximation (ids are protocol-private), but a
    // faithful one for the stop-and-wait style protocols under study.
    reg_->histogram("ack_rtt", pow2_bounds(20))
        .observe(step - pending_sends_.front());
    pending_sends_.erase(pending_sends_.begin());
  }
}

void MetricsProbe::on_write(std::uint64_t step, std::size_t index,
                            seq::DataItem item) {
  (void)index;
  (void)item;
  reg_->counter("writes").inc();
  reg_->histogram("write_latency", pow2_bounds(20))
      .observe(step - last_write_step_);
  last_write_step_ = step;
  if (restart_pending_) {
    // Recovery latency: the most recent restart -> this first write after
    // it, i.e. how long recovery took to resume visible progress.
    reg_->histogram("recovery.latency", pow2_bounds(20))
        .observe(step - last_restart_step_);
    restart_pending_ = false;
  }
}

void MetricsProbe::on_crash(std::uint64_t step, sim::Proc who) {
  (void)step;
  reg_->counter(std::string("crashes.") + sim::to_cstr(who)).inc();
}

void MetricsProbe::on_restart(std::uint64_t step, sim::Proc who,
                              bool rehydrated,
                              std::uint64_t records_replayed) {
  (void)who;
  reg_->counter(rehydrated ? "recoveries" : "recoveries.cold").inc();
  if (records_replayed > 0) {
    reg_->counter("records_replayed").inc(records_replayed);
  }
  restart_pending_ = true;
  last_restart_step_ = step;
}

void MetricsProbe::on_stall(std::uint64_t step) {
  (void)step;
  reg_->counter("stalls").inc();
}

void MetricsProbe::on_scramble(std::uint64_t step, sim::Proc who,
                               bool accepted) {
  (void)step;
  (void)who;
  reg_->counter("stabilization.scrambles").inc();
  if (!accepted) reg_->counter("stabilization.scrambles.rejected").inc();
}

void MetricsProbe::on_converge(std::uint64_t step,
                               std::uint64_t steps_since_corruption) {
  (void)step;
  reg_->counter("stabilization.converged").inc();
  reg_->histogram("stabilization.latency", pow2_bounds(20))
      .observe(steps_since_corruption);
}

void MetricsProbe::on_run_end(std::uint64_t steps, sim::RunVerdict verdict) {
  (void)steps;
  reg_->counter(std::string("verdict.") + sim::to_cstr(verdict)).inc();
}

void MetricsProbe::on_fault(const FaultEvent& ev) {
  reg_->counter(std::string("faults.") + ev.kind).inc();
}

}  // namespace stpx::obs
