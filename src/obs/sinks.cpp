#include "obs/sinks.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/expect.hpp"

namespace stpx::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Minimal recursive-descent JSON checker (see header for scope).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (depth_ > 256 || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

const char* dir_name(sim::Dir d) { return sim::to_cstr(d); }

}  // namespace

bool json_valid(const std::string& text) { return JsonChecker(text).run(); }

// --- JsonlSink ------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

void JsonlSink::on_run_begin(std::size_t items_total) {
  *out_ << "{\"ev\":\"run_begin\",\"items\":" << items_total << "}\n";
}

void JsonlSink::on_step(std::uint64_t step, const sim::Action& a) {
  *out_ << "{\"ev\":\"step\",\"step\":" << step << ",\"action\":\""
        << sim::to_cstr(a.kind) << '"';
  if (a.kind == sim::ActionKind::kDeliverToReceiver ||
      a.kind == sim::ActionKind::kDeliverToSender) {
    *out_ << ",\"msg\":" << a.msg;
  }
  *out_ << "}\n";
}

void JsonlSink::on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) {
  *out_ << "{\"ev\":\"send\",\"step\":" << step << ",\"dir\":\""
        << dir_name(dir) << "\",\"msg\":" << msg << "}\n";
}

void JsonlSink::on_deliver(std::uint64_t step, sim::Dir dir, sim::MsgId msg) {
  *out_ << "{\"ev\":\"deliver\",\"step\":" << step << ",\"dir\":\""
        << dir_name(dir) << "\",\"msg\":" << msg << "}\n";
}

void JsonlSink::on_write(std::uint64_t step, std::size_t index,
                         seq::DataItem item) {
  *out_ << "{\"ev\":\"write\",\"step\":" << step << ",\"index\":" << index
        << ",\"item\":" << item << "}\n";
}

void JsonlSink::on_crash(std::uint64_t step, sim::Proc who) {
  *out_ << "{\"ev\":\"crash\",\"step\":" << step << ",\"proc\":\""
        << sim::to_cstr(who) << "\"}\n";
}

void JsonlSink::on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                           std::uint64_t records_replayed) {
  *out_ << "{\"ev\":\"restart\",\"step\":" << step << ",\"proc\":\""
        << sim::to_cstr(who) << "\",\"rehydrated\":"
        << (rehydrated ? "true" : "false")
        << ",\"records_replayed\":" << records_replayed << "}\n";
}

void JsonlSink::on_stall(std::uint64_t step) {
  *out_ << "{\"ev\":\"stall\",\"step\":" << step << "}\n";
}

void JsonlSink::on_run_end(std::uint64_t steps, sim::RunVerdict verdict) {
  *out_ << "{\"ev\":\"run_end\",\"steps\":" << steps << ",\"verdict\":\""
        << sim::to_cstr(verdict) << "\"}\n";
}

void JsonlSink::on_fault(const FaultEvent& ev) {
  *out_ << "{\"ev\":\"fault\",\"step\":" << ev.step << ",\"kind\":\""
        << json_escape(ev.kind) << "\",\"dir\":\"" << dir_name(ev.dir)
        << "\",\"count\":" << ev.count << ",\"duration\":" << ev.duration
        << ",\"match\":" << ev.match << "}\n";
}

// --- ChromeTraceSink ------------------------------------------------------

namespace {

// Track (tid) layout inside the single trace process.
constexpr int kTidSender = 1;
constexpr int kTidReceiver = 2;
constexpr int kTidChannelSR = 3;
constexpr int kTidChannelRS = 4;
constexpr int kTidEngine = 5;
constexpr int kTidFaultBase = 6;  // fault lanes stack upward from here

int channel_tid(sim::Dir d) {
  return d == sim::Dir::kSenderToReceiver ? kTidChannelSR : kTidChannelRS;
}

}  // namespace

void ChromeTraceSink::on_run_begin(std::size_t items_total) {
  std::ostringstream args;
  args << "\"items\":" << items_total;
  instants_.push_back({0, kTidEngine, "run_begin", args.str(), 0});
}

void ChromeTraceSink::on_step(std::uint64_t step, const sim::Action& a) {
  // Process steps render as 1-step slices on the process's own track;
  // delivery actions are already covered by on_deliver instants.
  if (a.kind == sim::ActionKind::kSenderStep) {
    instants_.push_back({step, kTidSender, "S-step", "", 1});
  } else if (a.kind == sim::ActionKind::kReceiverStep) {
    instants_.push_back({step, kTidReceiver, "R-step", "", 1});
  }
}

void ChromeTraceSink::on_send(std::uint64_t step, sim::Dir dir,
                              sim::MsgId msg) {
  std::ostringstream args;
  args << "\"msg\":" << msg;
  instants_.push_back(
      {step, channel_tid(dir), "send " + std::to_string(msg), args.str(), 0});
}

void ChromeTraceSink::on_deliver(std::uint64_t step, sim::Dir dir,
                                 sim::MsgId msg) {
  std::ostringstream args;
  args << "\"msg\":" << msg;
  instants_.push_back({step, channel_tid(dir),
                       "deliver " + std::to_string(msg), args.str(), 0});
}

void ChromeTraceSink::on_write(std::uint64_t step, std::size_t index,
                               seq::DataItem item) {
  std::ostringstream args;
  args << "\"index\":" << index << ",\"item\":" << item;
  instants_.push_back({step, kTidReceiver,
                       "write[" + std::to_string(index) + "]", args.str(), 0});
}

void ChromeTraceSink::on_crash(std::uint64_t step, sim::Proc who) {
  const int tid = who == sim::Proc::kSender ? kTidSender : kTidReceiver;
  instants_.push_back({step, tid, "crash-restart", "", 0});
}

void ChromeTraceSink::on_restart(std::uint64_t step, sim::Proc who,
                                 bool rehydrated,
                                 std::uint64_t records_replayed) {
  const int tid = who == sim::Proc::kSender ? kTidSender : kTidReceiver;
  std::ostringstream args;
  args << "\"rehydrated\":" << (rehydrated ? "true" : "false")
       << ",\"records_replayed\":" << records_replayed;
  instants_.push_back(
      {step, tid, rehydrated ? "restart (rehydrated)" : "restart (cold)",
       args.str(), 0});
}

void ChromeTraceSink::on_stall(std::uint64_t step) {
  instants_.push_back({step, kTidEngine, "stall", "", 0});
}

void ChromeTraceSink::on_fault(const FaultEvent& ev) {
  std::ostringstream args;
  args << "\"kind\":\"" << json_escape(ev.kind) << "\",\"dir\":\""
       << dir_name(ev.dir) << "\",\"count\":" << ev.count
       << ",\"match\":" << ev.match;
  const std::string name = std::string(ev.kind) + " " + dir_name(ev.dir);
  if (ev.duration > 0) {
    spans_.push_back({ev.step, ev.step + ev.duration, name, args.str()});
  } else {
    instants_.push_back({ev.step, kTidFaultBase, name, args.str(), 0});
  }
}

void ChromeTraceSink::write_to(std::ostream& out) const {
  // Assign each fault window to the first lane where it does not overlap an
  // earlier window, so every lane carries a properly nested (here: disjoint)
  // B/E sequence.
  std::vector<Span> spans = spans_;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.begin < b.begin;
                   });
  std::vector<std::uint64_t> lane_end;  // last end per lane
  struct TracedSpan {
    Span span;
    int tid;
  };
  std::vector<TracedSpan> placed;
  placed.reserve(spans.size());
  for (const Span& s : spans) {
    std::size_t lane = 0;
    while (lane < lane_end.size() && lane_end[lane] > s.begin) ++lane;
    if (lane == lane_end.size()) lane_end.push_back(0);
    lane_end[lane] = s.end;
    placed.push_back({s, kTidFaultBase + static_cast<int>(lane)});
  }

  struct Record {
    std::uint64_t ts;
    int order;  // stable tiebreak: B(0) before instants(1) before E(2)
    std::string json;
  };
  std::vector<Record> records;
  records.reserve(instants_.size() + 2 * placed.size());

  auto event = [](std::uint64_t ts, int tid, char ph, const std::string& name,
                  const std::string& args, std::uint64_t dur) {
    std::ostringstream os;
    os << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"" << ph
       << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts;
    if (ph == 'X') os << ",\"dur\":" << dur;
    if (ph == 'i') os << ",\"s\":\"t\"";
    if (!args.empty()) os << ",\"args\":{" << args << '}';
    os << '}';
    return os.str();
  };

  for (const Instant& i : instants_) {
    const char ph = i.dur > 0 ? 'X' : 'i';
    records.push_back({i.ts, 1, event(i.ts, i.tid, ph, i.name, i.args, i.dur)});
  }
  for (const TracedSpan& t : placed) {
    records.push_back(
        {t.span.begin, 0,
         event(t.span.begin, t.tid, 'B', t.span.name, t.span.args, 0)});
    records.push_back(
        {t.span.end, 2, event(t.span.end, t.tid, 'E', t.span.name, "", 0)});
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto meta = [&](int tid, const char* name) {
    out << (first ? "" : ",")
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << name << "\"}}";
    first = false;
  };
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"stpx run\"}}";
  first = false;
  meta(kTidSender, "sender");
  meta(kTidReceiver, "receiver");
  meta(kTidChannelSR, "channel S->R");
  meta(kTidChannelRS, "channel R->S");
  meta(kTidEngine, "engine");
  for (std::size_t lane = 0; lane < lane_end.size(); ++lane) {
    meta(kTidFaultBase + static_cast<int>(lane),
         lane == 0 ? "faults" : "faults (overflow lane)");
  }
  for (const Record& r : records) {
    out << (first ? "" : ",") << r.json;
    first = false;
  }
  out << "]}";
}

std::string ChromeTraceSink::to_json() const {
  std::ostringstream os;
  write_to(os);
  return os.str();
}

void ChromeTraceSink::clear() {
  instants_.clear();
  spans_.clear();
}

}  // namespace stpx::obs
