// Trace sinks: probes that serialize the event stream.
//
//   * JsonlSink — one JSON object per line, streamed to an ostream as the
//     run executes; the grep/jq-friendly archival form.
//   * ChromeTraceSink — buffers the run and exports Chrome trace-event JSON
//     (the format Perfetto and chrome://tracing load).  Sender, receiver,
//     and the two channel directions render as threads of one process;
//     sends/deliveries/writes/crashes are instant events on their track;
//     process steps are 1-step complete events; chaos fault *windows*
//     (blackout/freeze) are balanced B/E duration pairs on a dedicated
//     faults track, so a schedule's blind spots are visible as shaded
//     spans over the traffic they suppressed.
//
// Trace timestamps are engine steps, written as microseconds (1 step =
// 1 us) — Perfetto needs a time unit and steps are the only clock the
// model has.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace stpx::obs {

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Structural validity check (objects/arrays/strings/numbers/bools/null,
/// complete input).  Not a full RFC 8259 parser — enough to guarantee a
/// report or trace round-trips through a real one.
bool json_valid(const std::string& text);

/// Streams one JSON object per event line:
///   {"ev":"send","step":12,"dir":"S->R","msg":3}
class JsonlSink final : public IProbe {
 public:
  /// `out` is non-owning and must outlive the sink's use.
  explicit JsonlSink(std::ostream& out);

  void on_run_begin(std::size_t items_total) override;
  void on_step(std::uint64_t step, const sim::Action& a) override;
  void on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_deliver(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_write(std::uint64_t step, std::size_t index,
                seq::DataItem item) override;
  void on_crash(std::uint64_t step, sim::Proc who) override;
  void on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                  std::uint64_t records_replayed) override;
  void on_stall(std::uint64_t step) override;
  void on_run_end(std::uint64_t steps, sim::RunVerdict verdict) override;
  void on_fault(const FaultEvent& ev) override;

 private:
  std::ostream* out_;
};

/// Buffers events and exports a Chrome trace-event JSON document.
class ChromeTraceSink final : public IProbe {
 public:
  void on_run_begin(std::size_t items_total) override;
  void on_step(std::uint64_t step, const sim::Action& a) override;
  void on_send(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_deliver(std::uint64_t step, sim::Dir dir, sim::MsgId msg) override;
  void on_write(std::uint64_t step, std::size_t index,
                seq::DataItem item) override;
  void on_crash(std::uint64_t step, sim::Proc who) override;
  void on_restart(std::uint64_t step, sim::Proc who, bool rehydrated,
                  std::uint64_t records_replayed) override;
  void on_stall(std::uint64_t step) override;
  void on_fault(const FaultEvent& ev) override;

  /// Render everything buffered so far as {"traceEvents":[...]}.
  void write_to(std::ostream& out) const;
  std::string to_json() const;
  void clear();

 private:
  /// One instant ("i") or complete ("X") event on a track.
  struct Instant {
    std::uint64_t ts = 0;
    int tid = 0;
    std::string name;
    std::string args;        // pre-rendered JSON object body, may be empty
    std::uint64_t dur = 0;   // 0 = instant, >0 = complete event
  };
  /// One fault window, exported as a balanced B/E pair.
  struct Span {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::string name;
    std::string args;
  };

  std::vector<Instant> instants_;
  std::vector<Span> spans_;
};

}  // namespace stpx::obs
