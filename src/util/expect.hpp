// Lightweight contract checking for stpx.
//
// STPX_EXPECT is used for preconditions on public APIs and internal
// invariants.  Violations throw stpx::ContractError so tests can assert on
// them; they are never compiled out, because the library's whole purpose is
// checking correctness properties of protocols.
#pragma once

#include <stdexcept>
#include <string>

namespace stpx {

/// Thrown when a precondition or invariant of the library is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void contract_failure(const char* expr, const char* file,
                                   int line, const std::string& msg);

}  // namespace stpx

#define STPX_EXPECT(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::stpx::contract_failure(#cond, __FILE__, __LINE__, (msg));   \
    }                                                               \
  } while (false)
