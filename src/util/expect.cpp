#include "util/expect.hpp"

#include <sstream>

namespace stpx {

void contract_failure(const char* expr, const char* file, int line,
                      const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

}  // namespace stpx
