#pragma once
// Tiny text serialization for durable process state ("blobs").
//
// A blob is a space-separated list of signed 64-bit integers.  Protocols
// use BlobWriter in save_state() and BlobReader in restore_state(); the
// reader is defensive — every accessor reports failure instead of
// throwing, so a truncated or corrupted blob (a storage fault that slid
// past the store's checksum, or a cross-protocol mixup) degrades to a
// failed restore and a cold start rather than undefined behaviour.
//
// The format is deliberately human-readable: record payloads show up
// as-is in store dumps and test failure messages.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stpx::util {

/// Tokenize blob text into its raw values; nullopt on any malformed token.
/// Exposed so composite records (e.g. session manifests) can nest a whole
/// inner blob as one length-prefixed vec() and round-trip it losslessly.
std::optional<std::vector<std::int64_t>> blob_tokens(const std::string& blob);

/// Inverse of blob_tokens: render raw values back into blob text.
std::string blob_join(const std::vector<std::int64_t>& values);

class BlobWriter {
 public:
  void i64(std::int64_t v);
  void u64(std::uint64_t v);
  void boolean(bool v) { i64(v ? 1 : 0); }

  /// Length-prefixed run of values.
  void vec(const std::vector<std::int64_t>& vs);

  const std::string& str() const { return out_; }

 private:
  std::string out_;
};

class BlobReader {
 public:
  explicit BlobReader(const std::string& blob);

  /// Each accessor returns false (leaving `out` untouched) on exhaustion
  /// or a malformed token; once any read fails, ok() stays false.
  bool i64(std::int64_t& out);
  bool u64(std::uint64_t& out);
  bool boolean(bool& out);

  /// Reads a length prefix then that many values; rejects absurd lengths
  /// (longer than the remaining token count) without allocating.
  bool vec(std::vector<std::int64_t>& out);

  bool ok() const { return ok_; }
  /// True when every token has been consumed and no read failed.
  bool done() const { return ok_ && pos_ == tokens_.size(); }

 private:
  std::vector<std::int64_t> tokens_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace stpx::util
