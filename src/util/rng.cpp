#include "util/rng.hpp"

// Rng is header-only; this translation unit exists so the library has a
// stable archive member and the header's contracts get compiled once.
namespace stpx {
namespace {
[[maybe_unused]] void touch() { Rng r(1); (void)r(); }
}  // namespace
}  // namespace stpx
