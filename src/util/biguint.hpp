// Minimal arbitrary-precision unsigned integer.
//
// stpx needs exact values of alpha(m) = m! * sum(1/k!) for the T1 table;
// alpha(21) already overflows 64 bits, so a tiny big-int keeps the numbers
// honest.  Only the operations the library needs are provided: addition,
// multiplication by BigUint and by machine words, comparison, decimal I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stpx {

/// Arbitrary-precision unsigned integer stored little-endian in 32-bit limbs.
/// Invariant: no trailing zero limbs; zero is represented by an empty vector.
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  /// Parse a non-empty decimal string of digits.  Throws ContractError on
  /// malformed input.
  static BigUint from_decimal(const std::string& digits);

  bool is_zero() const { return limbs_.empty(); }

  /// Value as u64 if it fits; throws ContractError otherwise.
  std::uint64_t to_u64() const;

  /// True iff the value fits in 64 bits.
  bool fits_u64() const { return limbs_.size() <= 2; }

  std::string to_decimal() const;

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator+=(std::uint64_t rhs);
  BigUint& operator*=(const BigUint& rhs);
  BigUint& operator*=(std::uint64_t rhs);

  friend BigUint operator+(BigUint lhs, const BigUint& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend BigUint operator*(BigUint lhs, const BigUint& rhs) {
    lhs *= rhs;
    return lhs;
  }
  friend BigUint operator*(BigUint lhs, std::uint64_t rhs) {
    lhs *= rhs;
    return lhs;
  }
  friend BigUint operator+(BigUint lhs, std::uint64_t rhs) {
    lhs += rhs;
    return lhs;
  }

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return !(a == b);
  }
  friend bool operator<(const BigUint& a, const BigUint& b);
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return !(b < a);
  }
  friend bool operator>(const BigUint& a, const BigUint& b) { return b < a; }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return !(a < b);
  }

 private:
  void trim();
  /// Divide in place by a small divisor, returning the remainder.
  std::uint32_t div_small(std::uint32_t divisor);

  std::vector<std::uint32_t> limbs_;
};

}  // namespace stpx
