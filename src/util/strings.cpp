#include "util/strings.hpp"

#include <cstdio>
#include <sstream>

namespace stpx {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string brackets(const std::vector<int>& values) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i];
  }
  os << ']';
  return os.str();
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace stpx
