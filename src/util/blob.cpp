#include "util/blob.hpp"

#include <cerrno>
#include <cstdlib>

namespace stpx::util {

std::optional<std::vector<std::int64_t>> blob_tokens(const std::string& blob) {
  std::vector<std::int64_t> tokens;
  std::size_t i = 0;
  while (i < blob.size()) {
    while (i < blob.size() && blob[i] == ' ') ++i;
    if (i >= blob.size()) break;
    const std::size_t start = i;
    while (i < blob.size() && blob[i] != ' ') ++i;
    const std::string tok = blob.substr(start, i - start);
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (errno != 0 || end == tok.c_str() || *end != '\0') return std::nullopt;
    tokens.push_back(static_cast<std::int64_t>(v));
  }
  return tokens;
}

std::string blob_join(const std::vector<std::int64_t>& values) {
  std::string out;
  for (std::int64_t v : values) {
    if (!out.empty()) out.push_back(' ');
    out += std::to_string(v);
  }
  return out;
}

void BlobWriter::i64(std::int64_t v) {
  if (!out_.empty()) out_.push_back(' ');
  out_ += std::to_string(v);
}

void BlobWriter::u64(std::uint64_t v) { i64(static_cast<std::int64_t>(v)); }

void BlobWriter::vec(const std::vector<std::int64_t>& vs) {
  i64(static_cast<std::int64_t>(vs.size()));
  for (std::int64_t v : vs) i64(v);
}

BlobReader::BlobReader(const std::string& blob) {
  auto tokens = blob_tokens(blob);
  if (!tokens) {
    ok_ = false;
    return;
  }
  tokens_ = std::move(*tokens);
}

bool BlobReader::i64(std::int64_t& out) {
  if (!ok_ || pos_ >= tokens_.size()) {
    ok_ = false;
    return false;
  }
  out = tokens_[pos_++];
  return true;
}

bool BlobReader::u64(std::uint64_t& out) {
  std::int64_t v = 0;
  if (!i64(v) || v < 0) {
    ok_ = false;
    return false;
  }
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool BlobReader::boolean(bool& out) {
  std::int64_t v = 0;
  if (!i64(v) || (v != 0 && v != 1)) {
    ok_ = false;
    return false;
  }
  out = (v == 1);
  return true;
}

bool BlobReader::vec(std::vector<std::int64_t>& out) {
  std::int64_t n = 0;
  if (!i64(n) || n < 0 ||
      static_cast<std::size_t>(n) > tokens_.size() - pos_) {
    ok_ = false;
    return false;
  }
  out.assign(tokens_.begin() + static_cast<std::ptrdiff_t>(pos_),
             tokens_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return true;
}

}  // namespace stpx::util
