#include "util/biguint.hpp"

#include <algorithm>
#include <cctype>

#include "util/expect.hpp"

namespace stpx {

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    const std::uint32_t high = static_cast<std::uint32_t>(value >> 32);
    if (high != 0) limbs_.push_back(high);
  }
}

BigUint BigUint::from_decimal(const std::string& digits) {
  STPX_EXPECT(!digits.empty(), "BigUint::from_decimal: empty string");
  BigUint out;
  for (char c : digits) {
    STPX_EXPECT(std::isdigit(static_cast<unsigned char>(c)),
                "BigUint::from_decimal: non-digit character");
    out *= 10u;
    out += static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

std::uint64_t BigUint::to_u64() const {
  STPX_EXPECT(fits_u64(), "BigUint::to_u64: value exceeds 64 bits");
  std::uint64_t v = 0;
  if (limbs_.size() >= 1) v |= limbs_[0];
  if (limbs_.size() >= 2) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::uint32_t BigUint::div_small(std::uint32_t divisor) {
  STPX_EXPECT(divisor != 0, "BigUint::div_small: divide by zero");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const std::uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  trim();
  return static_cast<std::uint32_t>(rem);
}

std::string BigUint::to_decimal() const {
  if (is_zero()) return "0";
  BigUint tmp = *this;
  std::string out;
  while (!tmp.is_zero()) {
    // Peel 9 digits at a time to reduce division count.
    std::uint32_t chunk = tmp.div_small(1000000000u);
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry + limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator+=(std::uint64_t rhs) { return *this += BigUint(rhs); }

BigUint& BigUint::operator*=(const BigUint& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(limbs_[i]) * rhs.limbs_[j] +
          out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

BigUint& BigUint::operator*=(std::uint64_t rhs) { return *this *= BigUint(rhs); }

bool operator<(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i];
  }
  return false;
}

}  // namespace stpx
