// Small string formatting helpers shared across stpx.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stpx {

/// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Render an integer vector like "[3, 1, 4]".
std::string brackets(const std::vector<int>& values);

/// Left-pad `s` to `width` with spaces (no-op if already wider).
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad `s` to `width` with spaces (no-op if already wider).
std::string pad_right(const std::string& s, std::size_t width);

/// Fixed-point rendering of a double with `digits` decimal places.
std::string fixed(double value, int digits);

}  // namespace stpx
