// Deterministic, seedable pseudo-random number generation.
//
// All randomness in stpx flows through Rng so that every simulated run is
// exactly reproducible from a 64-bit seed.  The generator is xoshiro256**,
// seeded via splitmix64 (the construction recommended by its authors).
//
// Thread affinity: Rng is NOT thread-safe — next-state updates are plain
// writes.  Every Rng instance must be confined to one thread or guarded by
// the lock that owns the surrounding state.  The single-threaded engine
// satisfies this trivially; concurrent layers follow the confinement
// pattern of net::LoopbackCore, which keeps each link's reorder Rng under
// that link's mutex (split() fresh Rngs per thread/link rather than
// sharing one — sharing would also destroy seed-reproducibility, since
// interleaving order would leak into the stream).  The TSan CI stage
// (STPX_SANITIZE_THREAD) enforces this audit conclusion mechanically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"

namespace stpx {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEFCAFEULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    STPX_EXPECT(bound > 0, "Rng::below requires positive bound");
    if (bound == 1) return 0;
    // Unbiased rejection sampling over the tightest power-of-two mask.
    const std::uint64_t mask =
        ~std::uint64_t{0} >> __builtin_clzll(bound - 1);
    while (true) {
      const std::uint64_t x = (*this)() & mask;
      if (x < bound) return x;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    STPX_EXPECT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    // 53 high bits give a uniform double in [0,1).
    const double u =
        static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return u < p;
  }

  /// Uniformly chosen index into a non-empty container.
  template <typename Container>
  std::size_t index_into(const Container& c) {
    STPX_EXPECT(!c.empty(), "Rng::index_into requires non-empty container");
    return static_cast<std::size_t>(below(c.size()));
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index_into(v)];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<std::size_t>(below(i))]);
    }
  }

  /// Derive an independent child generator (for per-trial seeding).
  Rng split() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace stpx
