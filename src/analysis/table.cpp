#include "analysis/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace stpx::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  STPX_EXPECT(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  STPX_EXPECT(cells.size() == headers_.size(),
              "Table::add_row: cell count does not match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << pad_right(cells[c], widths[c]) << " |";
    }
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ',';
    os << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string heading(const std::string& title) {
  return "\n== " + title + " ==\n";
}

}  // namespace stpx::analysis
