#include "analysis/trace_pipeline.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/report.hpp"
#include "obs/sinks.hpp"

namespace stpx::analysis {

using net::TraceEvent;
using net::TraceEventKind;

std::int64_t TraceReport::value(const std::string& key) const {
  const auto it = values.find(key);
  return it == values.end() ? 0 : it->second;
}

std::string TraceReport::to_json() const {
  std::ostringstream os;
  os << "{\"ok\":" << (ok ? "true" : "false") << ",\"values\":{";
  bool first = true;
  for (const auto& [k, v] : values) {
    os << (first ? "" : ",") << '"' << obs::json_escape(k) << "\":" << v;
    first = false;
  }
  os << "},\"notes\":{";
  first = true;
  for (const auto& [k, v] : notes) {
    os << (first ? "" : ",") << '"' << obs::json_escape(k) << "\":\""
       << obs::json_escape(v) << '"';
    first = false;
  }
  os << "}}";
  return os.str();
}

TracePipeline& TracePipeline::add(std::unique_ptr<ITraceAnalyzer> analyzer) {
  analyzers_.push_back(std::move(analyzer));
  return *this;
}

TraceReport TracePipeline::run(const std::vector<TraceEvent>& events,
                               const TraceContext& ctx) {
  TraceReport report;
  for (auto& a : analyzers_) a->begin(ctx);
  for (const TraceEvent& ev : events) {
    for (auto& a : analyzers_) a->on_event(ev);
  }
  for (auto& a : analyzers_) a->finish(ctx, report);
  return report;
}

namespace {

/// Integer nearest-rank percentiles (samples are integral, so the doubles
/// obs::percentiles_u64 returns are exact and the casts lossless).
void emit_percentiles(TraceReport& out, const std::string& prefix,
                      std::vector<std::uint64_t> samples) {
  const obs::Percentiles p = obs::percentiles_u64(std::move(samples));
  out.values[prefix + ".count"] = static_cast<std::int64_t>(p.count);
  out.values[prefix + ".p50_us"] = static_cast<std::int64_t>(p.p50);
  out.values[prefix + ".p90_us"] = static_cast<std::int64_t>(p.p90);
  out.values[prefix + ".p99_us"] = static_cast<std::int64_t>(p.p99);
}

bool is_data_send_sr(const TraceEvent& ev) {
  return ev.kind == TraceEventKind::kFrameSent &&
         static_cast<net::FrameKind>(ev.detail) == net::FrameKind::kData &&
         ev.dir == sim::Dir::kSenderToReceiver;
}

// --- ack_rtt ---------------------------------------------------------------

class AckRttAnalyzer final : public ITraceAnalyzer {
 public:
  std::string name() const override { return "ack_rtt"; }

  void begin(const TraceContext&) override {
    pending_.clear();
    samples_.clear();
  }

  void on_event(const TraceEvent& ev) override {
    if (is_data_send_sr(ev)) {
      pending_.try_emplace(ev.session, ev.ts_us);  // keep the oldest
    } else if (ev.kind == TraceEventKind::kFrameReceived &&
               ev.dir == sim::Dir::kReceiverToSender) {
      const auto it = pending_.find(ev.session);
      if (it != pending_.end()) {
        samples_.push_back(ev.ts_us - it->second);
        pending_.erase(it);
      }
    }
  }

  void finish(const TraceContext&, TraceReport& out) override {
    emit_percentiles(out, "ack_rtt", std::move(samples_));
  }

 private:
  std::map<std::uint32_t, std::uint64_t> pending_;  // session -> send ts
  std::vector<std::uint64_t> samples_;
};

// --- item_latency ----------------------------------------------------------

class ItemLatencyAnalyzer final : public ITraceAnalyzer {
 public:
  std::string name() const override { return "item_latency"; }

  void begin(const TraceContext&) override {
    last_.clear();
    samples_.clear();
  }

  void on_event(const TraceEvent& ev) override {
    if (ev.kind != TraceEventKind::kItem) return;
    const auto it = last_.find(ev.session);
    if (it != last_.end()) samples_.push_back(ev.ts_us - it->second);
    last_[ev.session] = ev.ts_us;
  }

  void finish(const TraceContext&, TraceReport& out) override {
    emit_percentiles(out, "item_latency", std::move(samples_));
  }

 private:
  std::map<std::uint32_t, std::uint64_t> last_;  // session -> last item ts
  std::vector<std::uint64_t> samples_;
};

// --- goodput ---------------------------------------------------------------

class GoodputAnalyzer final : public ITraceAnalyzer {
 public:
  std::string name() const override { return "goodput"; }

  void begin(const TraceContext&) override {
    seen_any_ = false;
    first_ts_ = last_ts_ = items_ = sent_ = received_ = 0;
  }

  void on_event(const TraceEvent& ev) override {
    if (!seen_any_ || ev.ts_us < first_ts_) first_ts_ = ev.ts_us;
    if (!seen_any_ || ev.ts_us > last_ts_) last_ts_ = ev.ts_us;
    seen_any_ = true;
    if (ev.kind == TraceEventKind::kItem) {
      ++items_;
    } else if (is_data_send_sr(ev)) {
      ++sent_;
    } else if (ev.kind == TraceEventKind::kFrameReceived &&
               static_cast<net::FrameKind>(ev.detail) ==
                   net::FrameKind::kData &&
               ev.dir == sim::Dir::kSenderToReceiver) {
      ++received_;
    }
  }

  void finish(const TraceContext& ctx, TraceReport& out) override {
    const std::uint64_t end =
        ctx.trace_end_us != 0 ? ctx.trace_end_us : last_ts_;
    const std::uint64_t dur = end > first_ts_ ? end - first_ts_ : 0;
    // Data-frame traffic from whichever side the trace was taken: prefer
    // the sender's sends; a receiver-side trace sees only deliveries.
    // (A merged two-sided trace is judged by its send side — counting
    // both would tally every frame twice.)
    const std::uint64_t data_frames = sent_ > 0 ? sent_ : received_;
    // Every data frame past one per accepted item is retransmission
    // overhead (a lower bound: frames for still-inflight items count too).
    const std::uint64_t retx =
        data_frames > items_ ? data_frames - items_ : 0;
    out.values["goodput.items"] = static_cast<std::int64_t>(items_);
    out.values["goodput.data_frames"] = static_cast<std::int64_t>(data_frames);
    out.values["goodput.retx_permille"] = static_cast<std::int64_t>(
        data_frames == 0 ? 0 : retx * 1000 / data_frames);
    out.values["goodput.duration_us"] = static_cast<std::int64_t>(dur);
    out.values["goodput.items_per_sec"] = static_cast<std::int64_t>(
        dur == 0 ? 0 : items_ * 1'000'000 / dur);
  }

 private:
  bool seen_any_ = false;
  std::uint64_t first_ts_ = 0;
  std::uint64_t last_ts_ = 0;
  std::uint64_t items_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

// --- prefix attestor -------------------------------------------------------

class PrefixAttestor final : public ITraceAnalyzer {
 public:
  std::string name() const override { return "prefix"; }

  void begin(const TraceContext&) override {
    sessions_.clear();
    item_violations_ = 0;
    state_violations_ = 0;
    first_violation_.clear();
  }

  void on_event(const TraceEvent& ev) override {
    switch (ev.kind) {
      case TraceEventKind::kItem: {
        Session& s = sessions_[ev.session];
        // The acceptance criterion, re-derived from the wire: accepted
        // item indices of a session must be exactly 0,1,2,… in order.
        if (ev.msg != static_cast<std::int64_t>(s.next_index)) {
          ++item_violations_;
          if (first_violation_.empty()) {
            std::ostringstream os;
            os << "session " << ev.session << ": item index " << ev.msg
               << " where " << s.next_index << " was required";
            first_violation_ = os.str();
          }
        } else {
          ++s.next_index;
        }
        break;
      }
      case TraceEventKind::kSessionState: {
        Session& s = sessions_[ev.session];
        const auto state = static_cast<net::SessionState>(ev.detail);
        if (state == net::SessionState::kCompleted) {
          s.completed = true;
        } else if (state == net::SessionState::kSafetyViolation ||
                   state == net::SessionState::kRecoveryViolation) {
          ++state_violations_;
          if (first_violation_.empty()) {
            std::ostringstream os;
            os << "session " << ev.session << ": state "
               << net::to_cstr(state);
            first_violation_ = os.str();
          }
        }
        break;
      }
      case TraceEventKind::kRehydrate: {
        // A rehydration resumes the session at the durable `position` —
        // assignment, in either direction, exactly like a live probe's
        // on_rehydrate.  Raising covers indices accepted before the crash
        // that never reappear; LOWERING is the crash-rewind case: the dead
        // generation's trace may witness items beyond the last durable
        // checkpoint, and the surviving generation legitimately re-earns
        // them (a released ack never outran the durable position, so the
        // peer replays them — docs/RECOVERY.md).
        Session& s = sessions_[ev.session];
        s.next_index = static_cast<std::size_t>(ev.msg);
        break;
      }
      default:
        break;
    }
  }

  void finish(const TraceContext& ctx, TraceReport& out) override {
    std::uint64_t completed = 0;
    std::uint64_t incomplete = 0;
    for (const auto& [id, s] : sessions_) {
      if (s.completed) ++completed;
    }
    for (const auto& [id, expected] : ctx.expected_items) {
      const auto it = sessions_.find(id);
      if (it == sessions_.end() || !it->second.completed ||
          it->second.next_index != expected) {
        ++incomplete;
        if (first_violation_.empty()) {
          std::ostringstream os;
          os << "session " << id << ": expected " << expected
             << " items, incomplete";
          first_violation_ = os.str();
        }
      }
    }
    const bool ok =
        item_violations_ == 0 && state_violations_ == 0 && incomplete == 0;
    out.values["prefix.sessions"] =
        static_cast<std::int64_t>(sessions_.size());
    out.values["prefix.completed"] = static_cast<std::int64_t>(completed);
    out.values["prefix.item_violations"] =
        static_cast<std::int64_t>(item_violations_);
    out.values["prefix.state_violations"] =
        static_cast<std::int64_t>(state_violations_);
    out.values["prefix.incomplete"] = static_cast<std::int64_t>(incomplete);
    out.values["prefix.ok"] = ok ? 1 : 0;
    if (!first_violation_.empty()) {
      out.notes["prefix.first_violation"] = first_violation_;
    }
    if (!ok) out.ok = false;
  }

 private:
  struct Session {
    std::size_t next_index = 0;
    bool completed = false;
  };
  std::map<std::uint32_t, Session> sessions_;
  std::uint64_t item_violations_ = 0;
  std::uint64_t state_violations_ = 0;
  std::string first_violation_;
};

// --- fault correlator ------------------------------------------------------

class FaultCorrelator final : public ITraceAnalyzer {
 public:
  std::string name() const override { return "faultcorr"; }

  void begin(const TraceContext& ctx) override {
    windows_ = ctx.fault_windows;
    sheds_in_ = sheds_out_ = rejects_in_ = rejects_out_ = sends_in_ = 0;
  }

  void on_event(const TraceEvent& ev) override {
    switch (ev.kind) {
      case TraceEventKind::kFrameShed:
        (in_window(ev.ts_us) ? sheds_in_ : sheds_out_) += 1;
        break;
      case TraceEventKind::kFrameRejected:
        (in_window(ev.ts_us) ? rejects_in_ : rejects_out_) += 1;
        break;
      case TraceEventKind::kFrameSent:
        // Sends stamped inside a window are the loss candidates a
        // blackout swallowed (their receive side will never appear).
        if (in_window(ev.ts_us)) ++sends_in_;
        break;
      default:
        break;
    }
  }

  void finish(const TraceContext&, TraceReport& out) override {
    std::uint64_t covered = 0;
    for (const auto& w : windows_) covered += w.end_us - w.begin_us;
    out.values["faultcorr.windows"] =
        static_cast<std::int64_t>(windows_.size());
    out.values["faultcorr.covered_us"] = static_cast<std::int64_t>(covered);
    out.values["faultcorr.sends_in_window"] =
        static_cast<std::int64_t>(sends_in_);
    out.values["faultcorr.sheds_in_window"] =
        static_cast<std::int64_t>(sheds_in_);
    out.values["faultcorr.sheds_outside"] =
        static_cast<std::int64_t>(sheds_out_);
    out.values["faultcorr.rejects_in_window"] =
        static_cast<std::int64_t>(rejects_in_);
    out.values["faultcorr.rejects_outside"] =
        static_cast<std::int64_t>(rejects_out_);
  }

 private:
  bool in_window(std::uint64_t ts) const {
    for (const auto& w : windows_) {
      if (ts >= w.begin_us && ts < w.end_us) return true;
    }
    return false;
  }

  std::vector<net::TraceSpan> windows_;
  std::uint64_t sheds_in_ = 0;
  std::uint64_t sheds_out_ = 0;
  std::uint64_t rejects_in_ = 0;
  std::uint64_t rejects_out_ = 0;
  std::uint64_t sends_in_ = 0;
};

// --- stall / livelock detector --------------------------------------------

class StallDetector final : public ITraceAnalyzer {
 public:
  StallDetector(std::uint64_t stall_threshold_us,
                std::uint64_t livelock_frames)
      : threshold_us_(stall_threshold_us), livelock_frames_(livelock_frames) {}

  std::string name() const override { return "stall"; }

  void begin(const TraceContext&) override {
    seen_any_ = false;
    prev_ts_ = max_gap_ = 0;
    gaps_over_ = trailing_frames_ = 0;
    completed_.clear();
  }

  void on_event(const TraceEvent& ev) override {
    if (seen_any_ && ev.ts_us > prev_ts_) {
      const std::uint64_t gap = ev.ts_us - prev_ts_;
      if (gap > max_gap_) max_gap_ = gap;
      if (gap >= threshold_us_) ++gaps_over_;
    }
    prev_ts_ = ev.ts_us;
    seen_any_ = true;
    switch (ev.kind) {
      case TraceEventKind::kItem:
        trailing_frames_ = 0;  // the wire is still making progress
        break;
      case TraceEventKind::kFrameSent:
      case TraceEventKind::kFrameReceived:
        ++trailing_frames_;
        break;
      case TraceEventKind::kSessionState:
        if (static_cast<net::SessionState>(ev.detail) ==
            net::SessionState::kCompleted) {
          completed_.insert(ev.session);
        }
        break;
      default:
        break;
    }
  }

  void finish(const TraceContext& ctx, TraceReport& out) override {
    // Livelock = the wire kept churning frames long after the last item
    // while expected sessions were still incomplete.  Without expected
    // sessions the trailing traffic is indistinguishable from keepalives,
    // so no verdict is taken.
    bool incomplete = false;
    for (const auto& [id, n] : ctx.expected_items) {
      if (completed_.find(id) == completed_.end()) {
        incomplete = true;
        break;
      }
    }
    const bool livelock =
        incomplete && trailing_frames_ >= livelock_frames_;
    out.values["stall.max_gap_us"] = static_cast<std::int64_t>(max_gap_);
    out.values["stall.gaps_over_threshold"] =
        static_cast<std::int64_t>(gaps_over_);
    out.values["stall.threshold_us"] = static_cast<std::int64_t>(threshold_us_);
    out.values["stall.trailing_frames"] =
        static_cast<std::int64_t>(trailing_frames_);
    out.values["stall.livelock"] = livelock ? 1 : 0;
    if (livelock) {
      out.ok = false;
      std::ostringstream os;
      os << trailing_frames_ << " frames after the last item with sessions"
         << " incomplete";
      out.notes["stall.livelock"] = os.str();
    }
  }

 private:
  std::uint64_t threshold_us_;
  std::uint64_t livelock_frames_;
  bool seen_any_ = false;
  std::uint64_t prev_ts_ = 0;
  std::uint64_t max_gap_ = 0;
  std::uint64_t gaps_over_ = 0;
  std::uint64_t trailing_frames_ = 0;
  std::set<std::uint32_t> completed_;
};

// --- rehydration latency ---------------------------------------------------

class RehydrationAnalyzer final : public ITraceAnalyzer {
 public:
  std::string name() const override { return "rehydrate"; }

  void begin(const TraceContext&) override {
    pending_.clear();
    samples_.clear();
    rehydrations_ = 0;
  }

  void on_event(const TraceEvent& ev) override {
    if (ev.kind == TraceEventKind::kRehydrate) {
      ++rehydrations_;
      pending_.try_emplace(ev.session, ev.ts_us);
    } else if (ev.kind == TraceEventKind::kItem) {
      const auto it = pending_.find(ev.session);
      if (it != pending_.end()) {
        samples_.push_back(ev.ts_us - it->second);
        pending_.erase(it);
      }
    }
  }

  void finish(const TraceContext&, TraceReport& out) override {
    out.values["rehydrate.rehydrations"] =
        static_cast<std::int64_t>(rehydrations_);
    emit_percentiles(out, "rehydrate.latency", std::move(samples_));
  }

 private:
  std::map<std::uint32_t, std::uint64_t> pending_;  // session -> restore ts
  std::vector<std::uint64_t> samples_;
  std::uint64_t rehydrations_ = 0;
};

}  // namespace

std::unique_ptr<ITraceAnalyzer> make_ack_rtt_analyzer() {
  return std::make_unique<AckRttAnalyzer>();
}

std::unique_ptr<ITraceAnalyzer> make_item_latency_analyzer() {
  return std::make_unique<ItemLatencyAnalyzer>();
}

std::unique_ptr<ITraceAnalyzer> make_goodput_analyzer() {
  return std::make_unique<GoodputAnalyzer>();
}

std::unique_ptr<ITraceAnalyzer> make_prefix_attestor() {
  return std::make_unique<PrefixAttestor>();
}

std::unique_ptr<ITraceAnalyzer> make_fault_correlator() {
  return std::make_unique<FaultCorrelator>();
}

std::unique_ptr<ITraceAnalyzer> make_stall_detector(
    std::uint64_t stall_threshold_us, std::uint64_t livelock_frames) {
  return std::make_unique<StallDetector>(stall_threshold_us, livelock_frames);
}

std::unique_ptr<ITraceAnalyzer> make_rehydration_analyzer() {
  return std::make_unique<RehydrationAnalyzer>();
}

TracePipeline make_standard_pipeline() {
  TracePipeline p;
  p.add(make_ack_rtt_analyzer())
      .add(make_item_latency_analyzer())
      .add(make_goodput_analyzer())
      .add(make_prefix_attestor())
      .add(make_fault_correlator())
      .add(make_stall_detector())
      .add(make_rehydration_analyzer());
  return p;
}

void publish_trace_report(const TraceReport& report,
                          obs::MetricsRegistry& reg) {
  for (const auto& [k, v] : report.values) {
    reg.gauge("trace." + k).set(v);
  }
  reg.gauge("trace.ok").set(report.ok ? 1 : 0);
}

}  // namespace stpx::analysis
