// Aligned ASCII tables + CSV, used by every bench binary so all experiment
// output has one consistent shape.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stpx::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Aligned, boxed, human-readable rendering.
  std::string to_ascii() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section heading the benches use between tables.
std::string heading(const std::string& title);

}  // namespace stpx::analysis
