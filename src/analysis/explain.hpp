// Run forensics: turn a violating or stalled RunResult into a short
// human-readable narrative — which write broke safety, which delivered
// message caused it, when that message was sent, and how stale it was.
// Used by protocol_lab and the attack examples; handy whenever the safety
// checker fires and a human needs to see why.
#pragma once

#include <optional>
#include <string>

#include "sim/engine.hpp"

namespace stpx::analysis {

struct ViolationForensics {
  std::uint64_t violation_step = 0;      // the receiver step that wrote wrong
  std::size_t wrong_position = 0;        // index in Y of the first bad item
  seq::DataItem wrote = 0;               // what was written
  std::optional<seq::DataItem> expected; // X at that position (nullopt: past end)
  /// The last message delivered to the receiver before the bad write.
  std::optional<sim::MsgId> culprit_message;
  std::optional<std::uint64_t> culprit_delivered_at;
  std::optional<std::uint64_t> culprit_first_sent_at;
  /// Steps between the culprit's first send and its fatal delivery.
  std::optional<std::uint64_t> staleness;
};

/// Analyse a run recorded with record_trace whose safety_ok is false.
/// Returns nullopt if the run was safe or the trace is missing.
std::optional<ViolationForensics> explain_violation(
    const sim::RunResult& run);

/// One-paragraph narrative rendering.
std::string narrate(const ViolationForensics& f, const sim::RunResult& run);

}  // namespace stpx::analysis
