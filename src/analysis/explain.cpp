#include "analysis/explain.hpp"

#include <sstream>

#include "seq/types.hpp"

namespace stpx::analysis {

std::optional<ViolationForensics> explain_violation(
    const sim::RunResult& run) {
  if (run.safety_ok || run.trace.empty()) return std::nullopt;

  ViolationForensics f;

  // Walk the trace reconstructing Y until the first bad write.
  std::size_t written = 0;
  std::optional<std::uint64_t> last_delivery_step;
  std::optional<sim::MsgId> last_delivery_msg;
  bool found = false;
  for (const sim::TraceEvent& ev : run.trace) {
    if (ev.action.kind == sim::ActionKind::kDeliverToReceiver) {
      last_delivery_step = ev.step;
      last_delivery_msg = ev.action.msg;
    }
    for (seq::DataItem d : ev.writes) {
      const bool bad =
          written >= run.input.size() || run.input[written] != d;
      if (bad) {
        f.violation_step = ev.step;
        f.wrong_position = written;
        f.wrote = d;
        if (written < run.input.size()) f.expected = run.input[written];
        f.culprit_message = last_delivery_msg;
        f.culprit_delivered_at = last_delivery_step;
        found = true;
        break;
      }
      ++written;
    }
    if (found) break;
  }
  if (!found) return std::nullopt;  // flag set but trace too short?

  // Provenance of the culprit: its first send.
  if (f.culprit_message) {
    for (const sim::TraceEvent& ev : run.trace) {
      if (ev.step > *f.culprit_delivered_at) break;
      if (ev.action.kind == sim::ActionKind::kSenderStep && ev.did_send &&
          ev.sent == *f.culprit_message) {
        f.culprit_first_sent_at = ev.step;
        break;
      }
    }
    if (f.culprit_first_sent_at) {
      f.staleness = *f.culprit_delivered_at - *f.culprit_first_sent_at;
    }
  }
  return f;
}

std::string narrate(const ViolationForensics& f, const sim::RunResult& run) {
  std::ostringstream os;
  os << "safety broke at step " << f.violation_step << ": the receiver wrote "
     << f.wrote << " at position " << f.wrong_position;
  if (f.expected) {
    os << " where the input has " << *f.expected;
  } else {
    os << ", past the end of the input";
  }
  os << " (X = " << seq::to_string(run.input)
     << ", Y so far = " << seq::to_string(run.output) << ").";
  if (f.culprit_message) {
    os << "  The write followed the delivery of message "
       << *f.culprit_message << " at step " << *f.culprit_delivered_at;
    if (f.culprit_first_sent_at) {
      os << ", a message first sent at step " << *f.culprit_first_sent_at
         << " — " << *f.staleness
         << " steps stale when the channel finally served it";
    }
    os << ".";
  }
  return os.str();
}

}  // namespace stpx::analysis
