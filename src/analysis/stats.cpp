#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace stpx::analysis {

namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.n = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / static_cast<double>(s.n - 1)) : 0.0;
  s.p50 = percentile(values, 0.50);
  s.p95 = percentile(values, 0.95);
  return s;
}

Summary summarize_u64(const std::vector<std::uint64_t>& values) {
  std::vector<double> d(values.begin(), values.end());
  return summarize(std::move(d));
}

Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

double linear_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double nn = static_cast<double>(n);
  const double denom = nn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (nn * sxy - sx * sy) / denom;
}

}  // namespace stpx::analysis
