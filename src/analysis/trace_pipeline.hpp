// TracePipeline — composable one-pass analysis over drained wire traces.
//
// An ActionList-style registry (cf. cpptraj's ActionList, see ROADMAP):
// independently authored analyzers are add()ed to a pipeline, and run()
// streams every TraceEvent through every analyzer in ONE pass —
// begin(ctx) → on_event(ev)* → finish(ctx, report).  Analyzers never see
// each other; they compose by each contributing namespaced keys to the
// shared TraceReport.  Adding an analyzer never changes another's output,
// which is what makes the report equality-comparable across runs.
//
// All report values are integers (microseconds, counts, per-mille ratios,
// 0/1 flags) precisely so `TraceReport::operator==` is exact: the golden
// round-trip test drains a live trace, archives it through JSONL, re-runs
// the pipeline on the parsed archive, and asserts the two reports are
// identical — no epsilon, no float formatting hazards.
//
// The flagship analyzer is the prefix-safety attestor: it re-derives the
// acceptance criterion of the STP paper (every receiver output is a
// prefix of the input sequence; completed sessions delivered exactly
// their sequence) from the trace alone, independently of the live
// per-session checks the mux tests run.  A trace that attests clean is
// end-to-end evidence; one that does not names the session and index
// where order first broke.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/trace_event.hpp"
#include "obs/metrics.hpp"

namespace stpx::analysis {

/// Out-of-band facts an analyzer may need beside the event stream.
struct TraceContext {
  /// Per-session expected item count (the input sequence length).  Empty
  /// map = completeness is not attested, only prefix order.
  std::map<std::uint32_t, std::size_t> expected_items;
  /// Fault windows rebased onto the trace clock (net::to_trace_spans).
  std::vector<net::TraceSpan> fault_windows;
  /// Trace horizon; 0 = the last event's timestamp.
  std::uint64_t trace_end_us = 0;
};

/// The merged analysis result: namespaced integer values plus free-form
/// notes, equality-comparable field by field.
struct TraceReport {
  std::map<std::string, std::int64_t> values;
  std::map<std::string, std::string> notes;
  bool ok = true;  // AND of every analyzer's verdict

  std::int64_t value(const std::string& key) const;  // 0 when absent

  /// {"ok":…,"values":{…},"notes":{…}} — deterministic (lexicographic).
  std::string to_json() const;

  friend bool operator==(const TraceReport&, const TraceReport&) = default;
};

class ITraceAnalyzer {
 public:
  virtual ~ITraceAnalyzer() = default;
  /// Namespace prefix of the keys this analyzer writes (e.g. "ack_rtt").
  virtual std::string name() const = 0;
  virtual void begin(const TraceContext& ctx) { (void)ctx; }
  virtual void on_event(const net::TraceEvent& ev) = 0;
  /// Contribute keys to `out`; clear `out.ok` to veto the overall verdict.
  virtual void finish(const TraceContext& ctx, TraceReport& out) = 0;
};

class TracePipeline {
 public:
  TracePipeline& add(std::unique_ptr<ITraceAnalyzer> analyzer);
  std::size_t size() const { return analyzers_.size(); }

  /// One pass: every analyzer sees every event in stream order.
  TraceReport run(const std::vector<net::TraceEvent>& events,
                  const TraceContext& ctx = {});

 private:
  std::vector<std::unique_ptr<ITraceAnalyzer>> analyzers_;
};

// --- the standard analyzers ------------------------------------------------

/// ack_rtt.* — sender-side data send → next inbound frame per session, the
/// offline analogue of the mux's live net.ack_rtt_us histogram.
std::unique_ptr<ITraceAnalyzer> make_ack_rtt_analyzer();

/// item_latency.* — gaps between consecutive accepted items per session.
std::unique_ptr<ITraceAnalyzer> make_item_latency_analyzer();

/// goodput.* — items vs data frames sent: retransmission overhead per
/// mille, duration, items/s.
std::unique_ptr<ITraceAnalyzer> make_goodput_analyzer();

/// prefix.* — the prefix-safety attestor (see file header).
std::unique_ptr<ITraceAnalyzer> make_prefix_attestor();

/// faultcorr.* — attributes sheds / rejects / suppressed sends to fault
/// windows (inside vs outside ctx.fault_windows).
std::unique_ptr<ITraceAnalyzer> make_fault_correlator();

/// stall.* — longest silent gap, gaps past `stall_threshold_us`, and a
/// livelock flag (>= `livelock_frames` frame events after the last item
/// while sessions remain incomplete).
std::unique_ptr<ITraceAnalyzer> make_stall_detector(
    std::uint64_t stall_threshold_us = 100'000,
    std::uint64_t livelock_frames = 1'000);

/// rehydrate.* — rehydration → first subsequent item latency per session.
std::unique_ptr<ITraceAnalyzer> make_rehydration_analyzer();

/// All seven standard analyzers, in a fixed order.
TracePipeline make_standard_pipeline();

/// Mirror every report value into `reg` as gauge "trace.<key>", plus the
/// verdict as gauge "trace.ok".
void publish_trace_report(const TraceReport& report, obs::MetricsRegistry& reg);

}  // namespace stpx::analysis
