// ASCII histograms and bar series for the F-figures: render a numeric
// series as horizontal bars so the "figure shape" is visible in plain
// bench output (and in EXPERIMENTS.md) without a plotting stack.
#pragma once

#include <string>
#include <vector>

namespace stpx::analysis {

struct BarSeries {
  std::string title;
  /// (label, value) pairs, rendered in order.
  std::vector<std::pair<std::string, double>> bars;
  /// Character width of the longest bar.
  int width = 50;
};

/// Render the series as right-scaled horizontal bars, e.g.
///   |X|=16   ########                 123
///   |X|=32   ################         246
std::string render_bars(const BarSeries& series);

/// Bucket a sample into `buckets` equal-width bins over [min, max] and
/// render the distribution.
std::string render_histogram(const std::string& title,
                             const std::vector<double>& sample, int buckets,
                             int width = 50);

}  // namespace stpx::analysis
