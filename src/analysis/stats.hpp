// Summary statistics shared by the benchmark harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace stpx::analysis {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double stddev = 0.0;
};

/// Summarize a sample (empty input yields an all-zero summary).
Summary summarize(std::vector<double> values);

/// Convenience overload for integer samples.
Summary summarize_u64(const std::vector<std::uint64_t>& values);

/// Least-squares slope of y over x (0 if fewer than two points).  Used to
/// test growth claims like "recovery time grows linearly with |X|".
double linear_slope(const std::vector<double>& x,
                    const std::vector<double>& y);

/// Wilson score interval for a binomial proportion — the honest error bar
/// for the failure rates measured by the statistical benches (E1, A1, A2).
/// `z` is the normal quantile (1.96 ≈ 95%).  Well-behaved at p = 0 and
/// p = 1, unlike the naive normal interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.96);

}  // namespace stpx::analysis
