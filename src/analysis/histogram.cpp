#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace stpx::analysis {

std::string render_bars(const BarSeries& series) {
  STPX_EXPECT(series.width > 0, "render_bars: width must be positive");
  std::ostringstream os;
  if (!series.title.empty()) os << series.title << "\n";
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : series.bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  for (const auto& [label, value] : series.bars) {
    const int len =
        max_value <= 0.0
            ? 0
            : static_cast<int>(std::lround(value / max_value *
                                           series.width));
    os << "  " << pad_right(label, label_width) << "  "
       << std::string(static_cast<std::size_t>(len), '#')
       << std::string(static_cast<std::size_t>(series.width - len) + 2, ' ')
       << fixed(value, 1) << "\n";
  }
  return os.str();
}

std::string render_histogram(const std::string& title,
                             const std::vector<double>& sample, int buckets,
                             int width) {
  STPX_EXPECT(buckets > 0, "render_histogram: need at least one bucket");
  BarSeries series;
  series.title = title;
  series.width = width;
  if (sample.empty()) {
    series.bars.emplace_back("(empty)", 0.0);
    return render_bars(series);
  }
  const auto [lo_it, hi_it] = std::minmax_element(sample.begin(),
                                                  sample.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double span = hi > lo ? hi - lo : 1.0;
  std::vector<std::size_t> counts(static_cast<std::size_t>(buckets), 0);
  for (double v : sample) {
    auto b = static_cast<std::size_t>((v - lo) / span *
                                      static_cast<double>(buckets));
    if (b >= counts.size()) b = counts.size() - 1;
    ++counts[b];
  }
  for (int b = 0; b < buckets; ++b) {
    const double left = lo + span * b / buckets;
    const double right = lo + span * (b + 1) / buckets;
    series.bars.emplace_back(
        "[" + fixed(left, 1) + ", " + fixed(right, 1) + ")",
        static_cast<double>(counts[static_cast<std::size_t>(b)]));
  }
  return render_bars(series);
}

}  // namespace stpx::analysis
