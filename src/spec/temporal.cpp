#include "spec/temporal.hpp"

#include <algorithm>

#include "seq/types.hpp"
#include "util/expect.hpp"

namespace stpx::spec {

std::vector<Snapshot> snapshots_of(const sim::RunResult& run) {
  STPX_EXPECT(run.stats.steps == run.trace.size(),
              "snapshots_of: run must be recorded with record_trace");
  std::vector<Snapshot> out;
  out.reserve(run.trace.size() + 1);

  Snapshot cur;
  cur.step = 0;
  cur.input = &run.input;
  out.push_back(cur);

  std::size_t written = 0;
  for (const sim::TraceEvent& ev : run.trace) {
    cur.step = ev.step + 1;
    cur.last_action = ev.action;
    const auto dir_index = [](sim::ActionKind k) {
      return (k == sim::ActionKind::kSenderStep ||
              k == sim::ActionKind::kDeliverToReceiver)
                 ? 0
                 : 1;
    };
    if (ev.did_send) ++cur.sent[dir_index(ev.action.kind)];
    if (ev.action.kind == sim::ActionKind::kDeliverToReceiver) {
      ++cur.delivered[0];
    } else if (ev.action.kind == sim::ActionKind::kDeliverToSender) {
      ++cur.delivered[1];
    }
    for (seq::DataItem d : ev.writes) {
      cur.output.push_back(d);
      ++written;
    }
    out.push_back(cur);
  }
  STPX_EXPECT(written == run.output.size(),
              "snapshots_of: trace does not reconstruct the output tape");
  return out;
}

// ----------------------------------------------------------------- nodes --

struct Formula::Node {
  enum class Kind {
    kAtom,
    kPositional,
    kNot,
    kAnd,
    kOr,
    kNext,
    kAlways,
    kEventually,
    kUntil,
  };
  Kind kind = Kind::kAtom;
  Pred pred;
  std::function<bool(const std::vector<Snapshot>&, std::size_t)> pos_pred;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;

  bool holds(const std::vector<Snapshot>& t, std::size_t pos) const {
    switch (kind) {
      case Kind::kAtom:
        return pred(t[pos]);
      case Kind::kPositional:
        return pos_pred(t, pos);
      case Kind::kNot:
        return !left->holds(t, pos);
      case Kind::kAnd:
        return left->holds(t, pos) && right->holds(t, pos);
      case Kind::kOr:
        return left->holds(t, pos) || right->holds(t, pos);
      case Kind::kNext:
        return pos + 1 < t.size() && left->holds(t, pos + 1);
      case Kind::kAlways:
        for (std::size_t i = pos; i < t.size(); ++i) {
          if (!left->holds(t, i)) return false;
        }
        return true;
      case Kind::kEventually:
        for (std::size_t i = pos; i < t.size(); ++i) {
          if (left->holds(t, i)) return true;
        }
        return false;
      case Kind::kUntil:
        for (std::size_t j = pos; j < t.size(); ++j) {
          if (right->holds(t, j)) return true;
          if (!left->holds(t, j)) return false;
        }
        return false;  // strong until: b must occur
    }
    return false;
  }
};

Formula::Formula(std::shared_ptr<const Node> node, std::string label)
    : node_(std::move(node)), label_(std::move(label)) {}

Formula Formula::atom(std::string label, Pred p) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kAtom;
  n->pred = std::move(p);
  return Formula(n, std::move(label));
}

Formula Formula::positional(
    std::string label,
    std::function<bool(const std::vector<Snapshot>&, std::size_t)> p) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kPositional;
  n->pos_pred = std::move(p);
  return Formula(n, std::move(label));
}

Formula Formula::negation(Formula f) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kNot;
  n->left = f.node_;
  return Formula(n, "!(" + f.label_ + ")");
}

Formula Formula::conjunction(Formula a, Formula b) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kAnd;
  n->left = a.node_;
  n->right = b.node_;
  return Formula(n, "(" + a.label_ + " && " + b.label_ + ")");
}

Formula Formula::disjunction(Formula a, Formula b) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kOr;
  n->left = a.node_;
  n->right = b.node_;
  return Formula(n, "(" + a.label_ + " || " + b.label_ + ")");
}

Formula Formula::implies(Formula a, Formula b) {
  Formula f = disjunction(negation(a), std::move(b));
  return f;
}

Formula Formula::always(Formula f) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kAlways;
  n->left = f.node_;
  return Formula(n, "G(" + f.label_ + ")");
}

Formula Formula::eventually(Formula f) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kEventually;
  n->left = f.node_;
  return Formula(n, "F(" + f.label_ + ")");
}

Formula Formula::next(Formula f) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kNext;
  n->left = f.node_;
  return Formula(n, "X(" + f.label_ + ")");
}

Formula Formula::until(Formula a, Formula b) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kUntil;
  n->left = a.node_;
  n->right = b.node_;
  return Formula(n, "(" + a.label_ + " U " + b.label_ + ")");
}

Formula Formula::stable(Formula f) {
  Formula inner = implies(f, always(f));
  Formula out = always(std::move(inner));
  return out;
}

bool Formula::holds_at(const std::vector<Snapshot>& trace,
                       std::size_t pos) const {
  STPX_EXPECT(pos < trace.size(), "Formula::holds_at: position out of range");
  return node_->holds(trace, pos);
}

CheckResult Formula::check(const std::vector<Snapshot>& trace) const {
  CheckResult result;
  STPX_EXPECT(!trace.empty(), "Formula::check: empty snapshot sequence");
  if (node_->holds(trace, 0)) return result;
  result.holds = false;
  result.detail = label_;
  // Witness: for an Always-rooted formula the informative position is the
  // first step where the *obligation under the G* breaks (a G that fails
  // anywhere also fails at 0, which tells the reader nothing).  For other
  // roots, report the earliest position where the formula itself fails.
  const Node* scan = node_.get();
  if (scan->kind == Node::Kind::kAlways) scan = scan->left.get();
  for (std::size_t pos = 0; pos < trace.size(); ++pos) {
    if (!scan->holds(trace, pos)) {
      result.witness = pos;
      break;
    }
  }
  return result;
}

// --------------------------------------------------------------- canned ---

Formula prefix_safety() {
  return Formula::always(Formula::atom("Y prefix of X", [](const Snapshot& s) {
    return seq::is_prefix(s.output, *s.input);
  }));
}

Formula eventually_delivers(std::size_t n) {
  return Formula::eventually(
      Formula::atom("|Y| >= " + std::to_string(n), [n](const Snapshot& s) {
        return s.output.size() >= n;
      }));
}

Formula eventually_complete() {
  return Formula::eventually(Formula::atom("Y == X", [](const Snapshot& s) {
    return s.output == *s.input;
  }));
}

Formula output_monotone() {
  return Formula::always(Formula::positional(
      "Y extends previous Y",
      [](const std::vector<Snapshot>& t, std::size_t pos) {
        if (pos == 0) return true;
        return seq::is_prefix(t[pos - 1].output, t[pos].output);
      }));
}

Formula delivery_conservation() {
  return Formula::always(
      Formula::atom("delivered <= sent", [](const Snapshot& s) {
        return s.delivered[0] <= s.sent[0] && s.delivered[1] <= s.sent[1];
      }));
}

}  // namespace stpx::spec
