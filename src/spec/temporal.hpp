// Finite-trace temporal properties over recorded runs.
//
// The paper states its requirements temporally — Safety is "at any time, Y
// is a prefix of X" (an Always), F-Liveness is "for every i there exists a
// time with |Y| >= i" (an Eventually), and knowledge stability is "once
// K_R(x_i) holds it holds forever" (Always(p -> Always p)).  This module
// provides a small LTL-style combinator set evaluated over the snapshot
// sequence of a recorded run, with *witness positions* on failure so a
// violated property points at the offending step.
//
// Finite-trace semantics: Always(p) requires p at every snapshot;
// Eventually(p) requires p at some snapshot; Next(p) at the last snapshot
// is false (strong next); Until(a, b) requires b to occur within the trace
// with a holding up to that point.  These match how the engine's step cap
// truncates runs: liveness verdicts are "within the observed horizon",
// exactly like everywhere else in this repository.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace stpx::spec {

/// The state visible to predicates at step t (after t actions).
struct Snapshot {
  std::uint64_t step = 0;        // index in [0, trace.size()]
  seq::Sequence output;          // Y after this many steps
  const seq::Sequence* input = nullptr;  // X (shared)
  std::uint64_t sent[2] = {0, 0};
  std::uint64_t delivered[2] = {0, 0};
  /// Action that produced this snapshot (nullopt for the initial one).
  std::optional<sim::Action> last_action;
};

/// Reconstruct the snapshot sequence of a run recorded with record_trace.
/// Produces trace.size() + 1 snapshots (initial state included).
std::vector<Snapshot> snapshots_of(const sim::RunResult& run);

using Pred = std::function<bool(const Snapshot&)>;

/// Evaluation outcome; on failure `witness` is the snapshot index where the
/// formula was decided false.
struct CheckResult {
  bool holds = true;
  std::size_t witness = 0;
  std::string detail;
};

/// A temporal formula (immutable, freely copyable).
class Formula {
 public:
  /// Atomic predicate (labelled for diagnostics).
  static Formula atom(std::string label, Pred p);

  /// Atomic predicate with access to the whole trace and the current
  /// position — for relations between consecutive snapshots (monotonicity
  /// and the like).
  static Formula positional(
      std::string label,
      std::function<bool(const std::vector<Snapshot>&, std::size_t)> p);

  static Formula negation(Formula f);
  static Formula conjunction(Formula a, Formula b);
  static Formula disjunction(Formula a, Formula b);
  static Formula implies(Formula a, Formula b);

  static Formula always(Formula f);      // G f
  static Formula eventually(Formula f);  // F f
  static Formula next(Formula f);        // X f (strong)
  static Formula until(Formula a, Formula b);  // a U b (strong)

  /// Once f holds it holds forever: G(f -> G f).
  static Formula stable(Formula f);

  /// Evaluate at position `pos` of the snapshot sequence.
  bool holds_at(const std::vector<Snapshot>& trace, std::size_t pos) const;

  /// Evaluate at the start, with a witness on failure.
  CheckResult check(const std::vector<Snapshot>& trace) const;

  const std::string& describe() const { return label_; }

 private:
  struct Node;
  explicit Formula(std::shared_ptr<const Node> node, std::string label);

  std::shared_ptr<const Node> node_;
  std::string label_;
};

// ---- canned formulas for the paper's requirements -----------------------

/// Safety: at any time, Y is a prefix of X.
Formula prefix_safety();

/// |Y| >= n eventually (one conjunct of F-liveness).
Formula eventually_delivers(std::size_t n);

/// Full liveness within the horizon: eventually |Y| == |X|.
Formula eventually_complete();

/// Output never shrinks (monotone tape).
Formula output_monotone();

/// Conservation: per direction, deliveries never exceed sends.  Only valid
/// for non-duplicating channels.
Formula delivery_conservation();

}  // namespace stpx::spec
