#include "store/session_log.hpp"

#include <algorithm>
#include <utility>

#include "util/blob.hpp"

namespace stpx::store {

namespace {
// Distinct from every per-protocol state tag (those are small ints like
// 101/102), so a protocol blob fed to from_payload is rejected outright.
constexpr std::int64_t kManifestTag = 7001;
}  // namespace

std::uint64_t proto_tag_of(const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string SessionManifest::to_payload() const {
  util::BlobWriter w;
  w.i64(kManifestTag);
  w.u64(session);
  w.boolean(is_sender);
  w.u64(epoch);
  w.u64(seq);
  w.u64(proto_tag);
  w.u64(position);
  w.boolean(completed);
  w.u64(owner);
  const auto inner = util::blob_tokens(endpoint_state);
  // save_state() produces blob text by construction; treat anything else
  // as an empty (cold-start) state rather than corrupting the record.
  w.vec(inner ? *inner : std::vector<std::int64_t>{});
  return w.str();
}

std::optional<SessionManifest> SessionManifest::from_payload(
    const std::string& payload) {
  util::BlobReader r(payload);
  std::int64_t tag = 0;
  SessionManifest m;
  std::uint64_t session = 0;
  std::uint64_t owner = 0;
  std::vector<std::int64_t> inner;
  if (!r.i64(tag) || tag != kManifestTag || !r.u64(session) ||
      !r.boolean(m.is_sender) || !r.u64(m.epoch) || !r.u64(m.seq) ||
      !r.u64(m.proto_tag) || !r.u64(m.position) || !r.boolean(m.completed) ||
      !r.u64(owner) || !r.vec(inner) || !r.done() ||
      session > 0xFFFFFFFFULL || owner > 0xFFFFFFFFULL) {
    return std::nullopt;
  }
  m.session = static_cast<std::uint32_t>(session);
  m.owner = static_cast<std::uint32_t>(owner);
  m.endpoint_state = util::blob_join(inner);
  return m;
}

SessionLogScan scan_session_logs(const std::vector<IStableStore*>& stores) {
  SessionLogScan scan;
  for (IStableStore* store : stores) {
    if (store == nullptr) continue;
    ReplayResult r = store->replay();
    scan.records_skipped += r.records_skipped;
    for (const std::string& payload : r.payloads) {
      auto m = SessionManifest::from_payload(payload);
      if (!m) {
        ++scan.records_skipped;
        continue;
      }
      ++scan.records_scanned;
      scan.max_epoch = std::max(scan.max_epoch, m->epoch);
      auto it = scan.newest.find(m->session);
      if (it == scan.newest.end()) {
        scan.newest.emplace(m->session, std::move(*m));
      } else if (m->newer_than(it->second)) {
        it->second = std::move(*m);
      }
    }
  }
  return scan;
}

std::vector<std::uint32_t> manifested_sessions(
    const std::vector<IStableStore*>& stores) {
  const SessionLogScan scan = scan_session_logs(stores);
  std::vector<std::uint32_t> out;
  out.reserve(scan.newest.size());
  for (const auto& [id, m] : scan.newest) {
    if (!m.is_sender) out.push_back(id);  // map iteration: already id order
  }
  return out;
}

std::uint64_t compact_session_log(IStableStore& store) {
  const SessionLogScan scan = scan_session_logs({&store});
  std::vector<const SessionManifest*> kept;
  kept.reserve(scan.newest.size());
  for (const auto& [id, m] : scan.newest) kept.push_back(&m);
  std::sort(kept.begin(), kept.end(),
            [](const SessionManifest* a, const SessionManifest* b) {
              return b->newer_than(*a);
            });
  std::vector<std::string> payloads;
  payloads.reserve(kept.size());
  for (const SessionManifest* m : kept) payloads.push_back(m->to_payload());
  store.reset();
  store.append_batch(payloads);
  const std::uint64_t total = scan.records_scanned + scan.records_skipped;
  return total > payloads.size() ? total - payloads.size() : 0;
}

}  // namespace stpx::store
