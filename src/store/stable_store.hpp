#pragma once
// Stable storage for crash-recoverable processes.
//
// An IStableStore is an append-only log of checksummed full-state
// checkpoint records plus a snapshot area.  The engine appends one record
// per durable state transition (commit point) and calls recover() when a
// crashed process restarts; recovery scans the log newest-first and the
// newest record that passes its checksum wins, falling back to the
// snapshot and finally to "nothing found" (cold start).
//
// The store is itself fault-injectable, with damage bounded to the tail
// of the log — the failure model of a single machine losing or mangling
// its most recent unsynced writes:
//
//   * torn write       — the next append is truncated mid-record
//   * lose tail        — the newest n records vanish
//   * corrupt record   — bytes of the newest record flip (checksum catches)
//   * stale snapshot   — compaction's snapshot write was not yet durable;
//                        the previous snapshot and the records it folded
//                        in reappear (benign by design: records are full
//                        states, so replay recovers the same state)
//
// Record framing, shared by both stores and exposed for tests:
//   [4-byte magic "SPXR"][u32 payload length][u64 FNV-1a][payload]
// Payloads are util::Blob text (digits and spaces), so the magic can
// never occur inside a payload and a damaged region is re-synced by
// scanning for the next magic.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace stpx::store {

/// Result of scanning the store after a crash.
struct RecoveredState {
  bool found = false;            ///< any valid state recovered
  std::string state;             ///< newest valid checkpoint payload
  std::uint64_t records_replayed = 0;  ///< valid records scanned
  std::uint64_t records_skipped = 0;   ///< damaged records detected + skipped
};

/// Every valid payload in the store, oldest first (snapshot, then log),
/// for logs that multiplex records of independent streams (e.g. one
/// manifest record per network session): recover() collapses to the
/// newest record, replay() keeps them all so the reader can fold
/// newest-per-stream itself.
struct ReplayResult {
  std::vector<std::string> payloads;
  std::uint64_t records_skipped = 0;  ///< damaged records detected + skipped
};

class IStableStore {
 public:
  virtual ~IStableStore() = default;

  /// Wipe everything; called once per run before the first append.
  virtual void reset() = 0;
  /// Append one full-state checkpoint record.
  virtual void append(const std::string& state) = 0;
  /// Group commit: append every record, then make the batch durable with
  /// a single sync — the unit the session mux uses so that 10k sessions
  /// cost one flush per shard sweep, not 10k.  The default is
  /// append-per-record + one sync(); stores with real write batching
  /// (FileStore) override it.
  virtual void append_batch(const std::vector<std::string>& states);
  /// Make buffered appends durable now.  No-op for stores that write
  /// through (MemStore; FileStore with sync_every_n == 1).
  virtual void sync() {}
  /// Fold the log into the snapshot area and truncate the log.
  virtual void compact() = 0;
  /// Scan for the newest valid state (see file header for the rules).
  virtual RecoveredState recover() = 0;
  /// Every valid payload oldest-first (see ReplayResult).
  virtual ReplayResult replay() = 0;
  /// Total records appended since reset() (drives periodic compaction).
  virtual std::uint64_t appends() const = 0;

  // Fault entry points (driven by the engine from FaultPlan actions).
  virtual void fault_torn_next_append() = 0;
  virtual void fault_lose_tail(std::uint64_t n) = 0;
  virtual void fault_corrupt_record() = 0;
  virtual void fault_stale_snapshot() = 0;

  virtual std::string name() const = 0;
};

/// Frame one payload as a checksummed record.
std::string encode_record(const std::string& payload);

/// One parsed region of a record buffer: either a valid record or a
/// damaged span up to the next re-sync point.
struct RecordUnit {
  std::size_t offset = 0;
  std::size_t size = 0;
  std::string payload;  ///< empty when !valid
  bool valid = false;
};

/// Split a buffer into records, re-syncing past damaged regions.
std::vector<RecordUnit> parse_records(const std::string& buffer);

/// The logical image both concrete stores operate on: the live log and
/// snapshot plus the previous compaction's buffers (retained so the
/// stale-snapshot fault can roll compaction back).
struct StoreImage {
  std::string log;
  std::string snapshot;      ///< at most one framed record
  std::string snapshot_old;  ///< snapshot before the last compact()
  std::string log_old;       ///< log records folded in by the last compact()
  bool torn_next = false;

  void clear();
  void append(const std::string& state);
  void compact();
  RecoveredState recover() const;
  ReplayResult replay() const;
  void lose_tail(std::uint64_t n);
  void corrupt_record();
  void stale_snapshot();
};

/// In-memory stable store — the default for sweeps and soaks.
/// Internally synchronized: the fabric's reclaim path replays a
/// survivor's store as a handoff source while the survivor's restarted
/// mux is still appending to it, so every image operation holds the
/// store mutex (each append lands a whole framed record, so a replay
/// interleaved mid-batch still parses at record boundaries).
class MemStore final : public IStableStore {
 public:
  void reset() override;
  void append(const std::string& state) override;
  void compact() override;
  RecoveredState recover() override;
  ReplayResult replay() override;
  std::uint64_t appends() const override;

  void fault_torn_next_append() override;
  void fault_lose_tail(std::uint64_t n) override;
  void fault_corrupt_record() override;
  void fault_stale_snapshot() override;

  std::string name() const override { return "mem"; }

 private:
  mutable std::mutex mu_;
  StoreImage img_;
  std::uint64_t appends_ = 0;
};

/// Sync policy for FileStore.  With the defaults every append writes
/// through (the pre-batching behaviour).  Raising sync_every_n or setting
/// sync_interval batches appends in memory until the threshold trips, an
/// explicit sync()/append_batch() lands, or a non-append operation needs
/// a consistent on-disk image.  Buffered appends are deliberately lost
/// when the store object is abandoned — that IS the crash model batching
/// trades durability latency against (a batched tail loss).
struct FileStoreConfig {
  std::uint64_t sync_every_n = 1;            ///< flush after this many appends
  std::chrono::milliseconds sync_interval{0};  ///< flush when this much time passed (0 = off)
};

/// File-backed stable store: a directory holding `log`, `snapshot`,
/// `snapshot.old`, and `log.old`.  The bytes on disk are the single
/// source of truth — a second FileStore opened on the same directory
/// recovers exactly the synced state.  Appends go to the log file in
/// append mode (records are self-framing); snapshot rewrites happen only
/// on compaction.
class FileStore final : public IStableStore {
 public:
  explicit FileStore(std::string dir, FileStoreConfig cfg = {});

  void reset() override;
  void append(const std::string& state) override;
  void append_batch(const std::vector<std::string>& states) override;
  void sync() override;
  void compact() override;
  RecoveredState recover() override;
  ReplayResult replay() override;
  std::uint64_t appends() const override { return appends_; }

  void fault_torn_next_append() override;
  void fault_lose_tail(std::uint64_t n) override;
  void fault_corrupt_record() override;
  void fault_stale_snapshot() override;

  std::string name() const override { return "file"; }
  const std::string& dir() const { return dir_; }
  /// Completed flushes of buffered appends (batching observability).
  std::uint64_t syncs() const { return syncs_; }
  /// Records buffered in memory, not yet on disk.
  std::uint64_t pending_records() const { return pending_records_; }

 private:
  StoreImage load() const;
  void flush(const StoreImage& img) const;
  std::string encode_next(const std::string& state);

  std::string dir_;
  FileStoreConfig cfg_;
  bool torn_next_ = false;
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::string pending_;                 ///< framed records awaiting sync
  std::uint64_t pending_records_ = 0;
  std::chrono::steady_clock::time_point last_sync_{};
};

}  // namespace stpx::store
