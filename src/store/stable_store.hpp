#pragma once
// Stable storage for crash-recoverable processes.
//
// An IStableStore is an append-only log of checksummed full-state
// checkpoint records plus a snapshot area.  The engine appends one record
// per durable state transition (commit point) and calls recover() when a
// crashed process restarts; recovery scans the log newest-first and the
// newest record that passes its checksum wins, falling back to the
// snapshot and finally to "nothing found" (cold start).
//
// The store is itself fault-injectable, with damage bounded to the tail
// of the log — the failure model of a single machine losing or mangling
// its most recent unsynced writes:
//
//   * torn write       — the next append is truncated mid-record
//   * lose tail        — the newest n records vanish
//   * corrupt record   — bytes of the newest record flip (checksum catches)
//   * stale snapshot   — compaction's snapshot write was not yet durable;
//                        the previous snapshot and the records it folded
//                        in reappear (benign by design: records are full
//                        states, so replay recovers the same state)
//
// Record framing, shared by both stores and exposed for tests:
//   [4-byte magic "SPXR"][u32 payload length][u64 FNV-1a][payload]
// Payloads are util::Blob text (digits and spaces), so the magic can
// never occur inside a payload and a damaged region is re-synced by
// scanning for the next magic.

#include <cstdint>
#include <string>
#include <vector>

namespace stpx::store {

/// Result of scanning the store after a crash.
struct RecoveredState {
  bool found = false;            ///< any valid state recovered
  std::string state;             ///< newest valid checkpoint payload
  std::uint64_t records_replayed = 0;  ///< valid records scanned
  std::uint64_t records_skipped = 0;   ///< damaged records detected + skipped
};

class IStableStore {
 public:
  virtual ~IStableStore() = default;

  /// Wipe everything; called once per run before the first append.
  virtual void reset() = 0;
  /// Append one full-state checkpoint record.
  virtual void append(const std::string& state) = 0;
  /// Fold the log into the snapshot area and truncate the log.
  virtual void compact() = 0;
  /// Scan for the newest valid state (see file header for the rules).
  virtual RecoveredState recover() = 0;
  /// Total records appended since reset() (drives periodic compaction).
  virtual std::uint64_t appends() const = 0;

  // Fault entry points (driven by the engine from FaultPlan actions).
  virtual void fault_torn_next_append() = 0;
  virtual void fault_lose_tail(std::uint64_t n) = 0;
  virtual void fault_corrupt_record() = 0;
  virtual void fault_stale_snapshot() = 0;

  virtual std::string name() const = 0;
};

/// Frame one payload as a checksummed record.
std::string encode_record(const std::string& payload);

/// One parsed region of a record buffer: either a valid record or a
/// damaged span up to the next re-sync point.
struct RecordUnit {
  std::size_t offset = 0;
  std::size_t size = 0;
  std::string payload;  ///< empty when !valid
  bool valid = false;
};

/// Split a buffer into records, re-syncing past damaged regions.
std::vector<RecordUnit> parse_records(const std::string& buffer);

/// The logical image both concrete stores operate on: the live log and
/// snapshot plus the previous compaction's buffers (retained so the
/// stale-snapshot fault can roll compaction back).
struct StoreImage {
  std::string log;
  std::string snapshot;      ///< at most one framed record
  std::string snapshot_old;  ///< snapshot before the last compact()
  std::string log_old;       ///< log records folded in by the last compact()
  bool torn_next = false;

  void clear();
  void append(const std::string& state);
  void compact();
  RecoveredState recover() const;
  void lose_tail(std::uint64_t n);
  void corrupt_record();
  void stale_snapshot();
};

/// In-memory stable store — the default for sweeps and soaks.
class MemStore final : public IStableStore {
 public:
  void reset() override;
  void append(const std::string& state) override;
  void compact() override;
  RecoveredState recover() override;
  std::uint64_t appends() const override { return appends_; }

  void fault_torn_next_append() override;
  void fault_lose_tail(std::uint64_t n) override;
  void fault_corrupt_record() override;
  void fault_stale_snapshot() override;

  std::string name() const override { return "mem"; }

 private:
  StoreImage img_;
  std::uint64_t appends_ = 0;
};

/// File-backed stable store: a directory holding `log`, `snapshot`,
/// `snapshot.old`, and `log.old`.  Every operation round-trips through
/// the files, so the bytes on disk are the single source of truth and a
/// second FileStore opened on the same directory recovers the state.
class FileStore final : public IStableStore {
 public:
  explicit FileStore(std::string dir);

  void reset() override;
  void append(const std::string& state) override;
  void compact() override;
  RecoveredState recover() override;
  std::uint64_t appends() const override { return appends_; }

  void fault_torn_next_append() override;
  void fault_lose_tail(std::uint64_t n) override;
  void fault_corrupt_record() override;
  void fault_stale_snapshot() override;

  std::string name() const override { return "file"; }
  const std::string& dir() const { return dir_; }

 private:
  StoreImage load() const;
  void flush(const StoreImage& img) const;

  std::string dir_;
  bool torn_next_ = false;
  std::uint64_t appends_ = 0;
};

}  // namespace stpx::store
