#include "store/stable_store.hpp"

#include <filesystem>
#include <fstream>

#include "util/expect.hpp"

namespace stpx::store {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'X', 'R'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::string& buf, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::string& buf, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + i])) << (8 * i);
  return v;
}

bool magic_at(const std::string& buf, std::size_t pos) {
  return pos + 4 <= buf.size() && buf[pos] == kMagic[0] && buf[pos + 1] == kMagic[1] &&
         buf[pos + 2] == kMagic[2] && buf[pos + 3] == kMagic[3];
}

std::size_t next_magic(const std::string& buf, std::size_t from) {
  for (std::size_t p = from; p + 4 <= buf.size(); ++p)
    if (magic_at(buf, p)) return p;
  return buf.size();
}

}  // namespace

void IStableStore::append_batch(const std::vector<std::string>& states) {
  for (const std::string& s : states) append(s);
  sync();
}

std::string encode_record(const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, 4);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, fnv1a(payload));
  out += payload;
  return out;
}

std::vector<RecordUnit> parse_records(const std::string& buffer) {
  std::vector<RecordUnit> units;
  std::size_t pos = 0;
  while (pos < buffer.size()) {
    if (magic_at(buffer, pos) && pos + kHeaderSize <= buffer.size()) {
      const std::uint32_t len = get_u32(buffer, pos + 4);
      const std::uint64_t sum = get_u64(buffer, pos + 8);
      if (pos + kHeaderSize + len <= buffer.size()) {
        std::string payload = buffer.substr(pos + kHeaderSize, len);
        if (fnv1a(payload) == sum) {
          units.push_back({pos, kHeaderSize + len, std::move(payload), true});
          pos += kHeaderSize + len;
          continue;
        }
      }
    }
    // Damaged region: re-sync to the next magic strictly after pos.
    const std::size_t resync = next_magic(buffer, pos + 1);
    units.push_back({pos, resync - pos, std::string{}, false});
    pos = resync;
  }
  return units;
}

// ---------------------------------------------------------------------------
// StoreImage — the shared logical store.

void StoreImage::clear() {
  log.clear();
  snapshot.clear();
  snapshot_old.clear();
  log_old.clear();
  torn_next = false;
}

void StoreImage::append(const std::string& state) {
  std::string rec = encode_record(state);
  if (torn_next) {
    rec.resize(rec.size() / 2);  // truncated mid-write
    torn_next = false;
  }
  log += rec;
}

void StoreImage::compact() {
  const RecoveredState best = recover();
  snapshot_old = snapshot;
  log_old = log;
  snapshot = best.found ? encode_record(best.state) : std::string{};
  log.clear();
}

RecoveredState StoreImage::recover() const {
  RecoveredState out;
  const auto snap = parse_records(snapshot);
  for (const auto& u : snap) {
    if (u.valid) {
      ++out.records_replayed;
      out.found = true;
      out.state = u.payload;
    } else {
      ++out.records_skipped;
    }
  }
  for (const auto& u : parse_records(log)) {
    if (u.valid) {
      ++out.records_replayed;
      out.found = true;
      out.state = u.payload;  // newest valid record wins
    } else {
      ++out.records_skipped;
    }
  }
  return out;
}

ReplayResult StoreImage::replay() const {
  ReplayResult out;
  for (const std::string* buf : {&snapshot, &log}) {
    for (auto& u : parse_records(*buf)) {
      if (u.valid) {
        out.payloads.push_back(std::move(u.payload));
      } else {
        ++out.records_skipped;
      }
    }
  }
  return out;
}

void StoreImage::lose_tail(std::uint64_t n) {
  const auto units = parse_records(log);
  const std::uint64_t keep =
      units.size() > n ? static_cast<std::uint64_t>(units.size()) - n : 0;
  const std::size_t end = keep == 0 ? 0 : units[keep - 1].offset + units[keep - 1].size;
  log.resize(end);
}

void StoreImage::corrupt_record() {
  const auto units = parse_records(log);
  if (units.empty()) return;
  const RecordUnit& last = units.back();
  // Flip a payload byte (past the header when one exists) so the frame
  // still parses but the checksum catches the damage.
  const std::size_t at =
      last.offset + (last.size > kHeaderSize ? kHeaderSize + (last.size - kHeaderSize) / 2
                                             : last.size / 2);
  if (at < log.size()) log[at] = static_cast<char>(log[at] ^ 0x20);
}

void StoreImage::stale_snapshot() {
  // Compaction's snapshot write turns out not to have been durable: the
  // previous snapshot comes back, together with the log records the
  // compaction folded in (the log truncation was behind the same
  // barrier).  Records are full states, so recovery replays more records
  // but lands on the same newest state.
  snapshot = snapshot_old;
  log = log_old + log;
  log_old.clear();
}

// ---------------------------------------------------------------------------
// MemStore.

void MemStore::reset() {
  std::lock_guard<std::mutex> hold(mu_);
  img_.clear();
  appends_ = 0;
}

void MemStore::append(const std::string& state) {
  std::lock_guard<std::mutex> hold(mu_);
  img_.append(state);
  ++appends_;
}

void MemStore::compact() {
  std::lock_guard<std::mutex> hold(mu_);
  img_.compact();
}

RecoveredState MemStore::recover() {
  std::lock_guard<std::mutex> hold(mu_);
  return img_.recover();
}

ReplayResult MemStore::replay() {
  std::lock_guard<std::mutex> hold(mu_);
  return img_.replay();
}

std::uint64_t MemStore::appends() const {
  std::lock_guard<std::mutex> hold(mu_);
  return appends_;
}

void MemStore::fault_torn_next_append() {
  std::lock_guard<std::mutex> hold(mu_);
  img_.torn_next = true;
}
void MemStore::fault_lose_tail(std::uint64_t n) {
  std::lock_guard<std::mutex> hold(mu_);
  img_.lose_tail(n);
}
void MemStore::fault_corrupt_record() {
  std::lock_guard<std::mutex> hold(mu_);
  img_.corrupt_record();
}
void MemStore::fault_stale_snapshot() {
  std::lock_guard<std::mutex> hold(mu_);
  img_.stale_snapshot();
}

// ---------------------------------------------------------------------------
// FileStore.

namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return {};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::filesystem::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  STPX_EXPECT(static_cast<bool>(out), "FileStore: cannot open " + p.string());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void append_file(const std::filesystem::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::app);
  STPX_EXPECT(static_cast<bool>(out), "FileStore: cannot open " + p.string());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

FileStore::FileStore(std::string dir, FileStoreConfig cfg)
    : dir_(std::move(dir)),
      cfg_(cfg),
      last_sync_(std::chrono::steady_clock::now()) {
  std::filesystem::create_directories(dir_);
}

StoreImage FileStore::load() const {
  const std::filesystem::path d(dir_);
  StoreImage img;
  img.log = read_file(d / "log");
  img.snapshot = read_file(d / "snapshot");
  img.snapshot_old = read_file(d / "snapshot.old");
  img.log_old = read_file(d / "log.old");
  return img;
}

void FileStore::flush(const StoreImage& img) const {
  const std::filesystem::path d(dir_);
  write_file(d / "log", img.log);
  write_file(d / "snapshot", img.snapshot);
  write_file(d / "snapshot.old", img.snapshot_old);
  write_file(d / "log.old", img.log_old);
}

std::string FileStore::encode_next(const std::string& state) {
  std::string rec = encode_record(state);
  if (torn_next_) {
    rec.resize(rec.size() / 2);  // truncated mid-write
    torn_next_ = false;
  }
  return rec;
}

void FileStore::reset() {
  StoreImage img;
  flush(img);
  torn_next_ = false;
  appends_ = 0;
  syncs_ = 0;
  pending_.clear();
  pending_records_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
}

void FileStore::append(const std::string& state) {
  pending_ += encode_next(state);
  ++pending_records_;
  ++appends_;
  const bool by_count =
      cfg_.sync_every_n > 0 && pending_records_ >= cfg_.sync_every_n;
  const bool by_time =
      cfg_.sync_interval.count() > 0 &&
      std::chrono::steady_clock::now() - last_sync_ >= cfg_.sync_interval;
  if (by_count || by_time) sync();
}

void FileStore::append_batch(const std::vector<std::string>& states) {
  // Group commit: frame everything, then one disk write for the batch.
  for (const std::string& s : states) {
    pending_ += encode_next(s);
    ++pending_records_;
    ++appends_;
  }
  sync();
}

void FileStore::sync() {
  last_sync_ = std::chrono::steady_clock::now();
  if (pending_records_ == 0 && pending_.empty()) return;
  append_file(std::filesystem::path(dir_) / "log", pending_);
  pending_.clear();
  pending_records_ = 0;
  ++syncs_;
}

void FileStore::compact() {
  sync();
  StoreImage img = load();
  img.compact();
  flush(img);
}

RecoveredState FileStore::recover() {
  // Self-recovery sees buffered appends too; only abandoning the object
  // (a real process death) loses the unsynced tail.
  sync();
  return load().recover();
}

ReplayResult FileStore::replay() {
  sync();
  return load().replay();
}

void FileStore::fault_torn_next_append() { torn_next_ = true; }

void FileStore::fault_lose_tail(std::uint64_t n) {
  sync();
  StoreImage img = load();
  img.lose_tail(n);
  flush(img);
}

void FileStore::fault_corrupt_record() {
  sync();
  StoreImage img = load();
  img.corrupt_record();
  flush(img);
}

void FileStore::fault_stale_snapshot() {
  sync();
  StoreImage img = load();
  img.stale_snapshot();
  flush(img);
}

}  // namespace stpx::store
