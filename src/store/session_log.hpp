#pragma once
// Session manifest records: the durable unit of the wire layer.
//
// A SessionMux checkpoints every durable session as one manifest record
// in an IStableStore log (group-committed per shard, see
// docs/NETWORK.md).  Unlike the engine's single-process checkpoint log —
// where recover() collapses to the newest record — a session log
// multiplexes independent streams, so rehydration replays ALL valid
// records and folds newest-per-session here.
//
// "Newest" is decided by (epoch, seq): epoch is the mux generation
// (bumped past the maximum seen on every rehydration, so records written
// after a restart always supersede pre-crash ones even though the
// per-mux seq counter restarts), and seq is a process-wide append
// counter within the generation.  Byte order in the log is NOT trusted —
// a stale-snapshot fault can resurrect old records behind newer ones.
//
// The manifest payload is ordinary util::Blob text:
//
//   [kManifestTag] [session] [is_sender] [epoch] [seq] [proto_tag]
//   [position] [completed] [owner] [vec: endpoint_state tokens]
//
// proto_tag fingerprints the endpoint's protocol (FNV-1a of its name());
// rehydration factories use it to refuse to feed a blob saved by one
// protocol into another.  endpoint_state is the opaque
// ISessionEndpoint::save_state() blob, nested as one length-prefixed
// vec so the outer record stays a flat token list.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "store/stable_store.hpp"

namespace stpx::store {

/// Protocol fingerprint for manifest records: FNV-1a64 of the name.
std::uint64_t proto_tag_of(const std::string& name);

struct SessionManifest {
  std::uint32_t session = 0;
  bool is_sender = false;
  std::uint64_t epoch = 1;       ///< mux generation (bumped per rehydration)
  std::uint64_t seq = 0;         ///< append order within the generation
  std::uint64_t proto_tag = 0;   ///< proto_tag_of(endpoint name)
  std::uint64_t position = 0;    ///< endpoint items_done() at checkpoint
  bool completed = false;        ///< FIN state: session was terminal-completed
  /// Which fabric backend wrote the record (0 = unattributed).  After a
  /// cross-process re-homing the survivor's records carry its own id, so
  /// a merged or handed-off log stays attributable (docs/FABRIC.md).
  std::uint32_t owner = 0;
  std::string endpoint_state;    ///< ISessionEndpoint::save_state() blob

  /// True when (epoch, seq) orders this record after `other`.
  bool newer_than(const SessionManifest& other) const {
    return epoch != other.epoch ? epoch > other.epoch : seq > other.seq;
  }

  std::string to_payload() const;
  /// nullopt on malformed blobs (wrong tag, truncation, junk tokens).
  static std::optional<SessionManifest> from_payload(const std::string& payload);
};

/// Result of scanning one or more session logs after a restart.
struct SessionLogScan {
  /// Newest manifest per session id (map: deterministic id order).
  std::map<std::uint32_t, SessionManifest> newest;
  std::uint64_t records_scanned = 0;  ///< valid manifest records seen
  std::uint64_t records_skipped = 0;  ///< store damage + non-manifest payloads
  std::uint64_t max_epoch = 0;        ///< highest epoch across all records
};

/// Replay every store and fold newest-per-session by (epoch, seq).
SessionLogScan scan_session_logs(const std::vector<IStableStore*>& stores);

/// Receiver-role session ids manifested across `stores`, in id order —
/// the set a rejoining backend can claim durable ownership of (its
/// reclaim set, minus whatever the membership table has since moved for
/// good).  Sender manifests are skipped: a fabric cell hosts receivers.
std::vector<std::uint32_t> manifested_sessions(
    const std::vector<IStableStore*>& stores);

/// Rewrite one store to hold only the newest record per session, in
/// (epoch, seq) order.  Returns the number of records dropped.  The
/// rewrite is reset + re-append, which is NOT crash-atomic — callers run
/// it only on the graceful drain path, never as crash recovery.
std::uint64_t compact_session_log(IStableStore& store);

}  // namespace stpx::store
