// Nameserver — the queryable front of the membership truth.
//
// PR 8's router consulted the MembershipTable privately: a client could
// only discover ownership changes by throwing frames at the router and
// inferring from silence.  The nameserver makes membership a first-class
// wire service (docs/FABRIC.md, lease semantics):
//
//   client ──kResolve(session)──▶ nameserver
//   nameserver ──kResolveAck(owner | epoch<<32)──▶ client
//
// The answer is a *lease*: owner backend id in the low 32 bits of `msg`,
// the membership epoch in the high 32.  Every ownership rewrite (rehome,
// revive, reclaim) bumps the epoch, so a lease is self-dating: when the
// router must drop a frame (no owner, fenced owner, stale entry) it
// bounces a kNotOwner carrying the CURRENT epoch, and a client whose
// cached lease is older knows to re-resolve instead of retrying into a
// black hole.  Leases are advisory — the router still routes by its own
// table — which keeps the data path lease-free and makes a stale lease a
// latency cost, never a correctness one.
//
// The nameserver answers from the shared MembershipTable under the
// router's pump thread; stats are atomics so any thread may snapshot.
#pragma once

#include <atomic>
#include <cstdint>

#include "fabric/membership.hpp"
#include "net/frame.hpp"

namespace stpx::fabric {

/// Pack an owner id and membership epoch into a kResolveAck/kNotOwner
/// payload, and back.  The epoch is truncated to 32 bits on the wire; at
/// one bump per ownership rewrite that outlives any soak by orders of
/// magnitude.
constexpr std::int64_t pack_lease(std::uint32_t owner, std::uint64_t epoch) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(epoch & 0xFFFFFFFFu) << 32) |
      static_cast<std::uint64_t>(owner));
}
constexpr std::uint32_t lease_owner(std::int64_t msg) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(msg) &
                                    0xFFFFFFFFu);
}
constexpr std::uint64_t lease_epoch(std::int64_t msg) {
  return static_cast<std::uint64_t>(msg) >> 32;
}

struct NameserverStats {
  std::uint64_t resolves = 0;   ///< kResolve queries answered
  std::uint64_t grants = 0;     ///< answers naming a live, fresh owner
  std::uint64_t unknowns = 0;   ///< answers with owner 0 (none to name)
  std::uint64_t redirects = 0;  ///< kNotOwner frames minted
};

class Nameserver {
 public:
  /// `membership` is shared with the router and supervisor (non-owning).
  explicit Nameserver(MembershipTable* membership);

  /// Answer one kResolve query with a kResolveAck.  Owner 0 means "no
  /// one you should talk to": unknown session, fenced owner, or an owner
  /// entry stamped by a generation that has since been fenced (stale).
  net::Frame answer(const net::Frame& query);

  /// Mint the kNotOwner redirect for a frame the router had to drop —
  /// epoch-tagged so the client can judge its cached lease against it.
  net::Frame redirect(std::uint32_t session);

  std::uint64_t epoch() const;
  NameserverStats stats() const;

 private:
  MembershipTable* membership_;
  struct Counters {
    std::atomic<std::uint64_t> resolves{0}, grants{0}, unknowns{0},
        redirects{0};
  };
  mutable Counters n_;
};

}  // namespace stpx::fabric
