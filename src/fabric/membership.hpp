// MembershipTable — who owns which session, and who is still alive.
//
// The fabric's routing ground truth: a session id maps to exactly one
// backend id at any moment.  The router consults it per forwarded frame;
// the supervisor rewrites it on re-homing and on reclaim.  All methods
// are thread-safe (one mutex — the table is small and reads are cheap;
// the per-frame lookup is a shared map probe, uncontended except during
// a re-home).
//
// Health here is bookkeeping, not detection: the HealthMonitor decides
// when a backend is suspect or dead (docs/FABRIC.md); the table records
// the verdict so routing and re-homing agree on it.
//
// Two counters fence the rejoin protocol (PR 9):
//
//   * Every backend carries an *incarnation*, bumped by revive().  Owner
//     entries are stamped with the owner's incarnation at assignment
//     time; an entry whose stamp predates the owner's current
//     incarnation is STALE — it was written against a generation that
//     has since been fenced, and a rejoin must never resurrect it.
//     Stale entries route nowhere (the router drops the frame and
//     redirects the client) and pick_survivor() ignores them when
//     weighing load, so a rejoined backend cannot inherit phantom
//     sessions from before its own death.
//   * The table-wide *epoch* bumps on every ownership rewrite (rehome,
//     reclaim-reassign, revive).  The nameserver stamps leases with it;
//     a client holding a lease from an older epoch is redirected rather
//     than silently blackholed (docs/FABRIC.md, lease semantics).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace stpx::fabric {

enum class BackendHealth : std::uint8_t {
  kAlive = 0,
  kSuspect,  // probes timing out, not yet past the strike budget
  kDead,     // declared dead; fenced — only revive() opens the way back
};

constexpr const char* to_cstr(BackendHealth h) {
  switch (h) {
    case BackendHealth::kAlive: return "alive";
    case BackendHealth::kSuspect: return "suspect";
    case BackendHealth::kDead: return "dead";
  }
  return "?";
}

/// One owner lookup, with enough context to judge staleness.
struct OwnerEntry {
  std::uint32_t backend = 0;
  std::uint64_t generation = 0;  ///< owner's incarnation at assignment
  /// True when `generation` predates the owner's current incarnation:
  /// the entry was written against a fenced generation and must not
  /// route (see file comment).
  bool stale = false;
};

class MembershipTable {
 public:
  /// Register a backend (idempotent; starts kAlive, incarnation 1).
  void add_backend(std::uint32_t backend);

  /// Assign (or reassign) one session to a backend; the entry is stamped
  /// with the backend's current incarnation.
  void assign(std::uint32_t session, std::uint32_t backend);

  /// The backend currently owning `session`, or nullopt when unknown.
  /// Stale entries still report their backend — callers that must not
  /// route through a fenced generation use resolve().
  std::optional<std::uint32_t> owner(std::uint32_t session) const;

  /// Owner lookup with the generation stamp and staleness verdict.
  std::optional<OwnerEntry> resolve(std::uint32_t session) const;

  void set_health(std::uint32_t backend, BackendHealth h);
  BackendHealth health(std::uint32_t backend) const;

  /// Move every session owned by `from` onto `to` (restamped with `to`'s
  /// incarnation), mark `from` kDead, bump the epoch.  Returns the
  /// session ids that moved (deterministic id order).
  std::vector<std::uint32_t> rehome(std::uint32_t from, std::uint32_t to);

  /// Open the way back for a fenced backend: bump its incarnation (any
  /// owner entry still stamped with the old one turns stale), mark it
  /// kAlive, bump the epoch.  Returns the new incarnation.  The caller
  /// (the supervisor's reclaim flow) re-assigns reclaimed sessions
  /// afterwards, which restamps them fresh.
  std::uint64_t revive(std::uint32_t backend);

  /// The backend's current incarnation (0 when unknown).
  std::uint64_t incarnation(std::uint32_t backend) const;

  /// Monotonic table epoch: bumps on every ownership rewrite.
  std::uint64_t epoch() const;

  std::vector<std::uint32_t> sessions_of(std::uint32_t backend) const;
  std::vector<std::uint32_t> backends() const;
  /// Alive backend with the fewest NON-STALE sessions, excluding
  /// `not_this` (ties broken by lowest id).  nullopt when none is alive.
  /// Stale entries are ignored — they predate the owner's last fence and
  /// represent sessions that are about to be reclaimed or re-assigned,
  /// not real load.
  std::optional<std::uint32_t> pick_survivor(std::uint32_t not_this) const;

  std::size_t session_count() const;

 private:
  struct Entry {
    std::uint32_t backend = 0;
    std::uint64_t generation = 0;
  };
  struct Backend {
    BackendHealth health = BackendHealth::kAlive;
    std::uint64_t incarnation = 1;
  };

  mutable std::mutex mu_;
  std::map<std::uint32_t, Entry> session_owner_;
  std::map<std::uint32_t, Backend> backends_;
  std::uint64_t epoch_ = 1;
};

}  // namespace stpx::fabric
