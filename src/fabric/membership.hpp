// MembershipTable — who owns which session, and who is still alive.
//
// The fabric's routing ground truth: a session id maps to exactly one
// backend id at any moment.  The router consults it per forwarded frame;
// the supervisor rewrites it on re-homing.  All methods are thread-safe
// (one mutex — the table is small and reads are cheap; the per-frame
// lookup is a shared map probe, uncontended except during a re-home).
//
// Health here is bookkeeping, not detection: the HealthMonitor decides
// when a backend is suspect or dead (docs/FABRIC.md); the table records
// the verdict so routing and re-homing agree on it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace stpx::fabric {

enum class BackendHealth : std::uint8_t {
  kAlive = 0,
  kSuspect,  // probes timing out, not yet past the strike budget
  kDead,     // declared dead; fenced and never revived
};

constexpr const char* to_cstr(BackendHealth h) {
  switch (h) {
    case BackendHealth::kAlive: return "alive";
    case BackendHealth::kSuspect: return "suspect";
    case BackendHealth::kDead: return "dead";
  }
  return "?";
}

class MembershipTable {
 public:
  /// Register a backend (idempotent; starts kAlive).
  void add_backend(std::uint32_t backend);

  /// Assign (or reassign) one session to a backend.
  void assign(std::uint32_t session, std::uint32_t backend);

  /// The backend currently owning `session`, or nullopt when unknown.
  std::optional<std::uint32_t> owner(std::uint32_t session) const;

  void set_health(std::uint32_t backend, BackendHealth h);
  BackendHealth health(std::uint32_t backend) const;

  /// Move every session owned by `from` onto `to`, mark `from` kDead.
  /// Returns the session ids that moved (deterministic id order).
  std::vector<std::uint32_t> rehome(std::uint32_t from, std::uint32_t to);

  std::vector<std::uint32_t> sessions_of(std::uint32_t backend) const;
  std::vector<std::uint32_t> backends() const;
  /// Alive backend with the fewest sessions, excluding `not_this`
  /// (ties broken by lowest id).  nullopt when none is alive.
  std::optional<std::uint32_t> pick_survivor(std::uint32_t not_this) const;

  std::size_t session_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint32_t, std::uint32_t> session_owner_;
  std::map<std::uint32_t, BackendHealth> backend_health_;
};

}  // namespace stpx::fabric
