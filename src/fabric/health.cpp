#include "fabric/health.hpp"

#include <algorithm>

namespace stpx::fabric {

void HealthMonitor::add_backend(std::uint32_t id, time_point now) {
  Backend b;
  b.timeout = cfg_.probe_timeout;
  b.next_due = now;  // first probe due immediately
  backends_.emplace(id, b);
}

void HealthMonitor::advance(std::uint32_t id, Backend& b, time_point now) {
  (void)id;
  if (b.health == BackendHealth::kDead || b.paused || !b.outstanding) return;
  if (now < b.sent_at + b.timeout) return;
  // The outstanding probe expired: charge a strike, grow the timeout,
  // and make the retry due immediately (the backoff lives in the grown
  // timeout, not in extra idle time — a recovering backend is re-probed
  // promptly but given longer to answer).
  b.outstanding = false;
  ++b.strikes;
  ++stats_.timeouts;
  const auto grown = std::chrono::microseconds(static_cast<std::int64_t>(
      static_cast<double>(b.timeout.count()) * cfg_.backoff));
  b.timeout = std::min(grown, cfg_.max_timeout);
  b.next_due = now;
  if (b.strikes >= cfg_.max_strikes) {
    b.health = BackendHealth::kDead;
    ++stats_.deaths;
    if (b.probation_owed > 0) {
      // Striking out mid-probation is a second death; the supervisor
      // learns of it through the ordinary death event, and a fresh
      // rejoin() is the only way to try again.
      b.probation_owed = 0;
      ++stats_.probation_failures;
    }
  } else {
    b.health = BackendHealth::kSuspect;
  }
}

std::optional<std::int64_t> HealthMonitor::next_probe(std::uint32_t id,
                                                      time_point now) {
  const auto it = backends_.find(id);
  if (it == backends_.end()) return std::nullopt;
  Backend& b = it->second;
  advance(id, b, now);
  if (b.health == BackendHealth::kDead || b.paused) return std::nullopt;
  if (b.outstanding || now < b.next_due) return std::nullopt;
  b.outstanding = true;
  b.nonce = next_nonce_++;
  b.sent_at = now;
  ++stats_.probes_sent;
  return b.nonce;
}

void HealthMonitor::on_ack(std::uint32_t id, std::int64_t nonce,
                           time_point now) {
  const auto it = backends_.find(id);
  if (it == backends_.end()) {
    ++stats_.late_or_stray_acks;
    return;
  }
  Backend& b = it->second;
  // A probe answered during a maintenance pause is neither late nor
  // stray: set_paused() cleared `outstanding`, so the ack is simply the
  // in-flight answer to a probe we stopped caring about.  Ignore it
  // without prejudice — counting it as late_or_stray would make every
  // planned restart look like probe trouble.
  if (b.paused) return;
  advance(id, b, now);
  // Death is sticky; an ack for a stale nonce proves nothing about the
  // probe we are actually waiting on (it may have been queued for ages).
  if (b.health == BackendHealth::kDead || !b.outstanding ||
      nonce != b.nonce) {
    ++stats_.late_or_stray_acks;
    return;
  }
  b.outstanding = false;
  b.strikes = 0;
  b.timeout = cfg_.probe_timeout;
  b.next_due = now + cfg_.probe_interval;
  ++stats_.acks;
  if (b.probation_owed > 0) {
    // Probation lifts only on consecutive answered probes; a timeout in
    // between restarts nothing (strikes reset on ack anyway) but the
    // verdict stays kSuspect until the full run is in.
    if (--b.probation_owed == 0) {
      b.health = BackendHealth::kAlive;
      ++stats_.probation_passes;
    } else {
      b.health = BackendHealth::kSuspect;
    }
    return;
  }
  b.health = BackendHealth::kAlive;
}

void HealthMonitor::set_paused(std::uint32_t id, bool paused,
                               time_point now) {
  const auto it = backends_.find(id);
  if (it == backends_.end()) return;
  Backend& b = it->second;
  if (b.paused == paused) return;
  b.paused = paused;
  if (b.health == BackendHealth::kDead) return;  // sticky either way
  b.outstanding = false;
  b.strikes = 0;
  b.timeout = cfg_.probe_timeout;
  // A deliberate maintenance window supersedes probation: the supervisor
  // only pauses a backend it is restarting on purpose, which is as much
  // of a liveness attestation as a probe run would be.
  b.probation_owed = 0;
  b.health = BackendHealth::kAlive;
  if (!paused) b.next_due = now + cfg_.probe_interval;
}

bool HealthMonitor::rejoin(std::uint32_t id, time_point now) {
  const auto it = backends_.find(id);
  if (it == backends_.end()) return false;
  Backend& b = it->second;
  if (b.health != BackendHealth::kDead) return false;
  b.health = BackendHealth::kSuspect;
  b.paused = false;
  b.probation_owed = cfg_.probation_acks > 0 ? cfg_.probation_acks : 1;
  b.strikes = 0;
  b.timeout = cfg_.probe_timeout;
  b.outstanding = false;
  b.next_due = now;  // first probation probe due immediately
  ++stats_.rejoins;
  return true;
}

bool HealthMonitor::on_probation(std::uint32_t id) const {
  const auto it = backends_.find(id);
  return it != backends_.end() && it->second.probation_owed > 0 &&
         it->second.health != BackendHealth::kDead;
}

BackendHealth HealthMonitor::health(std::uint32_t id, time_point now) {
  const auto it = backends_.find(id);
  if (it == backends_.end()) return BackendHealth::kDead;
  advance(id, it->second, now);
  return it->second.health;
}

std::uint32_t HealthMonitor::strikes(std::uint32_t id) const {
  const auto it = backends_.find(id);
  return it == backends_.end() ? 0 : it->second.strikes;
}

}  // namespace stpx::fabric
