// HealthMonitor — the per-backend heartbeat state machine.
//
// Pure FSM, no threads, no clock of its own: the caller (FabricRouter's
// pump, or a unit test) injects `now` into every call, which makes the
// timeout/retry/backoff ladder deterministic under test.  Per backend:
//
//   idle ── interval elapsed ──▶ probe outstanding (nonce, deadline)
//     ▲                               │
//     │ ack(nonce) ── strikes := 0,   │ deadline passed ── strike++,
//     │   timeout := base ────────────┤   timeout *= backoff (capped),
//     │                               │   re-probe immediately
//     └───────────────────────────────┴── strikes == max_strikes ──▶ DEAD
//
// Death is sticky — once declared, the backend is fenced by the fabric
// and not revived by traffic (a late ack is counted but changes
// nothing).  The strike budget with exponential backoff means a single
// dropped probe datagram costs one quick retry, while a truly dead
// backend is declared after max_strikes timeouts spanning roughly
// timeout * (backoff^max_strikes - 1) / (backoff - 1).
//
// The one deliberate door back is rejoin() (PR 9): a dead backend that
// announced itself with a kJoin handshake enters PROBATION — probing
// resumes with a fresh ladder, and only `probation_acks` consecutive
// answered probes earn kAlive back.  Probation reports kSuspect
// throughout (the membership table keeps the backend fenced until the
// supervisor's reclaim completes), and striking out during probation is
// a second death, sticky as the first.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>

#include "fabric/membership.hpp"

namespace stpx::fabric {

struct HealthConfig {
  /// Gap between heartbeats while the backend answers promptly.
  std::chrono::microseconds probe_interval{2'000};
  /// How long an outstanding probe may go unanswered before a strike.
  std::chrono::microseconds probe_timeout{10'000};
  /// Strikes (consecutive timeouts) before the backend is declared dead.
  std::uint32_t max_strikes = 3;
  /// Timeout multiplier applied per strike (exponential backoff).
  double backoff = 2.0;
  /// Backoff ceiling.
  std::chrono::microseconds max_timeout{200'000};
  /// Consecutive answered probes a rejoining backend must produce before
  /// probation lifts (see file comment).
  std::uint32_t probation_acks = 2;
};

/// Per-backend probe accounting snapshot.
struct HealthStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t acks = 0;
  std::uint64_t late_or_stray_acks = 0;
  std::uint64_t timeouts = 0;   // strikes charged
  std::uint64_t deaths = 0;     // backends declared dead
  std::uint64_t rejoins = 0;            // probation windows opened
  std::uint64_t probation_passes = 0;   // probations that earned kAlive
  std::uint64_t probation_failures = 0; // probations that struck out
};

class HealthMonitor {
 public:
  using time_point = std::chrono::steady_clock::time_point;

  explicit HealthMonitor(HealthConfig cfg = {}) : cfg_(cfg) {}

  /// Register a backend; its first probe is due immediately.
  void add_backend(std::uint32_t id, time_point now);

  /// Advance the FSM for `id`: charge timeouts, then decide whether a
  /// probe should go out now.  Returns the nonce to send, or nullopt when
  /// nothing is due (probe outstanding / interval not yet elapsed / dead).
  std::optional<std::int64_t> next_probe(std::uint32_t id, time_point now);

  /// A kProbeAck carrying `nonce` arrived from `id`.
  void on_ack(std::uint32_t id, std::int64_t nonce, time_point now);

  /// Maintenance pause: while paused no probes go out and no timeouts are
  /// charged — a backend the supervisor is deliberately restarting (the
  /// re-homing absorb window) must not be mistaken for a crash.  Pausing
  /// forgives the strike ladder AND resets the backoff-grown timeout to
  /// base; resuming schedules the next probe one interval out.  An ack
  /// arriving mid-pause is ignored without prejudice (it is neither late
  /// nor stray — we simply were not asking).  Death stays sticky through
  /// both.
  void set_paused(std::uint32_t id, bool paused, time_point now);

  /// Open a probation window for a dead backend (the router calls this
  /// on a kJoin announcement): health becomes kSuspect, the strike
  /// ladder and timeout reset, and the next probe is due immediately.
  /// Only after cfg.probation_acks CONSECUTIVE answered probes does the
  /// verdict return to kAlive.  No-op unless the backend is dead.
  /// Returns true when a probation window was opened.
  bool rejoin(std::uint32_t id, time_point now);

  /// True while `id` is inside an open probation window.
  bool on_probation(std::uint32_t id) const;

  /// Current verdict (also charges any pending timeout at `now`, so a
  /// caller that stops probing still observes death).
  BackendHealth health(std::uint32_t id, time_point now);

  /// Strikes currently charged against `id` (0 when healthy or unknown).
  std::uint32_t strikes(std::uint32_t id) const;

  HealthStats stats() const { return stats_; }
  const HealthConfig& config() const { return cfg_; }

 private:
  struct Backend {
    BackendHealth health = BackendHealth::kAlive;
    bool paused = false;
    /// Consecutive acks still owed before probation lifts (0 = not on
    /// probation).
    std::uint32_t probation_owed = 0;
    std::uint32_t strikes = 0;
    std::chrono::microseconds timeout{0};  // current, backoff-grown
    bool outstanding = false;
    std::int64_t nonce = 0;
    time_point sent_at{};
    time_point next_due{};  // when the next probe may go out
  };

  /// Charge a timeout strike if the outstanding probe expired.
  void advance(std::uint32_t id, Backend& b, time_point now);

  HealthConfig cfg_;
  std::map<std::uint32_t, Backend> backends_;
  std::int64_t next_nonce_ = 1;
  HealthStats stats_;
};

}  // namespace stpx::fabric
