#include "fabric/nameserver.hpp"

#include "util/expect.hpp"

namespace stpx::fabric {

Nameserver::Nameserver(MembershipTable* membership)
    : membership_(membership) {
  STPX_EXPECT(membership_ != nullptr, "Nameserver: null membership");
}

net::Frame Nameserver::answer(const net::Frame& query) {
  net::Frame ack;
  ack.kind = net::FrameKind::kResolveAck;
  ack.dir = sim::Dir::kReceiverToSender;  // toward the asking client
  ack.session = query.session;
  std::uint32_t owner = 0;
  if (const auto entry = membership_->resolve(query.session)) {
    // A fenced or stale owner is no owner at all: naming it would hand
    // the client a lease on a generation that must never serve again.
    if (!entry->stale &&
        membership_->health(entry->backend) != BackendHealth::kDead) {
      owner = entry->backend;
    }
  }
  ack.msg = pack_lease(owner, membership_->epoch());
  n_.resolves.fetch_add(1, std::memory_order_relaxed);
  if (owner != 0) {
    n_.grants.fetch_add(1, std::memory_order_relaxed);
  } else {
    n_.unknowns.fetch_add(1, std::memory_order_relaxed);
  }
  return ack;
}

net::Frame Nameserver::redirect(std::uint32_t session) {
  net::Frame f;
  f.kind = net::FrameKind::kNotOwner;
  f.dir = sim::Dir::kReceiverToSender;
  f.session = session;
  f.msg = pack_lease(0, membership_->epoch());
  n_.redirects.fetch_add(1, std::memory_order_relaxed);
  return f;
}

std::uint64_t Nameserver::epoch() const { return membership_->epoch(); }

NameserverStats Nameserver::stats() const {
  NameserverStats s;
  s.resolves = n_.resolves.load(std::memory_order_relaxed);
  s.grants = n_.grants.load(std::memory_order_relaxed);
  s.unknowns = n_.unknowns.load(std::memory_order_relaxed);
  s.redirects = n_.redirects.load(std::memory_order_relaxed);
  return s;
}

}  // namespace stpx::fabric
