// FabricRouter — the frame-forwarding front of the service fabric.
//
// One pump thread sits between a single client-side transport and N
// backend links, forwarding raw frame bytes by session ownership
// (MembershipTable) and running the liveness loop (HealthMonitor) over
// the reserved kFabricSession:
//
//   client ──frames──▶ router ──(owner lookup)──▶ backend k
//   backend k ──acks/FINs──▶ router ──▶ client
//   router ──kProbe(nonce)──▶ backend k ──kProbeAck(nonce)──▶ router
//   client ──kResolve──▶ router(nameserver) ──kResolveAck──▶ client
//   backend k ──kJoin──▶ router ──kJoinAck──▶ backend k (probation opens)
//
// The router is content-light: it decodes only to read (session, kind),
// then forwards the original bytes — a forwarded frame is byte-identical
// to the sent one, so the codec's corruption guarantees pass through
// untouched.  Frames with no owner, a fenced owner, a STALE owner entry
// (stamped by a generation that has since been fenced — see
// MembershipTable), or a fault-dropped link are counted per cause and
// dropped; each such drop also bounces an epoch-tagged kNotOwner to the
// client so a stale lease is redirected, never silently blackholed.
//
// Fault injection for the fabric-level soak lives here as runtime
// switches per backend link (set from any thread):
//   * drop_probes — probe-blackout: heartbeats (and their acks) vanish
//     while data still flows, so the router falsely suspects a healthy
//     backend.  Fencing makes that safe (docs/FABRIC.md).
//   * drop_data — split-router: session traffic to/from the backend is
//     severed while heartbeats still answer, so the backend looks alive
//     but owns unreachable sessions.
//   * partition — host-level split between the router/nameserver side
//     and the backend's host: EVERYTHING (data, probes, acks, control)
//     is severed in the partitioned direction(s).  kBoth is the
//     symmetric split; kToBackend / kFromBackend are the asymmetric
//     one-way variants.  A long enough partition reads exactly like a
//     crash — which is the point: fencing makes that safe too, and a
//     healed partition re-converges through strike forgiveness.
//   * probes_paused — maintenance: the supervisor pauses the health FSM
//     for a backend it is deliberately restarting (re-homing absorb), so
//     the restart window cannot be mistaken for a crash.
//
// Death verdicts flow: HealthMonitor (pump thread) -> MembershipTable
// (shared) -> dead-event queue -> supervisor (Fabric), which fences and
// re-homes.  Rejoin verdicts flow the mirror path: kJoin (backend) ->
// HealthMonitor probation -> joined-event queue -> supervisor, which
// runs the reclaim handoff and only then revives the membership entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fabric/health.hpp"
#include "fabric/membership.hpp"
#include "fabric/nameserver.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace stpx::fabric {

/// Host-level partition state of one backend link (see file comment).
enum class PartitionMode : std::uint8_t {
  kNone = 0,
  kBoth,         ///< symmetric split: nothing crosses either way
  kToBackend,    ///< one-way: router/client -> backend severed
  kFromBackend,  ///< one-way: backend -> router/client severed
};

constexpr const char* to_cstr(PartitionMode m) {
  switch (m) {
    case PartitionMode::kNone: return "none";
    case PartitionMode::kBoth: return "both";
    case PartitionMode::kToBackend: return "to-backend";
    case PartitionMode::kFromBackend: return "from-backend";
  }
  return "?";
}

struct RouterConfig {
  HealthConfig health;
  /// Pump idle backoff when no link had traffic.
  std::chrono::microseconds poll_backoff{50};
  /// Frames forwarded per link per pump pass (fairness bound).
  std::size_t burst = 64;
  /// Bounce an epoch-tagged kNotOwner to the client for every
  /// no-owner / dead-owner / stale-entry drop.
  bool redirect_on_drop = true;
};

/// Aggregate router counters (snapshot of atomics).
struct RouterStats {
  std::uint64_t client_to_backend = 0;  // frames forwarded inbound
  std::uint64_t backend_to_client = 0;  // frames forwarded outbound
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_acks = 0;          // consumed by the health FSM
  std::uint64_t probes_suppressed = 0;   // probe-blackout drops (both ways)
  std::uint64_t data_suppressed = 0;     // split-router drops (both ways)
  std::uint64_t no_owner = 0;            // client frame for an unknown session
  std::uint64_t dead_owner = 0;          // owner fenced, re-home not done yet
  std::uint64_t stale_lease = 0;         // owner entry predates its last fence
  std::uint64_t partition_suppressed = 0;  // host-split drops (any kind)
  std::uint64_t resolves = 0;            // kResolve queries answered
  std::uint64_t redirects = 0;           // kNotOwner bounces sent
  std::uint64_t joins = 0;               // kJoin announcements accepted
  std::uint64_t rejects = 0;             // undecodable bytes (either side)
};

class FabricRouter {
 public:
  /// `client_side` is the router's end of the client link (non-owning).
  /// `membership` is shared with the supervisor (non-owning).
  FabricRouter(net::ITransport* client_side, MembershipTable* membership,
               RouterConfig cfg = {});
  FabricRouter(const FabricRouter&) = delete;
  FabricRouter& operator=(const FabricRouter&) = delete;
  ~FabricRouter();

  /// Register a backend link (before start()).  Also registers the
  /// backend with the health monitor; the caller registers it with the
  /// membership table.
  void add_backend(std::uint32_t id, net::ITransport* link);

  /// Swap a backend's link (e.g. a re-exec'd process dialed back in on a
  /// fresh socket).  Thread-safe; frames in flight on the old link are
  /// lost, which is the crash model anyway.  Blocks until the pump can no
  /// longer be mid-poll() on the OLD link, so the caller may destroy it
  /// the moment this returns.
  void set_link(std::uint32_t id, net::ITransport* link);

  void start();
  /// Idempotent; the destructor calls it.
  void stop();

  // --- fault switches (thread-safe, runtime-togglable) ------------------
  void set_drop_probes(std::uint32_t id, bool on);   // probe-blackout
  void set_drop_data(std::uint32_t id, bool on);     // split-router
  void set_probes_paused(std::uint32_t id, bool on); // maintenance window
  void set_partition(std::uint32_t id, PartitionMode mode);  // host split

  /// Pop the next backend the health loop declared dead (FIFO), if any.
  /// Each death is reported exactly once per incarnation.
  std::optional<std::uint32_t> next_dead();

  /// Pop the next backend that completed its rejoin probation (FIFO), if
  /// any.  The supervisor runs the reclaim handoff on it.
  std::optional<std::uint32_t> next_joined();

  RouterStats stats() const;
  /// Health FSM counters.  Snapshot taken under the pump's cadence; call
  /// after stop() for an exact final value.
  HealthStats health_stats() const;
  NameserverStats nameserver_stats() const { return nameserver_.stats(); }

  /// Router counters into the metrics registry under "fabric.*" — the
  /// drop family is split by cause (fabric.drops.no_owner /
  /// fabric.drops.dead_owner / fabric.drops.stale_lease / ...), so
  /// dashboards can tell an unknown session from a fenced owner from a
  /// resurrection attempt.
  void publish_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct BackendLink {
    std::uint32_t id = 0;
    std::atomic<net::ITransport*> link{nullptr};
    std::atomic<bool> drop_probes{false};
    std::atomic<bool> drop_data{false};
    std::atomic<bool> probes_paused{false};
    std::atomic<std::uint8_t> partition{
        static_cast<std::uint8_t>(PartitionMode::kNone)};
    bool applied_paused = false;  // pump-private shadow of probes_paused
    bool reported_dead = false;   // pump-private: death event emitted
    bool awaiting_probation = false;  // pump-private: kJoin seen, not yet alive
  };

  void pump_loop(std::stop_token st);
  /// Forward one decoded client frame to its owner's link.
  void route_inbound(const net::Frame& f,
                     const std::vector<std::uint8_t>& bytes);
  /// Drain one backend link: consume probe acks and joins, forward the
  /// rest.
  bool drain_backend(BackendLink& b, HealthMonitor::time_point now);
  /// Probe emission + death/probation verdicts for one backend.
  void tend_backend(BackendLink& b, HealthMonitor::time_point now);
  /// Handle one kJoin announcement from `b` (pump thread).
  void on_join(BackendLink& b, HealthMonitor::time_point now);
  /// Bounce an epoch-tagged kNotOwner for a dropped client frame.
  void redirect_client(std::uint32_t session);

  static PartitionMode partition_of(const BackendLink& b) {
    return static_cast<PartitionMode>(
        b.partition.load(std::memory_order_acquire));
  }

  net::ITransport* client_;
  MembershipTable* membership_;
  RouterConfig cfg_;
  std::vector<std::unique_ptr<BackendLink>> backends_;
  HealthMonitor health_;  // pump-thread-only after start()
  mutable std::mutex health_mu_;  // guards health_ around stats snapshots
  Nameserver nameserver_;
  bool started_ = false;

  std::mutex dead_mu_;
  std::deque<std::uint32_t> dead_;
  std::deque<std::uint32_t> joined_;

  struct Counters {
    std::atomic<std::uint64_t> c2b{0}, b2c{0}, probes_sent{0},
        probe_acks{0}, probes_suppressed{0}, data_suppressed{0},
        no_owner{0}, dead_owner{0}, stale_lease{0}, partition_suppressed{0},
        resolves{0}, redirects{0}, joins{0}, rejects{0};
  } n_;

  /// Incremented once per pump pass; set_link uses it as a quiescence
  /// fence before letting the caller free the swapped-out transport.
  std::atomic<std::uint64_t> pump_ticks_{0};

  std::jthread pump_;
};

}  // namespace stpx::fabric
