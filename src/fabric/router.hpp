// FabricRouter — the frame-forwarding front of the service fabric.
//
// One pump thread sits between a single client-side transport and N
// backend links, forwarding raw frame bytes by session ownership
// (MembershipTable) and running the liveness loop (HealthMonitor) over
// the reserved kFabricSession:
//
//   client ──frames──▶ router ──(owner lookup)──▶ backend k
//   backend k ──acks/FINs──▶ router ──▶ client
//   router ──kProbe(nonce)──▶ backend k ──kProbeAck(nonce)──▶ router
//
// The router is content-light: it decodes only to read (session, kind),
// then forwards the original bytes — a forwarded frame is byte-identical
// to the sent one, so the codec's corruption guarantees pass through
// untouched.  Frames with no owner, a dead owner, or a fault-dropped
// link are counted and dropped; every protocol above the mux already
// treats that exactly like wire loss.
//
// Fault injection for the fabric-level soak lives here as runtime
// switches per backend link (set from any thread):
//   * drop_probes — probe-blackout: heartbeats (and their acks) vanish
//     while data still flows, so the router falsely suspects a healthy
//     backend.  Fencing makes that safe (docs/FABRIC.md).
//   * drop_data — split-router: session traffic to/from the backend is
//     severed while heartbeats still answer, so the backend looks alive
//     but owns unreachable sessions.
//   * probes_paused — maintenance: the supervisor pauses the health FSM
//     for a backend it is deliberately restarting (re-homing absorb), so
//     the restart window cannot be mistaken for a crash.
//
// Death verdicts flow: HealthMonitor (pump thread) -> MembershipTable
// (shared) -> dead-event queue -> supervisor (Fabric), which fences and
// re-homes, then calls rehome() here via the membership table.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fabric/health.hpp"
#include "fabric/membership.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"

namespace stpx::fabric {

struct RouterConfig {
  HealthConfig health;
  /// Pump idle backoff when no link had traffic.
  std::chrono::microseconds poll_backoff{50};
  /// Frames forwarded per link per pump pass (fairness bound).
  std::size_t burst = 64;
};

/// Aggregate router counters (snapshot of atomics).
struct RouterStats {
  std::uint64_t client_to_backend = 0;  // frames forwarded inbound
  std::uint64_t backend_to_client = 0;  // frames forwarded outbound
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_acks = 0;          // consumed by the health FSM
  std::uint64_t probes_suppressed = 0;   // probe-blackout drops (both ways)
  std::uint64_t data_suppressed = 0;     // split-router drops (both ways)
  std::uint64_t no_owner = 0;            // client frame for an unknown session
  std::uint64_t dead_owner = 0;          // owner fenced, re-home not done yet
  std::uint64_t rejects = 0;             // undecodable bytes (either side)
};

class FabricRouter {
 public:
  /// `client_side` is the router's end of the client link (non-owning).
  /// `membership` is shared with the supervisor (non-owning).
  FabricRouter(net::ITransport* client_side, MembershipTable* membership,
               RouterConfig cfg = {});
  FabricRouter(const FabricRouter&) = delete;
  FabricRouter& operator=(const FabricRouter&) = delete;
  ~FabricRouter();

  /// Register a backend link (before start()).  Also registers the
  /// backend with the health monitor; the caller registers it with the
  /// membership table.
  void add_backend(std::uint32_t id, net::ITransport* link);

  /// Swap a backend's link (e.g. a re-exec'd process dialed back in on a
  /// fresh socket).  Thread-safe; frames in flight on the old link are
  /// lost, which is the crash model anyway.  Blocks until the pump can no
  /// longer be mid-poll() on the OLD link, so the caller may destroy it
  /// the moment this returns.
  void set_link(std::uint32_t id, net::ITransport* link);

  void start();
  /// Idempotent; the destructor calls it.
  void stop();

  // --- fault switches (thread-safe, runtime-togglable) ------------------
  void set_drop_probes(std::uint32_t id, bool on);   // probe-blackout
  void set_drop_data(std::uint32_t id, bool on);     // split-router
  void set_probes_paused(std::uint32_t id, bool on); // maintenance window

  /// Pop the next backend the health loop declared dead (FIFO), if any.
  /// Each death is reported exactly once.
  std::optional<std::uint32_t> next_dead();

  RouterStats stats() const;
  /// Health FSM counters.  Snapshot taken under the pump's cadence; call
  /// after stop() for an exact final value.
  HealthStats health_stats() const;

 private:
  struct BackendLink {
    std::uint32_t id = 0;
    std::atomic<net::ITransport*> link{nullptr};
    std::atomic<bool> drop_probes{false};
    std::atomic<bool> drop_data{false};
    std::atomic<bool> probes_paused{false};
    bool applied_paused = false;  // pump-private shadow of probes_paused
    bool reported_dead = false;   // pump-private: death event emitted
  };

  void pump_loop(std::stop_token st);
  /// Forward one decoded client frame to its owner's link.
  void route_inbound(const net::Frame& f,
                     const std::vector<std::uint8_t>& bytes);
  /// Drain one backend link: consume probe acks, forward the rest.
  bool drain_backend(BackendLink& b, HealthMonitor::time_point now);
  /// Probe emission + death detection for one backend.
  void tend_backend(BackendLink& b, HealthMonitor::time_point now);

  net::ITransport* client_;
  MembershipTable* membership_;
  RouterConfig cfg_;
  std::vector<std::unique_ptr<BackendLink>> backends_;
  HealthMonitor health_;  // pump-thread-only after start()
  mutable std::mutex health_mu_;  // guards health_ around stats snapshots
  bool started_ = false;

  std::mutex dead_mu_;
  std::deque<std::uint32_t> dead_;

  struct Counters {
    std::atomic<std::uint64_t> c2b{0}, b2c{0}, probes_sent{0},
        probe_acks{0}, probes_suppressed{0}, data_suppressed{0},
        no_owner{0}, dead_owner{0}, rejects{0};
  } n_;

  /// Incremented once per pump pass; set_link uses it as a quiescence
  /// fence before letting the caller free the swapped-out transport.
  std::atomic<std::uint64_t> pump_ticks_{0};

  std::jthread pump_;
};

}  // namespace stpx::fabric
