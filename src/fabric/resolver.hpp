// ResolverTransport — the client's side of the nameserver protocol, as a
// transport decorator.
//
// StpClient stays lease-ignorant: it is constructed over a
// ResolverTransport wrapping the real client endpoint, and the decorator
// speaks kResolve/kResolveAck/kNotOwner underneath it (the same shape as
// fault::ChaosChannel wrapping a channel):
//
//   * on connect — resolve_now() issues a kResolve per session before
//     traffic starts, so the client begins with a fresh lease;
//   * on send    — a data frame for a session with no cached lease
//     triggers a (rate-limited) kResolve; the data frame itself still
//     passes through, because leases are advisory (the router routes by
//     its own membership table) and holding traffic would add nothing
//     but latency;
//   * on poll    — kResolveAck frames are consumed into the lease cache;
//     kNotOwner frames are consumed and, when they carry an epoch newer
//     than the cached lease, invalidate it and trigger an immediate
//     re-resolve.  That is the epoch fence: a stale lease is redirected,
//     never silently blackholed.
//
// Everything else passes through byte-identical, so the codec's
// corruption guarantees and the mux's accounting are undisturbed.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "net/frame.hpp"
#include "net/transport.hpp"

namespace stpx::fabric {

struct ResolverConfig {
  /// Minimum gap between kResolve re-issues for one session (an
  /// unanswered resolve is wire loss; retrying too hot would just add
  /// control noise to a congested link).
  std::chrono::microseconds resolve_retry{2'000};
  /// Control frames consumed per poll() before giving the caller an
  /// empty answer (starvation bound).
  std::size_t control_burst = 16;
};

/// One cached ownership lease.
struct Lease {
  std::uint32_t owner = 0;
  std::uint64_t epoch = 0;
};

struct ResolverStats {
  std::uint64_t resolves_sent = 0;
  std::uint64_t leases_granted = 0;       ///< acks naming an owner
  std::uint64_t unknown_answers = 0;      ///< acks naming no owner
  std::uint64_t redirects_seen = 0;       ///< kNotOwner consumed
  std::uint64_t lease_invalidations = 0;  ///< stale leases fenced off
};

class ResolverTransport final : public net::ITransport {
 public:
  /// `inner` is the real client endpoint (non-owning, must outlive).
  explicit ResolverTransport(net::ITransport* inner, ResolverConfig cfg = {});

  bool send(const std::vector<std::uint8_t>& bytes) override;
  std::optional<std::vector<std::uint8_t>> poll() override;
  std::string name() const override;

  /// Connect-time query: issue a kResolve for `session` now, ahead of
  /// any traffic.
  void resolve_now(std::uint32_t session);

  /// The cached lease for `session`, if any.
  std::optional<Lease> lease(std::uint32_t session) const;

  ResolverStats stats() const;

 private:
  using clock = std::chrono::steady_clock;

  /// Issue a kResolve unless one went out within resolve_retry.
  /// Caller holds mu_.
  void maybe_resolve(std::uint32_t session, clock::time_point now);
  /// Consume one control frame.  Caller holds mu_.
  void on_control(const net::Frame& f);

  net::ITransport* inner_;
  ResolverConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::uint32_t, Lease> leases_;
  std::map<std::uint32_t, clock::time_point> last_resolve_;
  ResolverStats n_;
};

}  // namespace stpx::fabric
