// Fabric — the in-process service fabric: N backend cells behind one
// router, one supervisor closing the crash → fence → re-home loop.
//
// Wiring (every link is a loopback pair; the process harness in
// bench/r7_fabric.cpp builds the same topology over UDP + fork/exec):
//
//   client mux ══ client link ══ FabricRouter ══ link k ══ BackendCell k
//                                     │
//                                HealthMonitor (kProbe/kProbeAck)
//                                     │ death verdict
//                                supervisor thread:
//                                  fence (kill the suspect — idempotent,
//                                    so FALSE suspicion is safe)
//                                  pick survivor (least loaded, alive)
//                                  absorb (survivor rehydrates its own
//                                    logs + the dead cell's as handoff)
//                                  re-home (membership rewrite; the
//                                    router forwards there from now on)
//
// The rejoin loop (PR 9) runs the same machinery in reverse: a killed
// cell announces a fresh generation (kJoin), rides out the router's
// probation window, and the supervisor then RECLAIMS the sessions its
// durable logs still manifest — each current owner hands them back with
// a release absorb, the rejoiner folds the released logs in, and only
// then does revive() + reassignment flip the routing truth (epoch bump;
// stale leases get redirected).  docs/FABRIC.md has the state machine.
//
// Sessions are assigned round-robin at registration; the membership
// table is the single routing truth before and after a re-home.  The
// supervisor records every re-home (survivor, moved sessions, absorb
// report, latency) for the bench harness and the tests.
//
// merge_backend_traces() is the observability counterpart: per-backend
// FlightRecorder streams, each stamped with its recorder epoch
// (CLOCK_MONOTONIC is machine-wide), rebased onto one time axis so the
// trace-analysis pipeline can attest per-session prefix safety ACROSS
// the crash boundary — the dead generation's events and the survivor's
// land in one ordered stream (docs/FABRIC.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fabric/cell.hpp"
#include "fabric/router.hpp"
#include "net/loopback.hpp"
#include "net/trace_event.hpp"

namespace stpx::fabric {

struct FabricConfig {
  std::size_t backends = 3;
  RouterConfig router;
  /// Mux template for every cell (backend_id/session_stores overwritten
  /// per cell; `probe` overridden by probe_for when given).
  net::MuxConfig mux;
  net::StpServer::ReceiverFactory make_receiver;
  net::StpServer::ExpectedProvider expected_for;
  /// Session logs for backend `id` (called once per backend at
  /// construction and cached; the same pointers serve as the handoff
  /// source when that backend dies).
  std::function<std::vector<store::IStableStore*>(std::uint32_t)> stores_for;
  /// Optional per-backend observer (e.g. one FlightRecorder per cell,
  /// configured with backend_id = cell id).
  std::function<net::INetProbe*(std::uint32_t)> probe_for;
  /// Link template for the client link and every backend link.
  net::LoopbackConfig link;
  /// Supervisor poll cadence for death events.
  std::chrono::microseconds supervise_poll{200};
};

/// One fence-and-re-home, as the supervisor saw it.
struct RehomeRecord {
  std::uint32_t dead = 0;
  std::uint32_t survivor = 0;  ///< 0: no alive backend was left
  std::vector<std::uint32_t> moved;
  AbsorbReport absorb;
  bool ok = false;
};

/// One rejoin-and-reclaim, as the supervisor saw it: backend `backend`
/// passed probation and took back `reclaimed`, released by the backends
/// in `released_from` (empty when its sessions were never re-homed —
/// e.g. it died with no survivor and they sat fenced behind stale owner
/// entries until now).
struct ReclaimRecord {
  std::uint32_t backend = 0;
  std::uint32_t generation = 0;  ///< the generation that serves from now
  std::vector<std::uint32_t> reclaimed;
  std::vector<std::uint32_t> released_from;
  AbsorbReport absorb;           ///< the rejoiner's reclaim absorb
  std::uint64_t epoch = 0;       ///< membership epoch after revive
  bool ok = false;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig cfg);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// The client side of the client link — build the StpClient on this.
  net::ITransport* client_endpoint() { return client_link_.a.get(); }

  /// Register one session (before start()): assigned round-robin to a
  /// backend, recorded in the membership table, cold-added to its cell.
  void add_session(std::uint32_t sid);

  void start();
  /// Supervisor, router, then every still-alive cell. Idempotent.
  void stop();

  /// Wait until every session hosted by an alive cell is terminal (the
  /// supervisor keeps re-homing meanwhile).  False on timeout.
  bool drain(std::chrono::milliseconds timeout);

  // --- fault injection --------------------------------------------------
  /// Crash backend `id` now (the router discovers it by probe timeout).
  void kill_backend(std::uint32_t id);
  /// Sever/restore the heartbeat while data still flows (false-suspicion
  /// drill).
  void set_probe_blackout(std::uint32_t id, bool on);
  /// Sever/restore session traffic while heartbeats still answer.
  void set_data_split(std::uint32_t id, bool on);
  /// Host-level split between the router side and backend `id`: data AND
  /// probes severed in the given direction(s).  kNone heals.
  void set_partition(std::uint32_t id, PartitionMode mode);

  /// Bring a killed backend back: the cell announces a fresh generation
  /// (kJoin handshake) and, once the router's probation window passes,
  /// the supervisor reclaims the sessions its durable logs still
  /// manifest.  Returns false when the handshake failed (e.g. the link
  /// is partitioned) — the cell stays dead and may try again.  The
  /// reclaim itself is asynchronous; wait on reclaims().
  bool rejoin_backend(std::uint32_t id);

  MembershipTable& membership() { return membership_; }
  FabricRouter& router() { return *router_; }
  BackendCell& cell(std::uint32_t id);
  std::size_t backend_count() const { return cells_.size(); }

  std::vector<RehomeRecord> rehomes() const;
  std::vector<ReclaimRecord> reclaims() const;

  /// Router + nameserver counters into `reg` under "fabric.*" (call
  /// after stop(); the registry is not thread-safe).
  void publish_metrics(obs::MetricsRegistry& reg) const;

 private:
  void supervise(std::stop_token st);
  void handle_death(std::uint32_t dead);
  void handle_join(std::uint32_t id);

  FabricConfig cfg_;
  MembershipTable membership_;
  net::LoopbackPair client_link_;
  std::vector<net::LoopbackPair> backend_links_;
  std::vector<std::vector<store::IStableStore*>> stores_;  // per cell
  std::vector<std::unique_ptr<BackendCell>> cells_;  // cells_[i] has id i+1
  std::unique_ptr<FabricRouter> router_;
  std::size_t next_assign_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex rehome_mu_;
  std::vector<RehomeRecord> rehomes_;
  std::vector<ReclaimRecord> reclaims_;
  std::jthread supervisor_;
};

/// One backend's recorded trace plus its recorder epoch
/// (FlightRecorder::epoch_offset_us()).
struct TracePart {
  std::uint64_t epoch_us = 0;
  std::vector<net::TraceEvent> events;
};

/// Rebase every part onto the earliest epoch and merge into one stream
/// ordered by the rebased timestamp (stable: ties keep part order, so a
/// backend's own events never reorder).  Feed the result to the
/// trace-analysis pipeline to attest sessions across a re-home.
std::vector<net::TraceEvent> merge_backend_traces(
    const std::vector<TracePart>& parts);

}  // namespace stpx::fabric
