#include "fabric/membership.hpp"

#include "util/expect.hpp"

namespace stpx::fabric {

void MembershipTable::add_backend(std::uint32_t backend) {
  std::lock_guard<std::mutex> hold(mu_);
  backends_.try_emplace(backend, Backend{});
}

void MembershipTable::assign(std::uint32_t session, std::uint32_t backend) {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = backends_.find(backend);
  STPX_EXPECT(it != backends_.end(),
              "MembershipTable: assign to unknown backend");
  session_owner_[session] = Entry{backend, it->second.incarnation};
}

std::optional<std::uint32_t> MembershipTable::owner(
    std::uint32_t session) const {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = session_owner_.find(session);
  if (it == session_owner_.end()) return std::nullopt;
  return it->second.backend;
}

std::optional<OwnerEntry> MembershipTable::resolve(
    std::uint32_t session) const {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = session_owner_.find(session);
  if (it == session_owner_.end()) return std::nullopt;
  OwnerEntry out;
  out.backend = it->second.backend;
  out.generation = it->second.generation;
  const auto b = backends_.find(it->second.backend);
  out.stale =
      b == backends_.end() || b->second.incarnation != it->second.generation;
  return out;
}

void MembershipTable::set_health(std::uint32_t backend, BackendHealth h) {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = backends_.find(backend);
  STPX_EXPECT(it != backends_.end(),
              "MembershipTable: set_health on unknown backend");
  // Death is sticky: a fenced backend never routes again, even if a late
  // probe ack argues otherwise (split-brain prevention — docs/FABRIC.md).
  // revive() is the one deliberate exception, taken only by the
  // supervisor after the rejoin handshake and probation pass.
  if (it->second.health == BackendHealth::kDead) return;
  it->second.health = h;
}

BackendHealth MembershipTable::health(std::uint32_t backend) const {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = backends_.find(backend);
  return it == backends_.end() ? BackendHealth::kDead : it->second.health;
}

std::vector<std::uint32_t> MembershipTable::rehome(std::uint32_t from,
                                                   std::uint32_t to) {
  std::lock_guard<std::mutex> hold(mu_);
  const auto th = backends_.find(to);
  STPX_EXPECT(th != backends_.end(),
              "MembershipTable: rehome to unknown backend");
  auto fh = backends_.find(from);
  if (fh != backends_.end()) fh->second.health = BackendHealth::kDead;
  std::vector<std::uint32_t> moved;
  for (auto& [session, entry] : session_owner_) {
    if (entry.backend == from) {
      entry = Entry{to, th->second.incarnation};
      moved.push_back(session);
    }
  }
  ++epoch_;
  return moved;
}

std::uint64_t MembershipTable::revive(std::uint32_t backend) {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = backends_.find(backend);
  STPX_EXPECT(it != backends_.end(),
              "MembershipTable: revive on unknown backend");
  ++it->second.incarnation;
  it->second.health = BackendHealth::kAlive;
  ++epoch_;
  return it->second.incarnation;
}

std::uint64_t MembershipTable::incarnation(std::uint32_t backend) const {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = backends_.find(backend);
  return it == backends_.end() ? 0 : it->second.incarnation;
}

std::uint64_t MembershipTable::epoch() const {
  std::lock_guard<std::mutex> hold(mu_);
  return epoch_;
}

std::vector<std::uint32_t> MembershipTable::sessions_of(
    std::uint32_t backend) const {
  std::lock_guard<std::mutex> hold(mu_);
  std::vector<std::uint32_t> out;
  for (const auto& [session, entry] : session_owner_) {
    if (entry.backend == backend) out.push_back(session);
  }
  return out;
}

std::vector<std::uint32_t> MembershipTable::backends() const {
  std::lock_guard<std::mutex> hold(mu_);
  std::vector<std::uint32_t> out;
  out.reserve(backends_.size());
  for (const auto& [id, b] : backends_) {
    (void)b;
    out.push_back(id);
  }
  return out;
}

std::optional<std::uint32_t> MembershipTable::pick_survivor(
    std::uint32_t not_this) const {
  std::lock_guard<std::mutex> hold(mu_);
  std::optional<std::uint32_t> best;
  std::size_t best_load = 0;
  for (const auto& [id, b] : backends_) {
    if (id == not_this || b.health != BackendHealth::kAlive) continue;
    std::size_t load = 0;
    for (const auto& [session, entry] : session_owner_) {
      (void)session;
      // Stale entries predate the owner's last fence: phantom load a
      // rejoin must not resurrect (see file comment).
      if (entry.backend == id && entry.generation == b.incarnation) ++load;
    }
    if (!best || load < best_load) {
      best = id;
      best_load = load;
    }
  }
  return best;
}

std::size_t MembershipTable::session_count() const {
  std::lock_guard<std::mutex> hold(mu_);
  return session_owner_.size();
}

}  // namespace stpx::fabric
