#include "fabric/membership.hpp"

#include "util/expect.hpp"

namespace stpx::fabric {

void MembershipTable::add_backend(std::uint32_t backend) {
  std::lock_guard<std::mutex> hold(mu_);
  backend_health_.try_emplace(backend, BackendHealth::kAlive);
}

void MembershipTable::assign(std::uint32_t session, std::uint32_t backend) {
  std::lock_guard<std::mutex> hold(mu_);
  STPX_EXPECT(backend_health_.count(backend) != 0,
              "MembershipTable: assign to unknown backend");
  session_owner_[session] = backend;
}

std::optional<std::uint32_t> MembershipTable::owner(
    std::uint32_t session) const {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = session_owner_.find(session);
  if (it == session_owner_.end()) return std::nullopt;
  return it->second;
}

void MembershipTable::set_health(std::uint32_t backend, BackendHealth h) {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = backend_health_.find(backend);
  STPX_EXPECT(it != backend_health_.end(),
              "MembershipTable: set_health on unknown backend");
  // Death is sticky: a fenced backend never routes again, even if a late
  // probe ack argues otherwise (split-brain prevention — docs/FABRIC.md).
  if (it->second == BackendHealth::kDead) return;
  it->second = h;
}

BackendHealth MembershipTable::health(std::uint32_t backend) const {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = backend_health_.find(backend);
  return it == backend_health_.end() ? BackendHealth::kDead : it->second;
}

std::vector<std::uint32_t> MembershipTable::rehome(std::uint32_t from,
                                                   std::uint32_t to) {
  std::lock_guard<std::mutex> hold(mu_);
  STPX_EXPECT(backend_health_.count(to) != 0,
              "MembershipTable: rehome to unknown backend");
  auto fh = backend_health_.find(from);
  if (fh != backend_health_.end()) fh->second = BackendHealth::kDead;
  std::vector<std::uint32_t> moved;
  for (auto& [session, owner] : session_owner_) {
    if (owner == from) {
      owner = to;
      moved.push_back(session);
    }
  }
  return moved;
}

std::vector<std::uint32_t> MembershipTable::sessions_of(
    std::uint32_t backend) const {
  std::lock_guard<std::mutex> hold(mu_);
  std::vector<std::uint32_t> out;
  for (const auto& [session, owner] : session_owner_) {
    if (owner == backend) out.push_back(session);
  }
  return out;
}

std::vector<std::uint32_t> MembershipTable::backends() const {
  std::lock_guard<std::mutex> hold(mu_);
  std::vector<std::uint32_t> out;
  out.reserve(backend_health_.size());
  for (const auto& [id, h] : backend_health_) {
    (void)h;
    out.push_back(id);
  }
  return out;
}

std::optional<std::uint32_t> MembershipTable::pick_survivor(
    std::uint32_t not_this) const {
  std::lock_guard<std::mutex> hold(mu_);
  std::optional<std::uint32_t> best;
  std::size_t best_load = 0;
  for (const auto& [id, h] : backend_health_) {
    if (id == not_this || h != BackendHealth::kAlive) continue;
    std::size_t load = 0;
    for (const auto& [session, owner] : session_owner_) {
      (void)session;
      if (owner == id) ++load;
    }
    if (!best || load < best_load) {
      best = id;
      best_load = load;
    }
  }
  return best;
}

std::size_t MembershipTable::session_count() const {
  std::lock_guard<std::mutex> hold(mu_);
  return session_owner_.size();
}

}  // namespace stpx::fabric
