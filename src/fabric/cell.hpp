// BackendCell — one backend of the fabric: an StpServer generation over a
// fixed transport endpoint, plus the crash / re-home machinery.
//
// A cell owns the *role* of backend k, not a single mux: generations of
// StpServer come and go (crash, absorb-restart) while the transport
// endpoint and the session stores stay put — exactly the crash-restart
// shape docs/RECOVERY.md establishes for a single server, lifted to a
// fleet member.
//
//   kill()           crash: the mux dies mid-flight (no drain, no final
//                    flush), probes go unanswered, the router's health
//                    loop declares the cell dead.  Idempotent — fencing
//                    an already-dead cell is a no-op, which is what makes
//                    FALSE suspicion safe: fence first, ask later.
//   rehome_absorb()  survivor side of a re-home: bare-stop the running
//                    generation, build a fresh one on the same transport
//                    and OWN stores, rehydrate with the dead backend's
//                    logs as read-only extra sources, cold-add any
//                    expected session that never manifested (assigned but
//                    never checkpointed before the crash), restart.
//
// The cell's MuxConfig.backend_id is stamped with the cell id, so every
// manifest record it writes says who owned the session when — provenance
// that survives the handoff.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/service.hpp"

namespace stpx::fabric {

struct CellConfig {
  /// Backend id (nonzero; 0 is the "unattributed" sentinel).
  std::uint32_t id = 1;
  /// Mux template; backend_id is overwritten with `id`.
  net::MuxConfig mux;
  /// This cell's own session logs (non-owning, must outlive the cell).
  std::vector<store::IStableStore*> stores;
  /// Builds a receiver endpoint for session `sid` — used both for cold
  /// add_session() and for rehydrate after a crash/absorb.
  net::StpServer::ReceiverFactory make_receiver;
  net::StpServer::ExpectedProvider expected_for;
};

/// What one rehome_absorb() did (the survivor's view).
struct AbsorbReport {
  net::RehydrateReport rehydrate;
  std::vector<std::uint32_t> cold_added;  // expected but never manifested
  std::uint64_t latency_us = 0;           // stop -> serving again
};

class BackendCell {
 public:
  /// `transport` is the cell's end of its router link (non-owning; shared
  /// by every generation).
  BackendCell(net::ITransport* transport, CellConfig cfg);

  /// Cold-register one session on the current generation (before start()).
  void add_session(std::uint32_t sid);

  void start();

  /// Graceful shutdown of the current generation (drain is the caller's
  /// job; this is stop()).  No-op when killed.
  void stop();

  /// Crash the current generation: threads retired without the final
  /// flush, held frames dropped, probes unanswered from now on.
  /// Idempotent — the supervisor fences every suspect through this.
  void kill();

  bool killed() const { return killed_; }
  std::uint32_t id() const { return cfg_.id; }

  /// Survivor side of a re-home (see file comment).  `handoff` is the
  /// dead backend's stores (read-only); `expected` the session ids the
  /// membership table says must now live here (this cell's own sessions
  /// need not be listed — its stores already manifest them).
  AbsorbReport rehome_absorb(
      const std::vector<store::IStableStore*>& handoff,
      const std::vector<std::uint32_t>& expected);

  /// The current generation (valid between construction and kill()).
  net::StpServer& server() { return *server_; }
  const net::StpServer& server() const { return *server_; }
  std::uint32_t generation() const { return generation_; }

 private:
  std::unique_ptr<net::StpServer> make_generation();

  net::ITransport* transport_;
  CellConfig cfg_;
  std::unique_ptr<net::StpServer> server_;
  std::uint32_t generation_ = 1;
  bool started_ = false;
  bool killed_ = false;
  std::mutex mu_;  // serializes kill / absorb / stop
};

}  // namespace stpx::fabric
