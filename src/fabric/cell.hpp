// BackendCell — one backend of the fabric: an StpServer generation over a
// fixed transport endpoint, plus the crash / re-home machinery.
//
// A cell owns the *role* of backend k, not a single mux: generations of
// StpServer come and go (crash, absorb-restart) while the transport
// endpoint and the session stores stay put — exactly the crash-restart
// shape docs/RECOVERY.md establishes for a single server, lifted to a
// fleet member.
//
//   kill()           crash: the mux dies mid-flight (no drain, no final
//                    flush), probes go unanswered, the router's health
//                    loop declares the cell dead.  Idempotent — fencing
//                    an already-dead cell is a no-op, which is what makes
//                    FALSE suspicion safe: fence first, ask later.
//   rehome_absorb()  survivor side of a re-home: bare-stop the running
//                    generation, build a fresh one on the same transport
//                    and OWN stores, rehydrate with the dead backend's
//                    logs as read-only extra sources, cold-add any
//                    expected session that never manifested (assigned but
//                    never checkpointed before the crash), restart.
//   rejoin()         the way back from kill(): announce a fresh
//                    generation on the reserved fabric session (kJoin,
//                    msg = generation), wait for the router's epoch-tagged
//                    kJoinAck, then start a SESSIONLESS generation that
//                    answers probes through its probation window.  The
//                    sessions come back later, via the reclaim handoff.
//   release_absorb() survivor side of a reclaim: hand sessions BACK —
//                    the same restart-absorb shape as rehome_absorb, but
//                    the rehydration factory declines the departing
//                    sessions, so the new generation simply never admits
//                    them.  Their durable records stay in this cell's
//                    logs, read-only, for the rejoiner to fold in.
//
// Every absorb restricts rehydration to the sessions the membership table
// says belong here: after a reclaim, a cell's logs manifest sessions it
// no longer owns (the released ones), and blindly re-admitting whatever a
// log mentions would be exactly the split-brain the fence exists to
// prevent.
//
// The cell's MuxConfig.backend_id is stamped with the cell id, so every
// manifest record it writes says who owned the session when — provenance
// that survives the handoff.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/service.hpp"

namespace stpx::fabric {

struct CellConfig {
  /// Backend id (nonzero; 0 is the "unattributed" sentinel).
  std::uint32_t id = 1;
  /// Mux template; backend_id is overwritten with `id`.
  net::MuxConfig mux;
  /// This cell's own session logs (non-owning, must outlive the cell).
  std::vector<store::IStableStore*> stores;
  /// Builds a receiver endpoint for session `sid` — used both for cold
  /// add_session() and for rehydrate after a crash/absorb.
  net::StpServer::ReceiverFactory make_receiver;
  net::StpServer::ExpectedProvider expected_for;
};

/// What one rehome_absorb() did (the survivor's view).
struct AbsorbReport {
  net::RehydrateReport rehydrate;
  std::vector<std::uint32_t> cold_added;  // expected but never manifested
  std::uint64_t latency_us = 0;           // stop -> serving again
};

/// What one rejoin() handshake did.
struct RejoinReport {
  bool acked = false;          ///< kJoinAck received; probation is open
  std::uint32_t attempts = 0;  ///< kJoin announcements sent
  std::uint32_t generation = 0;  ///< the generation that announced
  std::uint64_t epoch = 0;     ///< membership epoch from the kJoinAck
  std::uint64_t latency_us = 0;
};

class BackendCell {
 public:
  /// `transport` is the cell's end of its router link (non-owning; shared
  /// by every generation).
  BackendCell(net::ITransport* transport, CellConfig cfg);

  /// Cold-register one session on the current generation (before start()).
  void add_session(std::uint32_t sid);

  void start();

  /// Graceful shutdown of the current generation (drain is the caller's
  /// job; this is stop()).  No-op when killed.
  void stop();

  /// Crash the current generation: threads retired without the final
  /// flush, held frames dropped, probes unanswered from now on.
  /// Idempotent — the supervisor fences every suspect through this.
  void kill();

  bool killed() const { return killed_; }
  std::uint32_t id() const { return cfg_.id; }

  /// Survivor side of a re-home (see file comment).  `handoff` is the
  /// dead backend's stores (read-only); `expected` the session ids the
  /// membership table says must now live here.  When `owned` is given it
  /// names this cell's CURRENT sessions, and rehydration is restricted to
  /// owned ∪ expected — any other session a log manifests (e.g. one this
  /// cell released in an earlier reclaim) is declined.  Without `owned`
  /// every manifested session is admitted (the pre-reclaim behaviour,
  /// safe only while logs cannot mention foreign sessions).
  AbsorbReport rehome_absorb(
      const std::vector<store::IStableStore*>& handoff,
      const std::vector<std::uint32_t>& expected,
      const std::optional<std::vector<std::uint32_t>>& owned = std::nullopt);

  /// Survivor side of a reclaim: restart WITHOUT `victims`, keeping
  /// exactly `remaining` (cold-adding any of them no log manifests).  The
  /// victims' durable records stay in this cell's logs for the rejoiner.
  AbsorbReport release_absorb(const std::vector<std::uint32_t>& victims,
                              const std::vector<std::uint32_t>& remaining);

  /// The way back from kill(): announce a fresh generation with kJoin on
  /// the reserved fabric session and wait (bounded retries, `ack_wait`
  /// per attempt) for the router's kJoinAck.  The ack is authoritative —
  /// the router sends it only while probation is open, so a kJoin that
  /// races the strike ladder (backend not condemned yet) goes unanswered
  /// and the retries carry the handshake across.  Probes arriving during
  /// the wait are deliberately NOT answered: feeding the ladder healthy
  /// acks would stall the very condemnation the handshake needs.  On
  /// success the cell starts a SESSIONLESS generation that rides out
  /// probation; on failure the cell stays dead and a later rejoin() may
  /// try again.
  RejoinReport rejoin(std::uint32_t max_attempts = 5,
                      std::chrono::microseconds ack_wait =
                          std::chrono::microseconds(50'000));

  /// The current generation (valid between construction and kill()).
  net::StpServer& server() { return *server_; }
  const net::StpServer& server() const { return *server_; }
  std::uint32_t generation() const { return generation_; }

 private:
  std::unique_ptr<net::StpServer> make_generation();
  /// Shared restart-absorb core: bare-stop, next generation, rehydrate
  /// (declining sessions `allowed` rejects, when given), cold-add
  /// `expected` stragglers, restart.  Caller holds mu_.
  AbsorbReport absorb_locked(
      const std::vector<store::IStableStore*>& handoff,
      const std::vector<std::uint32_t>& expected,
      const std::function<bool(std::uint32_t)>& allowed);

  net::ITransport* transport_;
  CellConfig cfg_;
  std::unique_ptr<net::StpServer> server_;
  std::uint32_t generation_ = 1;
  bool started_ = false;
  bool killed_ = false;
  std::mutex mu_;  // serializes kill / absorb / stop
};

}  // namespace stpx::fabric
