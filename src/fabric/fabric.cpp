#include "fabric/fabric.hpp"

#include <algorithm>
#include <map>

#include "store/session_log.hpp"
#include "util/expect.hpp"

namespace stpx::fabric {

Fabric::Fabric(FabricConfig cfg) : cfg_(std::move(cfg)) {
  STPX_EXPECT(cfg_.backends >= 1, "Fabric: needs at least one backend");
  STPX_EXPECT(static_cast<bool>(cfg_.stores_for),
              "Fabric: stores_for is required");
  client_link_ = net::make_loopback(cfg_.link);
  router_ = std::make_unique<FabricRouter>(client_link_.b.get(),
                                           &membership_, cfg_.router);
  backend_links_.reserve(cfg_.backends);
  cells_.reserve(cfg_.backends);
  for (std::size_t i = 0; i < cfg_.backends; ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(i + 1);
    backend_links_.push_back(net::make_loopback(cfg_.link));
    membership_.add_backend(id);
    router_->add_backend(id, backend_links_[i].a.get());
    stores_.push_back(cfg_.stores_for(id));
    CellConfig cc;
    cc.id = id;
    cc.mux = cfg_.mux;
    if (cfg_.probe_for) cc.mux.probe = cfg_.probe_for(id);
    cc.stores = stores_[i];
    cc.make_receiver = cfg_.make_receiver;
    cc.expected_for = cfg_.expected_for;
    cells_.push_back(
        std::make_unique<BackendCell>(backend_links_[i].b.get(), cc));
  }
}

Fabric::~Fabric() { stop(); }

void Fabric::add_session(std::uint32_t sid) {
  STPX_EXPECT(!started_, "Fabric: add_session after start");
  const std::uint32_t id =
      static_cast<std::uint32_t>(next_assign_++ % cells_.size()) + 1;
  membership_.assign(sid, id);
  cells_[id - 1]->add_session(sid);
}

void Fabric::start() {
  STPX_EXPECT(!started_, "Fabric: started twice");
  started_ = true;
  for (auto& c : cells_) c->start();
  router_->start();
  supervisor_ = std::jthread([this](std::stop_token st) { supervise(st); });
}

void Fabric::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  supervisor_.request_stop();
  supervisor_.join();
  router_->stop();
  for (auto& c : cells_) c->stop();  // no-op on killed cells
}

bool Fabric::drain(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (const auto& c : cells_) {
      if (c->killed()) continue;
      all = all && c->server().mux().all_terminal();
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Fabric::kill_backend(std::uint32_t id) { cell(id).kill(); }

void Fabric::set_probe_blackout(std::uint32_t id, bool on) {
  router_->set_drop_probes(id, on);
}

void Fabric::set_data_split(std::uint32_t id, bool on) {
  router_->set_drop_data(id, on);
}

void Fabric::set_partition(std::uint32_t id, PartitionMode mode) {
  router_->set_partition(id, mode);
}

bool Fabric::rejoin_backend(std::uint32_t id) {
  BackendCell& c = cell(id);
  if (!c.killed()) return false;
  return c.rejoin().acked;
}

BackendCell& Fabric::cell(std::uint32_t id) {
  STPX_EXPECT(id >= 1 && id <= cells_.size(), "Fabric: unknown backend id");
  return *cells_[id - 1];
}

std::vector<RehomeRecord> Fabric::rehomes() const {
  std::lock_guard<std::mutex> hold(rehome_mu_);
  return rehomes_;
}

std::vector<ReclaimRecord> Fabric::reclaims() const {
  std::lock_guard<std::mutex> hold(rehome_mu_);
  return reclaims_;
}

void Fabric::publish_metrics(obs::MetricsRegistry& reg) const {
  router_->publish_metrics(reg);
}

void Fabric::supervise(std::stop_token st) {
  while (!st.stop_requested()) {
    bool busy = false;
    if (const auto dead = router_->next_dead()) {
      handle_death(*dead);
      busy = true;
    }
    if (const auto joined = router_->next_joined()) {
      handle_join(*joined);
      busy = true;
    }
    if (!busy) std::this_thread::sleep_for(cfg_.supervise_poll);
  }
}

void Fabric::handle_death(std::uint32_t dead) {
  RehomeRecord rec;
  rec.dead = dead;
  // Fence FIRST: a suspect that is actually alive (probe blackout) must
  // stop serving before anyone re-reads its logs, or two generations of
  // the same session could both write.  kill() is idempotent, so fencing
  // an already-crashed cell costs nothing.
  cells_[dead - 1]->kill();
  const auto survivor = membership_.pick_survivor(dead);
  if (!survivor) {
    std::lock_guard<std::mutex> hold(rehome_mu_);
    rehomes_.push_back(std::move(rec));
    return;
  }
  rec.survivor = *survivor;
  // The survivor goes dark while its mux restarts; pause its heartbeat
  // so the maintenance window cannot read as a second crash.  Rehydration
  // is restricted to the survivor's own sessions plus the incoming ones:
  // after a reclaim its logs can manifest sessions it released, and the
  // handed-off logs can manifest sessions the dead cell released — none
  // of which may be resurrected here.
  router_->set_probes_paused(*survivor, true);
  rec.absorb = cells_[*survivor - 1]->rehome_absorb(
      stores_[dead - 1], membership_.sessions_of(dead),
      membership_.sessions_of(*survivor));
  router_->set_probes_paused(*survivor, false);
  // Only now flip the routing truth: frames for the moved sessions were
  // dropped (counted dead_owner) during the absorb, which retransmission
  // heals; after this line they flow to the survivor.
  rec.moved = membership_.rehome(dead, *survivor);
  rec.ok = true;
  std::lock_guard<std::mutex> hold(rehome_mu_);
  rehomes_.push_back(std::move(rec));
}

void Fabric::handle_join(std::uint32_t id) {
  ReclaimRecord rec;
  rec.backend = id;
  rec.generation = cells_[id - 1]->generation();
  // The reclaim set is decided by DURABLE evidence: whatever this
  // backend's own logs still manifest, judged against the current
  // membership truth.  Sessions created after its death live elsewhere
  // and are not touched.
  const auto manifested = store::manifested_sessions(stores_[id - 1]);
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_owner;
  for (const std::uint32_t sid : manifested) {
    const auto entry = membership_.resolve(sid);
    if (!entry) continue;  // never registered with this fabric
    if (entry->backend == id) {
      // Still nominally ours — typically fenced behind a soon-to-be-stale
      // entry because nobody survived to re-home it.  No release needed.
      rec.reclaimed.push_back(sid);
      continue;
    }
    if (membership_.health(entry->backend) == BackendHealth::kDead) {
      continue;  // that backend's own death flow owns these; don't race it
    }
    by_owner[entry->backend].push_back(sid);
    rec.reclaimed.push_back(sid);
  }
  // Each current owner hands its victims back with a release absorb; the
  // victims' durable records stay in its logs, read-only, as the handoff
  // source for the rejoiner.
  std::vector<store::IStableStore*> handoff;
  for (const auto& [owner, victims] : by_owner) {
    std::vector<std::uint32_t> remaining;
    for (const std::uint32_t sid : membership_.sessions_of(owner)) {
      if (std::find(victims.begin(), victims.end(), sid) == victims.end()) {
        remaining.push_back(sid);
      }
    }
    router_->set_probes_paused(owner, true);
    cells_[owner - 1]->release_absorb(victims, remaining);
    router_->set_probes_paused(owner, false);
    for (store::IStableStore* s : stores_[owner - 1]) handoff.push_back(s);
    rec.released_from.push_back(owner);
  }
  // The rejoiner folds its own logs plus the released owners' (read-only)
  // and admits EXACTLY the reclaim set: the (epoch, seq) newest-fold
  // resumes each session at the releasing owner's durable position, so
  // the ack-gating write-ahead rule holds across the handback.  An empty
  // `owned` vector (vs nullopt) is what restricts admission to the
  // reclaim set alone.
  router_->set_probes_paused(id, true);
  rec.absorb = cells_[id - 1]->rehome_absorb(handoff, rec.reclaimed,
                                             std::vector<std::uint32_t>{});
  router_->set_probes_paused(id, false);
  // Only now flip the routing truth: revive bumps the incarnation (owner
  // entries still stamped with the old one turn stale) and the epoch;
  // each reclaimed session is then restamped fresh.  Clients holding
  // pre-revive leases get kNotOwner redirects, re-resolve, and land here.
  membership_.revive(id);
  for (const std::uint32_t sid : rec.reclaimed) membership_.assign(sid, id);
  rec.epoch = membership_.epoch();
  rec.ok = true;
  std::lock_guard<std::mutex> hold(rehome_mu_);
  reclaims_.push_back(std::move(rec));
}

std::vector<net::TraceEvent> merge_backend_traces(
    const std::vector<TracePart>& parts) {
  std::uint64_t min_epoch = 0;
  bool any = false;
  for (const TracePart& p : parts) {
    if (!any || p.epoch_us < min_epoch) min_epoch = p.epoch_us;
    any = true;
  }
  std::vector<net::TraceEvent> merged;
  for (const TracePart& p : parts) {
    const std::uint64_t base = p.epoch_us - min_epoch;
    for (net::TraceEvent ev : p.events) {
      ev.ts_us += base;
      merged.push_back(std::move(ev));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::TraceEvent& a, const net::TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return merged;
}

}  // namespace stpx::fabric
