#include "fabric/fabric.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace stpx::fabric {

Fabric::Fabric(FabricConfig cfg) : cfg_(std::move(cfg)) {
  STPX_EXPECT(cfg_.backends >= 1, "Fabric: needs at least one backend");
  STPX_EXPECT(static_cast<bool>(cfg_.stores_for),
              "Fabric: stores_for is required");
  client_link_ = net::make_loopback(cfg_.link);
  router_ = std::make_unique<FabricRouter>(client_link_.b.get(),
                                           &membership_, cfg_.router);
  backend_links_.reserve(cfg_.backends);
  cells_.reserve(cfg_.backends);
  for (std::size_t i = 0; i < cfg_.backends; ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(i + 1);
    backend_links_.push_back(net::make_loopback(cfg_.link));
    membership_.add_backend(id);
    router_->add_backend(id, backend_links_[i].a.get());
    stores_.push_back(cfg_.stores_for(id));
    CellConfig cc;
    cc.id = id;
    cc.mux = cfg_.mux;
    if (cfg_.probe_for) cc.mux.probe = cfg_.probe_for(id);
    cc.stores = stores_[i];
    cc.make_receiver = cfg_.make_receiver;
    cc.expected_for = cfg_.expected_for;
    cells_.push_back(
        std::make_unique<BackendCell>(backend_links_[i].b.get(), cc));
  }
}

Fabric::~Fabric() { stop(); }

void Fabric::add_session(std::uint32_t sid) {
  STPX_EXPECT(!started_, "Fabric: add_session after start");
  const std::uint32_t id =
      static_cast<std::uint32_t>(next_assign_++ % cells_.size()) + 1;
  membership_.assign(sid, id);
  cells_[id - 1]->add_session(sid);
}

void Fabric::start() {
  STPX_EXPECT(!started_, "Fabric: started twice");
  started_ = true;
  for (auto& c : cells_) c->start();
  router_->start();
  supervisor_ = std::jthread([this](std::stop_token st) { supervise(st); });
}

void Fabric::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  supervisor_.request_stop();
  supervisor_.join();
  router_->stop();
  for (auto& c : cells_) c->stop();  // no-op on killed cells
}

bool Fabric::drain(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (const auto& c : cells_) {
      if (c->killed()) continue;
      all = all && c->server().mux().all_terminal();
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Fabric::kill_backend(std::uint32_t id) { cell(id).kill(); }

void Fabric::set_probe_blackout(std::uint32_t id, bool on) {
  router_->set_drop_probes(id, on);
}

void Fabric::set_data_split(std::uint32_t id, bool on) {
  router_->set_drop_data(id, on);
}

BackendCell& Fabric::cell(std::uint32_t id) {
  STPX_EXPECT(id >= 1 && id <= cells_.size(), "Fabric: unknown backend id");
  return *cells_[id - 1];
}

std::vector<RehomeRecord> Fabric::rehomes() const {
  std::lock_guard<std::mutex> hold(rehome_mu_);
  return rehomes_;
}

void Fabric::supervise(std::stop_token st) {
  while (!st.stop_requested()) {
    if (const auto dead = router_->next_dead()) {
      handle_death(*dead);
    } else {
      std::this_thread::sleep_for(cfg_.supervise_poll);
    }
  }
}

void Fabric::handle_death(std::uint32_t dead) {
  RehomeRecord rec;
  rec.dead = dead;
  // Fence FIRST: a suspect that is actually alive (probe blackout) must
  // stop serving before anyone re-reads its logs, or two generations of
  // the same session could both write.  kill() is idempotent, so fencing
  // an already-crashed cell costs nothing.
  cells_[dead - 1]->kill();
  const auto survivor = membership_.pick_survivor(dead);
  if (!survivor) {
    std::lock_guard<std::mutex> hold(rehome_mu_);
    rehomes_.push_back(std::move(rec));
    return;
  }
  rec.survivor = *survivor;
  // The survivor goes dark while its mux restarts; pause its heartbeat
  // so the maintenance window cannot read as a second crash.
  router_->set_probes_paused(*survivor, true);
  rec.absorb = cells_[*survivor - 1]->rehome_absorb(
      stores_[dead - 1], membership_.sessions_of(dead));
  router_->set_probes_paused(*survivor, false);
  // Only now flip the routing truth: frames for the moved sessions were
  // dropped (counted dead_owner) during the absorb, which retransmission
  // heals; after this line they flow to the survivor.
  rec.moved = membership_.rehome(dead, *survivor);
  rec.ok = true;
  std::lock_guard<std::mutex> hold(rehome_mu_);
  rehomes_.push_back(std::move(rec));
}

std::vector<net::TraceEvent> merge_backend_traces(
    const std::vector<TracePart>& parts) {
  std::uint64_t min_epoch = 0;
  bool any = false;
  for (const TracePart& p : parts) {
    if (!any || p.epoch_us < min_epoch) min_epoch = p.epoch_us;
    any = true;
  }
  std::vector<net::TraceEvent> merged;
  for (const TracePart& p : parts) {
    const std::uint64_t base = p.epoch_us - min_epoch;
    for (net::TraceEvent ev : p.events) {
      ev.ts_us += base;
      merged.push_back(std::move(ev));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::TraceEvent& a, const net::TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return merged;
}

}  // namespace stpx::fabric
