#include "fabric/resolver.hpp"

#include "fabric/nameserver.hpp"
#include "util/expect.hpp"

namespace stpx::fabric {

using net::Frame;
using net::FrameKind;

ResolverTransport::ResolverTransport(net::ITransport* inner,
                                     ResolverConfig cfg)
    : inner_(inner), cfg_(cfg) {
  STPX_EXPECT(inner_ != nullptr, "ResolverTransport: null inner transport");
}

std::string ResolverTransport::name() const {
  return "resolver+" + inner_->name();
}

void ResolverTransport::maybe_resolve(std::uint32_t session,
                                      clock::time_point now) {
  const auto it = last_resolve_.find(session);
  if (it != last_resolve_.end() && now - it->second < cfg_.resolve_retry) {
    return;
  }
  last_resolve_[session] = now;
  Frame q;
  q.kind = FrameKind::kResolve;
  q.dir = sim::Dir::kSenderToReceiver;
  q.session = session;
  q.msg = 0;
  inner_->send(net::encode(q));
  ++n_.resolves_sent;
}

void ResolverTransport::on_control(const Frame& f) {
  if (f.kind == FrameKind::kResolveAck) {
    const std::uint32_t owner = lease_owner(f.msg);
    const std::uint64_t epoch = lease_epoch(f.msg);
    if (owner != 0) {
      // Grants only move leases forward: a reordered stale ack must not
      // clobber a newer lease.
      auto& l = leases_[f.session];
      if (epoch >= l.epoch) l = Lease{owner, epoch};
      ++n_.leases_granted;
    } else {
      ++n_.unknown_answers;
    }
    return;
  }
  // kNotOwner: the router dropped a frame for this session and tells us
  // the current epoch.  A cached lease older than that is fenced off and
  // re-resolved immediately — redirected, not blackholed.
  ++n_.redirects_seen;
  const std::uint64_t epoch = lease_epoch(f.msg);
  const auto it = leases_.find(f.session);
  if (it != leases_.end() && it->second.epoch < epoch) {
    leases_.erase(it);
    ++n_.lease_invalidations;
    last_resolve_.erase(f.session);  // stale fence beats the rate limit
  }
  maybe_resolve(f.session, clock::now());
}

bool ResolverTransport::send(const std::vector<std::uint8_t>& bytes) {
  if (const auto f = net::decode(bytes)) {
    if ((f->kind == FrameKind::kData || f->kind == FrameKind::kFin) &&
        f->session != net::kFabricSession) {
      std::lock_guard<std::mutex> hold(mu_);
      if (leases_.find(f->session) == leases_.end()) {
        maybe_resolve(f->session, clock::now());
      }
    }
  }
  // Leases are advisory: the frame goes out either way, and the router's
  // own membership table decides where it lands.
  return inner_->send(bytes);
}

std::optional<std::vector<std::uint8_t>> ResolverTransport::poll() {
  for (std::size_t i = 0; i < cfg_.control_burst; ++i) {
    auto bytes = inner_->poll();
    if (!bytes) return std::nullopt;
    const auto f = net::decode(*bytes);
    if (f && (f->kind == FrameKind::kResolveAck ||
              f->kind == FrameKind::kNotOwner)) {
      std::lock_guard<std::mutex> hold(mu_);
      on_control(*f);
      continue;
    }
    return bytes;
  }
  return std::nullopt;
}

void ResolverTransport::resolve_now(std::uint32_t session) {
  std::lock_guard<std::mutex> hold(mu_);
  last_resolve_.erase(session);  // explicit query beats the rate limit
  maybe_resolve(session, clock::now());
}

std::optional<Lease> ResolverTransport::lease(std::uint32_t session) const {
  std::lock_guard<std::mutex> hold(mu_);
  const auto it = leases_.find(session);
  if (it == leases_.end()) return std::nullopt;
  return it->second;
}

ResolverStats ResolverTransport::stats() const {
  std::lock_guard<std::mutex> hold(mu_);
  return n_;
}

}  // namespace stpx::fabric
