#include "fabric/cell.hpp"

#include <chrono>
#include <set>

#include "util/expect.hpp"

namespace stpx::fabric {

BackendCell::BackendCell(net::ITransport* transport, CellConfig cfg)
    : transport_(transport), cfg_(std::move(cfg)) {
  STPX_EXPECT(transport_ != nullptr, "BackendCell: null transport");
  STPX_EXPECT(cfg_.id != 0, "BackendCell: backend id 0 is reserved");
  STPX_EXPECT(!cfg_.stores.empty(), "BackendCell: a backend needs stores");
  STPX_EXPECT(static_cast<bool>(cfg_.make_receiver) &&
                  static_cast<bool>(cfg_.expected_for),
              "BackendCell: receiver factory and expectation provider "
              "are required");
  server_ = make_generation();
}

std::unique_ptr<net::StpServer> BackendCell::make_generation() {
  net::MuxConfig mc = cfg_.mux;
  mc.backend_id = cfg_.id;
  mc.session_stores = cfg_.stores;
  return std::make_unique<net::StpServer>(transport_, mc);
}

void BackendCell::add_session(std::uint32_t sid) {
  // Cold registration passes proto_tag 0 ("fresh default") — factories
  // must build a from-scratch receiver for tag 0.
  auto receiver = cfg_.make_receiver(sid, 0);
  STPX_EXPECT(receiver != nullptr,
              "BackendCell: factory declined a cold session");
  server_->add_session(sid, std::move(receiver), cfg_.expected_for(sid));
}

void BackendCell::start() {
  std::lock_guard<std::mutex> hold(mu_);
  STPX_EXPECT(!killed_, "BackendCell: start on a dead cell");
  server_->mux().start();
  started_ = true;
}

void BackendCell::stop() {
  std::lock_guard<std::mutex> hold(mu_);
  if (killed_) return;
  server_->mux().stop();
}

void BackendCell::kill() {
  std::lock_guard<std::mutex> hold(mu_);
  if (killed_) return;
  killed_ = true;
  server_->mux().kill();
}

AbsorbReport BackendCell::rehome_absorb(
    const std::vector<store::IStableStore*>& handoff,
    const std::vector<std::uint32_t>& expected) {
  std::lock_guard<std::mutex> hold(mu_);
  STPX_EXPECT(!killed_, "BackendCell: absorb on a dead cell");
  const auto t0 = std::chrono::steady_clock::now();
  // Bare stop: the running generation retires without its final flush —
  // our own sessions restart from their last cadence checkpoint, same as
  // they would after a real crash.  Held (durability-gated) frames die
  // here; retransmission heals that.
  server_->mux().stop();
  ++generation_;
  server_ = make_generation();
  AbsorbReport rep;
  rep.rehydrate =
      server_->rehydrate(cfg_.make_receiver, cfg_.expected_for, handoff);
  // Sessions the membership table expects here but no log manifests
  // (assigned, never checkpointed before the crash) start cold — they
  // re-earn everything from the wire.
  std::set<std::uint32_t> hosted;
  for (const auto& r : server_->mux().reports()) hosted.insert(r.id);
  for (const std::uint32_t sid : expected) {
    if (hosted.count(sid) != 0) continue;
    auto receiver = cfg_.make_receiver(sid, 0);
    if (!receiver) continue;
    server_->add_session(sid, std::move(receiver), cfg_.expected_for(sid));
    rep.cold_added.push_back(sid);
  }
  server_->mux().start();
  started_ = true;
  rep.latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return rep;
}

}  // namespace stpx::fabric
